"""Unit and property tests for page math and chunking."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.layout import (
    count_page_aligned_chunks,
    iter_chunks,
    page_aligned_chunks,
    page_of,
    page_offset,
    page_range,
    pages_spanned,
)
from repro.units import PAGE_SIZE


class TestPageMath:
    def test_page_of(self):
        assert page_of(0) == 0
        assert page_of(PAGE_SIZE - 1) == 0
        assert page_of(PAGE_SIZE) == 1

    def test_page_offset(self):
        assert page_offset(PAGE_SIZE + 7) == 7

    def test_pages_spanned_zero_length(self):
        assert pages_spanned(123, 0) == 0

    def test_pages_spanned_within_page(self):
        assert pages_spanned(100, 50) == 1

    def test_pages_spanned_crossing(self):
        assert pages_spanned(PAGE_SIZE - 1, 2) == 2

    def test_pages_spanned_exact_page(self):
        assert pages_spanned(0, PAGE_SIZE) == 1
        assert pages_spanned(0, PAGE_SIZE + 1) == 2

    def test_page_range(self):
        assert list(page_range(PAGE_SIZE, 2 * PAGE_SIZE)) == [1, 2]


class TestIterChunks:
    def test_exact_division(self):
        assert list(iter_chunks(0, 12, 4)) == [(0, 4), (4, 4), (8, 4)]

    def test_tail_chunk(self):
        assert list(iter_chunks(0, 10, 4)) == [(0, 4), (4, 4), (8, 2)]

    def test_offset_respected(self):
        assert list(iter_chunks(100, 6, 4)) == [(100, 4), (104, 2)]

    def test_invalid_chunk(self):
        with pytest.raises(ValueError):
            list(iter_chunks(0, 10, 0))


class TestPageAlignedChunks:
    def test_aligned_copy_uses_whole_pages(self):
        chunks = list(page_aligned_chunks(0, PAGE_SIZE * 10, 3 * PAGE_SIZE))
        assert all(n == PAGE_SIZE for _, _, n in chunks)
        assert len(chunks) == 3

    def test_misaligned_doubles_chunks(self):
        # Source offset by half a page against an aligned destination:
        # every page needs two descriptors.
        chunks = list(page_aligned_chunks(PAGE_SIZE // 2, 0, 2 * PAGE_SIZE))
        # Half-page phase shift: every chunk is limited to half a page.
        assert [n for _, _, n in chunks] == [PAGE_SIZE // 2] * 4
        assert sum(n for _, _, n in chunks) == 2 * PAGE_SIZE

    def test_chunks_never_cross_pages(self):
        src0, dst0 = 1234, 7777
        for rel_src, rel_dst, n in page_aligned_chunks(src0, dst0, 5 * PAGE_SIZE):
            s = src0 + rel_src
            d = dst0 + rel_dst
            assert page_of(s) == page_of(s + n - 1)
            assert page_of(d) == page_of(d + n - 1)

    @given(
        src=st.integers(min_value=0, max_value=5 * PAGE_SIZE),
        dst=st.integers(min_value=0, max_value=5 * PAGE_SIZE),
        length=st.integers(min_value=1, max_value=10 * PAGE_SIZE),
    )
    def test_property_covers_exactly_once(self, src, dst, length):
        chunks = list(page_aligned_chunks(src, dst, length))
        # Coverage: contiguous, in order, total == length.
        pos = 0
        for rel_src, rel_dst, n in chunks:
            assert rel_src == pos and rel_dst == pos
            assert n >= 1
            pos += n
        assert pos == length
        assert count_page_aligned_chunks(src, dst, length) == len(chunks)

    @given(
        src=st.integers(min_value=0, max_value=3 * PAGE_SIZE),
        dst=st.integers(min_value=0, max_value=3 * PAGE_SIZE),
        length=st.integers(min_value=1, max_value=8 * PAGE_SIZE),
    )
    def test_property_page_containment(self, src, dst, length):
        for rel_src, rel_dst, n in page_aligned_chunks(src, dst, length):
            s, d = src + rel_src, dst + rel_dst
            assert page_of(s) == page_of(s + n - 1)
            assert page_of(d) == page_of(d + n - 1)
