"""SKB001: skbuff allocated from a pool but never freed or handed off.

Every skbuff from :meth:`SkbuffPool.alloc_rx`/:meth:`alloc_tx` must reach
exactly one of: ``skb.free()``, a call that takes ownership (``nic.xmit``,
``pending.append``-style hand-off via an argument), a return/yield, or a
store into longer-lived state.  The deferred-release discipline of §III-B
makes these hand-offs easy to drop on error paths — the exact bug this rule
exists for.

Deliberately conservative: configuring the buffer (``skb.data_len = n``,
``skb.add_frag(...)``) does *not* count as a release, because filling a
buffer and then dropping it is precisely the leak.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint import (
    Finding,
    ModuleSource,
    Rule,
    name_escapes,
    own_nodes,
    register_rule,
)

_ALLOC_METHODS = ("alloc_rx", "alloc_tx")


@register_rule
class SkbuffLeakRule(Rule):
    code = "SKB001"
    summary = "skbuff allocated from a pool is never freed or handed off"

    def check(self, module: ModuleSource,
              project=None) -> Iterator[Finding]:
        for fn in module.functions():
            for node in own_nodes(fn):
                if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                    continue
                target = node.targets[0]
                call = node.value
                if isinstance(call, (ast.Await, ast.YieldFrom)):
                    call = call.value
                if not (
                    isinstance(target, ast.Name)
                    and isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)
                    and call.func.attr in _ALLOC_METHODS
                ):
                    continue
                name = target.id
                if not name_escapes(fn, name, binding=node, release_attrs=("free",)):
                    yield module.finding(
                        self.code, node,
                        f"skbuff '{name}' from {call.func.attr}() is never freed, "
                        f"returned, or handed off in '{fn.name}'",
                    )
