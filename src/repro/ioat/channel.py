"""One I/OAT DMA channel.

The channel is a self-clocked server: a callback state machine drains the
descriptor ring in FIFO order.  Each descriptor costs
``per_descriptor_cost + length / engine_bw`` of engine time — the model
behind the Fig. 7 curves (chunk size sweeps the fixed-cost amortisation).

Completions are in order; the host polls :meth:`poll` (a cheap status read).
Data moves for real when a descriptor completes, and the destination pages
are *not* brought into any CPU cache — the engine bypasses caches, which is
both its cache-cleanliness advantage and why it can never exploit a warm
cache (§IV-A).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.ioat.descriptor import CopyDescriptor, DescriptorRing
from repro.memory.buffers import copy_bytes
from repro.params import IoatParams
from repro.simkernel.sync import Signal
from repro.units import SEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.memory.cache import CacheDirectory
    from repro.simkernel.scheduler import Simulator


class DmaChannel:
    """A single in-order copy channel."""

    def __init__(
        self,
        sim: "Simulator",
        params: IoatParams,
        index: int = 0,
        caches: Optional["CacheDirectory"] = None,
    ):
        self.sim = sim
        self.params = params
        self.index = index
        self.caches = caches
        self.ring = DescriptorRing(params.ring_size)
        self._work = Signal(sim, name=f"ioat{index}.work")
        self._completion = Signal(sim, name=f"ioat{index}.completion")
        #: True while a descriptor is in flight on the engine
        self._busy = False
        #: optional TraceRecorder (Fig. 5/6-style timelines)
        self.trace = None
        #: optional :class:`repro.analysis.sanitizers.Sanitizer` hook; when
        #: set, it is notified of submissions and completion polls
        self.observer = None
        #: optional :class:`repro.health.breaker.ChannelBreaker`; notified of
        #: every aborted descriptor and stall so repeated faults trip the
        #: channel to memcpy-only instead of being healed one copy at a time
        self.health = None
        #: hard failure: the channel aborts all work (see :meth:`fail`)
        self.failed = False
        self.fail_detail = ""
        #: engine stalled (holds off *starting* new descriptors) until this
        #: absolute time; in-flight descriptors still finish
        self._stalled_until = 0
        self._stall_wake_pending = False
        #: cookies of descriptors aborted by :meth:`fail` — status polls see
        #: them as complete, :meth:`copy_failed` reports the error
        self._aborted_cookies: set[int] = set()
        #: descriptor length -> engine ticks (see :meth:`service_time`)
        self._service_cache: dict[int, int] = {}
        # statistics
        self.descriptors_completed = 0
        self.descriptors_failed = 0
        self.bytes_copied = 0
        self.busy_ticks = 0
        self.stalls = 0
        self.recoveries = 0

    def register_metrics(self, reg) -> None:
        """Publish per-channel statistics (engine sums are registered by
        :meth:`repro.ioat.engine.IoatEngine.register_metrics`)."""
        name = f"ioat_ch{self.index}"
        reg.counter("ioat", f"{name}_busy_ticks", lambda: self.busy_ticks,
                    "engine time spent executing descriptors")
        reg.counter("ioat", f"{name}_stalls", lambda: self.stalls)
        reg.gauge("ioat", f"{name}_queue_depth", lambda: self.queue_depth)

    # -- host-side API -----------------------------------------------------

    def submit(self, desc: CopyDescriptor) -> int:
        """Queue a descriptor; returns its cookie.

        This models only the hardware-side enqueue: the *CPU* cost of
        submission (≈350 ns) is charged by the caller
        (:class:`~repro.ioat.api.IoatDmaApi`), since it runs on a core.
        """
        cookie = self.ring.push(desc)
        if self.observer is not None:
            self.observer.on_dma_submit(self, cookie, desc)
        if self.failed:
            # Dead channel: the descriptor "completes" immediately with an
            # error so pollers observe it instead of hanging forever.
            self._abort_desc(desc)
            self._completion.fire(cookie)
            return cookie
        self._work.fire()
        if not self._busy:
            self._service_next()
        return cookie

    def poll(self) -> int:
        """Status read: highest completed cookie (-1 if none)."""
        done = self.ring.last_completed_cookie()
        if self.observer is not None:
            self.observer.on_dma_poll(self, done)
        return done

    def is_complete(self, cookie: int) -> bool:
        """True once ``cookie`` (and thus all earlier ones) completed."""
        return self.poll() >= cookie

    def reap(self) -> list[CopyDescriptor]:
        """Harvest the completed prefix, freeing ring slots."""
        return self.ring.reap_completed()

    def wait_completion(self) -> "Signal":
        """Signal fired each time a descriptor completes (for sim-internal
        waiters; real hosts must poll — see §VI on the missing interrupt)."""
        return self._completion

    @property
    def queue_depth(self) -> int:
        return len(self.ring)

    @property
    def stalled(self) -> bool:
        """True while a :meth:`stall` window is holding off descriptor issue."""
        return self.sim.now < self._stalled_until

    def copy_failed(self, last_cookie: int, n_descriptors: int) -> bool:
        """Did any descriptor of a copy ending at ``last_cookie`` abort?"""
        if not self._aborted_cookies:
            return False
        first = last_cookie - n_descriptors + 1
        return any(
            c in self._aborted_cookies for c in range(first, last_cookie + 1)
        )

    # -- fault injection ---------------------------------------------------

    def fail(self, detail: str = "ioat channel failure") -> None:
        """Hard-fail the channel: abort all pending work, refuse new work.

        Aborted descriptors move no data but are marked completed so the
        in-order status poll advances past them — waiters wake up and must
        check :meth:`copy_failed` instead of spinning forever.  The host
        falls back to memcpy (see ``core/offload.py``).
        """
        if self.failed:
            return
        self.failed = True
        self.fail_detail = detail
        if self.trace is not None and self.trace.enabled:
            self.trace.instant(f"I/OAT ch{self.index}", f"FAIL: {detail}", "fault")
        aborted = self.ring.pending()
        for desc in aborted:
            self._abort_desc(desc)
        self._busy = False
        if aborted:
            self._completion.fire(aborted[-1].cookie)

    def stall(self, duration: int) -> None:
        """Freeze descriptor issue for ``duration`` ticks.

        The in-flight descriptor (if any) still finishes; queued ones wait.
        Models a transiently hogged channel, not a dead one — work resumes
        by itself and no error surfaces.
        """
        until = self.sim.now + duration
        if until > self._stalled_until:
            self._stalled_until = until
        self.stalls += 1
        if self.trace is not None and self.trace.enabled:
            self.trace.instant(f"I/OAT ch{self.index}",
                               f"stall {duration} ns", "fault")
        if self.health is not None:
            self.health.on_stall(self)

    def recover(self, detail: str = "") -> None:
        """Undo :meth:`fail`: accept and execute new descriptors again.

        Aborted descriptors stay aborted (their error already surfaced);
        only *new* submissions run.  The host side does not trust this
        blindly — the circuit breaker keeps refusing the channel until a
        half-open probe copy succeeds.
        """
        if not self.failed:
            return
        self.failed = False
        self.fail_detail = ""
        self.recoveries += 1
        if self.trace is not None and self.trace.enabled:
            self.trace.instant(f"I/OAT ch{self.index}",
                               f"RECOVER{': ' + detail if detail else ''}", "fault")
        self._busy = False
        self._service_next()

    def _abort_desc(self, desc: CopyDescriptor) -> None:
        desc.failed = True
        desc.completed_at = self.sim.now
        self._aborted_cookies.add(desc.cookie)
        self.descriptors_failed += 1
        if self.health is not None:
            self.health.on_descriptor_failed(self)

    # -- engine ------------------------------------------------------------

    def service_time(self, length: int) -> int:
        """Engine ticks to execute one descriptor of ``length`` bytes.

        Memoized per length: real workloads submit a handful of distinct
        descriptor sizes (full pages plus the odd tail), and the float
        round-trip below is measurable at one-descriptor-per-4KiB rates.
        """
        t = self._service_cache.get(length)
        if t is None:
            move = int(round(length * SEC / self.params.engine_bw))
            t = self._service_cache[length] = (
                self.params.per_descriptor_cost + max(move, 1)
            )
        return t

    def _service_next(self) -> None:
        """Start executing the oldest pending descriptor, if any.

        The engine is a callback state machine rather than a generator
        daemon: each descriptor costs exactly one heap entry (the
        ``call_at`` below) instead of a Timeout event plus a process
        resume plus a work-signal wakeup.  Same simulated times — a
        submission at time T with service time t still completes at T+t —
        but an order of magnitude fewer host-side allocations on the
        fig. 11 pull path, which retires one descriptor per 4 KiB chunk.
        """
        if self.failed:
            self._busy = False
            return
        if self.sim.now < self._stalled_until:
            # Hold the engine "busy" so submits don't re-enter; one wakeup
            # callback resumes service when the stall window closes.
            self._busy = True
            if not self._stall_wake_pending:
                self._stall_wake_pending = True
                self.sim.call_at(self._stalled_until, self._stall_wake)
            return
        desc = self.ring.oldest_pending()
        if desc is None:
            self._busy = False
            return
        self._busy = True
        t = self.service_time(desc.length)
        start = self.sim.now
        self.sim._push(start + t, self._finish, (desc, t, start))

    def _stall_wake(self) -> None:
        self._stall_wake_pending = False
        self._busy = False
        self._service_next()

    def _finish(self, desc: CopyDescriptor, t: int, start: int) -> None:
        if desc.failed:
            return  # aborted by fail() while in flight; already accounted
        self.busy_ticks += t
        if self.trace is not None and self.trace.enabled:
            self.trace.record(f"I/OAT ch{self.index}", f"Copy#{desc.cookie}",
                              start, self.sim.now, "dma")
        copy_bytes(desc.src, desc.src_off, desc.dst, desc.dst_off, desc.length)
        if self.caches is not None:
            # DMA write snoops: destination lines leave all CPU caches.
            self.caches.invalidate_all(desc.dst.addr + desc.dst_off, desc.length)
        desc.completed_at = self.sim.now
        self.descriptors_completed += 1
        self.bytes_copied += desc.length
        self._completion.fire(desc.cookie)
        self._service_next()
