"""Chrome/Perfetto ``trace_events`` export of simulator traces.

Turns :class:`~repro.simkernel.tracing.TraceRecorder` spans into the JSON
object format consumed by ``ui.perfetto.dev`` and ``chrome://tracing``:

* every recorder becomes a group of *processes* — one for the CPU cores,
  one for the DMA channels, one for the wire — and every lane becomes a
  *thread* (track) inside its process;
* spans become complete events (``ph: "X"``, microsecond ``ts``/``dur``
  derived from the integer-ns simulated clock);
* :class:`~repro.simkernel.tracing.TraceInstant` records (faults injected,
  retransmits fired, NIC drops) become instant events (``ph: "i"``).

Multiple recorders can be merged into one file with namespacing (e.g. the
fig5 memcpy run next to the fig6 I/OAT run, or one track group per host of
a fault-campaign cell).

The structural validator (:func:`validate_trace_events`) is stdlib-only and
is what the schema tests run against exported files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Optional, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.tracing import TraceRecorder

#: simulated clock is integer ns; trace_events ``ts``/``dur`` are in us
_NS_PER_US = 1000.0

#: lane-prefix -> (process label, sort index); unmatched lanes go to "events"
_LANE_PROCESSES = (
    ("CPU#", "cores", 0),
    ("I/OAT", "dma", 1),
    ("wire", "wire", 2),
)
_DEFAULT_PROCESS = ("events", 3)


def trace_digest(rec: "TraceRecorder") -> str:
    """Order-insensitive hash of a recorder's spans and instants.

    Two schedules that do the *same work* can record spans in different
    order (the recorder appends in dispatch order, and same-timestamp
    dispatch order is exactly what the race detector perturbs), so the
    digest hashes the **sorted** multiset of ``(start, end, lane, label,
    category)`` tuples.  A mismatch therefore means the runs did different
    work — not merely in a different order — which is the divergence signal
    :mod:`repro.analysis.races` keys on.
    """
    import hashlib

    spans = sorted((s.start, s.end, s.lane, s.label, s.category)
                   for s in rec.spans)
    instants = sorted((i.at, i.lane, i.label, i.category)
                      for i in rec.instants)
    payload = repr((spans, instants, rec.dropped_spans))
    return hashlib.sha256(payload.encode()).hexdigest()


def _lane_process(lane: str) -> tuple[str, int]:
    for prefix, label, sort in _LANE_PROCESSES:
        if lane.startswith(prefix):
            return label, sort
    return _DEFAULT_PROCESS


def export_trace_events(
    recorders: Union["TraceRecorder", Iterable[tuple[str, "TraceRecorder"]]],
    origin: Optional[int] = None,
) -> dict:
    """Build a trace_events JSON object from one or more recorders.

    ``recorders`` is either a single :class:`TraceRecorder` or an iterable
    of ``(namespace, recorder)`` pairs; namespaces become process-name
    prefixes so merged runs stay distinguishable.  ``origin`` (default: the
    earliest span/instant) is subtracted from all timestamps.
    """
    from repro.simkernel.tracing import TraceRecorder

    if isinstance(recorders, TraceRecorder):
        groups: list[tuple[str, TraceRecorder]] = [("", recorders)]
    else:
        groups = list(recorders)

    if origin is None:
        times = [s.start for _, rec in groups for s in rec.spans]
        times += [i.at for _, rec in groups for i in rec.instants]
        origin = min(times) if times else 0

    events: list[dict] = []
    pids: dict[tuple[str, str], int] = {}
    tids: dict[tuple[int, str], int] = {}
    dropped_total = 0

    def pid_of(namespace: str, lane: str) -> int:
        label, sort = _lane_process(lane)
        key = (namespace, label)
        pid = pids.get(key)
        if pid is None:
            pid = len(pids) + 1
            pids[key] = pid
            name = f"{namespace}:{label}" if namespace else label
            events.append({"ph": "M", "name": "process_name", "pid": pid,
                           "tid": 0, "args": {"name": name}})
            events.append({"ph": "M", "name": "process_sort_index", "pid": pid,
                           "tid": 0, "args": {"sort_index": sort}})
        return pid

    def tid_of(pid: int, lane: str) -> int:
        key = (pid, lane)
        tid = tids.get(key)
        if tid is None:
            tid = sum(1 for p, _ in tids if p == pid) + 1
            tids[key] = tid
            events.append({"ph": "M", "name": "thread_name", "pid": pid,
                           "tid": tid, "args": {"name": lane}})
        return tid

    for namespace, rec in groups:
        dropped_total += rec.dropped_spans
        for s in rec.spans:
            pid = pid_of(namespace, s.lane)
            events.append({
                "ph": "X", "name": s.label, "cat": s.category or "span",
                "ts": (s.start - origin) / _NS_PER_US,
                "dur": max(s.end - s.start, 1) / _NS_PER_US,
                "pid": pid, "tid": tid_of(pid, s.lane),
            })
        for i in rec.instants:
            pid = pid_of(namespace, i.lane)
            events.append({
                "ph": "i", "name": i.label, "cat": i.category or "instant",
                "ts": (i.at - origin) / _NS_PER_US, "s": "t",
                "pid": pid, "tid": tid_of(pid, i.lane),
            })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "generator": "repro.obs",
            "origin_ns": origin,
            "dropped_spans": dropped_total,
        },
    }


def write_trace(doc: dict, path) -> Path:
    """Serialize an exported trace to ``path`` (parent dirs created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, sort_keys=True) + "\n")
    return path


# ---------------------------------------------------------------------------
# structural schema validation (stdlib-only)
# ---------------------------------------------------------------------------

_INSTANT_SCOPES = {"g", "p", "t"}


def validate_trace_events(doc: object) -> list[str]:
    """Structural check of a trace_events JSON object; [] means valid."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["'traceEvents' must be a list"]
    if "displayTimeUnit" in doc and doc["displayTimeUnit"] not in ("ms", "ns"):
        problems.append(f"bad displayTimeUnit {doc['displayTimeUnit']!r}")
    for n, ev in enumerate(events):
        where = f"traceEvents[{n}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ev.get("name"), str):
            problems.append(f"{where}: missing string 'name'")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                problems.append(f"{where}: missing integer {key!r}")
        if ph == "X":
            for key in ("ts", "dur"):
                if not isinstance(ev.get(key), (int, float)):
                    problems.append(f"{where}: 'X' event missing numeric {key!r}")
                elif ev[key] < 0:
                    problems.append(f"{where}: negative {key!r}")
        elif ph == "i":
            if not isinstance(ev.get("ts"), (int, float)):
                problems.append(f"{where}: 'i' event missing numeric 'ts'")
            if ev.get("s") not in _INSTANT_SCOPES:
                problems.append(f"{where}: 'i' event scope must be g/p/t")
        elif ph == "M":
            if not isinstance(ev.get("args"), dict):
                problems.append(f"{where}: metadata event missing 'args'")
        else:
            problems.append(f"{where}: unsupported phase {ph!r}")
        if len(problems) > 20:
            problems.append("... (truncated)")
            break
    return problems


def validate_trace_file(path) -> list[str]:
    """Load ``path`` and validate it; JSON errors become problems too."""
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        return [f"cannot load {path}: {exc}"]
    return validate_trace_events(doc)
