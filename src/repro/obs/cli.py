"""The observability CLI: ``python -m repro.obs`` / ``repro-obs``.

::

    repro-obs report --figure 9              # Fig. 9 CPU usage + phases
    repro-obs report --figure 9 --full --json results/fig9_obs.json
    repro-obs export --figure both --out traces/fig56.json
    repro-obs diff results/a.json results/b.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _cmd_report(args) -> int:
    from repro.obs.profiler import fig9_report, render_fig9
    from repro.reporting.sweeps import SweepExecutor

    if args.figure != 9:
        print(f"unsupported report figure {args.figure} (supported: 9)",
              file=sys.stderr)
        return 2
    executor = SweepExecutor(jobs=args.jobs, cache=not args.no_cache)
    report = fig9_report(quick=not args.full, executor=executor)
    print(render_fig9(report))
    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, sort_keys=True, indent=2) + "\n")
        print(f"report: {path}")
    return 0 if report["calibration_ok"] else 1


def _cmd_export(args) -> int:
    from repro.obs.scenarios import run_fig56_scenario
    from repro.obs.trace import export_trace_events, validate_trace_events, write_trace

    modes = {"5": [False], "6": [True], "both": [False, True]}[args.figure]
    recorders = []
    for ioat in modes:
        name = "fig6-ioat" if ioat else "fig5-memcpy"
        recorders.append((name, run_fig56_scenario(ioat, size=args.size)))
    doc = export_trace_events(recorders)
    problems = validate_trace_events(doc)
    if problems:  # pragma: no cover - exporter bug guard
        for p in problems:
            print(f"schema: {p}", file=sys.stderr)
        return 1
    path = write_trace(doc, args.out)
    n = sum(1 for ev in doc["traceEvents"] if ev["ph"] != "M")
    print(f"wrote {path} ({n} events, "
          f"{len(recorders)} run(s)) — open in ui.perfetto.dev")
    return 0


def _flatten(obj, prefix="") -> dict[str, float]:
    """Numeric leaves of a JSON document, dotted paths; lists become lengths."""
    out: dict[str, float] = {}
    if isinstance(obj, bool):
        return out
    if isinstance(obj, (int, float)):
        out[prefix or "value"] = obj
    elif isinstance(obj, dict):
        for key, val in obj.items():
            out.update(_flatten(val, f"{prefix}.{key}" if prefix else str(key)))
    elif isinstance(obj, list):
        out[f"{prefix}.len" if prefix else "len"] = len(obj)
    return out


def _cmd_diff(args) -> int:
    docs = []
    for name in (args.a, args.b):
        try:
            docs.append(json.loads(Path(name).read_text()))
        except (OSError, ValueError) as exc:
            print(f"cannot load {name}: {exc}", file=sys.stderr)
            return 2
    flat_a, flat_b = _flatten(docs[0]), _flatten(docs[1])
    keys = sorted(set(flat_a) | set(flat_b))
    changed = 0
    for key in keys:
        va, vb = flat_a.get(key), flat_b.get(key)
        if va == vb:
            continue
        changed += 1
        def fmt(v):
            return "-" if v is None else (f"{v:g}" if isinstance(v, float) else str(v))
        delta = ""
        if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
            delta = f"  ({vb - va:+g})"
        print(f"  {key}: {fmt(va)} -> {fmt(vb)}{delta}")
    if changed == 0:
        print("no numeric differences")
    else:
        print(f"{changed} differing value(s)")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-obs", description="observability: reports, traces, diffs",
    )
    sub = ap.add_subparsers(dest="command", required=True)

    rep = sub.add_parser("report", help="paper-figure observability report")
    rep.add_argument("--figure", type=int, default=9)
    rep.add_argument("--full", action="store_true",
                     help="full size sweep (default: quick)")
    rep.add_argument("--json", default=None, help="also write the JSON report")
    rep.add_argument("--jobs", type=int, default=None,
                     help="worker processes (default: REPRO_JOBS or 1)")
    rep.add_argument("--no-cache", action="store_true",
                     help="disable the sweep cache")

    exp = sub.add_parser("export", help="export fig5/fig6 Perfetto traces")
    exp.add_argument("--figure", choices=("5", "6", "both"), default="both")
    exp.add_argument("--out", default="results/fig56_trace.json")
    exp.add_argument("--size", type=int, default=None,
                     help="message size in bytes (default: 80 KiB)")

    dif = sub.add_parser("diff", help="numeric diff of two JSON artifacts")
    dif.add_argument("a")
    dif.add_argument("b")

    args = ap.parse_args(argv)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "export":
        if args.size is None:
            from repro.obs.scenarios import FIG56_SIZE

            args.size = FIG56_SIZE
        return _cmd_export(args)
    return _cmd_diff(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
