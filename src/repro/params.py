"""Calibrated hardware and protocol parameters.

Every scalar in this module is either quoted directly by the paper
(§IV-A micro-benchmarks, §IV-B/C/D evaluation) or derived from the paper's
reported curves so that the simulated testbed reproduces their shape.  See
DESIGN.md §5 for the full calibration table.

The canonical testbed preset is :func:`clovertown_5000x` — two quad-core
2.33 GHz Xeon E5345 packages (2 dies of 2 cores per package, 4 MiB shared L2
per die) on an Intel 5000X chipset with an I/OAT DMA engine, and a Myri-10G
NIC in native Ethernet mode (myri10ge), exactly the paper's machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro import units
from repro.units import GiB, KiB, MiB, ns, us


@dataclass(frozen=True)
class CacheParams:
    """Per-die shared L2 cache model parameters."""

    #: capacity of one shared L2 (Clovertown: 4 MiB per dual-core die)
    capacity: int = 4 * MiB
    #: sustained memcpy bandwidth when source and destination are resident
    #: (bytes/s).  The paper quotes "up to 12 GiB/s" peak; the sustained
    #: figure consistent with its 2 kB cached break-even (350 ns at rate) and
    #: with the ~6 GiB/s shared-cache plateau of Fig. 10 is ~6 GiB/s.
    cached_copy_bw: float = 6.0 * GiB
    #: tracking granularity (one page)
    line_granularity: int = units.PAGE_SIZE


@dataclass(frozen=True)
class MemcpyParams:
    """CPU copy (memcpy) cost model."""

    #: uncached single-stream copy bandwidth (paper §IV-A: "about 1.6 GiB/s";
    #: the pipelined-chunk benchmark of Fig. 7 saturates near 1.5 GiB/s)
    uncached_bw: float = 1.55 * GiB
    #: fixed per-call/per-chunk setup cost; keeps Fig. 7's memcpy curves
    #: nearly flat across chunk sizes
    setup_cost: int = ns(30)
    #: bandwidth penalty for a source on the remote socket (FSB hop);
    #: calibrates the ~1.2 GiB/s cross-socket plateau of Fig. 10
    remote_socket_factor: float = 0.78


@dataclass(frozen=True)
class BusParams:
    """Front-side/memory-bus contention model.

    A CPU copy of ``n`` bytes moves ``traffic_multiplier * n`` bytes of bus
    traffic (read + write-allocate).  While the NIC streams received frames
    into host memory the copy's share shrinks; the effective copy bandwidth
    becomes ``min(cpu_bw, (total_bw - nic_rate) / traffic_multiplier)``.
    Calibrated so the no-I/OAT receive path tops out near the paper's
    ~800 MiB/s while an idle bus does not throttle the 1.5 GiB/s memcpy
    micro-benchmark.
    """

    total_bw: float = 2.8 * GiB
    traffic_multiplier: float = 1.8
    #: copies never drop below this share even under full ingress
    min_copy_bw: float = 0.6 * GiB
    #: window for estimating current NIC ingress rate
    rate_window: int = us(100)


@dataclass(frozen=True)
class IoatParams:
    """Intel I/OAT DMA engine model (§II-C, §IV-A)."""

    #: independent DMA channels on 5000X-era silicon (§V footnote)
    channels: int = 4
    #: CPU cost of submitting one copy descriptor (paper: ~350 ns)
    submit_cost: int = ns(350)
    #: engine-side fixed cost per descriptor (descriptor fetch + setup);
    #: with ``engine_bw`` this reproduces Fig. 7: ~2.4 GiB/s at 4 kB chunks,
    #: ~1.2 GiB/s at 1 kB, ~0.4 GiB/s at 256 B
    per_descriptor_cost: int = ns(530)
    #: asymptotic engine copy bandwidth (bytes/s)
    engine_bw: float = 3.6 * GiB
    #: CPU cost of polling completions once (in-order status read, §IV-A:
    #: "very cheap ... simple memory read")
    poll_cost: int = ns(50)
    #: latency between the engine finishing a descriptor and the host
    #: *observing* it on a synchronous wait: status writeback to host
    #: memory plus the cache miss on the status read.  This fixed tax is
    #: part of why synchronous offload of small (4 kB) copies loses to
    #: memcpy (§IV-C) while asynchronous offload does not care.
    completion_latency: int = ns(800)
    #: descriptor ring capacity per channel
    ring_size: int = 1024


@dataclass(frozen=True)
class HostParams:
    """One compute node: CPU complex, memory system, OS costs."""

    # -- topology (dual quad-core Clovertown) --
    n_sockets: int = 2
    dies_per_socket: int = 2
    cores_per_die: int = 2

    # -- OS / driver cost scalars --
    #: basic system-call cost (paper footnote: "close to 100 ns")
    syscall_cost: int = ns(100)
    #: cost to pin one page (get_user_pages per-page work)
    pin_page_cost: int = ns(400)
    #: fixed cost of a pin/registration call
    pin_base_cost: int = ns(900)
    #: hardirq entry + softirq switch CPU cost, paid once per NAPI batch
    interrupt_dispatch_cost: int = ns(800)
    #: BH per-packet base processing (skb handling, header decode, endpoint
    #: lookup, event write);  calibrated with the copy model so the no-I/OAT
    #: receive path saturates near 800 MiB/s (Fig. 3)
    bh_base_cost: int = ns(800)
    #: extra BH work for a large-message pull fragment (pull-handle lookup,
    #: destination page walk, accounting)
    bh_large_frag_extra: int = ns(1700)
    #: extra BH work for a medium fragment (partial-reassembly bookkeeping)
    bh_medium_frag_extra: int = ns(700)
    #: driver command-processing cost per ioctl-issued send/pull command
    driver_command_cost: int = ns(600)
    #: user-library per-call bookkeeping (request alloc, queue ops)
    library_call_cost: int = ns(150)
    #: user-library cost to match + consume one event from the ring
    event_process_cost: int = ns(120)

    # -- memory system --
    cache: CacheParams = field(default_factory=CacheParams)
    memcpy: MemcpyParams = field(default_factory=MemcpyParams)
    bus: BusParams = field(default_factory=BusParams)
    ioat: IoatParams = field(default_factory=IoatParams)

    @property
    def n_cores(self) -> int:
        return self.n_sockets * self.dies_per_socket * self.cores_per_die


@dataclass(frozen=True)
class NicParams:
    """10 G Ethernet NIC (Myri-10G in native Ethernet mode, myri10ge)."""

    #: link data rate in bytes/s (9953 Mbit/s)
    link_bw: float = units.TEN_GBE_BYTES_PER_SECOND
    #: MTU (jumbo frames)
    mtu: int = units.JUMBO_MTU
    #: rx ring entries
    rx_ring_size: int = 512
    #: one-way propagation + PHY latency (back-to-back fibre)
    propagation_delay: int = ns(300)
    #: NIC-side fixed per-frame processing (DMA setup, descriptor writeback)
    per_frame_cost: int = ns(200)
    #: driver transmit-path CPU cost per frame (xmit, doorbell)
    tx_frame_cost: int = ns(500)
    #: interrupt coalescing delay (myri10ge adaptive coalescing, low setting)
    interrupt_coalesce: int = ns(1000)
    #: Direct Cache Access (part of the I/OAT feature set, §II-C): the NIC
    #: pushes incoming headers toward the interrupt core's cache, so the BH
    #: decodes warm lines instead of missing on every packet
    dca_enabled: bool = False
    #: fraction of the BH base (header-processing) cost saved by DCA
    dca_savings: float = 0.25


@dataclass(frozen=True)
class MxParams:
    """Native MX / MXoE firmware baseline model (Fig. 3, 8, 11, 12).

    The native stack matches in firmware and deposits data directly in the
    application buffer (zero-copy receive): the host only sees a completion.
    """

    #: firmware per-fragment processing (NIC processor)
    firmware_frag_cost: int = ns(900)
    #: host-side send post cost (OS-bypass, PIO doorbell)
    host_post_cost: int = ns(250)
    #: host-side completion processing
    host_completion_cost: int = ns(300)
    #: rendezvous threshold of MX (bytes)
    rndv_threshold: int = 32 * KiB
    #: eager fragment payload
    eager_frag: int = 4 * KiB
    #: large fragment payload (jumbo wire)
    large_frag: int = 8 * KiB


@dataclass(frozen=True)
class OmxConfig:
    """Open-MX protocol and offload configuration (§II-B, §III, §IV-A)."""

    # -- message classes --
    #: max payload of a *small* message (single frame, copied twice)
    small_max: int = 128
    #: max payload of a *medium* message; beyond this a rendezvous is used
    medium_max: int = 32 * KiB
    #: medium fragment payload (paper §IV-C: "4 kB medium fragment copies")
    medium_frag: int = 4 * KiB
    #: large-message pull fragment payload (page-based skbuffs on a jumbo
    #: wire: two pages per frame)
    large_frag: int = 8 * KiB

    # -- pull protocol (§III-B footnote) --
    #: fragments per pull block
    pull_block_frags: int = 8
    #: pipelined outstanding blocks per large message
    pull_outstanding_blocks: int = 2
    #: retransmission timeout for lost pull replies
    retransmit_timeout: int = us(500)
    #: watchdog re-requests without progress before a pull is aborted with a
    #: typed :class:`~repro.core.errors.PullAborted` (the real stack also
    #: kills connections after a bounded retry budget); generous enough that
    #: bounded fault windows never trip it
    pull_max_retries: int = 32

    # -- I/OAT offload (§III-A, §IV-A thresholds) --
    #: master switch for the copy-offload path
    ioat_enabled: bool = False
    #: which :class:`~repro.core.backends.CopyBackend` executes offloaded
    #: BH receive copies: ``"ioat"`` (the paper's engine), ``"memcpy"``
    #: (never offload), ``"flextoe"`` (fine-grained parallel lanes),
    #: ``"spin"`` (in-NIC handlers) or ``"sgdma"`` (scatter-gather chains).
    #: See DESIGN.md §15; unknown names fail at backend creation.
    copy_backend: str = "ioat"
    #: offload only messages at least this long (paper: 64 kB)
    ioat_min_msg: int = 64 * KiB
    #: offload only fragments at least this long (paper: ~1 kB)
    ioat_min_frag: int = 1 * KiB
    #: optional synchronous I/OAT copy for medium fragments (§IV-C found
    #: this to be a performance loss; off by default, kept for the ablation)
    ioat_medium_sync: bool = False
    #: cap on skbuffs queued awaiting asynchronous copy completion (§III-B)
    max_pending_skbuffs: int = 64

    # -- shared-memory intra-node path (§III-C, Fig. 10) --
    shm_enabled: bool = True
    #: one-copy large threshold for local messages
    shm_large_threshold: int = 32 * KiB
    #: use I/OAT for local copies at or above this size when ioat_enabled
    shm_ioat_min: int = 32 * KiB

    # -- registration cache (Fig. 11) --
    regcache_enabled: bool = True

    # -- prediction mode of Fig. 3: process fragments but skip the BH copy.
    # Data is NOT delivered in this mode; it exists purely to reproduce the
    # "Open-MX ignoring BH receive copy" upper-bound curve.
    ignore_bh_copy: bool = False

    # -- extension (paper §VI future work): predictive sleep instead of busy
    # polling while waiting for synchronous I/OAT completions
    ioat_sleep_model: bool = False

    # -- extension (paper §III-C/§VI planned rework): match eager messages
    # in the driver so a single event per medium message is reported and
    # medium fragment copies can be overlapped like large ones
    kernel_matching: bool = False

    def validate(self) -> None:
        """Sanity-check threshold ordering; raises ValueError on nonsense."""
        if not (0 < self.small_max <= self.medium_max):
            raise ValueError("need 0 < small_max <= medium_max")
        if self.medium_frag <= 0 or self.large_frag <= 0:
            raise ValueError("fragment sizes must be positive")
        if self.pull_block_frags < 1 or self.pull_outstanding_blocks < 1:
            raise ValueError("pull pipeline must have >= 1 block of >= 1 frag")
        if self.ioat_min_frag < 1:
            raise ValueError("ioat_min_frag must be >= 1")
        if not self.copy_backend or not isinstance(self.copy_backend, str):
            raise ValueError("copy_backend must be a non-empty backend name")


@dataclass(frozen=True)
class HealthParams:
    """Degradation/recovery supervision (repro.health, DESIGN.md §12).

    Thresholds are sized so a *healthy* run never pays for them: breakers
    only act after descriptor failures, keepalives only fire after sustained
    silence well beyond the retransmit timeout, and backpressure watermarks
    sit below resource exhaustion points that already drop traffic.
    """

    # -- per-channel I/OAT circuit breaker --
    breaker_enabled: bool = True
    #: descriptor failures/stalls within ``breaker_window`` that trip a
    #: channel from CLOSED to OPEN (memcpy-only)
    breaker_threshold: int = 3
    #: sliding window over which failures are counted
    breaker_window: int = us(100)
    #: delay from trip (or failed probe) to the next half-open probe copy
    breaker_probe_interval: int = us(250)
    #: probe copy length; tiny, so a probe costs one descriptor
    breaker_probe_bytes: int = 256
    #: extra wait beyond the modeled probe service time before checking it
    breaker_probe_slack: int = us(5)

    # -- peer liveness --
    liveness_enabled: bool = True
    #: silence beyond which a keepalive is sent to a peer we have pending
    #: work with; also the liveness daemon's scan period
    keepalive_interval: int = units.ms(4)
    #: sustained silence after which the peer is declared dead (must exceed
    #: retransmit exhaustion: 8 retries x 500 us = 4 ms)
    peer_dead_timeout: int = units.ms(20)

    # -- receiver backpressure --
    backpressure_enabled: bool = True
    #: NACK-busy eager senders when free eager-ring slots drop to this level
    ring_low_watermark: int = 2
    #: NACK-busy rendezvous initiators beyond this many active pulls
    max_active_pulls: int = 64
    #: per-peer minimum interval between BUSY notifications
    busy_min_interval: int = us(200)

    # -- sender backoff (exponential, seeded jitter) --
    backoff_base: int = us(200)
    backoff_max_level: int = 6
    backoff_max_delay: int = units.ms(8)
    backoff_jitter: float = 0.25

    def validate(self) -> None:
        if self.breaker_threshold < 1 or self.breaker_window <= 0:
            raise ValueError("breaker needs threshold >= 1 over a positive window")
        if self.breaker_probe_bytes < 1 or self.breaker_probe_interval <= 0:
            raise ValueError("breaker probe must copy >= 1 byte at a positive interval")
        if self.peer_dead_timeout <= self.keepalive_interval:
            raise ValueError("peer_dead_timeout must exceed keepalive_interval")
        if self.ring_low_watermark < 0 or self.max_active_pulls < 1:
            raise ValueError("backpressure watermarks out of range")
        if self.backoff_base <= 0 or self.backoff_max_level < 1:
            raise ValueError("backoff needs a positive base and >= 1 level")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError("backoff_jitter must be within [0, 1]")


@dataclass(frozen=True)
class Platform:
    """Bundle of all parameter blocks describing the testbed."""

    host: HostParams = field(default_factory=HostParams)
    nic: NicParams = field(default_factory=NicParams)
    mx: MxParams = field(default_factory=MxParams)
    omx: OmxConfig = field(default_factory=OmxConfig)
    health: HealthParams = field(default_factory=HealthParams)

    def with_omx(self, **overrides) -> "Platform":
        """Return a copy with Open-MX config fields overridden."""
        return replace(self, omx=replace(self.omx, **overrides))

    def with_health(self, **overrides) -> "Platform":
        """Return a copy with health supervision fields overridden."""
        return replace(self, health=replace(self.health, **overrides))


def clovertown_5000x(**omx_overrides) -> Platform:
    """The paper's testbed: dual Xeon E5345 + Intel 5000X + Myri-10G.

    Keyword arguments override :class:`OmxConfig` fields, e.g.
    ``clovertown_5000x(ioat_enabled=True)``.
    """
    plat = Platform()
    if omx_overrides:
        plat = plat.with_omx(**omx_overrides)
    plat.omx.validate()
    plat.health.validate()
    return plat
