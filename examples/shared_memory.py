#!/usr/bin/env python
"""Intra-node communication: the one-copy shm path and I/OAT (Fig. 10).

Ping-pongs a range of message sizes between two processes on one node in
the three configurations of the paper's Fig. 10:

* both processes on a shared-L2 die, CPU copies (fast while cached);
* processes on different sockets, CPU copies (flat ~1.2 GiB/s);
* I/OAT synchronous offload (flat ~2.3 GiB/s beyond 32 kB).

Run:  python examples/shared_memory.py
"""

from repro.cluster.testbed import build_single_node
from repro.units import KiB, MiB
from repro.workloads import run_shm_pingpong

SIZES = [4 * KiB, 64 * KiB, 256 * KiB, 1 * MiB, 4 * MiB, 16 * MiB]


def main() -> None:
    print(f"{'size':>8} | {'same die':>10} | {'cross socket':>12} | {'I/OAT':>10}   (MiB/s)")
    print("-" * 56)
    for size in SIZES:
        same = run_shm_pingpong(build_single_node(), size, "same_die")
        cross = run_shm_pingpong(build_single_node(), size, "cross_socket")
        ioat = run_shm_pingpong(
            build_single_node(ioat_enabled=True), size, "same_die"
        )
        label = f"{size >> 20}MiB" if size >= MiB else f"{size >> 10}KiB"
        print(f"{label:>8} | {same:>10.0f} | {cross:>12.0f} | {ioat:>10.0f}")
    print("\nPaper: ~6 GiB/s shared-cache plateau, ~1.2 GiB/s across sockets,")
    print("       ~2.3 GiB/s with I/OAT — ~80 % above the uncached CPU copy.")


if __name__ == "__main__":
    main()
