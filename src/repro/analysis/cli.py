"""Command-line lint driver.

Usage::

    python -m repro.analysis src/repro tests
    repro-lint --select SKB001,DMA001 src/repro
    repro-lint --list-rules

Exit status 0 when clean, 1 when any finding survives (suppression via
``# noqa: CODE`` pragmas), 2 on usage errors.
"""

from __future__ import annotations

import sys
from argparse import ArgumentParser
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.lint import all_rules, lint_paths


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = ArgumentParser(
        prog="repro-lint",
        description="simulator-aware lint for the Open-MX/I-OAT repro",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )
    args = parser.parse_args(argv)

    registry = all_rules()
    if args.list_rules:
        for code in sorted(registry):
            print(f"{code}  {registry[code].summary}")
        return 0

    select = None
    if args.select:
        select = [c.strip().upper() for c in args.select.split(",") if c.strip()]
        unknown = [c for c in select if c not in registry]
        if unknown:
            print(f"unknown rule code(s): {', '.join(unknown)}", file=sys.stderr)
            return 2

    findings, n_files = lint_paths([Path(p) for p in args.paths], select)
    for finding in findings:
        print(finding.format())
    status = "FAILED" if findings else "ok"
    print(f"{status}: {len(findings)} finding(s) in {n_files} file(s)",
          file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
