"""Canonical traced scenarios shared by the examples and the CLI.

The fig5/fig6 scenario receives one multi-fragment large message — memcpy
path or I/OAT offload path — with the receiver host's recorder (and the
data direction of the wire) enabled, and returns the populated recorder.
``examples/offload_timeline.py`` renders it as ASCII; ``repro-obs export``
writes it as Perfetto JSON.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.units import KiB

if TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.tracing import TraceRecorder

#: default message size: 10 large fragments (8 KiB each) = two pull blocks
FIG56_SIZE = 80 * KiB


def run_fig56_scenario(ioat: bool, size: int = FIG56_SIZE,
                       max_spans: Optional[int] = None) -> "TraceRecorder":
    """One traced large-message receive; returns the receiver's recorder."""
    from repro.cluster.testbed import build_testbed

    tb = build_testbed(ioat_enabled=ioat)
    receiver = tb.hosts[1]
    receiver.trace.enabled = True
    if max_spans is not None:
        receiver.trace.set_max_spans(max_spans)
    # The data flows node0 -> node1: give the forward wire direction the
    # receiver's recorder so serialized frames appear on a "wire:" lane.
    tb.link.a_to_b.trace = receiver.trace

    ep0 = tb.open_endpoint(0, 0)
    ep1 = tb.open_endpoint(1, 0)
    core0, core1 = tb.user_core(0), tb.user_core(1)
    sbuf = ep0.space.alloc(size)
    rbuf = ep1.space.alloc(size)
    sbuf.fill_pattern(3)
    done = tb.sim.event()

    def sender():
        req = yield from ep0.isend(core0, ep1.addr, 0x77, sbuf)
        yield from ep0.wait(core0, req)

    def recv():
        req = yield from ep1.irecv(core1, 0x77, ~0, rbuf)
        yield from ep1.wait(core1, req)
        done.succeed()

    tb.sim.process(sender())
    tb.sim.process(recv())
    tb.sim.run_until(done)
    return receiver.trace
