"""Tests for the workload generators (streams, NAS IS, vectored copies)."""

import pytest

from repro import build_testbed
from repro.cluster.testbed import build_single_node
from repro.mpi import create_world
from repro.units import KiB, MiB
from repro.workloads import (
    measure_vectored_copy,
    run_nas_is,
    run_stream_usage,
    run_vectored_transfer,
)


class TestStreamUsage:
    def test_reports_positive_usage(self):
        tb = build_testbed()
        u = run_stream_usage(tb, 1 * MiB, iterations=4, warmup=1)
        assert u.throughput_mib_s > 300
        assert 0 < u.bh_pct <= 105
        assert u.total_pct >= u.bh_pct

    def test_bh_dominates_without_ioat(self):
        tb = build_testbed()
        u = run_stream_usage(tb, 4 * MiB, iterations=4, warmup=1)
        assert u.bh_pct > u.driver_pct
        assert u.bh_pct > u.user_pct

    def test_ioat_reduces_bh_usage(self):
        plain = run_stream_usage(build_testbed(), 4 * MiB, iterations=4, warmup=1)
        ioat = run_stream_usage(build_testbed(ioat_enabled=True), 4 * MiB,
                                iterations=4, warmup=1)
        assert ioat.bh_pct < plain.bh_pct - 15
        assert ioat.throughput_mib_s > plain.throughput_mib_s


class TestNasIs:
    @pytest.mark.parametrize("stack", ["omx", "mx"])
    def test_kernel_sorts(self, stack):
        tb = build_testbed(stacks=stack)
        comm = create_world(tb, ppn=2)
        res = run_nas_is(tb, comm, keys_per_rank=1 << 12, iterations=1)
        assert res.sorted_ok
        assert res.total_time_us > 0
        assert res.comm_time_us <= res.total_time_us

    def test_more_keys_take_longer(self):
        def run(keys):
            tb = build_testbed()
            comm = create_world(tb, ppn=1)
            return run_nas_is(tb, comm, keys_per_rank=keys, iterations=1)

        a = run(1 << 12)
        b = run(1 << 15)
        assert b.total_time_us > a.total_time_us


class TestVectoredCopy:
    def test_small_segments_favour_memcpy(self):
        tb = build_single_node()
        r = measure_vectored_copy(tb.hosts[0], 256 * KiB, 256)
        assert r.memcpy_gib_s > r.ioat_gib_s

    def test_page_segments_favour_ioat(self):
        tb = build_single_node()
        r = measure_vectored_copy(tb.hosts[0], 256 * KiB, 4 * KiB)
        assert r.ioat_gib_s > r.memcpy_gib_s

    def test_submission_cost_scales_with_segments(self):
        tb = build_single_node()
        fine = measure_vectored_copy(tb.hosts[0], 64 * KiB, 512)
        coarse = measure_vectored_copy(tb.hosts[0], 64 * KiB, 4 * KiB)
        assert fine.ioat_submit_ns == 8 * coarse.ioat_submit_ns

    def test_page_straddling_segments_priced_per_descriptor(self):
        """The regression this pins: the model used to price one descriptor
        per segment, but ``copy_fragment`` splits a page-straddling segment
        into one descriptor per page-aligned chunk.  3 kB segments into a
        contiguous destination cycle through offsets 0/3072/2048/1024, so
        every cycle of four segments costs 1+2+2+1 = 6 descriptors."""
        tb = build_single_node()
        r = measure_vectored_copy(tb.hosts[0], 256 * KiB, 3072)
        assert r.n_segments == 86
        # 21 full cycles (84 segments, 126 descriptors) + one aligned 3 kB
        # segment + one 1 kB tail that stays inside its page: 128 total.
        assert r.ioat_descriptors == 128
        params = tb.hosts[0].params
        assert r.ioat_submit_ns == 128 * params.ioat.submit_cost
        # The aligned model would have said 86 descriptors — strictly less.
        assert r.ioat_descriptors > r.n_segments

    def test_aligned_segments_one_descriptor_each(self):
        tb = build_single_node()
        r = measure_vectored_copy(tb.hosts[0], 256 * KiB, 2 * KiB)
        assert r.n_segments == 128
        assert r.ioat_descriptors == 128  # power-of-2 ≤ page: never straddles


class TestVectoredTransfer:
    def test_event_loop_matches_backend(self):
        tb = build_single_node(ioat_enabled=True)
        r = run_vectored_transfer(tb, 64 * KiB, 4 * KiB)
        assert r.backend == "ioat"
        assert r.frags_offloaded > 0
        assert r.descriptors_completed >= r.frags_offloaded
        assert r.throughput_mib_s > 0

    def test_memcpy_backend_never_offloads(self):
        tb = build_single_node(copy_backend="memcpy")
        r = run_vectored_transfer(tb, 64 * KiB, 4 * KiB)
        assert r.frags_offloaded == 0
        assert r.frags_memcpy > 0
        assert r.descriptors_completed == 0

    def test_straddling_segments_complete_more_descriptors(self):
        tb = build_single_node(ioat_enabled=True, ioat_min_msg=1,
                               ioat_min_frag=1)
        r = run_vectored_transfer(tb, 64 * KiB, 3072)
        # Page-straddling 3 kB fragments split: more descriptors than
        # fragments — the execution-path fact the analytic model now prices.
        assert r.descriptors_completed > r.frags_offloaded
