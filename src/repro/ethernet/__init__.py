"""Generic Ethernet substrate: the layer Open-MX is built on.

Models the parts of the Linux Ethernet stack that shape the paper's problem:

* :mod:`~repro.ethernet.frame` — frames and wire-size arithmetic.
* :mod:`~repro.ethernet.skbuff` — socket buffers: kernel-page-backed for
  receive, page-fragment (zero-copy) for transmit, with a leak-checked pool.
* :mod:`~repro.ethernet.link` — a full-duplex point-to-point link with
  per-direction serialization, propagation delay and optional fault
  injection (frame drops).
* :mod:`~repro.ethernet.nic` — the NIC: a ring of pre-posted receive
  skbuffs filled by DMA ("the driver cannot predict which packet will
  arrive next", §II-B — the architectural reason receive copies exist),
  interrupt coalescing, and a zero-copy transmit path.
* :mod:`~repro.ethernet.driver` — softirq bottom-half dispatch: received
  skbuffs are handed to per-ethertype protocol handlers on the interrupt
  core.
"""

from repro.ethernet.frame import EthernetFrame
from repro.ethernet.link import Link, LossInjector
from repro.ethernet.nic import Nic
from repro.ethernet.skbuff import Skbuff, SkbuffPool
from repro.ethernet.driver import SoftirqEngine

__all__ = [
    "EthernetFrame",
    "Link",
    "LossInjector",
    "Nic",
    "Skbuff",
    "SkbuffPool",
    "SoftirqEngine",
]
