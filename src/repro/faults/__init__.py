"""Deterministic fault-injection campaigns for the Open-MX stack.

The reliability machinery of §III-B (retransmission, cleanup on timeout,
duplicate filtering) only earns trust when it is exercised — and a lossy
wire exercised by hand is exactly the kind of test that silently rots.
This package composes seeded, schedule-driven *fault plans* out of the
low-level hooks the component layers expose:

* frame loss / duplication / reordering / corruption on a
  :class:`~repro.ethernet.link.Link` direction (the generalized
  :class:`~repro.ethernet.link.FrameFaultHook`);
* switch egress-queue overflow windows
  (:attr:`~repro.ethernet.switch.EthernetSwitch.fault`);
* NIC receive-ring exhaustion windows
  (:attr:`~repro.ethernet.nic.Nic.rx_fault`);
* I/OAT channel stall and hard failure
  (:meth:`~repro.ioat.channel.DmaChannel.stall` /
  :meth:`~repro.ioat.channel.DmaChannel.fail`) with graceful memcpy
  fallback in the offload manager.

A *campaign* runs a matrix of (workload × message size × fault plan)
cells, each in a fresh testbed with runtime sanitizers attached, and
asserts the reliability contract: every transfer either completes or
surfaces a typed :class:`~repro.core.errors.TransferError`; every skbuff,
DMA cookie and pinned page drains; the report is bit-identical run to run.
"""

from repro.faults.campaign import (
    CampaignSpec,
    quick_campaign_spec,
    run_campaign,
    run_cell,
    write_report,
)
from repro.faults.injectors import ArmedPlan, NoTrunksError, arm_plan
from repro.faults.plan import (
    FabricDegradeSpec,
    FabricFaultSpec,
    FabricFlapSpec,
    FabricLossySpec,
    FaultPlan,
    IoatFaultSpec,
    LinkFaultSpec,
    NicFaultSpec,
    RankFaultSpec,
    SwitchFaultSpec,
    flap_windows,
    soak_plans,
    standard_plans,
)
from repro.faults.soak import (
    FabricSoakSpec,
    LivelockError,
    SoakSpec,
    fabric_soak_suite,
    run_fabric_soak,
    run_fabric_soak_suite,
    run_soak,
    run_soak_suite,
    soak_suite,
)

__all__ = [
    "ArmedPlan",
    "CampaignSpec",
    "FabricDegradeSpec",
    "FabricFaultSpec",
    "FabricFlapSpec",
    "FabricLossySpec",
    "FabricSoakSpec",
    "FaultPlan",
    "IoatFaultSpec",
    "LinkFaultSpec",
    "LivelockError",
    "NicFaultSpec",
    "NoTrunksError",
    "RankFaultSpec",
    "SoakSpec",
    "SwitchFaultSpec",
    "arm_plan",
    "fabric_soak_suite",
    "flap_windows",
    "quick_campaign_spec",
    "run_campaign",
    "run_cell",
    "run_fabric_soak",
    "run_fabric_soak_suite",
    "run_soak",
    "run_soak_suite",
    "soak_plans",
    "soak_suite",
    "standard_plans",
    "write_report",
]
