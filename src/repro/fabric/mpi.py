"""Scalable rank launcher: `repro.mpi.collectives` over a FabricNetwork.

A :class:`FabricRank` implements the slice of the
:class:`~repro.mpi.comm.Rank` protocol the collective generators consume —
``isend/irecv/send/recv/sendrecv/wait`` (generators), ``core.execute``,
``space.alloc``, ``rank``/``size``/``sim`` — so barrier, bcast, allreduce,
alltoall and reduce_scatter run **unmodified** over a 1024-host fabric.

Memory scaling (ROADMAP item 1's "no per-host object blowup"):

* no :class:`~repro.cluster.host.Host` graphs — per-chunk costs come from
  the network's shared :class:`~repro.fabric.cost.CostTable`;
* rank buffers are :class:`_PhantomRegion`\\ s backed by one shared,
  grow-on-demand numpy scratch array per world (the cost model is
  content-blind, and the collectives' reduction arithmetic tolerates
  aliased storage — value checking belongs to the full-model testbeds);
* CPU accounting is aggregated per category in one dict, not per core.

Failure propagation: a message that loses its last path (or is dropped by
an armed fault) fails both sides' requests with the network's typed error
(:class:`~repro.core.errors.FabricPartitioned` /
:class:`~repro.core.errors.DeliveryFailed`); the error is thrown into the
waiting rank process and surfaces out of :meth:`FabricWorld.run_spmd`.

Crash-stop rank death (DESIGN.md §17): :meth:`FabricWorld.kill_rank`
interrupts the victim's process (the supervisor wrapper swallows exactly
that interrupt, so the rank vanishes instead of failing the SPMD join)
and marks its host dead in the network so in-flight chunks drain.  A
grace window later the liveness monitor *declares* the death: the current
collective epoch is poisoned, every pending posted request fails with the
typed :class:`~repro.core.errors.RankDead` all at once, and any further
send/receive in the poisoned epoch fails immediately — survivors always
unwind, never livelock.  Recovery (:meth:`FabricWorld.join_recovery`)
advances the epoch; stale epoch-N traffic still in flight is dropped by
timestamp at completion, keeping :meth:`finish` sanitizer-clean.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Generator, Optional

import numpy as np

from repro.core.errors import RankDead
from repro.fabric.cost import DEFAULT_CELL
from repro.fabric.network import FabricNetwork, _Message
from repro.fabric.spec import TopologySpec
from repro.obs.registry import MetricsRegistry
from repro.params import Platform
from repro.simkernel import Simulator
from repro.simkernel.errors import Interrupted
from repro.simkernel.event import AllOf, Event

#: interrupt cause marking a simulated crash-stop (the supervisor wrapper
#: in :meth:`FabricWorld.run_spmd` swallows exactly this cause)
CRASH_STOP = "fabric-crash-stop"


class _PhantomRegion:
    """A buffer with shared backing storage (cost-model-only payloads)."""

    __slots__ = ("world", "nbytes")

    def __init__(self, world: "FabricWorld", nbytes: int):
        self.world = world
        self.nbytes = nbytes

    def __len__(self) -> int:
        return self.nbytes

    def read(self, offset: int = 0, length: Optional[int] = None) -> np.ndarray:
        if length is None:
            length = self.nbytes - offset
        if offset < 0 or length < 0 or offset + length > self.nbytes:
            raise ValueError("read outside region")
        return self.world.scratch(length)[:length]

    def write(self, offset: int, payload) -> None:  # storage is shared
        n = len(payload)
        if offset < 0 or offset + n > self.nbytes:
            raise ValueError("write outside region")

    def fill_pattern(self, seed: int = 0) -> None:
        pass


class _FabricSpace:
    """The ``rank.space`` protocol: an allocator of phantom regions."""

    __slots__ = ("world",)

    def __init__(self, world: "FabricWorld"):
        self.world = world

    def alloc(self, length: int, align: int = 4096,
              fill: Optional[int] = None) -> _PhantomRegion:
        if length < 0:
            raise ValueError("negative allocation")
        return _PhantomRegion(self.world, max(length, 1))


class _FabricCore:
    """The ``rank.core`` protocol: timed work, aggregate accounting."""

    __slots__ = ("world",)

    def __init__(self, world: "FabricWorld"):
        self.world = world

    def execute(self, duration: int, category: str) -> Generator:
        if duration > 0:
            yield int(duration)
        cpu = self.world.cpu
        cpu[category] = cpu.get(category, 0) + duration
        return self.world.sim.now

    busy = execute


class _FabricReq:
    """One outstanding fabric send or receive."""

    __slots__ = ("done", "error", "event", "msg")

    def __init__(self):
        self.done = False
        self.error: Optional[Exception] = None
        self.event: Optional[Event] = None
        self.msg: Optional[_Message] = None


class FabricRank:
    """One rank of a fabric world (duck-typed ``repro.mpi.comm.Rank``)."""

    __slots__ = ("world", "rank", "host", "core", "space",
                 "_coll_seq", "_scratch", "_imb_bufs")

    def __init__(self, world: "FabricWorld", rank: int, host: str):
        self.world = world
        self.rank = rank
        self.host = host
        self.core = world.core
        self.space = world.space

    @property
    def size(self) -> int:
        return self.world.size

    @property
    def sim(self) -> Simulator:
        return self.world.sim

    # -- point-to-point ----------------------------------------------------

    def isend(self, dest: int, region, offset: int = 0,
              length: Optional[int] = None, tag: int = 0) -> Generator:
        world = self.world
        if world._poisoned or dest in world.dead:
            # Poisoned epoch (or a declared-dead peer): fail locally, with
            # no message entering the network — every epoch-N message then
            # has t_start <= the declaration time, which is what makes the
            # stale-drop rule in _on_msg_complete airtight.
            req = _FabricReq()
            world._complete(req, world._rank_dead_error("send refused"))
            return req
        n = (len(region) - offset) if length is None else length
        yield from self.core.execute(world.cost.send_cpu(n), "fabric_send")
        req = _FabricReq()
        msg = world.net.send(self.host, world.hosts[dest], tag, n)
        req.msg = msg
        msg.user = req
        if msg.failed:
            world._complete(req, msg.error)
        elif msg.tx_remaining == 0:
            req.done = True
        else:
            msg.on_tx = lambda: world._complete(req)
        return req

    def irecv(self, source: int, region, offset: int = 0,
              length: Optional[int] = None, tag: int = 0) -> Generator:
        world = self.world
        req = _FabricReq()
        if world._poisoned or source in world.dead:
            world._complete(req, world._rank_dead_error("receive refused"))
            return req
        key = (self.rank, source, tag)
        q = world._arrived.get(key)
        if q:
            msg = q.popleft()
            if not q:
                del world._arrived[key]
            req.msg = msg
            world._complete(req, msg.error)
        else:
            world._posted.setdefault(key, deque()).append(req)
        return req
        yield  # pragma: no cover - makes this a generator like P2P.irecv

    def wait(self, req: _FabricReq) -> Generator:
        if not req.done:
            if req.event is None:
                req.event = self.world.sim.event("fabric_req")
            yield req.event
        if req.error is not None:
            raise req.error
        return req

    def send(self, dest: int, region, offset: int = 0, length=None,
             tag: int = 0) -> Generator:
        req = yield from self.isend(dest, region, offset, length, tag)
        yield from self.wait(req)
        return req

    def recv(self, source: int, region, offset: int = 0, length=None,
             tag: int = 0) -> Generator:
        req = yield from self.irecv(source, region, offset, length, tag)
        yield from self.wait(req)
        return req

    def sendrecv(self, dest: int, sregion, source: int, rregion,
                 length=None, stag: int = 0, rtag: int = 0) -> Generator:
        rreq = yield from self.irecv(source, rregion, 0, length, rtag)
        sreq = yield from self.isend(dest, sregion, 0, length, stag)
        yield from self.wait(sreq)
        yield from self.wait(rreq)
        return sreq, rreq

    # -- collectives (the unmodified generators) ---------------------------

    def barrier(self):
        from repro.mpi import collectives

        return collectives.barrier(self)

    def bcast(self, region, root: int = 0, length=None):
        from repro.mpi import collectives

        return collectives.bcast(self, region, root, length)

    def reduce(self, sendbuf, recvbuf, root: int = 0, length=None):
        from repro.mpi import collectives

        return collectives.reduce(self, sendbuf, recvbuf, root, length)

    def allreduce(self, sendbuf, recvbuf, length=None, algo: str = "auto"):
        from repro.mpi import collectives

        return collectives.allreduce(self, sendbuf, recvbuf, length,
                                     algo=algo)

    def reduce_scatter(self, sendbuf, recvbuf, block_length):
        from repro.mpi import collectives

        return collectives.reduce_scatter(self, sendbuf, recvbuf, block_length)

    def allgather(self, sendbuf, recvbuf, block_length):
        from repro.mpi import collectives

        return collectives.allgather(self, sendbuf, recvbuf, block_length)

    def alltoall(self, sendbuf, recvbuf, block_length):
        from repro.mpi import collectives

        return collectives.alltoall(self, sendbuf, recvbuf, block_length)


class FabricWorld:
    """All ranks of one fabric plus the shared scaling machinery."""

    def __init__(self, spec: TopologySpec, platform: Optional[Platform] = None,
                 backend: str = "memcpy", cell: int = DEFAULT_CELL,
                 sim: Optional[Simulator] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 egress_limit_cells: Optional[int] = None):
        self.net = FabricNetwork(spec, platform, backend, cell, sim=sim,
                                 metrics=metrics,
                                 egress_limit_cells=egress_limit_cells)
        self.sim = self.net.sim
        self.cost = self.net.cost
        self.spec = spec
        self.hosts: list[str] = list(spec.hosts)
        self.host_rank = {h: i for i, h in enumerate(self.hosts)}
        self.core = _FabricCore(self)
        self.space = _FabricSpace(self)
        #: aggregate simulated CPU ticks by category (all ranks)
        self.cpu: dict[str, int] = {}
        self._scratch = np.zeros(64, dtype=np.uint8)
        #: (dst_rank, src_rank, tag) -> deque of posted _FabricReq
        self._posted: dict[tuple, deque] = {}
        #: (dst_rank, src_rank, tag) -> deque of arrived _Message
        self._arrived: dict[tuple, deque] = {}
        self.ranks = [FabricRank(self, i, h) for i, h in enumerate(self.hosts)]
        self.net.on_complete = self._on_msg_complete
        # -- crash-stop state (DESIGN.md §17) --
        #: declared-dead rank ids
        self.dead: set[int] = set()
        #: collective epoch; advanced by the recovery barrier after a death
        self.epoch = 0
        #: stale epoch-N messages dropped after a declaration
        self.stale_drained = 0
        self._poisoned = False
        self._declare_time: Optional[int] = None
        self._kill_time: Optional[int] = None
        self._last_dead: Optional[tuple[int, str, int]] = None
        #: the rank liveness monitor (created lazily on the first kill;
        #: install one up front to customize grace/tracing)
        self.liveness = None
        self._procs: dict[int, object] = {}

    @property
    def size(self) -> int:
        return len(self.ranks)

    def scratch(self, nbytes: int) -> np.ndarray:
        """The shared backing array, grown (4-byte aligned) on demand."""
        if self._scratch.size < nbytes:
            grown = max(nbytes, 2 * self._scratch.size)
            self._scratch = np.zeros((grown + 3) & ~3, dtype=np.uint8)
        return self._scratch

    # -- completion plumbing ----------------------------------------------

    def _complete(self, req: _FabricReq, error: Optional[Exception] = None) -> None:
        if req.done:
            return
        req.done = True
        req.error = error
        ev = req.event
        if ev is not None and not ev.triggered:
            if error is not None:
                ev.fail(error)
            else:
                ev.succeed(req)

    def _on_msg_complete(self, msg: _Message) -> None:
        if msg.error is not None and msg.user is not None:
            self._complete(msg.user, msg.error)  # the sender's request
        key = (self.host_rank[msg.dst], self.host_rank[msg.src], msg.tag)
        q = self._posted.get(key)
        if q:
            req = q.popleft()
            if not q:
                del self._posted[key]
            req.msg = msg
            self._complete(req, msg.error)
            return
        if (self._declare_time is not None
                and msg.t_start <= self._declare_time):
            # Epoch-stale: started before the latest death declaration, so
            # its receive (if any) was failed by the declaration wave.
            # Poisoned sends never enter the network, so this timestamp
            # test is exact — epoch N+1 traffic always starts later.
            self.stale_drained += 1
            return
        self._arrived.setdefault(key, deque()).append(msg)

    # -- crash-stop rank death ---------------------------------------------

    def _rank_dead_error(self, detail: str = "") -> RankDead:
        rank, host, at = (self._last_dead if self._last_dead is not None
                          else (-1, "", self.sim.now))
        return RankDead(rank, host=host, at=at, detail=detail)

    def survivors(self) -> list[int]:
        """Sorted rank ids not declared dead."""
        return [i for i in range(self.size) if i not in self.dead]

    def kill_rank(self, rank: int, at: Optional[int] = None) -> None:
        """Crash-stop a rank, now or at absolute time ``at``.

        The victim's process is interrupted (it vanishes without failing
        the SPMD join), its host is marked dead in the network so
        in-flight chunks drain with :class:`RankDead`, and the liveness
        monitor schedules the declaration wave a grace window later.
        """
        if not 0 <= rank < self.size:
            raise ValueError(f"no rank {rank} in a {self.size}-rank world")
        if at is not None and at > self.sim.now:
            self.sim.call_at(at, self._kill_rank_now, rank)
        else:
            self._kill_rank_now(rank)

    def _kill_rank_now(self, rank: int) -> None:
        if rank in self.dead:
            return
        if self.liveness is None:
            from repro.fabric.resilience import FabricLivenessMonitor

            self.liveness = FabricLivenessMonitor(self)
        r = self.ranks[rank]
        self.dead.add(rank)
        self._kill_time = self.sim.now
        self._last_dead = (rank, r.host, self.sim.now)
        self.net.mark_host_dead(r.host, rank)
        proc = self._procs.get(rank)
        if proc is not None and proc.is_alive:
            proc.interrupt(CRASH_STOP)
        self.liveness.rank_killed(rank, r.host)

    def _declare_rank_dead(self, rank: int, host: str) -> int:
        """The declaration wave: poison the epoch, fail everything pending.

        Every posted receive of every surviving rank fails with
        :class:`RankDead` — all at once, in sorted key order — so each
        blocked survivor unwinds deterministically.  The dead rank's own
        receives are dropped without touching their events (its process is
        gone; resuming it would be a kernel error).  Returns the number of
        survivor requests failed.
        """
        at = self._kill_time if self._kill_time is not None else self.sim.now
        self._poisoned = True
        self._declare_time = self.sim.now
        failed = 0
        for key in sorted(self._posted):
            for req in self._posted[key]:
                if key[0] in self.dead:
                    req.done = True
                    req.error = self._rank_dead_error("owner crashed")
                    self.stale_drained += 1
                else:
                    self._complete(req, RankDead(
                        rank, host=host, at=at,
                        detail="pending receive at declaration"))
                    failed += 1
        self._posted.clear()
        # Receive-side traffic that already arrived dies with the epoch.
        for key in sorted(self._arrived):
            self.stale_drained += len(self._arrived[key])
        self._arrived.clear()
        return failed

    def join_recovery(self, rank: FabricRank) -> Generator:
        """Per-rank recovery barrier after a :class:`RankDead`.

        Each survivor sleeps past the declaration wave plus one grace
        window, then the first waker lifts the poison and advances the
        epoch (idempotent).  Per-rank ordering is all the epoch-scoped
        tags need — survivors may enter the new epoch at different times.
        """
        grace = (self.liveness.grace if self.liveness is not None else 0)
        kill = self._kill_time if self._kill_time is not None else self.sim.now
        target = kill + 2 * grace + 1
        while self.sim.now < target:
            yield int(target - self.sim.now)
        if self._poisoned:
            self._poisoned = False
            self.epoch += 1
        return None

    # -- running -----------------------------------------------------------

    def _supervised(self, body: Callable[[FabricRank], Generator],
                    rank: FabricRank) -> Generator:
        """Run ``body(rank)``, swallowing exactly the crash-stop interrupt
        (a killed rank vanishes; any other interrupt is somebody's bug)."""
        try:
            yield from body(rank)
        except Interrupted as exc:
            if exc.cause is not CRASH_STOP:
                raise
        return None

    def run_spmd(self, body: Callable[[FabricRank], Generator],
                 max_events: Optional[int] = None) -> list:
        """Run ``body(rank)`` on every rank; block until all complete."""
        procs = []
        for r in self.ranks:
            if r.rank in self.dead:
                continue
            proc = self.sim.process(self._supervised(body, r),
                                    name=f"frank{r.rank}")
            self._procs[r.rank] = proc
            procs.append(proc)
        all_done = AllOf(self.sim, procs)
        return self.sim.run_until(all_done, max_events=max_events)

    def finish(self) -> None:
        """Drain the event queues and run the teardown sanitizers."""
        self.sim.run()
        self.sim.finish()
        leftover = sorted(k for k, q in self._arrived.items() if q)
        if leftover:
            raise AssertionError(
                f"fabric teardown: unconsumed messages for {leftover[:8]}")


def launch_fabric_world(spec: TopologySpec, platform: Optional[Platform] = None,
                        backend: str = "memcpy", cell: int = DEFAULT_CELL,
                        sim: Optional[Simulator] = None,
                        egress_limit_cells: Optional[int] = None) -> FabricWorld:
    """Build a world over ``spec``; one rank per host, lazily-built ports."""
    return FabricWorld(spec, platform=platform, backend=backend, cell=cell,
                       sim=sim, egress_limit_cells=egress_limit_cells)
