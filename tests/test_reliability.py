"""Reliability: seqnum sessions, retransmission, and loss injection on the
wire — including the pull protocol's §III-B timeout path."""

import pytest

from repro import build_testbed
from repro.core.reliability import MAX_RETRIES, RxSession, TxSession
from repro.ethernet.link import LossInjector
from repro.mx.wire import EndpointAddr, MxPacket, PktType
from repro.simkernel import Simulator
from repro.units import KiB, MiB, us

A = EndpointAddr(1, 0)
B = EndpointAddr(2, 0)


def mkpkt(ptype=PktType.SMALL):
    return MxPacket(ptype=ptype, src=A, dst=B)


class TestTxSession:
    def test_stamp_assigns_increasing_seqnums(self):
        sim = Simulator()
        tx = TxSession(sim, B, resend=lambda p: None, timeout=us(100))
        seqs = [tx.stamp(mkpkt()) for _ in range(4)]
        assert seqs == [0, 1, 2, 3]
        assert len(tx.pending) == 4

    def test_cumulative_ack_clears_prefix(self):
        sim = Simulator()
        tx = TxSession(sim, B, resend=lambda p: None, timeout=us(100))
        for _ in range(4):
            tx.stamp(mkpkt())
        tx.on_ack(2)
        assert sorted(tx.pending) == [3]

    def test_retransmit_fires_until_acked(self):
        sim = Simulator()
        resent = []
        tx = TxSession(sim, B, resend=resent.append, timeout=us(50))
        pkt = mkpkt()
        tx.stamp(pkt)
        sim.run(until=us(120))
        assert len(resent) >= 1
        tx.on_ack(0)
        n = len(resent)
        sim.run(until=us(500))
        assert len(resent) == n  # no more after the ack

    def test_gives_up_after_max_retries(self):
        sim = Simulator()
        tx = TxSession(sim, B, resend=lambda p: None, timeout=us(10))
        pkt = mkpkt()
        tx.stamp(pkt)
        sim.run(until=us(10) * (MAX_RETRIES + 5))
        assert pkt in tx.dead
        assert not tx.pending

    def test_watch_ack_fires_on_ack(self):
        sim = Simulator()
        tx = TxSession(sim, B, resend=lambda p: None, timeout=us(100))
        tx.stamp(mkpkt())
        fired = []
        tx.watch_ack(0, lambda: fired.append(sim.now))
        assert not fired
        tx.on_ack(0)
        assert fired

    def test_watch_ack_immediate_when_already_acked(self):
        sim = Simulator()
        tx = TxSession(sim, B, resend=lambda p: None, timeout=us(100))
        tx.stamp(mkpkt())
        tx.on_ack(0)
        fired = []
        tx.watch_ack(0, lambda: fired.append(True))
        assert fired


class TestRxSession:
    def _rx(self, sim):
        acks = []
        rx = RxSession(sim, B, A, lambda o, p, c: acks.append((o, p, c)))
        return rx, acks

    def test_accepts_new_rejects_duplicate(self):
        sim = Simulator()
        rx, _ = self._rx(sim)
        pkt = mkpkt()
        pkt.seqnum = 0
        assert rx.accept(pkt)
        assert not rx.accept(pkt)
        assert rx.duplicates == 1

    def test_cumulative_advances_in_order(self):
        sim = Simulator()
        rx, _ = self._rx(sim)
        for seq in (0, 1, 2):
            p = mkpkt()
            p.seqnum = seq
            rx.accept(p)
        assert rx.cumulative == 2

    def test_out_of_order_held_until_gap_fills(self):
        sim = Simulator()
        rx, _ = self._rx(sim)
        p2 = mkpkt(); p2.seqnum = 2
        p0 = mkpkt(); p0.seqnum = 0
        p1 = mkpkt(); p1.seqnum = 1
        assert rx.accept(p2)
        assert rx.cumulative == -1
        rx.accept(p0)
        assert rx.cumulative == 0
        rx.accept(p1)
        assert rx.cumulative == 2

    def test_unsequenced_packets_always_accepted(self):
        sim = Simulator()
        rx, _ = self._rx(sim)
        pull = mkpkt(PktType.PULL_REPLY)  # seqnum stays -1
        assert rx.accept(pull)
        assert rx.accept(pull)

    def test_delayed_ack_emitted(self):
        sim = Simulator()
        rx, acks = self._rx(sim)
        p = mkpkt(); p.seqnum = 0
        rx.accept(p)
        sim.run(until=us(100))
        assert acks and acks[0] == (B, A, 0)


def _transfer_with_loss(size, drop_indices, direction_a2b=True, **omx):
    """One message node0 -> node1 with selected frames dropped."""
    tb = build_testbed(**omx)
    injector = LossInjector(drop_indices=drop_indices)
    tb.link.inject_loss(direction_a2b, injector)
    ep0 = tb.open_endpoint(0, 0)
    ep1 = tb.open_endpoint(1, 0)
    c0, c1 = tb.user_core(0), tb.user_core(1)
    sbuf = ep0.space.alloc(max(size, 1))
    rbuf = ep1.space.alloc(max(size, 1), fill=0)
    sbuf.fill_pattern(13)
    done = tb.sim.event()

    def sender():
        req = yield from ep0.isend(c0, ep1.addr, 0x3, sbuf, 0, size)
        yield from ep0.wait(c0, req)

    def receiver():
        req = yield from ep1.irecv(c1, 0x3, ~0, rbuf, 0, size)
        yield from ep1.wait(c1, req)
        done.succeed()

    tb.sim.process(sender())
    tb.sim.process(receiver())
    tb.sim.run_until(done, max_events=30_000_000)
    assert injector.dropped == len(drop_indices)
    return tb, bytes(sbuf.read(0, size)), bytes(rbuf.read(0, size))


class TestLossRecovery:
    def test_lost_small_message_retransmitted(self):
        tb, sent, got = _transfer_with_loss(64, {0})
        assert got == sent
        tx = list(tb.stacks[0].driver._tx_sessions.values())[0]
        assert tx.retransmissions >= 1

    def test_lost_medium_fragment_retransmitted(self):
        # Drop the 2nd of 4 medium fragments.
        tb, sent, got = _transfer_with_loss(16 * KiB, {1})
        assert got == sent

    def test_lost_rndv_recovered(self):
        tb, sent, got = _transfer_with_loss(256 * KiB, {0})  # frame 0 = RNDV
        assert got == sent

    def test_lost_pull_reply_recovered_by_watchdog(self):
        # Frames 1.. are pull replies; drop a couple of them.
        tb, sent, got = _transfer_with_loss(256 * KiB, {3, 7})
        assert got == sent
        driver = tb.stacks[1].driver
        assert driver.pull_replies_rx >= 32  # 256 KiB / 8 KiB fragments

    def test_lost_pull_reply_with_ioat_recovered(self):
        tb, sent, got = _transfer_with_loss(256 * KiB, {4}, ioat_enabled=True)
        assert got == sent

    def test_lost_pull_request_recovered(self):
        # Drop an early frame on the reverse direction (receiver -> sender):
        # that's a PULL_REQ; the pull watchdog must re-issue it.
        tb = build_testbed()
        injector = LossInjector(drop_indices={1})
        tb.link.inject_loss(False, injector)  # b_to_a carries PULL_REQs
        ep0 = tb.open_endpoint(0, 0)
        ep1 = tb.open_endpoint(1, 0)
        c0, c1 = tb.user_core(0), tb.user_core(1)
        size = 256 * KiB
        sbuf = ep0.space.alloc(size)
        rbuf = ep1.space.alloc(size, fill=0)
        sbuf.fill_pattern(5)
        done = tb.sim.event()

        def sender():
            req = yield from ep0.isend(c0, ep1.addr, 0x3, sbuf, 0, size)
            yield from ep0.wait(c0, req)

        def receiver():
            req = yield from ep1.irecv(c1, 0x3, ~0, rbuf, 0, size)
            yield from ep1.wait(c1, req)
            done.succeed()

        tb.sim.process(sender())
        tb.sim.process(receiver())
        tb.sim.run_until(done, max_events=30_000_000)
        assert bytes(rbuf.read()) == bytes(sbuf.read())

    def test_heavy_loss_still_delivers(self):
        # Drop every 9th frame in the data direction.
        tb = build_testbed()
        injector = LossInjector(predicate=lambda f, i: i % 9 == 4)
        tb.link.inject_loss(True, injector)
        ep0 = tb.open_endpoint(0, 0)
        ep1 = tb.open_endpoint(1, 0)
        c0, c1 = tb.user_core(0), tb.user_core(1)
        size = 1 * MiB
        sbuf = ep0.space.alloc(size)
        rbuf = ep1.space.alloc(size, fill=0)
        sbuf.fill_pattern(9)
        done = tb.sim.event()

        def sender():
            req = yield from ep0.isend(c0, ep1.addr, 0x3, sbuf, 0, size)
            yield from ep0.wait(c0, req)

        def receiver():
            req = yield from ep1.irecv(c1, 0x3, ~0, rbuf, 0, size)
            yield from ep1.wait(c1, req)
            done.succeed()

        tb.sim.process(sender())
        tb.sim.process(receiver())
        tb.sim.run_until(done, max_events=60_000_000)
        assert bytes(rbuf.read()) == bytes(sbuf.read())
        assert injector.dropped > 10

    def test_no_skbuff_leak_under_loss(self):
        tb, sent, got = _transfer_with_loss(512 * KiB, {2, 5, 9}, ioat_enabled=True)
        tb.sim.run(until=tb.sim.now + 5_000_000)
        for host in tb.hosts:
            assert host.skb_pool.outstanding == host.platform.nic.rx_ring_size
