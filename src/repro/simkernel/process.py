"""Generator-coroutine processes.

A process wraps a generator.  The generator ``yield``\\ s :class:`Event`
instances; the process resumes it with the event's value once the event
triggers, or throws the event's exception into it.  The :class:`Process`
object is itself an :class:`Event` that succeeds with the generator's return
value (``StopIteration.value``), so processes can be joined by yielding them.

A generator may also yield a bare non-negative ``int``: sleep that many
ticks.  This is the allocation-free spelling of ``yield sim.timeout(n)`` —
no Timeout, no Event and no callback list are created; the process resumes
through two scheduler entries (the timer firing, then the same-tick resume
hop), exactly matching the entry count and FIFO position of the Timeout it
replaces, so schedules are bit-identical either way.  ``Core.busy`` and the
other per-packet hot loops use it.

Interrupts: :meth:`Process.interrupt` throws :class:`Interrupted` into the
generator at the current simulation time, detaching it from whatever event it
was waiting on.  The interrupted process may catch the exception and continue
(the event it was waiting on stays valid and can be re-yielded).
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Generator, Optional

from repro.simkernel.errors import Interrupted, SimulationError
from repro.simkernel.event import _PENDING, Event

from repro.simkernel.scheduler import _WHEEL_MASK, _WHEEL_SHIFT, _WHEEL_SLOTS

if TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.scheduler import Simulator


class Process(Event):
    """A running generator, joinable as an event."""

    __slots__ = ("_gen", "_target", "_waiting_cb", "_sleep_epoch",
                 "_fire_cb", "_resume_cb")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        if not hasattr(gen, "send"):
            raise TypeError(
                f"Process requires a generator, got {type(gen).__name__}; "
                "did you call the function instead of passing its generator?"
            )
        super().__init__(sim, name or getattr(gen, "__name__", "process"))
        self._gen = gen
        self._target: Optional[Event] = None
        self._waiting_cb = self._resume
        #: guards bare-int sleeps against stale timer wakeups: bumped on
        #: every new sleep and on interrupt delivery, and checked by the
        #: fire/resume callbacks (the int-sleep analogue of the ``_target``
        #: identity check)
        self._sleep_epoch = 0
        # Prebound sleep callbacks: a bound-method access allocates, and
        # the fire/resume pair runs twice per sleep on every hot loop.
        self._fire_cb = self._sleep_fire
        self._resume_cb = self._sleep_resume
        # Kick off at the current time (same-tick, FIFO with other work).
        sim._push(sim.now, self._step, (None, None))

    # -- state -------------------------------------------------------------

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def waiting_on(self) -> Optional[Event]:
        """The event the process is currently blocked on, if any."""
        return self._target

    # -- driving -----------------------------------------------------------

    def _resume(self, ev: Event) -> None:
        # interrupted-and-finished before callback ran? (inlined
        # `self.triggered` / `ev._exc`: this runs once per process wakeup)
        if self._value is not _PENDING or self._exc is not None:
            return
        if ev is not self._target:
            return  # stale wakeup after an interrupt re-targeted us
        self._target = None
        exc = ev._exc
        if exc is not None:
            self._step(None, exc)
        else:
            self._step(ev._value, None)

    def _step(self, value: object, exc: Optional[BaseException]) -> None:
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupted as uncaught:
            # An uncaught interrupt terminates the process "successfully
            # cancelled": it fails the join event with the interrupt.
            self.fail(uncaught)
            return
        except Exception as err:
            self.fail(err)
            return

        if type(target) is int and target >= 0:
            # Bare-int sleep: two scheduler entries (fire, then a same-tick
            # resume hop), the exact FIFO shape of the Timeout it replaces.
            self._sleep_epoch = epoch = self._sleep_epoch + 1
            sim = self.sim
            if sim.tiebreak is not None:
                sim._push(sim.now + target, self._fire_cb, (epoch,))
                return
            # _push inlined (FIFO fast path): the sleep push is the single
            # hottest scheduling operation in the simulator.
            now = sim.now
            if target == 0:
                sim._now_q.append([now, 0, self._fire_cb, (epoch,)])
                return
            when = now + target
            sim._seq += 1
            entry = [when, sim._seq, self._fire_cb, (epoch,)]
            tick = when >> _WHEEL_SHIFT
            if tick - (now >> _WHEEL_SHIFT) < _WHEEL_SLOTS:
                heappush(sim._wheel[tick & _WHEEL_MASK], entry)
                sim._wheel_count += 1
                if sim._wheel_count == 1 or tick < sim._wheel_hint:
                    sim._wheel_hint = tick
            else:
                heappush(sim._heap, entry)
            return
        self._resolve_target(target)

    def _resolve_target(self, target: object) -> None:
        # Non-sleep yield targets (and the negative-sleep error), shared by
        # _step and the inlined dispatch in _sleep_resume.
        if type(target) is int:
            self._gen.close()
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded negative sleep {target}"
                )
            )
            return
        if not isinstance(target, Event):
            self._gen.close()
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; processes must "
                    "yield Event instances or int sleep durations"
                )
            )
            return
        if target is self:
            self._gen.close()
            self.fail(SimulationError(f"process {self.name!r} waited on itself"))
            return
        self._target = target
        target.add_callback(self._waiting_cb)

    def _sleep_fire(self, epoch: int) -> None:
        # The timer leg of a bare-int sleep (stands in for Timeout.succeed).
        if epoch != self._sleep_epoch or self._value is not _PENDING or self._exc is not None:
            return  # interrupted (or finished) while asleep: stale timer
        sim = self.sim
        if sim.tiebreak is None:
            # Same-tick push inlined (this is the hottest single action in
            # the simulator); the keyed path must still see every tie.
            sim._now_q.append([sim.now, 0, self._resume_cb, (epoch,)])
        else:
            sim._push(sim.now, self._resume_cb, (epoch,))

    def _sleep_resume(self, epoch: int) -> None:
        # The same-tick dispatch leg (stands in for the callback-run hop).
        if epoch != self._sleep_epoch or self._value is not _PENDING or self._exc is not None:
            return
        # _step(None, None) inlined: sleep resumes are the single most
        # frequent dispatch in the simulator, and most resume straight into
        # the next bare-int sleep — skip the extra frame on that chain.
        try:
            target = self._gen.send(None)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupted as uncaught:
            self.fail(uncaught)
            return
        except Exception as err:
            self.fail(err)
            return
        if type(target) is int and target >= 0:
            self._sleep_epoch = epoch = self._sleep_epoch + 1
            sim = self.sim
            if sim.tiebreak is not None:
                sim._push(sim.now + target, self._fire_cb, (epoch,))
                return
            now = sim.now
            if target == 0:
                sim._now_q.append([now, 0, self._fire_cb, (epoch,)])
                return
            when = now + target
            sim._seq += 1
            entry = [when, sim._seq, self._fire_cb, (epoch,)]
            tick = when >> _WHEEL_SHIFT
            if tick - (now >> _WHEEL_SHIFT) < _WHEEL_SLOTS:
                heappush(sim._wheel[tick & _WHEEL_MASK], entry)
                sim._wheel_count += 1
                if sim._wheel_count == 1 or tick < sim._wheel_hint:
                    sim._wheel_hint = tick
            else:
                heappush(sim._heap, entry)
            return
        self._resolve_target(target)

    # -- interrupts ----------------------------------------------------------

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupted` into the process at the current time."""
        if self.triggered:
            return

        def deliver() -> None:
            if self.triggered:
                return
            # Detach from the current wait; a stale wakeup is filtered in
            # _resume by the identity check on _target, and a pending
            # int-sleep timer by the epoch bump.
            self._target = None
            self._sleep_epoch += 1
            self._step(None, Interrupted(cause))

        self.sim._call_soon(deliver)
