"""The Open-MX kernel driver.

Three execution contexts, matching the real module:

* **syscall context** — command processing on the calling process's core
  (category ``driver``): eager sends, rendezvous announcements, pull setup,
  local (shared-memory) transfers, including memory pinning;
* **BH context** — the receive callback invoked by the softirq engine on
  the interrupt core (category ``bh``): eager deposit into the ring,
  pull-reply copying (memcpy or I/OAT offload), pull-request serving,
  acks/notifies;
* **kernel timers** — retransmissions and pull watchdogs, executed on the
  interrupt core as BH work.

The driver talks to user space only through per-endpoint event rings
(:class:`~repro.core.types.OmxEvent`), exactly like the real stack.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Optional

from repro.core.errors import DeliveryFailed, PullAborted, RemoteAborted
from repro.core.offload import OffloadManager
from repro.core.pull import PullHandle, handles_for_peer
from repro.core.reliability import RxSession, TxSession
from repro.health.backpressure import BackoffPolicy, BusyGate
from repro.health.liveness import PeerLivenessMonitor
from repro.core.types import EvType, OmxEvent, OmxRequest
from repro.ethernet.frame import ETHERTYPE_MX, EthernetFrame
from repro.ethernet.skbuff import Skbuff
from repro.mx.wire import EndpointAddr, MxPacket, PktType
from repro.simkernel.resources import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.host import Host
    from repro.core.endpoint import OmxEndpoint
    from repro.params import OmxConfig
    from repro.simkernel.cpu import Core


@dataclass
class _LargeSendState:
    """Sender-side context of a rendezvous'd message."""

    req: OmxRequest
    endpoint: "OmxEndpoint"
    pinned: object


class OmxDriver:
    """Per-host kernel module instance."""

    def __init__(self, host: "Host", config: "OmxConfig"):
        config.validate()
        self.host = host
        self.sim = host.sim
        self.config = config
        self.params = host.params
        self.endpoints: dict[int, "OmxEndpoint"] = {}
        self.offload = OffloadManager(host, config)
        self.host.regcache.enabled = config.regcache_enabled

        self._tx_sessions: dict[tuple[int, EndpointAddr], TxSession] = {}
        self._rx_sessions: dict[tuple[int, EndpointAddr], RxSession] = {}
        self._pulls: dict[int, PullHandle] = {}
        self._pull_ids = itertools.count()
        self._msg_ids = itertools.count()
        self._large_sends: dict[int, _LargeSendState] = {}
        self._local_large_sends: dict[int, OmxRequest] = {}

        from repro.core.shm import ShmEngine

        #: intra-node delivery engine (§III-C)
        self.shm = ShmEngine(self)

        #: optional in-kernel eager matching (§VI extension)
        self.kmatch = None
        if config.kernel_matching:
            from repro.core.kmatch import KernelMatcher

            self.kmatch = KernelMatcher(self)

        #: control packets queued for kernel-timer-context transmission
        self._ctl_queue: Store = Store(self.sim, name=f"omx{host.host_id}.ctl")
        self.sim.daemon(self._ctl_daemon(), name=f"omx{host.host_id}-ctl")

        #: dead-lettered packets awaiting kernel-timer-context cleanup
        #: (pin release needs a core, so it cannot run in the retx timer)
        self._dead_queue: Store = Store(self.sim, name=f"omx{host.host_id}.dead")
        self.sim.daemon(self._dead_daemon(), name=f"omx{host.host_id}-dead")

        # -- health supervision (repro.health, DESIGN.md §12) --
        health_params = host.platform.health
        self.liveness = PeerLivenessMonitor(self, health_params)
        self.busy_gate = BusyGate(self.sim, health_params)
        self._backoff_policy = BackoffPolicy(
            base=health_params.backoff_base,
            max_level=health_params.backoff_max_level,
            max_delay=health_params.backoff_max_delay,
            jitter=health_params.backoff_jitter,
        )
        #: peers declared dead awaiting kernel-timer-context teardown
        self._peer_death_queue: Store = Store(
            self.sim, name=f"omx{host.host_id}.peerdead")
        self.sim.daemon(self._peer_death_daemon(),
                        name=f"omx{host.host_id}-peerdead")

        host.softirq.register_handler(ETHERTYPE_MX, self._rx_callback)

        # Hot-path attribute caches (one send runs per wire frame; the
        # three-level host.platform.nic chains add up at fig. 11 scale).
        self._skb_pool = host.skb_pool
        self._nic = host.nic
        self._tx_frame_cost = host.platform.nic.tx_frame_cost

        #: BH header-processing cost; reduced when the NIC uses Direct
        #: Cache Access (§II-C) to warm the interrupt core's cache
        self._bh_base_cost = self.params.bh_base_cost
        if host.platform.nic.dca_enabled:
            self._bh_base_cost = int(
                self._bh_base_cost * (1.0 - host.platform.nic.dca_savings)
            )

        # statistics
        self.eager_rx = 0
        self.pull_replies_rx = 0
        self.ring_drops = 0
        self.dead_letters = 0
        self.pull_aborts = 0
        self.requests_failed = 0
        self.busy_rx = 0
        #: attempts to fail an already-terminal request (watchdog-abort vs
        #: peer-death race); the first typed error always wins
        self.duplicate_failures = 0

        self._register_metrics(host.metrics)

    def _register_metrics(self, reg) -> None:
        """Publish protocol-layer statistics into the host registry."""
        from repro.core.pull import register_pull_metrics
        from repro.core.reliability import register_reliability_metrics

        reg.counter("omx", "eager_rx", lambda: self.eager_rx)
        reg.counter("omx", "pull_replies_rx", lambda: self.pull_replies_rx)
        reg.counter("omx", "eager_ring_drops", lambda: self.ring_drops,
                    "eager fragments dropped on ring exhaustion")
        reg.counter("omx", "dead_letters", lambda: self.dead_letters)
        reg.counter("omx", "pull_aborts", lambda: self.pull_aborts)
        reg.counter("omx", "requests_failed", lambda: self.requests_failed)
        reg.counter("omx", "duplicate_failures", lambda: self.duplicate_failures,
                    "failure attempts on already-terminal requests")
        reg.counter("health", "busy_rx", lambda: self.busy_rx,
                    "BUSY backpressure signals received from peers")
        self.liveness.register_metrics(reg)
        self.busy_gate.register_metrics(reg)
        register_reliability_metrics(reg, self)
        register_pull_metrics(reg, self)
        self.offload.register_metrics(reg)
        reg.counter("shm", "shm_eager", lambda: self.shm.local_eager)
        reg.counter("shm", "shm_large", lambda: self.shm.local_large)
        reg.counter("shm", "shm_ioat_copies", lambda: self.shm.ioat_copies)
        if self.kmatch is not None:
            reg.counter("kmatch", "kmatch_matches",
                        lambda: self.kmatch.kernel_matches)
            reg.counter("kmatch", "kmatch_fallbacks",
                        lambda: self.kmatch.fallbacks)
            reg.counter("kmatch", "kmatch_frags_offloaded",
                        lambda: self.kmatch.frags_offloaded)
        #: completed-pull size distribution (power-of-two buckets)
        self._pull_bytes = reg.histogram("omx", "pull_bytes",
                                         "bytes moved per completed pull")

    # ------------------------------------------------------------------
    # endpoint management
    # ------------------------------------------------------------------

    def register_endpoint(self, ep: "OmxEndpoint") -> None:
        if ep.addr.endpoint in self.endpoints:
            raise ValueError(f"endpoint {ep.addr.endpoint} already open")
        self.endpoints[ep.addr.endpoint] = ep

    def _tx_session(self, local_ep: int, peer: EndpointAddr) -> TxSession:
        key = (local_ep, peer)
        sess = self._tx_sessions.get(key)
        if sess is None:
            sess = TxSession(
                self.sim, peer, self._queue_resend, self.config.retransmit_timeout,
                on_dead=self._on_dead_letter,
                backoff=self._backoff_policy,
                backoff_seed=f"backoff:{self.host.host_id}:{local_ep}:{peer}",
            )
            self._tx_sessions[key] = sess
        # Outbound reliable traffic means pending work: supervise the peer.
        self.liveness.ensure_armed()
        return sess

    def _rx_session(self, local_ep: int, peer: EndpointAddr) -> RxSession:
        key = (local_ep, peer)
        sess = self._rx_sessions.get(key)
        if sess is None:
            sess = RxSession(
                self.sim, EndpointAddr(self.host.host_id, local_ep), peer,
                self._queue_ack,
            )
            self._rx_sessions[key] = sess
        return sess

    # ------------------------------------------------------------------
    # transmit plumbing
    # ------------------------------------------------------------------

    def _xmit_packet(self, core: "Core", pkt: MxPacket, category: str) -> Generator:
        """Build a (zero-copy) skbuff for ``pkt`` and hand it to the NIC.

        The caller must hold ``core``.  Any pending cumulative ack for the
        destination is piggybacked.
        """
        rx = self._rx_sessions.get((pkt.src.endpoint, pkt.dst))
        if rx is not None:
            pkt.ack_seqnum = rx.piggyback()
        skb = self._skb_pool.alloc_tx()
        if pkt.data_region is not None and pkt.data_length:
            skb.add_frag(pkt.data_region, pkt.data_offset, pkt.data_length)
        frame = EthernetFrame(
            src_mac=self.host.host_id, dst_mac=pkt.dst.host,
            ethertype=ETHERTYPE_MX, payload=pkt, payload_len=pkt.wire_payload_len,
        )
        tx_cost = self._tx_frame_cost
        if tx_cost:
            yield tx_cost
        core.account(category, tx_cost, "tx")
        # Nic.xmit inlined (one generator frame less per wire frame): the
        # NIC's tx_frame_cost is the same platform parameter charged above.
        nic = self._nic
        if nic._egress is None:
            raise RuntimeError("NIC has no link attached")
        if tx_cost:
            yield tx_cost
        core.account("driver", tx_cost)
        skb.frame = frame
        sim = nic.sim
        sim._push(sim.now + nic.params.per_frame_cost,
                  nic._doorbell, (frame, skb))
        return None

    def _queue_resend(self, pkt: MxPacket) -> None:
        """Retransmission callback from a TX session timer."""
        trace = self.host.trace
        if trace is not None and trace.enabled:
            trace.instant("events", f"retransmit {pkt.ptype.name}",
                          "retransmit")
        self._ctl_queue.put(pkt)

    def _queue_ack(self, owner: EndpointAddr, peer: EndpointAddr, ack_seqnum: int) -> None:
        """Delayed-ack callback from an RX session."""
        self._ctl_queue.put(MxPacket(
            ptype=PktType.ACK, src=owner, dst=peer, ack_seqnum=ack_seqnum,
        ))

    def _ctl_daemon(self) -> Generator:
        """Kernel-timer context: transmit queued control/retransmit packets
        on the interrupt core as BH work."""
        core = self.host.irq_core
        while True:
            pkt = yield self._ctl_queue.get()
            yield core.res.request()
            try:
                yield from self._xmit_packet(core, pkt, "bh")
            finally:
                core.res.release()

    # ------------------------------------------------------------------
    # dead letters: the reliability layer gave up on a packet
    # ------------------------------------------------------------------

    def _on_dead_letter(self, pkt: MxPacket, err: DeliveryFailed) -> None:
        """TX-session hook: a packet exhausted MAX_RETRIES.

        Runs in the retx-timer daemon (no core held), so anything needing
        driver/BH CPU — pin release for a dead rendezvous — is queued for
        the dead-letter daemon.  Requests whose completion is watcher-based
        (mediums) are failed directly by the session's watcher callbacks.
        """
        self.dead_letters += 1
        trace = self.host.trace
        if trace is not None and trace.enabled:
            trace.instant("events", f"dead letter {pkt.ptype.name}", "fault")
        if pkt.ptype in (PktType.RNDV, PktType.NACK):
            self._dead_queue.put((pkt, err))
        # NOTIFY dead-lettering has nothing to clean locally: the pull (and
        # its request) completed before the notify was sent; the peer's
        # sender request is failed by its own RNDV/pull machinery.

    def _dead_daemon(self) -> Generator:
        """Kernel-timer context: tear down state owned by dead packets."""
        core = self.host.irq_core
        while True:
            pkt, err = yield self._dead_queue.get()
            yield core.res.request()
            try:
                if pkt.ptype is PktType.RNDV:
                    yield from self._fail_large_send(core, pkt.msg_id, err)
            finally:
                core.res.release()

    # ------------------------------------------------------------------
    # peer death: the liveness monitor gave up on a silent peer
    # ------------------------------------------------------------------

    def _queue_peer_death(self, peer: EndpointAddr, err: Exception) -> None:
        """Liveness hook (no core held): queue the teardown as BH work."""
        self._peer_death_queue.put((peer, err))

    def _peer_death_daemon(self) -> Generator:
        """Kernel-timer context: tear down all state owned by a dead peer."""
        core = self.host.irq_core
        while True:
            peer, err = yield self._peer_death_queue.get()
            yield core.res.request()
            try:
                yield from self._fail_peer(core, peer, err)
            finally:
                core.res.release()

    def _fail_peer(self, core: "Core", peer: EndpointAddr, err: Exception) -> Generator:
        """Deterministically fail every pending request involving ``peer``.

        Pulls are drained through the §III-B offload cleanup (skbuffs behind
        in-flight I/OAT copies are released, pins dropped); large sends
        release their pins; TX sessions fail all pending packets so armed
        ack-watchers fire their typed-failure callbacks.  No NACK/NOTIFY is
        sent — the peer is dead, there is nobody to tell.
        """
        for handle in handles_for_peer(self._pulls, peer):
            yield from self.offload.cleanup(core, handle.offload)
            if handle.offload.pending:
                yield from self.offload.wait_all(core, handle.offload)
            handle.done = True
            self._pulls.pop(handle.id, None)
            if handle.pinned is not None:
                yield from self.host.regcache.release(core, handle.pinned, "bh")
            self._fail_request(handle.endpoint, handle.req, err)
        for msg_id in sorted(m for m, s in self._large_sends.items()
                             if s.req.peer == peer):
            yield from self._fail_large_send(core, msg_id, err)
        for (local_ep, p), sess in sorted(self._tx_sessions.items()):
            if p == peer:
                self.dead_letters += sess.fail_all(err)
        return None

    def _fail_large_send(self, core: "Core", msg_id: int,
                         err: Exception) -> Generator:
        """Release a dead rendezvous' pins and fail its request loudly."""
        state = self._large_sends.pop(msg_id, None)
        if state is None:
            return None
        pins = state.pinned if isinstance(state.pinned, list) else [state.pinned]
        for p in pins:
            yield from self.host.regcache.release(core, p, "bh")
        self._fail_request(state.endpoint, state.req, err)
        return None

    def _fail_request(self, ep: "OmxEndpoint", req: OmxRequest, err: Exception) -> None:
        """Surface a typed error on ``req`` and complete it via the ring.

        Idempotent: the pull watchdog and the peer-death teardown can race
        to fail the same request; the first typed error wins and later
        attempts only count ``duplicate_failures``.
        """
        if req is None:
            return
        if req.done or req.error is not None:
            self.duplicate_failures += 1
            return
        req.error = err
        self.requests_failed += 1
        ep.post_event(OmxEvent(EvType.FAILED, peer=req.peer, req=req))

    # ------------------------------------------------------------------
    # syscall-context commands (caller does NOT hold the core)
    # ------------------------------------------------------------------

    def _enter_syscall(self, core: "Core") -> Generator:
        yield core.res.request()
        yield from core.busy(
            self.params.syscall_cost + self.params.driver_command_cost, "driver",
            phase="syscall",
        )
        return None

    def cmd_send_eager(self, core: "Core", ep: "OmxEndpoint", req: OmxRequest) -> Generator:
        """Send a tiny/small/medium message (zero-copy fragments)."""
        yield from self._enter_syscall(core)
        try:
            req.msg_id = next(self._msg_ids)
            sess = self._tx_session(ep.addr.endpoint, req.peer)
            frag = self.config.medium_frag
            pieces = list(req.iter_pieces(0, req.length, frag)) or [
                (0, req.region, req.offset, 0)
            ]
            count = len(pieces)
            last_seq = -1
            for i, (off, region, roff, n) in enumerate(pieces):
                if req.length <= 32:
                    ptype = PktType.TINY
                elif count == 1 and req.length <= self.config.small_max:
                    ptype = PktType.SMALL
                else:
                    ptype = PktType.MEDIUM_FRAG
                pkt = MxPacket(
                    ptype=ptype, src=ep.addr, dst=req.peer,
                    match_info=req.match_info, msg_id=req.msg_id,
                    msg_len=req.length, frag_index=i, frag_count=count,
                    offset=off, data_region=region,
                    data_offset=roff, data_length=n,
                )
                last_seq = sess.stamp(pkt)
                yield from self._xmit_packet(core, pkt, "driver")
            if req.length <= self.config.small_max:
                # tiny/small are buffered by the stack: complete immediately
                ep.post_event(OmxEvent(EvType.SEND_DONE, peer=req.peer, req=req))
            else:
                # mediums reference user pages: complete on cumulative ack;
                # a dead-lettered fragment fails the request instead of
                # leaving the watcher armed (and the sender hung) forever
                sess.watch_ack(
                    last_seq,
                    lambda: ep.post_event(OmxEvent(EvType.SEND_DONE, peer=req.peer, req=req)),
                    on_fail=lambda err: self._fail_request(ep, req, err),
                )
        finally:
            core.res.release()
        return None

    def cmd_send_rndv(self, core: "Core", ep: "OmxEndpoint", req: OmxRequest) -> Generator:
        """Announce a large message; data will be pulled by the receiver."""
        yield from self._enter_syscall(core)
        try:
            req.msg_id = next(self._msg_ids)
            if req.segments is not None:
                pinned = []
                for region, seg_off, seg_len in req.segments:
                    if seg_len:
                        p = yield from self.host.regcache.acquire(
                            core, region.subregion(seg_off, seg_len), "driver"
                        )
                        pinned.append(p)
            else:
                send_region = req.region.subregion(req.offset, req.length)
                pinned = yield from self.host.regcache.acquire(core, send_region, "driver")
            req.pinned = pinned
            self._large_sends[req.msg_id] = _LargeSendState(req, ep, pinned)
            pkt = MxPacket(
                ptype=PktType.RNDV, src=ep.addr, dst=req.peer,
                match_info=req.match_info, msg_id=req.msg_id, msg_len=req.length,
            )
            self._tx_session(ep.addr.endpoint, req.peer).stamp(pkt)
            yield from self._xmit_packet(core, pkt, "driver")
        finally:
            core.res.release()
        return None

    def cmd_start_pull(
        self, core: "Core", ep: "OmxEndpoint", req: OmxRequest,
        peer: EndpointAddr, msg_id: int, msg_len: int,
    ) -> Generator:
        """Rendezvous matched in the library: set up and start the pull."""
        total = min(msg_len, req.length)
        yield from self._enter_syscall(core)
        try:
            dest = req.region.subregion(req.offset, total) if total else None
            pinned = None
            if dest is not None and total:
                pinned = yield from self.host.regcache.acquire(core, dest, "driver")
            handle = PullHandle(
                handle_id=next(self._pull_ids), req=req, peer=peer, msg_id=msg_id,
                total=total,
                block_bytes=self.config.large_frag * self.config.pull_block_frags,
                offload=self.offload.new_message_state(), pinned=pinned,
                endpoint=ep,
            )
            handle.last_progress = self.sim.now
            self._pulls[handle.id] = handle
            # A pull holds peer state without reliable TX traffic of its
            # own: make sure the liveness monitor watches the sender.
            self.liveness.ensure_armed()
            if total == 0:
                yield from self._finish_pull(core, ep, handle, category="driver")
            else:
                for _ in range(self.config.pull_outstanding_blocks):
                    yield from self._request_block(core, ep, handle, "driver")
                self.sim.daemon(self._pull_watchdog(ep, handle), name=f"pullwd{handle.id}")
        finally:
            core.res.release()
        return None

    def cmd_close_endpoint(self, core: "Core", ep: "OmxEndpoint") -> Generator:
        """Close an endpoint, abandoning its in-flight pulls.

        The §III-B cleanup routine runs for every pull the endpoint still
        owns — and :meth:`OffloadManager.wait_all` for whatever it could not
        release — so skbuffs queued behind in-flight I/OAT copies can never
        be stranded past the endpoint's lifetime (the ``max_pending_skbuffs``
        accounting returns to zero).  Abandoned pulls never complete their
        request; close is forceful, like releasing the endpoint fd.
        """
        yield from self._enter_syscall(core)
        try:
            mine = [h for h in self._pulls.values() if h.endpoint is ep]
            for handle in mine:
                yield from self.offload.cleanup(core, handle.offload)
                if handle.offload.pending:
                    yield from self.offload.wait_all(core, handle.offload)
                handle.done = True
                self._pulls.pop(handle.id, None)
                if handle.pinned is not None:
                    yield from self.host.regcache.release(core, handle.pinned, "driver")
            if self.kmatch is not None:
                yield from self.kmatch.cmd_close_endpoint(core, ep)
        finally:
            core.res.release()
        self.endpoints.pop(ep.addr.endpoint, None)
        return None

    # ------------------------------------------------------------------
    # pull engine
    # ------------------------------------------------------------------

    def _request_block(self, core: "Core", ep: "OmxEndpoint", handle: PullHandle,
                       category: str) -> Generator:
        """Send the next block request; §III-B: also run the cleanup routine."""
        yield from self.offload.cleanup(core, handle.offload)
        block = handle.next_unrequested()
        if block is None:
            return None
        block.requested = True
        pkt = MxPacket(
            ptype=PktType.PULL_REQ, src=ep.addr, dst=handle.peer,
            msg_id=handle.msg_id, pull_handle=handle.id,
            req_offset=block.offset, req_length=block.length,
        )
        yield from self._xmit_packet(core, pkt, category)
        return None

    def _pull_watchdog(self, ep: "OmxEndpoint", handle: PullHandle) -> Generator:
        """Re-request stalled blocks after the retransmission timeout."""
        core = self.host.irq_core
        timeout = self.config.retransmit_timeout
        while not handle.done:
            yield timeout  # bare-int sleep
            if handle.done:
                break
            if self.sim.now - handle.last_progress < timeout:
                continue
            handle.retransmits += 1
            yield core.res.request()
            try:
                if handle.retransmits > self.config.pull_max_retries:
                    # Give up loudly: abandoning silently would leave the
                    # request hung and the §III-B resources stranded.
                    yield from self._abort_pull(core, ep, handle)
                    break
                # §III-B: the cleanup routine also runs on the retransmission
                # timeout path.
                yield from self.offload.cleanup(core, handle.offload)
                for block in handle.outstanding_incomplete():
                    pkt = MxPacket(
                        ptype=PktType.PULL_REQ, src=ep.addr, dst=handle.peer,
                        msg_id=handle.msg_id, pull_handle=handle.id,
                        req_offset=block.offset, req_length=block.length,
                    )
                    yield from self._xmit_packet(core, pkt, "bh")
            finally:
                core.res.release()
        return None

    def _abort_pull(self, core: "Core", ep: "OmxEndpoint", handle: PullHandle) -> Generator:
        """Tear down a hopeless pull: drain offload state, free resources,
        fail the request with :class:`PullAborted`, NACK the sender."""
        self.pull_aborts += 1
        yield from self.offload.cleanup(core, handle.offload)
        if handle.offload.pending:
            yield from self.offload.wait_all(core, handle.offload)
        handle.done = True
        self._pulls.pop(handle.id, None)
        if handle.pinned is not None:
            yield from self.host.regcache.release(core, handle.pinned, "bh")
        self._fail_request(ep, handle.req, PullAborted(
            handle.peer, handle.msg_id, handle.received, handle.total,
            handle.retransmits,
        ))
        # Reliable NACK so the sender releases its pins and fails its
        # request too, instead of waiting forever for a NOTIFY.
        pkt = MxPacket(
            ptype=PktType.NACK, src=ep.addr, dst=handle.peer, msg_id=handle.msg_id,
        )
        self._tx_session(ep.addr.endpoint, handle.peer).stamp(pkt)
        yield from self._xmit_packet(core, pkt, "bh")
        return None

    def _finish_pull(self, core: "Core", ep: "OmxEndpoint", handle: PullHandle,
                     category: str) -> Generator:
        """Last fragment: wait for async copies, notify both sides."""
        yield from self.offload.wait_all(core, handle.offload)
        handle.done = True
        self._pulls.pop(handle.id, None)
        self._pull_bytes.observe(handle.total)
        if handle.pinned is not None:
            yield from self.host.regcache.release(core, handle.pinned, category)
        handle.req.xfer_length = handle.total
        ep.post_event(OmxEvent(
            EvType.RECV_LARGE_DONE, peer=handle.peer, msg_len=handle.total,
            req=handle.req,
        ))
        pkt = MxPacket(
            ptype=PktType.NOTIFY, src=ep.addr, dst=handle.peer, msg_id=handle.msg_id,
        )
        self._tx_session(ep.addr.endpoint, handle.peer).stamp(pkt)
        yield from self._xmit_packet(core, pkt, category)
        return None

    # ------------------------------------------------------------------
    # BH receive callback (runs on the interrupt core, which is held)
    # ------------------------------------------------------------------

    def _rx_callback(self, core: "Core", skb: Skbuff) -> Generator:
        pkt: MxPacket = skb.frame.payload
        ptype = pkt.ptype
        if ptype is PktType.PULL_REPLY:
            # The large-fragment surcharge is merged into the base charge:
            # one timeout instead of two per fragment on the hottest path.
            hdr_cost = self._bh_base_cost + self.params.bh_large_frag_extra
        else:
            hdr_cost = self._bh_base_cost
        if hdr_cost:
            yield hdr_cost
        core.account("bh", hdr_cost, "bh_header")

        # Any arrival is proof of life for the sending endpoint.
        liveness = self.liveness
        liveness.last_heard[pkt.src] = liveness.sim.now
        liveness.dead.discard(pkt.src)

        # Piggybacked cumulative ack.
        if pkt.ack_seqnum >= 0 and ptype is not PktType.ACK:
            sess = self._tx_sessions.get((pkt.dst.endpoint, pkt.src))
            if sess is not None:
                sess.on_ack(pkt.ack_seqnum)

        ep = self.endpoints.get(pkt.dst.endpoint)
        if ep is None:
            skb.free()
            return None

        # Dispatch in descending traffic order: pull fragments and their
        # requests dwarf everything else once rendezvous is in play.
        if ptype is PktType.PULL_REPLY:
            yield from self._bh_pull_reply(core, ep, skb, pkt)
        elif ptype is PktType.PULL_REQ:
            yield from self._bh_pull_req(core, skb, pkt)
        elif ptype in (PktType.TINY, PktType.SMALL, PktType.MEDIUM_FRAG):
            yield from self._bh_eager(core, ep, skb, pkt)
        elif ptype is PktType.RNDV:
            if self.busy_gate.pulls_pressured(len(self._pulls)):
                # Pull-handle pool over the watermark: refuse *before* the
                # rx session sees the seqnum, so the sender's (reliable)
                # RNDV retransmits later — under BUSY backoff — instead of
                # the message being half-accepted.
                self._signal_busy(ep, pkt.src)
                skb.free()
                return None
            self._bh_reliable_ctl(ep, pkt, lambda: ep.post_event(OmxEvent(
                EvType.RNDV, peer=pkt.src, match_info=pkt.match_info,
                msg_id=pkt.msg_id, msg_len=pkt.msg_len,
            )))
            skb.free()
        elif ptype is PktType.NOTIFY:
            if self._rx_session(ep.addr.endpoint, pkt.src).accept(pkt):
                yield from self._bh_notify(core, ep, pkt)
            skb.free()
        elif ptype is PktType.NACK:
            # Peer aborted its pull: release our pins, fail the send.
            if self._rx_session(ep.addr.endpoint, pkt.src).accept(pkt):
                yield from self._fail_large_send(
                    core, pkt.msg_id, RemoteAborted(pkt.src, pkt.msg_id)
                )
            skb.free()
        elif ptype is PktType.ACK:
            sess = self._tx_sessions.get((pkt.dst.endpoint, pkt.src))
            if sess is not None:
                sess.on_ack(pkt.ack_seqnum)
            skb.free()
        elif ptype is PktType.KEEPALIVE:
            # Unsequenced proof-of-life probe: force a re-ack so the silent
            # half of the conversation hears us again.
            self.liveness.keepalives_rx += 1
            self._rx_session(ep.addr.endpoint, pkt.src).note_keepalive()
            skb.free()
        elif ptype is PktType.BUSY:
            # Receiver backpressure: escalate this session's backoff.
            self.busy_rx += 1
            sess = self._tx_sessions.get((pkt.dst.endpoint, pkt.src))
            if sess is not None:
                sess.note_busy()
            skb.free()
        else:
            skb.free()
        return None

    def _signal_busy(self, ep: "OmxEndpoint", peer: EndpointAddr) -> None:
        """Queue an unsequenced BUSY to ``peer`` (rate-limited per peer)."""
        if not self.busy_gate.params.backpressure_enabled:
            return
        if not self.busy_gate.should_signal(peer):
            return
        self._ctl_queue.put(MxPacket(ptype=PktType.BUSY, src=ep.addr, dst=peer))

    def _bh_reliable_ctl(self, ep: "OmxEndpoint", pkt: MxPacket, deliver) -> None:
        """Dedup-filtered delivery of a sequenced control packet."""
        if self._rx_session(ep.addr.endpoint, pkt.src).accept(pkt):
            deliver()

    def _bh_notify(self, core: "Core", ep: "OmxEndpoint", pkt: MxPacket) -> Generator:
        state = self._large_sends.pop(pkt.msg_id, None)
        if state is None:
            return None
        state.req.xfer_length = state.req.length
        pins = state.pinned if isinstance(state.pinned, list) else [state.pinned]
        for p in pins:
            yield from self.host.regcache.release(core, p, "bh")
        ep.post_event(OmxEvent(EvType.SEND_DONE, peer=pkt.src, req=state.req))
        return None

    def _bh_eager(self, core: "Core", ep: "OmxEndpoint", skb: Skbuff, pkt: MxPacket) -> Generator:
        """Deposit an eager fragment into the endpoint's pinned ring."""
        if not self._rx_session(ep.addr.endpoint, pkt.src).accept(pkt):
            skb.free()
            return None
        if self.kmatch is not None:
            consumed = yield from self.kmatch.try_deliver(core, ep, skb, pkt)
            if consumed:
                self.eager_rx += 1
                return None
        slot = ep.ring.acquire_slot()
        if slot is None:
            # Ring exhausted: drop; the sender's retransmission recovers it
            # — but tell it to back off instead of hammering the timeout.
            self.ring_drops += 1
            self._signal_busy(ep, pkt.src)
            skb.free()
            return None
        if self.busy_gate.ring_pressured(ep.ring):
            # Low-watermark early warning: the fragment is delivered, but
            # senders should slow their retransmission pressure.
            self._signal_busy(ep, pkt.src)
        if pkt.data_length:
            if self.config.ignore_bh_copy:
                pass  # Fig. 3 prediction mode: skip the BH copy
            elif self.config.ioat_medium_sync and pkt.ptype is PktType.MEDIUM_FRAG:
                # §IV-C ablation: synchronous I/OAT copy for medium frags —
                # submit and spin; found to be a loss in the paper.
                cookie = yield from self.host.ioat.submit_copy(
                    core, skb.head, 0, ep.ring.slot_region(slot), 0,
                    pkt.data_length, "bh",
                )
                yield from self.host.ioat.busy_wait(core, cookie, "bh")
            else:
                # Plan/yield/commit in this frame (memcpy's generator is
                # pure overhead at one call per eager fragment).
                copier = self.host.copier
                dest = ep.ring.slot_region(slot)
                n = pkt.data_length
                cost = copier.copy_cost(core, skb.head, 0, dest, 0, n)
                if cost:
                    yield cost
                copier.commit(core, skb.head, 0, dest, 0, n, "bh", cost,
                              phase="eager_copy")
        self.eager_rx += 1
        skb.free()
        ep.post_event(OmxEvent(
            EvType.EAGER_FRAG, peer=pkt.src, match_info=pkt.match_info,
            msg_id=pkt.msg_id, msg_len=pkt.msg_len, frag_index=pkt.frag_index,
            frag_count=pkt.frag_count, offset=pkt.offset,
            length=pkt.data_length, ring_slot=slot,
        ))
        return None

    def _bh_pull_req(self, core: "Core", skb: Skbuff, pkt: MxPacket) -> Generator:
        """Sender side: stream the requested span as PULL_REPLY frames."""
        skb.free()
        state = self._large_sends.get(pkt.msg_id)
        if state is None:
            return None
        frag = self.config.large_frag
        span = min(pkt.req_offset + pkt.req_length, state.req.length) - pkt.req_offset
        # Fragments never cross a segment boundary of a vectored send, so a
        # highly-vectorial buffer produces the sub-kilobyte fragments of the
        # §IV-A discussion (which the receiver then declines to offload).
        for off, region, roff, n in state.req.iter_pieces(pkt.req_offset, span, frag):
            reply = MxPacket(
                ptype=PktType.PULL_REPLY, src=pkt.dst, dst=pkt.src,
                msg_id=pkt.msg_id, pull_handle=pkt.pull_handle,
                offset=off, msg_len=state.req.length,
                data_region=region, data_offset=roff, data_length=n,
            )
            yield from self._xmit_packet(core, reply, "bh")
        return None

    def _bh_pull_reply(self, core: "Core", ep: "OmxEndpoint", skb: Skbuff, pkt: MxPacket) -> Generator:
        """Receiver side: the copy this paper is about."""
        # (the bh_large_frag_extra charge is folded into _rx_callback's
        # base busy, saving one timeout per fragment)
        handle = self._pulls.get(pkt.pull_handle)
        if handle is None or handle.done:
            skb.free()
            return None
        if not handle.note_fragment(pkt.offset, pkt.data_length, self.sim.now):
            skb.free()  # duplicate reply (after a watchdog re-request)
            return None
        self.pull_replies_rx += 1
        dest = handle.req.region
        offloaded = yield from self.offload.copy_fragment(
            core, handle.offload, skb, 0,
            dest, handle.req.offset + pkt.offset, pkt.data_length,
            handle.total,
        )
        if not offloaded:
            skb.free()
        block = handle.block_of(pkt.offset)
        if block.complete and not handle.complete:
            yield from self._request_block(core, ep, handle, "bh")
        if handle.complete:
            yield from self._finish_pull(core, ep, handle, category="bh")
        return None


class OmxStack:
    """Convenience bundle: one driver + endpoint factory for a host."""

    def __init__(self, host: "Host", config: Optional["OmxConfig"] = None):
        self.host = host
        self.config = config if config is not None else host.platform.omx
        self.driver = OmxDriver(host, self.config)

    @property
    def delivers_data(self) -> bool:
        """False in the Fig. 3 ``ignore_bh_copy`` prediction mode."""
        return not self.config.ignore_bh_copy

    def open_endpoint(self, ep_id: int, space=None) -> "OmxEndpoint":
        from repro.core.endpoint import OmxEndpoint

        ep = OmxEndpoint(self.driver, ep_id, space=space)
        return ep
