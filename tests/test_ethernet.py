"""Tests for the Ethernet substrate: frames, skbuffs, link, NIC, softirq."""

import pytest

from repro.ethernet.frame import ETHERTYPE_MX, EthernetFrame, frames_needed
from repro.ethernet.link import Link, LossInjector
from repro.ethernet.nic import Nic
from repro.ethernet.skbuff import SkbuffPool
from repro.memory.buffers import AddressSpace
from repro.memory.bus import MemoryBus
from repro.memory.cache import CacheDirectory
from repro.params import CacheParams, HostParams, NicParams
from repro.simkernel import Simulator
from repro import units
from repro.units import KiB


def frame(n=1000, src=1, dst=2):
    return EthernetFrame(src_mac=src, dst_mac=dst, ethertype=ETHERTYPE_MX,
                         payload=None, payload_len=n)


class TestFrameMath:
    def test_wire_len_includes_overheads(self):
        f = frame(1000)
        assert f.frame_len == 1014
        assert f.wire_len == 1014 + units.ETHERNET_WIRE_OVERHEAD

    def test_minimum_frame_padding(self):
        f = frame(1)
        assert f.frame_len == units.ETHERNET_HEADER_LEN + 46

    def test_serialization_time_at_line_rate(self):
        f = frame(8192)
        t = f.serialization_time(units.TEN_GBE_BYTES_PER_SECOND)
        # 8230 wire bytes at 1244 MB/s ~ 6.6 us
        assert 6000 < t < 7200

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            frame(-1)

    def test_frames_needed(self):
        assert frames_needed(0, 9000, 32) == 1
        assert frames_needed(8968, 9000, 32) == 1
        assert frames_needed(8969, 9000, 32) == 2
        with pytest.raises(ValueError):
            frames_needed(10, 32, 32)


class TestSkbuffPool:
    def test_alloc_free_accounting(self):
        pool = SkbuffPool(AddressSpace())
        a = pool.alloc_rx()
        b = pool.alloc_tx()
        assert pool.outstanding == 2
        a.free()
        b.free()
        assert pool.outstanding == 0
        assert pool.peak_outstanding == 2

    def test_double_free_rejected(self):
        pool = SkbuffPool(AddressSpace())
        skb = pool.alloc_rx()
        skb.free()
        with pytest.raises(RuntimeError):
            skb.free()

    def test_rx_pages_recycled(self):
        pool = SkbuffPool(AddressSpace())
        a = pool.alloc_rx()
        region = a.head
        a.free()
        b = pool.alloc_rx()  # noqa: SKB001 (pool unit test; deliberately left live)
        assert b.head is region

    def test_frag_attach_zero_copy(self):
        pool = SkbuffPool(AddressSpace())
        skb = pool.alloc_tx()  # noqa: SKB001 (pool unit test; deliberately left live)
        user = AddressSpace().alloc(8 * KiB)
        skb.add_frag(user, 100, 4000)
        assert skb.total_len == 4000
        with pytest.raises(ValueError):
            skb.add_frag(user, 0, 0)


def make_wired_pair():
    sim = Simulator()
    hp = HostParams()
    np_ = NicParams()
    caches = CacheDirectory(CacheParams(), 4)
    pools = [SkbuffPool(AddressSpace()) for _ in range(2)]
    buses = [MemoryBus(sim, hp.bus) for _ in range(2)]
    nics = [
        Nic(sim, np_, mac=i + 1, pool=pools[i], bus=buses[i], caches=caches)
        for i in range(2)
    ]
    link = Link(sim, np_.link_bw, np_.propagation_delay)
    link.attach(nics[0], nics[1])
    return sim, nics, link


class TestLink:
    def test_frames_serialize_in_fifo_order(self):
        sim, nics, link = make_wired_pair()
        arrivals = []
        nics[1].frame_sink = lambda f: arrivals.append((f.payload, sim.now))

        def tx():
            for i in range(3):
                f = frame(4000)
                f.payload = i
                yield from link.a_to_b.transmit(f)

        sim.run_until(sim.process(tx()))
        sim.run()
        assert [a[0] for a in arrivals] == [0, 1, 2]
        assert arrivals[0][1] < arrivals[1][1] < arrivals[2][1]

    def test_directions_are_independent(self):
        sim, nics, link = make_wired_pair()
        got = []
        nics[0].frame_sink = lambda f: got.append(("a", sim.now))
        nics[1].frame_sink = lambda f: got.append(("b", sim.now))

        def both():
            p1 = sim.process(link.a_to_b.transmit(frame(9000)))
            p2 = sim.process(link.b_to_a.transmit(frame(9000)))
            yield p1
            yield p2

        sim.run_until(sim.process(both()))
        sim.run()
        # Full duplex: both arrive at essentially the same time.
        assert len(got) == 2
        assert abs(got[0][1] - got[1][1]) < 100

    def test_loss_injector_counts(self):
        sim, nics, link = make_wired_pair()
        got = []
        nics[1].frame_sink = lambda f: got.append(f)
        inj = LossInjector(drop_indices={1})
        link.inject_loss(True, inj)

        def tx():
            for _ in range(3):
                yield from link.a_to_b.transmit(frame(100))

        sim.run_until(sim.process(tx()))
        sim.run()
        assert len(got) == 2
        assert inj.dropped == 1


class TestNicRxRing:
    def test_ring_starts_full(self):
        sim, nics, link = make_wired_pair()
        assert len(nics[0]._rx_ring) == NicParams().rx_ring_size

    def test_frames_dropped_when_ring_empty(self):
        sim, nics, link = make_wired_pair()
        nics[1]._rx_ring.clear()
        nics[1].on_frame(frame(100))
        assert nics[1].rx_dropped == 1

    def test_refill_replenishes(self):
        sim, nics, link = make_wired_pair()
        while len(nics[1]._rx_ring) > 3:
            nics[1]._rx_ring.pop()
        nics[1].refill()
        assert len(nics[1]._rx_ring) == NicParams().rx_ring_size

    def test_dma_records_bus_and_invalidates_cache(self):
        sim, nics, link = make_wired_pair()

        class P:
            def gather_data(self):
                import numpy as np

                return np.ones(500, dtype=np.uint8)

        f = frame(500)
        f.payload = P()
        before = nics[1].bus.total_ingress
        nics[1].on_frame(f)
        assert nics[1].bus.total_ingress > before
        # queued for softirq is None here -> dropped but counted as rx
        assert nics[1].rx_frames == 1
