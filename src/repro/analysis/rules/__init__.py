"""Built-in lint rules, one per module.

Importing this package registers every rule with the framework registry
(:func:`repro.analysis.lint.all_rules` does it lazily).  To add a rule,
create ``<code>.py`` here with a ``@register_rule`` class and import it
below.
"""

from repro.analysis.rules import (
    det002,
    dma001,
    fab001,
    gen001,
    hlt001,
    off001,
    ord001,
    race001,
    sim001,
    skb001,
    unit001,
)

__all__ = ["skb001", "dma001", "sim001", "unit001", "gen001", "hlt001",
           "race001", "det002", "ord001", "off001", "fab001"]
