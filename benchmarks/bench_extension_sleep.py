"""Extension (§VI future work): predictive sleep instead of busy polling.

The paper's I/OAT lacks completion interrupts, so synchronous waits busy
poll.  §VI proposes benchmarking the engine to predict copy duration and
sleeping until completion is near.  ``OmxConfig.ioat_sleep_model`` enables
exactly that for the shm one-copy path; this bench shows it keeps the
throughput while releasing the CPU.
"""

import pytest

from conftest import show
from repro.cluster.testbed import build_single_node
from repro.reporting.table import Table
from repro.units import MiB
from repro.workloads import run_shm_pingpong


def _run(sleep_model: bool, size: int = 4 * MiB):
    tb = build_single_node(ioat_enabled=True, ioat_sleep_model=sleep_model)
    host = tb.hosts[0]
    host.cpus.reset_counters()
    t0 = tb.sim.now
    mib_s = run_shm_pingpong(tb, size, "same_die", iterations=6, warmup=1)
    elapsed = tb.sim.now - t0
    usage = host.cpus.usage_percent(elapsed)
    return mib_s, usage.get("driver", 0.0)


@pytest.mark.benchmark(group="extension-sleep")
def test_sleep_model_frees_cpu(once):
    def run():
        busy_mib, busy_cpu = _run(sleep_model=False)
        sleep_mib, sleep_cpu = _run(sleep_model=True)
        t = Table("EXTENSION: busy-poll vs predictive sleep (4 MiB shm)",
                  ["wait model", "MiB/s", "driver CPU %"])
        t.add_row("busy poll (paper)", busy_mib, busy_cpu)
        t.add_row("predictive sleep (§VI)", sleep_mib, sleep_cpu)
        return t, busy_mib, busy_cpu, sleep_mib, sleep_cpu

    table, busy_mib, busy_cpu, sleep_mib, sleep_cpu = once(run)
    show(table)
    # Same throughput class...
    assert sleep_mib > 0.9 * busy_mib
    # ...with a fraction of the CPU burn.
    assert sleep_cpu < 0.5 * busy_cpu
