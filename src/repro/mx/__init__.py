"""Myrinet Express wire protocol and the native MX/MXoE baseline stack.

Open-MX speaks the MXoE wire format so that commodity-Ethernet hosts can
interoperate with Myri-10G boards running the native firmware (§II-A).  This
package holds:

* :mod:`~repro.mx.wire` — the packet vocabulary shared by both stacks
  (tiny/small/medium eager, rendezvous, the pull protocol, notify/acks);
* :mod:`~repro.mx.native` — the native-MX baseline: matching and data
  deposit happen "in firmware" on the NIC, so the host never copies —
  the comparison target of Figs. 3, 8, 11 and 12.
"""

from repro.mx.wire import EndpointAddr, MxPacket, PktType
from repro.mx.native import NativeMxStack, NativeMxEndpoint

__all__ = ["EndpointAddr", "MxPacket", "NativeMxEndpoint", "NativeMxStack", "PktType"]
