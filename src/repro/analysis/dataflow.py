"""Project-wide dataflow: symbol table, call graph, taint reachability.

PR 1's rules are single-file AST matchers; the bug classes this layer
exists for are not.  Wall-clock taint that reaches a sim process through
two call hops, or a dict whose iteration order leaks into event
registration in another function, need *whole-program* context.  This
module builds it:

* :class:`Project` — every module of a lint sweep parsed once, with a
  symbol table of functions/methods (dotted qualnames) and a conservative
  call graph;
* call resolution — bare names through module scope and import aliases,
  ``self.method()`` within the enclosing class, dotted module calls
  through imports.  Unresolvable targets (duck-typed attributes, stored
  callables) become graph *leaves*, never edges: the graph under-
  approximates, so cross-module findings are high-confidence;
* :meth:`Project.taint` — backward reachability from any predicate over
  call sites ("calls ``time.time``"), with per-function witness edges so
  rules can print the full call path;
* :func:`unordered_iters` — per-function analysis of loops (and
  comprehensions) whose iteration order is not canonical: set literals
  and set/dict-typed locals and ``self.*`` attributes (types inferred
  from assignments across the enclosing class), ``.keys()/.values()/
  .items()`` views, and locals *derived* from those by list/tuple/
  comprehension.  A runtime-populated per-peer dict iterates in arrival
  order — which is schedule order — so feeding such an iteration into the
  scheduler propagates hidden schedule dependence; RACE001/ORD001 are the
  rules that consume this analysis.

Everything here is stdlib ``ast``; no imports of the linted code happen.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint import ModuleSource, is_generator

__all__ = [
    "CallSite",
    "FunctionInfo",
    "ModuleInfo",
    "Project",
    "TaintResult",
    "UnorderedLoop",
    "unordered_iters",
]


# ---------------------------------------------------------------------------
# symbol table
# ---------------------------------------------------------------------------


@dataclass
class CallSite:
    """One call expression inside a function body."""

    node: ast.Call
    #: import-alias-resolved dotted target (``time.sleep``), or None for
    #: expressions that are not name chains (``fns[0]()``)
    dotted: Optional[str]
    #: qualname of the project function this call resolves to, or None
    resolved: Optional[str] = None


class FunctionInfo:
    """One function or method: identity, body facts, outgoing calls."""

    def __init__(self, qualname: str, module: "ModuleInfo",
                 node: ast.FunctionDef, cls: Optional[ast.ClassDef]):
        self.qualname = qualname
        self.module = module
        self.node = node
        #: enclosing class definition, when this is a method
        self.cls = cls
        self.is_generator = is_generator(node)
        self.calls: List[CallSite] = []

    @property
    def name(self) -> str:
        return self.node.name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FunctionInfo {self.qualname}>"


class ModuleInfo:
    """One parsed module plus its function/class symbol table."""

    def __init__(self, name: str, source: ModuleSource):
        self.name = name
        self.source = source
        #: qualname -> FunctionInfo for every def in this module
        self.functions: Dict[str, FunctionInfo] = {}
        #: class name -> {method name -> FunctionInfo}
        self.classes: Dict[str, Dict[str, FunctionInfo]] = {}


def module_name_for(path: str) -> str:
    """Infer the dotted module name from a file path.

    ``.../src/repro/core/driver.py`` -> ``repro.core.driver``; paths with
    no ``repro`` component fall back to the file stem, which keeps
    single-snippet lints (``golden.py``) working with unique names.
    """
    parts = path.replace("\\", "/").split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for anchor in range(len(parts) - 1, -1, -1):
        if parts[anchor] == "repro":
            return ".".join(parts[anchor:])
    return parts[-1] if parts else path


class Project:
    """A set of modules analyzed together: symbols, call graph, taint."""

    def __init__(self, modules: Sequence[ModuleSource]):
        self.modules: Dict[str, ModuleInfo] = {}
        #: qualname -> FunctionInfo across every module
        self.functions: Dict[str, FunctionInfo] = {}
        for source in modules:
            info = ModuleInfo(module_name_for(source.path), source)
            # Last one wins on a name collision (same stem in two swept
            # trees); collisions cannot happen inside one package tree.
            self.modules[info.name] = info
            self._index_module(info)
        for info in self.modules.values():
            self._resolve_calls(info)
        self._callers: Optional[Dict[str, List[Tuple[str, CallSite]]]] = None

    # -- construction -------------------------------------------------------

    def _index_module(self, info: ModuleInfo) -> None:
        def add(fn: ast.FunctionDef, prefix: str, cls: Optional[ast.ClassDef]):
            qualname = f"{prefix}.{fn.name}"
            fi = FunctionInfo(qualname, info, fn, cls)
            info.functions[qualname] = fi
            self.functions[qualname] = fi
            if cls is not None:
                info.classes.setdefault(cls.name, {})[fn.name] = fi
            # nested defs: indexed under their parent's qualname
            for child in ast.iter_child_nodes(fn):
                _walk(child, qualname, cls)

        def _walk(node: ast.AST, prefix: str, cls: Optional[ast.ClassDef]):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                add(node, prefix, cls)
                return
            if isinstance(node, ast.ClassDef):
                for child in ast.iter_child_nodes(node):
                    _walk(child, f"{prefix}.{node.name}", node)
                return
            for child in ast.iter_child_nodes(node):
                _walk(child, prefix, cls)

        for node in info.source.tree.body:
            _walk(node, info.name, None)

    def _resolve_calls(self, info: ModuleInfo) -> None:
        source = info.source
        for fi in info.functions.values():
            for node in _own_nodes_no_defs(fi.node):
                if not isinstance(node, ast.Call):
                    continue
                site = CallSite(node, source.dotted_name(node.func))
                site.resolved = self._resolve_target(fi, site)
                fi.calls.append(site)

    def _resolve_target(self, caller: FunctionInfo,
                        site: CallSite) -> Optional[str]:
        func = site.node.func
        info = caller.module
        # self.method() / cls.method(): the enclosing class's methods
        if (isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name)
                and func.value.id in ("self", "cls") and caller.cls is not None):
            methods = info.classes.get(caller.cls.name, {})
            target = methods.get(func.attr)
            return target.qualname if target else None
        if isinstance(func, ast.Name):
            # nested def of this function (or an enclosing one), else a
            # module-level function of the same module
            prefix = caller.qualname
            while "." in prefix:
                nested = f"{prefix}.{func.id}"
                if nested in info.functions:
                    return nested
                prefix = prefix.rsplit(".", 1)[0]
            top = f"{info.name}.{func.id}"
            if top in info.functions:
                return top
        dotted = site.dotted
        if dotted is None:
            return None
        # import-alias chains: "repro.faults.campaign.run_cell", or a
        # from-import of the function itself ("run_cell" -> dotted form)
        if dotted in self.functions:
            return dotted
        # from repro.x import Class; Class.method() or Class() constructor
        if "." in dotted:
            head, _, tail = dotted.rpartition(".")
            mod = self.modules.get(head)
            if mod is not None and f"{head}.{tail}" in mod.functions:
                return f"{head}.{tail}"
        return None

    # -- queries ------------------------------------------------------------

    def module_for(self, source: ModuleSource) -> Optional[ModuleInfo]:
        name = module_name_for(source.path)
        info = self.modules.get(name)
        if info is not None and info.source is source:
            return info
        # lint_source re-parses: match by path instead of identity
        for info in self.modules.values():
            if info.source.path == source.path:
                return info
        return None

    def callers_of(self) -> Dict[str, List[Tuple[str, CallSite]]]:
        """Reverse call graph: callee qualname -> [(caller qualname, site)]."""
        if self._callers is None:
            rev: Dict[str, List[Tuple[str, CallSite]]] = {}
            for fi in self.functions.values():
                for site in fi.calls:
                    if site.resolved is not None:
                        rev.setdefault(site.resolved, []).append(
                            (fi.qualname, site))
            self._callers = rev
        return self._callers

    def taint(self, is_tainted_call: Callable[[CallSite], Optional[str]],
              ) -> "TaintResult":
        """Backward reachability from every call the predicate marks.

        ``is_tainted_call`` returns a human-readable reason (or None) per
        call site.  The result maps every function that can reach a taint
        — directly or through resolved call edges — to a witness: the
        direct reason, or the next hop toward it.
        """
        result = TaintResult()
        for fi in self.functions.values():
            for site in fi.calls:
                reason = is_tainted_call(site)
                if reason is not None:
                    result.direct.setdefault(fi.qualname, (reason, site))
        # BFS along the reverse graph from directly-tainted functions
        callers = self.callers_of()
        frontier = list(result.direct)
        seen: Set[str] = set(frontier)
        while frontier:
            callee = frontier.pop()
            for caller, site in callers.get(callee, ()):
                if caller in seen:
                    continue
                seen.add(caller)
                result.via[caller] = (callee, site)
                frontier.append(caller)
        return result


@dataclass
class TaintResult:
    """Output of :meth:`Project.taint`: witnesses for every tainted fn."""

    #: functions whose own body makes a tainted call: qualname -> (reason, site)
    direct: Dict[str, Tuple[str, CallSite]] = field(default_factory=dict)
    #: transitively tainted functions: qualname -> (next callee, call site)
    via: Dict[str, Tuple[str, CallSite]] = field(default_factory=dict)

    def reaches(self, qualname: str) -> bool:
        return qualname in self.direct or qualname in self.via

    def path(self, qualname: str) -> List[str]:
        """Call chain from ``qualname`` down to the tainted call."""
        chain = [qualname]
        while qualname in self.via:
            qualname = self.via[qualname][0]
            chain.append(qualname)
        return chain

    def reason(self, qualname: str) -> Optional[str]:
        """The direct-taint reason at the end of ``path(qualname)``."""
        end = self.path(qualname)[-1]
        entry = self.direct.get(end)
        return entry[0] if entry else None


def _own_nodes_no_defs(fn: ast.FunctionDef) -> Iterator[ast.AST]:
    """Walk ``fn``'s body without entering nested function definitions.

    Unlike :func:`repro.analysis.lint.own_nodes` this does not *yield* the
    nested defs either — their bodies belong to their own FunctionInfo.
    """
    todo: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while todo:
        node = todo.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        todo.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------------------
# unordered-iteration analysis (RACE001 / ORD001 substrate)
# ---------------------------------------------------------------------------


@dataclass
class UnorderedLoop:
    """One loop (or comprehension) over an order-unstable collection."""

    #: the ``ast.For`` or comprehension-bearing expression node
    node: ast.AST
    #: names bound by the loop target (including tuple unpacking)
    targets: Set[str]
    #: human-readable description of the iterated collection
    what: str
    #: nodes making up the loop body (empty for comprehensions)
    body: List[ast.stmt]


_DICT_CTORS = {"dict", "collections.defaultdict", "collections.OrderedDict",
               "collections.Counter"}
_SET_CTORS = {"set", "frozenset"}
_VIEW_METHODS = {"keys", "values", "items"}
#: wrapping an unordered iterable in these does not impose an order
_ORDER_PRESERVING = {"list", "tuple", "iter", "reversed", "enumerate"}
#: these impose a canonical order (sorted) or reduce to an order-blind
#: scalar; note set()/dict() do NOT belong here — the *content* of
#: ``set(xs)`` is order-blind but iterating the result is still unordered
_ORDER_FIXING = {"sorted", "min", "max", "sum", "len", "any", "all"}


def _is_unordered_ctor(module: ModuleSource, node: ast.AST) -> bool:
    """True when ``node`` evaluates to a fresh dict/set-like collection."""
    if isinstance(node, (ast.Dict, ast.Set, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = module.dotted_name(node.func)
        return dotted in _DICT_CTORS or dotted in _SET_CTORS
    return False


def _class_unordered_attrs(module: ModuleSource,
                           cls: Optional[ast.ClassDef]) -> Set[str]:
    """``self.X`` attributes assigned a dict/set anywhere in the class."""
    attrs: Set[str] = set()
    if cls is None:
        return attrs
    for node in ast.walk(cls):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if value is None or not _is_unordered_ctor(module, value):
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for tgt in targets:
            if (isinstance(tgt, ast.Attribute) and isinstance(tgt.value, ast.Name)
                    and tgt.value.id == "self"):
                attrs.add(tgt.attr)
    return attrs


def _target_names(target: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


class _UnorderedScope:
    """Per-function order-stability facts, built in one forward pass."""

    def __init__(self, module: ModuleSource, fn: ast.FunctionDef,
                 cls: Optional[ast.ClassDef]):
        self.module = module
        self.fn = fn
        self.self_attrs = _class_unordered_attrs(module, cls)
        #: local names currently bound to an unordered (or unordered-
        #: derived) value
        self.locals: Set[str] = set()

    # -- expression classification -----------------------------------------

    def iter_desc(self, expr: ast.AST) -> Optional[str]:
        """Why iterating ``expr`` has no canonical order (None = ordered)."""
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return "a set literal"
        if isinstance(expr, (ast.Dict, ast.DictComp)):
            return "a dict literal"
        if isinstance(expr, ast.Name):
            if expr.id in self.locals:
                return f"dict/set-typed local '{expr.id}'"
            return None
        if isinstance(expr, ast.Attribute):
            if (isinstance(expr.value, ast.Name) and expr.value.id == "self"
                    and expr.attr in self.self_attrs):
                return f"dict/set attribute 'self.{expr.attr}'"
            return None
        if isinstance(expr, ast.Call):
            func = expr.func
            dotted = self.module.dotted_name(func)
            if dotted in _ORDER_FIXING:
                return None
            if dotted in _DICT_CTORS or dotted in _SET_CTORS:
                return f"a fresh {dotted}()"
            if dotted in _ORDER_PRESERVING and expr.args:
                inner = self.iter_desc(expr.args[0])
                return f"{dotted}() over {inner}" if inner else None
            if (isinstance(func, ast.Attribute)
                    and func.attr in _VIEW_METHODS and not expr.args):
                base = ast.unparse(func.value) if hasattr(ast, "unparse") else "?"
                inner = self.iter_desc(func.value)
                # .keys()/.values()/.items() is dict-specific: the view is
                # order-unstable even when the base's type is unknown here —
                # a runtime-populated mapping iterates in arrival order.
                return f"'{base}.{func.attr}()'" if inner is None else (
                    f"'{base}.{func.attr}()' ({inner})")
            return None
        return None

    def derived_unordered(self, value: ast.AST) -> bool:
        """True when ``value`` inherits an unordered iteration order."""
        if self.iter_desc(value) is not None:
            return True
        if isinstance(value, (ast.ListComp, ast.GeneratorExp)):
            return any(self.iter_desc(gen.iter) is not None
                       or self._gen_over_derived(gen)
                       for gen in value.generators)
        if isinstance(value, ast.Call):
            dotted = self.module.dotted_name(value.func)
            if dotted in _ORDER_PRESERVING and value.args:
                return self.derived_unordered(value.args[0])
        return False

    def _gen_over_derived(self, gen: ast.comprehension) -> bool:
        return (isinstance(gen.iter, ast.Name) and gen.iter.id in self.locals)


def unordered_iters(module: ModuleSource, fn: ast.FunctionDef,
                    cls: Optional[ast.ClassDef] = None) -> List[UnorderedLoop]:
    """Find loops/comprehensions in ``fn`` iterating unordered collections.

    Performs a single forward pass over the statements in source order,
    tracking locals that become unordered-derived (``acked = [s for s in
    self.pending]`` makes ``acked`` order-unstable), then reports every
    ``for`` statement and comprehension generator whose iterable has no
    canonical order.
    """
    scope = _UnorderedScope(module, fn, cls)
    loops: List[UnorderedLoop] = []

    def visit_stmts(stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            visit(stmt)

    def visit(node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = node.value
            if value is not None:
                scan_expr(value)
                derived = scope.derived_unordered(value)
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for tgt in targets:
                    if isinstance(tgt, ast.Name):
                        if derived:
                            scope.locals.add(tgt.id)
                        else:
                            scope.locals.discard(tgt.id)
            return
        if isinstance(node, ast.For):
            desc = scope.iter_desc(node.iter)
            scan_expr(node.iter)
            if desc is not None:
                loops.append(UnorderedLoop(node, _target_names(node.target),
                                           desc, node.body))
            visit_stmts(node.body)
            visit_stmts(node.orelse)
            return
        # everything else: scan contained expressions for comprehensions,
        # then recurse into child statements
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                visit(child)
            else:
                scan_expr(child)

    def scan_expr(expr: ast.AST) -> None:
        for node in ast.walk(expr):
            if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                 ast.GeneratorExp)):
                for gen in node.generators:
                    desc = scope.iter_desc(gen.iter)
                    if desc is not None:
                        loops.append(UnorderedLoop(
                            node, _target_names(gen.target), desc, []))

    visit_stmts(fn.body)
    return loops
