"""Shared precomputed cost tables for fabric-scale hosts.

The full :class:`~repro.cluster.host.Host` object graph (cores, caches,
bus, skbuff pool, I/OAT channels, softirq engine...) costs real memory and
construction time per host; at 1024 hosts that is the "per-host Python
object blowup" ROADMAP item 1 forbids.  A :class:`CostTable` collapses the
per-chunk costs those models would charge into a handful of scalars derived
from the *same* :class:`~repro.params.Platform` numbers the full models
read, and is shared by every host of a fabric (one table per
(platform, backend) pair, memoized).

What each host pays per delivered chunk:

* **sender CPU** — library call + syscall + driver command, plus the
  driver's per-frame transmit cost;
* **receive CPU** — the BH per-frame base cost plus the receive copy:
  * ``memcpy``: the copy itself runs on the CPU at the *bus-contended*
    rate (the NIC is streaming at line rate into the same memory during a
    collective, exactly the Fig. 3 regime);
  * ``ioat``: the CPU only submits a descriptor and polls once; the copy
    runs on the DMA engine (a separate serializer), overlapped with the
    next chunk's BH — the paper's offload overlap at fabric scale.

Wire serialization is *not* here: it depends on the link a chunk crosses,
so the network layer computes it per port from the link's rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.params import Platform, clovertown_5000x
from repro.units import (
    ETHERNET_HEADER_LEN,
    ETHERNET_WIRE_OVERHEAD,
    KiB,
    SEC,
    transfer_time,
)

#: chunk granularity of the fabric flow model: two pull blocks' worth of
#: wire (16 KiB ~ 2 jumbo frames), coarse enough to keep 1024-host event
#: counts tractable, fine enough to pipeline store-and-forward hops
DEFAULT_CELL = 16 * KiB

BACKENDS = ("memcpy", "ioat")


@dataclass(frozen=True)
class CostTable:
    """Per-chunk cost scalars shared by every host of a fabric."""

    backend: str
    cell: int
    mtu: int
    #: sender CPU ticks: fixed per message / per frame
    send_base: int
    send_per_frame: int
    #: receiver CPU ticks per frame (BH base, before the copy)
    rx_per_frame: int
    #: receiver CPU copy rate (bytes/s); 0 when the copy is offloaded
    rx_copy_bw: float
    #: receiver CPU fixed cost per chunk copy (memcpy setup, or I/OAT
    #: submit + poll when offloaded)
    rx_copy_base: int
    #: DMA engine rate (bytes/s) and per-descriptor cost; 0/0 disables the
    #: engine stage (memcpy backend)
    dma_bw: float
    dma_base: int

    # -- per-chunk derived costs ----------------------------------------

    def frames(self, nbytes: int) -> int:
        return max(1, -(-nbytes // self.mtu))

    def wire_bytes(self, nbytes: int) -> int:
        """Bytes a chunk occupies on the wire (payload + framing)."""
        return nbytes + self.frames(nbytes) * (
            ETHERNET_HEADER_LEN + ETHERNET_WIRE_OVERHEAD)

    def send_cpu(self, nbytes: int) -> int:
        """Sender CPU ticks to post one whole message of ``nbytes``."""
        return self.send_base + self.send_per_frame * self.frames(nbytes)

    def rx_cpu(self, nbytes: int) -> int:
        """Receiver CPU serializer ticks for one chunk."""
        ticks = self.rx_per_frame * self.frames(nbytes) + self.rx_copy_base
        if self.rx_copy_bw:
            ticks += transfer_time(nbytes, self.rx_copy_bw)
        return max(ticks, 1)

    def rx_dma(self, nbytes: int) -> int:
        """DMA engine serializer ticks for one chunk (0 = no engine stage)."""
        if not self.dma_bw:
            return 0
        return max(self.dma_base + transfer_time(nbytes, self.dma_bw), 1)

    def chunk_sizes(self, nbytes: int) -> list[int]:
        """Split a message into cell-sized chunks (>= 1 chunk always)."""
        if nbytes <= self.cell:
            return [max(nbytes, 1)]
        full, rem = divmod(nbytes, self.cell)
        out = [self.cell] * full
        if rem:
            out.append(rem)
        return out


def _contended_copy_bw(platform: Platform) -> float:
    """CPU copy rate while the NIC streams at line rate (Fig. 3 regime).

    The bus model gives the copy ``(total_bw - nic_rate) / multiplier``
    when ingress is saturating, floored at ``min_copy_bw`` and capped at
    the uncached memcpy rate.
    """
    bus = platform.host.bus
    nic_rate = platform.nic.link_bw
    share = (bus.total_bw - nic_rate) / bus.traffic_multiplier
    return min(platform.host.memcpy.uncached_bw,
               max(share, bus.min_copy_bw))


@lru_cache(maxsize=None)
def cost_table(platform: Platform = None, backend: str = "memcpy",
               cell: int = DEFAULT_CELL) -> CostTable:
    """The shared cost table for one (platform, backend) pair."""
    if platform is None:
        platform = clovertown_5000x()
    if backend not in BACKENDS:
        raise ValueError(f"unknown fabric backend {backend!r}; "
                         f"expected one of {BACKENDS}")
    host = platform.host
    send_base = (host.library_call_cost + host.syscall_cost
                 + host.driver_command_cost)
    send_per_frame = platform.nic.tx_frame_cost
    if backend == "ioat":
        ioat = host.ioat
        return CostTable(
            backend=backend, cell=cell, mtu=platform.nic.mtu,
            send_base=send_base, send_per_frame=send_per_frame,
            rx_per_frame=host.bh_base_cost,
            rx_copy_bw=0.0,
            rx_copy_base=ioat.submit_cost + ioat.poll_cost,
            dma_bw=ioat.engine_bw,
            dma_base=ioat.per_descriptor_cost,
        )
    return CostTable(
        backend=backend, cell=cell, mtu=platform.nic.mtu,
        send_base=send_base, send_per_frame=send_per_frame,
        rx_per_frame=host.bh_base_cost,
        rx_copy_bw=_contended_copy_bw(platform),
        rx_copy_base=host.memcpy.setup_cost,
        dma_bw=0.0,
        dma_base=0,
    )


def reduce_ticks(nbytes: int, reduce_bw: float) -> int:
    """CPU ticks for a local reduction over ``nbytes`` (collectives)."""
    return max(int(round(nbytes * SEC / reduce_bw)), 1)
