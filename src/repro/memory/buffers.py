"""Numpy-backed memory regions and address spaces.

Every buffer in the simulator is a :class:`MemoryRegion`: a slice of real
``uint8`` storage plus a unique virtual address.  Copies between regions move
real bytes, so end-to-end data integrity is testable for every protocol path.

An :class:`AddressSpace` is a bump allocator handing out page-aligned virtual
addresses; each simulated process (and the kernel) owns one.  Virtual
addresses are globally unique across the whole simulation, which doubles as
the "DMA address" space (identity-mapped physical memory).
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np

from repro.memory import phantom
from repro.memory.layout import page_range
from repro.units import PAGE_SIZE

# Global allocator for unique address ranges across all address spaces.
_ADDR_COUNTER = itertools.count(start=1)
_SPACE_STRIDE = 1 << 40  # 1 TiB of virtual space per AddressSpace


class MemoryRegion:
    """A contiguous byte range with real backing storage.

    Parameters
    ----------
    addr:
        Starting virtual address (globally unique).
    data:
        The backing ``uint8`` array (owned or a view).
    owner:
        The address space this region belongs to, if any.
    """

    __slots__ = ("addr", "_data", "_size", "owner")

    def __init__(self, addr: int, data: "np.ndarray | int",
                 owner: Optional["AddressSpace"] = None):
        if isinstance(data, int):
            # Lazy backing: the zeros are materialized on first data access.
            # Phantom-mode workloads allocate megabytes they never touch
            # (every big write/copy is elided), so most regions stay virtual.
            self._data: Optional[np.ndarray] = None
            self._size = data
        else:
            if data.dtype != np.uint8:
                raise TypeError("MemoryRegion backing must be uint8")
            self._data = data
            self._size = int(data.size)
        self.addr = addr
        self.owner = owner

    @property
    def data(self) -> np.ndarray:
        d = self._data
        if d is None:
            d = self._data = np.zeros(self._size, dtype=np.uint8)
        return d

    # -- geometry -----------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def end(self) -> int:
        return self.addr + len(self)

    def pages(self) -> range:
        """Page frame numbers spanned by this region."""
        return page_range(self.addr, len(self))

    def subregion(self, offset: int, length: int) -> "MemoryRegion":
        """A view of ``[offset, offset+length)`` sharing the same storage."""
        if offset < 0 or length < 0 or offset + length > len(self):
            raise ValueError(
                f"subregion [{offset}, {offset + length}) outside region of "
                f"size {len(self)}"
            )
        return MemoryRegion(self.addr + offset, self.data[offset : offset + length], self.owner)

    # -- data access ----------------------------------------------------------

    def write(self, offset: int, payload: bytes | np.ndarray) -> None:
        """Store ``payload`` at ``offset`` (elided above the phantom floor)."""
        n = len(payload) if isinstance(payload, (bytes, bytearray)) else int(payload.size)
        if offset < 0 or offset + n > len(self):
            raise ValueError("write outside region")
        if phantom.elide(n):
            return
        buf = np.frombuffer(payload, dtype=np.uint8) if isinstance(payload, (bytes, bytearray)) else payload
        self.data[offset : offset + n] = buf

    def read(self, offset: int = 0, length: Optional[int] = None) -> np.ndarray:
        """A view of ``length`` bytes at ``offset``."""
        if length is None:
            length = len(self) - offset
        if offset < 0 or length < 0 or offset + length > len(self):
            raise ValueError("read outside region")
        return self.data[offset : offset + length]

    def tobytes(self) -> bytes:
        return self.data.tobytes()

    def fill_pattern(self, seed: int = 0) -> None:
        """Fill with a cheap deterministic pattern (for tests/benchmarks)."""
        n = len(self)
        if phantom.elide(n):
            return
        idx = np.arange(n, dtype=np.uint32)
        self.data[:] = ((idx * 2654435761 + seed * 97) >> 8).astype(np.uint8)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MemoryRegion addr={self.addr:#x} len={len(self)}>"


def copy_bytes(src: MemoryRegion, src_off: int, dst: MemoryRegion, dst_off: int, length: int) -> None:
    """Move real bytes between regions (the data plane of every copy path).

    In phantom mode the store is elided above the integrity floor; the
    caller's cost/cache/bus accounting is unaffected (content-blind model).
    """
    if length == 0 or phantom.elide(length):
        return
    dst.data[dst_off : dst_off + length] = src.data[src_off : src_off + length]


class AddressSpace:
    """Bump allocator for page-aligned, globally-unique virtual ranges."""

    def __init__(self, name: str = ""):
        self.name = name
        self.base = next(_ADDR_COUNTER) * _SPACE_STRIDE
        self._brk = self.base
        #: total bytes ever allocated (diagnostics)
        self.allocated = 0

    def alloc(self, length: int, align: int = PAGE_SIZE, fill: Optional[int] = None) -> MemoryRegion:
        """Allocate ``length`` bytes aligned to ``align``.

        ``fill`` optionally initialises every byte to a constant.
        """
        if length < 0:
            raise ValueError("negative allocation")
        if align < 1 or (align & (align - 1)):
            raise ValueError("alignment must be a power of two")
        addr = (self._brk + align - 1) & ~(align - 1)
        self._brk = addr + max(length, 1)
        self.allocated += length
        region = MemoryRegion(addr, length, owner=self)
        if fill is not None:
            region.data[:] = fill
        return region

    def alloc_pages(self, n_pages: int) -> MemoryRegion:
        """Allocate ``n_pages`` whole pages (kernel page allocator model)."""
        return self.alloc(n_pages * PAGE_SIZE, align=PAGE_SIZE)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<AddressSpace {self.name!r} base={self.base:#x}>"
