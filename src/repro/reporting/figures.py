"""Series/figure containers with ASCII rendering and CSV export.

The benchmark harness regenerates each paper figure as a :class:`Figure` —
a set of named series over message/copy sizes — printed as a log-x ASCII
chart plus a value table, and exportable to CSV for external plotting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Series:
    """One labelled curve."""

    label: str
    xs: list[float] = field(default_factory=list)
    ys: list[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.xs.append(x)
        self.ys.append(y)

    def y_at(self, x: float) -> Optional[float]:
        for xi, yi in zip(self.xs, self.ys):
            if xi == x:
                return yi
        return None


@dataclass
class Figure:
    """A reproduced paper figure."""

    figure_id: str
    title: str
    xlabel: str
    ylabel: str
    series: list[Series] = field(default_factory=list)

    def new_series(self, label: str) -> Series:
        s = Series(label)
        self.series.append(s)
        return s

    def get(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(label)

    # -- rendering ------------------------------------------------------------

    def render(self, width: int = 72, height: int = 18) -> str:
        header = f"== {self.figure_id}: {self.title} =="
        chart = ascii_plot(self.series, width=width, height=height,
                           xlabel=self.xlabel, ylabel=self.ylabel)
        return f"{header}\n{chart}\n{self.value_table()}"

    def value_table(self) -> str:
        """Numbers behind the plot, one row per x."""
        xs = sorted({x for s in self.series for x in s.xs})
        name_w = max(12, *(len(s.label) for s in self.series)) if self.series else 12
        head = f"{self.xlabel:>14} | " + " | ".join(
            f"{s.label:>{name_w}}" for s in self.series
        )
        lines = [head, "-" * len(head)]
        for x in xs:
            cells = []
            for s in self.series:
                y = s.y_at(x)
                cells.append(f"{y:>{name_w}.1f}" if y is not None else " " * name_w)
            lines.append(f"{_fmt_size(x):>14} | " + " | ".join(cells))
        return "\n".join(lines)

    def to_csv(self) -> str:
        xs = sorted({x for s in self.series for x in s.xs})
        rows = [",".join([self.xlabel] + [s.label for s in self.series])]
        for x in xs:
            cells = [str(int(x) if float(x).is_integer() else x)]
            for s in self.series:
                y = s.y_at(x)
                cells.append("" if y is None else f"{y:.3f}")
            rows.append(",".join(cells))
        return "\n".join(rows) + "\n"


def _fmt_size(x: float) -> str:
    n = int(x)
    if n >= 1 << 20 and n % (1 << 20) == 0:
        return f"{n >> 20}MiB"
    if n >= 1 << 10 and n % (1 << 10) == 0:
        return f"{n >> 10}KiB"
    return f"{n}B"


_MARKS = "*+ox#@%&"


def ascii_plot(series: list[Series], width: int = 72, height: int = 18,
               xlabel: str = "", ylabel: str = "", logx: bool = True) -> str:
    """Render curves on a character grid (log-x by default, like the paper)."""
    pts = [(x, y) for s in series for x, y in zip(s.xs, s.ys)]
    if not pts:
        return "(empty figure)"
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = 0.0, max(ys) * 1.05 or 1.0

    def xpos(x: float) -> int:
        if logx and x_lo > 0 and x_hi > x_lo:
            t = (math.log(x) - math.log(x_lo)) / (math.log(x_hi) - math.log(x_lo))
        elif x_hi > x_lo:
            t = (x - x_lo) / (x_hi - x_lo)
        else:
            t = 0.0
        return min(width - 1, max(0, int(t * (width - 1))))

    def ypos(y: float) -> int:
        t = (y - y_lo) / (y_hi - y_lo) if y_hi > y_lo else 0.0
        return min(height - 1, max(0, int(t * (height - 1))))

    grid = [[" "] * width for _ in range(height)]
    for si, s in enumerate(series):
        mark = _MARKS[si % len(_MARKS)]
        last = None
        for x, y in zip(s.xs, s.ys):
            cx, cy = xpos(x), ypos(y)
            if last is not None:
                # crude line interpolation between consecutive points
                lx, ly = last
                steps = max(abs(cx - lx), abs(cy - ly), 1)
                for k in range(steps + 1):
                    gx = lx + (cx - lx) * k // steps
                    gy = ly + (cy - ly) * k // steps
                    if grid[height - 1 - gy][gx] == " ":
                        grid[height - 1 - gy][gx] = "."
            grid[height - 1 - cy][cx] = mark
            last = (cx, cy)

    lines = []
    for r, row in enumerate(grid):
        y_val = y_hi - (y_hi - y_lo) * r / (height - 1)
        lines.append(f"{y_val:>9.0f} |{''.join(row)}")
    lines.append(" " * 10 + "+" + "-" * width)
    lines.append(f"{'':>10} {_fmt_size(x_lo)}{'':>{max(width - 20, 1)}}{_fmt_size(x_hi)}")
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]} {s.label}" for i, s in enumerate(series)
    )
    lines.append(f"  [{ylabel} vs {xlabel}]  {legend}")
    return "\n".join(lines)
