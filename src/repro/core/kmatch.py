"""In-kernel matching for eager messages (extension; paper §III-C / §VI).

The stock Open-MX receive path reports one event *per medium fragment* to
user space, which forces every 4 kB fragment copy to be synchronous and
makes the medium range the part the paper could not improve ("we are now
working on deporting the matching from user-space into the driver so that a
single completion event per medium message will be needed, making the
aforementioned overlapping possible", §VI).

``OmxConfig.kernel_matching = True`` enables exactly that rework:

* ``irecv`` additionally *posts* the receive to the driver, pinning the
  buffer (the price of the scheme: pinning moves to post time);
* the BH matches incoming tiny/small/medium traffic against the posted
  receives and copies fragments **straight into the application buffer** —
  one copy instead of two — using asynchronous I/OAT offload when enabled
  and the fragment qualifies;
* only the last fragment reports a single completion event (after waiting
  for this message's outstanding DMA copies, like the large path);
* traffic that matches nothing falls back to the classic eager-ring path,
  and the library tells the driver when it consumes a posted receive
  through that path (``unpost``).

Large messages (rendezvous) are untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator, Optional

from repro.core.offload import MessageOffloadState
from repro.core.types import EvType, OmxEvent, OmxRequest
from repro.mx.wire import EndpointAddr, MxPacket

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.driver import OmxDriver
    from repro.core.endpoint import OmxEndpoint
    from repro.ethernet.skbuff import Skbuff
    from repro.simkernel.cpu import Core


def _match_accepts(recv_match: int, recv_mask: int, send_match: int) -> bool:
    return (send_match & recv_mask) == (recv_match & recv_mask)


@dataclass
class _PostedRecv:
    req: OmxRequest
    pinned: object


@dataclass
class _KernelAssembly:
    """Driver-side reassembly of one kernel-matched eager message."""

    posted: _PostedRecv
    peer: EndpointAddr
    msg_id: int
    msg_len: int
    offload: Optional[MessageOffloadState]
    received: int = 0

    @property
    def complete(self) -> bool:
        return self.received >= self.msg_len


class KernelMatcher:
    """Driver-side posted-receive list and eager fast path."""

    def __init__(self, driver: "OmxDriver"):
        self.driver = driver
        self.host = driver.host
        self.config = driver.config
        self._posted: dict[int, list[_PostedRecv]] = {}
        self._assemblies: dict[tuple[int, EndpointAddr, int], _KernelAssembly] = {}
        # statistics
        self.kernel_matches = 0
        self.fallbacks = 0
        self.frags_offloaded = 0

    # ------------------------------------------------------------------
    # syscall context
    # ------------------------------------------------------------------

    def cmd_post_recv(self, core: "Core", ep: "OmxEndpoint", req: OmxRequest) -> Generator:
        """Register (and pin) a receive with the driver."""
        yield from self.driver._enter_syscall(core)
        try:
            pinned = None
            if req.length:
                sub = req.region.subregion(req.offset, req.length)
                pinned = yield from self.host.regcache.acquire(core, sub, "driver")
            self._posted.setdefault(ep.addr.endpoint, []).append(
                _PostedRecv(req, pinned)
            )
        finally:
            core.res.release()
        return None

    def cmd_close_endpoint(self, core: "Core", ep: "OmxEndpoint") -> Generator:
        """Endpoint teardown: drain in-flight assemblies, drop posted recvs.

        The caller (``OmxDriver.cmd_close_endpoint``) holds the core.  Any
        assembly still awaiting asynchronous copies gets the same last-
        fragment treatment as normal completion (wait, free skbuffs, reap),
        and the pin references of still-posted receives are released.
        """
        ep_id = ep.addr.endpoint
        doomed = [k for k in self._assemblies if k[0] == ep_id]
        for key in doomed:
            asm = self._assemblies.pop(key)
            if asm.offload is not None:
                yield from self.driver.offload.wait_all(core, asm.offload)
            if asm.posted.pinned is not None:
                yield from self.host.regcache.release(core, asm.posted.pinned, "driver")
        for entry in self._posted.pop(ep_id, []):
            if entry.pinned is not None:
                yield from self.host.regcache.release(core, entry.pinned, "driver")
        return None

    def unpost(self, ep: "OmxEndpoint", req: OmxRequest) -> None:
        """Library consumed this receive through the classic path."""
        entries = self._posted.get(ep.addr.endpoint, [])
        for i, entry in enumerate(entries):
            if entry.req is req:
                del entries[i]
                if entry.pinned is not None:
                    entry.pinned.refcount -= 1  # deferred unpin (regcache)
                return

    # ------------------------------------------------------------------
    # BH context
    # ------------------------------------------------------------------

    def _match(self, ep_id: int, send_match: int) -> Optional[_PostedRecv]:
        entries = self._posted.get(ep_id, [])
        for i, entry in enumerate(entries):
            if _match_accepts(entry.req.match_info, entry.req.mask, send_match):
                return entries.pop(i)
        return None

    def try_deliver(self, core: "Core", ep: "OmxEndpoint", skb: "Skbuff",
                    pkt: MxPacket) -> Generator:
        """Attempt the kernel fast path for one eager fragment.

        Returns True when consumed (skbuff ownership taken), False to fall
        back to the classic ring path.
        """
        key = (ep.addr.endpoint, pkt.src, pkt.msg_id)
        asm = self._assemblies.get(key)
        if asm is None:
            if pkt.frag_index != 0:
                # Mid-message fragment with no kernel assembly: the first
                # fragment went through the classic path (no receive was
                # posted then); keep the whole message there for coherence.
                self.fallbacks += 1
                return False
            posted = self._match(ep.addr.endpoint, pkt.match_info)
            if posted is None:
                self.fallbacks += 1
                return False
            # The library must not match this request a second time.
            ep.remove_posted(posted.req)
            offload = None
            if (self.config.ioat_enabled and not self.config.ignore_bh_copy
                    and self.driver.offload.backend.offloads):
                offload = self.driver.offload.new_message_state()
            asm = _KernelAssembly(posted, pkt.src, pkt.msg_id, pkt.msg_len, offload)
            if pkt.frag_count > 1:
                self._assemblies[key] = asm
            self.kernel_matches += 1

        req = asm.posted.req
        n = min(pkt.data_length, max(req.length - pkt.offset, 0))
        offloaded = False
        if n and not self.config.ignore_bh_copy:
            backend = self.driver.offload.backend
            if (
                asm.offload is not None
                and not asm.offload.memcpy_only
                and n >= backend.min_frag(self.config)
                and asm.offload.pending_count < self.config.max_pending_skbuffs
                and pkt.frag_index < pkt.frag_count - 1
            ):
                yield from backend.submit_fragment(
                    core, asm.offload, skb, 0, req.region,
                    req.offset + pkt.offset, n,
                )
                self.frags_offloaded += 1
                offloaded = True
            else:
                yield from self.host.copier.memcpy(
                    core, skb.head, 0, req.region, req.offset + pkt.offset, n, "bh"
                )
        if not offloaded:
            skb.free()
        asm.received += pkt.data_length

        if asm.complete or pkt.frag_count == 1:
            self._assemblies.pop(key, None)
            if asm.offload is not None:
                # Last fragment: wait for this message's outstanding copies
                # (the same discipline as the large-message path, Fig. 6).
                yield from self.driver.offload.wait_all(core, asm.offload)
            if asm.posted.pinned is not None:
                yield from self.host.regcache.release(core, asm.posted.pinned, "bh")
            req.xfer_length = min(asm.msg_len, req.length)
            ep.post_event(OmxEvent(
                EvType.RECV_LARGE_DONE, peer=asm.peer, msg_len=asm.msg_len, req=req,
            ))
            # The message is fully consumed: acknowledge immediately so the
            # sender's completion (and its retransmit state) releases now
            # instead of waiting for the delayed-ack timer.
            rx = self.driver._rx_session(ep.addr.endpoint, asm.peer)
            self.driver._queue_ack(ep.addr, asm.peer, rx.piggyback())
        return True
