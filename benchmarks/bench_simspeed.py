"""Simulator self-benchmark: CPU seconds and events/second per figure.

Successive PRs applied the paper's own medicine to the simulator (copy-
elided phantom payloads, allocation-free event fast paths, cached sweep
executor, and now the timer-wheel event kernel with batched same-tick
dispatch); this benchmark quantifies the result.  It regenerates the quick
figure suite serially with a **cold** cache (the honest configuration: no
parallelism, no memoization credit), records CPU seconds and simulator
events/second per figure, compares against the pre-optimization baseline,
and emits ``BENCH_simspeed.json``.

The baseline is **measured live**: the pre-PR source tree is extracted
from git (``BASELINE_REF``) into a temp dir and its quick suite is timed
in a subprocess immediately before the optimized run.  Back-to-back
measurement on the same machine state is what makes the speedup ratio
trustworthy on a noisy shared host — frozen numbers from another day
would compare against a different machine.  The ratio is computed from
**process CPU time**, not wall clock: the suite is single-threaded and
CPU-bound, so CPU time is the quantity the optimizations actually change,
while wall time also absorbs co-tenant load (observed swinging the same
baseline between 35 s and 46 s on this host).  When git or the baseline
ref is unavailable (shallow clone), the frozen same-machine numbers in
``FALLBACK_BASELINE_QUICK_SECONDS`` are used instead.

Besides the end-to-end suite, ``kernel_microbench`` times the three
scheduler primitives the timer-wheel PR rebuilt — far-horizon heap churn,
schedule-then-cancel timers, and same-tick dispatch bursts — so a
regression in one primitive is caught even if the figures happen to lean
on another.

Run standalone (``python benchmarks/bench_simspeed.py``) or under pytest.
"""

import json
import os
import subprocess
import sys
import tarfile
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.reporting.experiments import EXPERIMENTS
from repro.reporting.sweeps import SweepExecutor
from repro.simkernel.scheduler import _WHEEL_SHIFT, _WHEEL_SLOTS, Simulator

#: last commit before this PR's optimizations (byte-moving payloads,
#: process-per-delivery event loop, no sweep executor)
BASELINE_REF = "025bda4"

#: pre-PR quick-suite CPU seconds per figure, frozen at commit time —
#: used only when the live baseline cannot be measured (no git history)
FALLBACK_BASELINE_QUICK_SECONDS = {
    "fig3": 2.59,
    "fig7": 0.36,
    "micro": 0.015,
    "fig8": 3.64,
    "fig9": 1.61,
    "fig10": 3.19,
    "fig11": 22.1,
    "fig12": 1.48,
    "nas": 0.22,
}

#: acceptance floor: the optimized quick suite must run at least this many
#: times faster than the pre-PR baseline (single worker, cold cache, CPU
#: seconds).  Raised from 2.0 when the timer-wheel event kernel landed:
#: measured x3.3-x4.1 across repeated runs on this (noisy, SMT-shared)
#: host, so the floor sits below the observed minimum rather than at the
#: x4 median — a gate that flakes on co-tenant load protects nothing.
MIN_SPEEDUP = 3.0

#: absolute CPU budget for the whole optimized quick suite; generous vs
#: the ~10 s measured at commit time so slower machines still pass, but
#: far under the ~35-45 s pre-PR total
WALL_BUDGET_SECONDS = 20.0

#: per-figure events/second floors (optimized tree, cold cache, CPU time).
#: Set at roughly half the rates measured when the timer-wheel kernel
#: landed (fig11 ~295 k ev/s, fig10 ~367 k ev/s, nas ~115 k ev/s), so they
#: catch an event-kernel regression without flaking on slower machines.
#: ``micro`` runs zero simulation events and is exempt.
MIN_EVENTS_PER_SECOND = {
    "fig3": 140_000,
    "fig7": 120_000,
    "fig8": 140_000,
    "fig9": 140_000,
    "fig10": 170_000,
    "fig11": 140_000,
    "fig12": 100_000,
    "nas": 55_000,
}

OUTPUT = ROOT / "BENCH_simspeed.json"

#: child process that times each requested figure against whatever repro
#: tree PYTHONPATH points at; works for both the baseline and HEAD trees
#: (the pre-PR runners take only ``quick``, so no executor is passed)
_CHILD_TIMER = """
import json, sys, time
from repro.reporting.experiments import EXPERIMENTS
out = {}
for name in json.loads(sys.argv[1]):
    t0 = time.process_time()
    w0 = time.perf_counter()
    EXPERIMENTS[name](quick=True)
    out[name] = {"cpu_s": time.process_time() - t0,
                 "wall_s": time.perf_counter() - w0}
print(json.dumps(out))
"""


def measure_baseline(figures: list) -> "dict | None":
    """Time the pre-PR quick suite, extracted from git, in a subprocess.

    Returns ``{figure: {"cpu_s": ..., "wall_s": ...}}`` or None when the
    baseline tree cannot be produced (no git, shallow history) or fails
    to run.
    """
    with tempfile.TemporaryDirectory(prefix="simspeed-base-") as tmp:
        tar_path = Path(tmp) / "baseline.tar"
        try:
            subprocess.run(
                ["git", "-C", str(ROOT), "archive", "-o", str(tar_path),
                 BASELINE_REF, "src"],
                check=True, capture_output=True, timeout=60,
            )
        except (OSError, subprocess.SubprocessError):
            return None
        with tarfile.open(tar_path) as tf:
            tf.extractall(tmp)
        env = dict(os.environ, PYTHONPATH=str(Path(tmp) / "src"))
        try:
            proc = subprocess.run(
                [sys.executable, "-c", _CHILD_TIMER, json.dumps(figures)],
                check=True, capture_output=True, timeout=600, env=env,
                cwd=tmp, text=True,
            )
        except (OSError, subprocess.SubprocessError):
            return None
        return json.loads(proc.stdout.strip().splitlines()[-1])


def run_suite() -> dict:
    """Regenerate every quick figure; returns the benchmark report."""
    figures = list(FALLBACK_BASELINE_QUICK_SECONDS)
    baseline = measure_baseline(figures)
    baseline_mode = "measured" if baseline is not None else "frozen"
    if baseline is None:
        baseline = {
            name: {"cpu_s": cpu, "wall_s": cpu}
            for name, cpu in FALLBACK_BASELINE_QUICK_SECONDS.items()
        }

    executor = SweepExecutor(jobs=1, cache_dir=tempfile.mkdtemp(prefix="simspeed-"))
    report_figures = {}
    for name in figures:
        ev0 = Simulator.events_total
        t0 = time.process_time()
        w0 = time.perf_counter()
        EXPERIMENTS[name](quick=True, executor=executor)
        cpu = time.process_time() - t0
        wall = time.perf_counter() - w0
        events = Simulator.events_total - ev0
        base_cpu = baseline[name]["cpu_s"]
        report_figures[name] = {
            "cpu_s": round(cpu, 4),
            "wall_s": round(wall, 4),
            "events": events,
            "events_per_s": round(events / cpu) if cpu > 0 else 0,
            "baseline_cpu_s": round(base_cpu, 4),
            "baseline_wall_s": round(baseline[name]["wall_s"], 4),
            "speedup": round(base_cpu / cpu, 2) if cpu > 0 else float("inf"),
        }
    total_cpu = sum(f["cpu_s"] for f in report_figures.values())
    total_wall = sum(f["wall_s"] for f in report_figures.values())
    base_total = sum(baseline[name]["cpu_s"] for name in figures)
    return {
        "suite": "quick",
        "jobs": 1,
        "cache": "cold",
        "phantom": executor.phantom_mode,
        "baseline_ref": BASELINE_REF,
        "baseline_mode": baseline_mode,
        "figures": report_figures,
        "total_cpu_s": round(total_cpu, 3),
        "total_wall_s": round(total_wall, 3),
        "baseline_total_cpu_s": round(base_total, 3),
        "speedup_total": round(base_total / total_cpu, 2),
        "events_total": sum(f["events"] for f in report_figures.values()),
        "min_speedup_required": MIN_SPEEDUP,
        "cpu_budget_s": WALL_BUDGET_SECONDS,
        "min_events_per_s": MIN_EVENTS_PER_SECOND,
        "kernel_microbench": kernel_microbench(),
        "fabric_microbench": fabric_microbench(),
        "fabric_soak_microbench": fabric_soak_microbench(),
    }


# ---------------------------------------------------------------------------
# event-kernel microbenchmarks
# ---------------------------------------------------------------------------

#: work items per microbench scenario (kept small enough that the whole
#: microbench set adds well under a second to the suite)
_MICRO_N = 200_000

#: ops/second floors per scenario, at roughly a third of the rates
#: measured when the timer-wheel kernel landed — loose enough for slower
#: machines, tight enough to flag an accidental O(log n)-per-event (or
#: worse) regression in any one primitive
MIN_KERNEL_OPS_PER_SECOND = {
    "same_tick_burst": 800_000,
    "wheel_churn": 300_000,
    "heap_churn": 280_000,
    "timer_cancel": 230_000,
}

#: events/second floor for the fabric microbench (a 128-host 2-tier
#: fat-tree allreduce), at roughly a third of the measured rate — flags a
#: per-host or per-port scaling regression in the fabric world launcher
MIN_FABRIC_EVENTS_PER_SECOND = 90_000

#: events/second floor for the fabric gray-failure soak (fat_tree3,
#: flap + degrade + lossy + rank kill, shrink-capable allreduce rounds) —
#: at roughly a third of the measured rate, so the retry/reroute/health
#: machinery cannot quietly turn the chaos path superlinear
MIN_FABRIC_SOAK_EVENTS_PER_SECOND = 60_000

#: the fabric microbench workload (kept out of the baseline-compared
#: figure loop: the baseline tree predates repro.fabric)
_FABRIC_HOSTS = 128
_FABRIC_SIZE = 64 * 1024


def _noop() -> None:
    pass


def kernel_microbench() -> dict:
    """Time the scheduler primitives in isolation; returns {name: ops/s}.

    * ``same_tick_burst`` — one huge batched same-timestamp dispatch (the
      now-queue drain: event callback hops, ``call_soon``).
    * ``wheel_churn`` — timers inside the wheel horizon, pushed and fired
      while time advances (serialization/link-delay shaped load).
    * ``heap_churn`` — far-horizon timers that spill to the binary heap
      (retransmit/watchdog shaped load).
    * ``timer_cancel`` — ``schedule()`` + ``cancel()`` for every entry,
      then a drain over pure tombstones (watchdogs that never fire).
    """
    n = _MICRO_N
    out = {}

    sim = Simulator()
    t0 = time.process_time()
    for _ in range(n):
        sim.call_soon(_noop)
    sim.run()
    out["same_tick_burst"] = round(n / (time.process_time() - t0))

    sim = Simulator()
    t0 = time.process_time()
    # spread across ~200 distinct wheel slots (slots are 2**_WHEEL_SHIFT ns
    # wide) so the drain walks the wheel slot by slot, each slot holding a
    # small mini-heap — the steady-state figure-run shape
    for i in range(n):
        sim.call_at(sim.now + 1 + ((i % 200) << _WHEEL_SHIFT), _noop)
    sim.run()
    out["wheel_churn"] = round(n / (time.process_time() - t0))

    sim = Simulator()
    horizon = (_WHEEL_SLOTS + 2) << _WHEEL_SHIFT
    t0 = time.process_time()
    for i in range(n):
        sim.call_at(sim.now + horizon + i, _noop)
    sim.run()
    out["heap_churn"] = round(n / (time.process_time() - t0))

    sim = Simulator()
    t0 = time.process_time()
    handles = [
        sim.schedule(sim.now + 1 + ((i % 200) << _WHEEL_SHIFT), _noop)
        for i in range(n)
    ]
    for h in handles:
        h.cancel()
    sim.run()
    out["timer_cancel"] = round(n / (time.process_time() - t0))

    return out


def fabric_microbench() -> dict:
    """Time a 128-host 2-tier fat-tree allreduce end to end.

    Exercises the scalable rank launcher, per-edge route tables, and
    timestamp-batched port arbitration at a host count two orders of
    magnitude beyond the paper's two-node testbed.  Reported separately
    from the figure suite because the baseline tree predates the fabric
    subsystem.
    """
    from repro.fabric.sweep import run_fabric_collective

    t0 = time.process_time()
    cell = run_fabric_collective(
        topology="fat_tree2", hosts=_FABRIC_HOSTS, size=_FABRIC_SIZE,
        backend="ioat",
    )
    cpu_s = time.process_time() - t0
    return {
        "hosts": _FABRIC_HOSTS,
        "size": _FABRIC_SIZE,
        "events": cell["events"],
        "cpu_s": round(cpu_s, 3),
        "events_per_s": round(cell["events"] / cpu_s),
        "sim_time_us": cell["time_ns"] // 1000,
    }


def fabric_soak_microbench() -> dict:
    """Time one fabric gray-failure soak (the ``gray-crash`` spec) end to
    end: flapping + degraded + lossy trunks over a 3-tier fat-tree while a
    rank is crash-stopped mid-arc and the allreduce rounds shrink to the
    survivors.  This is the chaos path the resilience PR added — retries,
    reroutes, health sampling, declaration waves — so its events/second
    floor guards exactly the code the fault-free microbench never enters.
    """
    from repro.faults.soak import fabric_soak_suite, run_fabric_soak

    spec = [s for s in fabric_soak_suite("bench")
            if s.name == "gray-crash"][0]
    ev0 = Simulator.events_total
    t0 = time.process_time()
    report = run_fabric_soak(spec)
    cpu_s = time.process_time() - t0
    events = Simulator.events_total - ev0
    return {
        "soak": spec.name,
        "topology": report["topology"],
        "hosts": report["hosts"],
        "events": events,
        "cpu_s": round(cpu_s, 3),
        "events_per_s": round(events / cpu_s) if cpu_s > 0 else 0,
        "sim_time_us": report["end_time"] // 1000,
        "dead_ranks": report["dead_ranks"],
    }


# ---------------------------------------------------------------------------
# fabric-resilience zero-overhead gate
# ---------------------------------------------------------------------------

#: an idle FabricResilience attachment (constructed, never watching) must
#: keep the collective's CPU time within this factor of the bare run
RESILIENCE_OVERHEAD_MAX_RATIO = 1.05

#: wall-clock slack absorbing scheduler noise on a sub-second cell
RESILIENCE_CPU_EPSILON_S = 0.25

#: the comparison workload: big enough that a per-chunk hook would show,
#: small enough to keep the gate sub-second per side
_RES_HOSTS = 64
_RES_SIZE = 64 * 1024


def _run_fabric_bare_or_idle(idle_resilience: bool) -> dict:
    """One fat-tree allreduce; optionally with an idle resilience layer."""
    from repro.fabric.mpi import launch_fabric_world
    from repro.fabric.sweep import CELL_MAX_EVENTS, collective_body, make_topology

    spec = make_topology("fat_tree2", _RES_HOSTS, 2.0)
    world = launch_fabric_world(spec, backend="memcpy")
    if idle_resilience:
        from repro.fabric.resilience import FabricResilience

        FabricResilience(world.net, seed="bench-idle")  # no watch() call
    ev0 = Simulator.events_total
    t0 = time.process_time()
    world.run_spmd(collective_body("allreduce", _RES_SIZE),
                   max_events=CELL_MAX_EVENTS)
    world.finish()
    return {
        "cpu_s": time.process_time() - t0,
        "events": Simulator.events_total - ev0,
        "time_ns": world.sim.now,
    }


def measure_resilience_overhead() -> dict:
    """Back-to-back in-process comparison: bare world vs idle attachment."""
    bare = _run_fabric_bare_or_idle(False)
    idle = _run_fabric_bare_or_idle(True)
    return {
        "hosts": _RES_HOSTS,
        "size": _RES_SIZE,
        "bare": bare,
        "idle": idle,
        "cpu_ratio": round(idle["cpu_s"] / bare["cpu_s"], 4)
        if bare["cpu_s"] > 0 else 1.0,
    }


def test_resilience_zero_overhead():
    """An attached-but-idle resilience layer is free.

    Construction registers two counters and sets ``net.resilience`` —
    zero events scheduled, zero per-chunk hooks — so the simulated event
    count and the final simulated clock must be *bit-identical* to the
    bare world, and the CPU cost within the noise band.  This is the gate
    that keeps every pre-existing figure (none of which watch links)
    byte-stable across the resilience PR.
    """
    report = measure_resilience_overhead()
    bare, idle = report["bare"], report["idle"]
    print()
    print(f"  bare  {bare['cpu_s']:7.3f}s  {bare['events']:,} events  "
          f"t={bare['time_ns']} ns")
    print(f"  idle  {idle['cpu_s']:7.3f}s  {idle['events']:,} events  "
          f"t={idle['time_ns']} ns  (cpu x{report['cpu_ratio']:.3f})")
    assert idle["events"] == bare["events"], (
        f"idle resilience changed the simulation itself "
        f"({bare['events']:,} -> {idle['events']:,} events)"
    )
    assert idle["time_ns"] == bare["time_ns"], (
        f"idle resilience moved the simulated clock "
        f"({bare['time_ns']} -> {idle['time_ns']} ns)"
    )
    budget = (bare["cpu_s"] * RESILIENCE_OVERHEAD_MAX_RATIO
              + RESILIENCE_CPU_EPSILON_S)
    assert idle["cpu_s"] <= budget, (
        f"idle resilience costs CPU time ({bare['cpu_s']:.3f}s -> "
        f"{idle['cpu_s']:.3f}s, budget {budget:.3f}s)"
    )


# ---------------------------------------------------------------------------
# observability zero-overhead gate
# ---------------------------------------------------------------------------

#: last commit before the repro.obs subsystem (metrics registry, trace
#: exporter, phase profiler hooks on Core.busy)
OBS_BASELINE_REF = "57a4d5b"

#: disabled observability must keep the quick suite within this factor of
#: the pre-obs tree, in both wall time and simulator events
OBS_OVERHEAD_MAX_RATIO = 1.05

#: wall-clock slack absorbing scheduler noise on sub-second figures
OBS_WALL_EPSILON_S = 0.5

#: figures timed by the overhead gate: the event-heaviest pull path (fig3)
#: and the instrumented-everywhere stream path (fig9)
OBS_FIGURES = ["fig3", "fig9"]

#: child timer for the overhead gates: CPU seconds AND simulator events per
#: figure, serial, cold cache.  Works against any repro tree on PYTHONPATH
#: (events_total predates both refs).  CPU time for the same reason as the
#: main gate: overhead ratios near 1.0 drown in wall-clock noise.
_CHILD_TIMER_OBS = """
import json, sys, tempfile, time
from repro.reporting.experiments import EXPERIMENTS
from repro.reporting.sweeps import SweepExecutor
from repro.simkernel.scheduler import Simulator
out = {}
for name in json.loads(sys.argv[1]):
    ex = SweepExecutor(jobs=1, cache_dir=tempfile.mkdtemp(prefix="obsbench-"))
    ev0 = getattr(Simulator, "events_total", 0)
    t0 = time.process_time()
    EXPERIMENTS[name](quick=True, executor=ex)
    out[name] = {"wall_s": time.process_time() - t0,
                 "events": getattr(Simulator, "events_total", 0) - ev0}
print(json.dumps(out))
"""


def _time_tree(src_path: Path, figures: list) -> "dict | None":
    """Run the overhead child timer against one source tree."""
    env = dict(os.environ, PYTHONPATH=str(src_path), REPRO_JOBS="1")
    env.pop("REPRO_CACHE_DIR", None)
    try:
        proc = subprocess.run(
            [sys.executable, "-c", _CHILD_TIMER_OBS, json.dumps(figures)],
            check=True, capture_output=True, timeout=600, env=env, text=True,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return json.loads(proc.stdout.strip().splitlines()[-1])


def measure_tree_overhead(ref: str, figures: list) -> "dict | None":
    """Back-to-back comparison: the tree at ``ref`` vs HEAD.

    Both sides run in fresh subprocesses (serial, cold cache) so neither
    inherits the other's warmed allocator or bytecode cache unevenly.
    Returns None when the baseline tree cannot be produced.
    """
    with tempfile.TemporaryDirectory(prefix="tree-base-") as tmp:
        tar_path = Path(tmp) / "baseline.tar"
        try:
            subprocess.run(
                ["git", "-C", str(ROOT), "archive", "-o", str(tar_path),
                 ref, "src"],
                check=True, capture_output=True, timeout=60,
            )
        except (OSError, subprocess.SubprocessError):
            return None
        with tarfile.open(tar_path) as tf:
            tf.extractall(tmp)
        base = _time_tree(Path(tmp) / "src", figures)
        if base is None:
            return None
    head = _time_tree(ROOT / "src", figures)
    if head is None:
        return None
    report = {"baseline_ref": ref, "figures": {}}
    for name in figures:
        b, h = base[name], head[name]
        report["figures"][name] = {
            "baseline_cpu_s": round(b["wall_s"], 4),
            "cpu_s": round(h["wall_s"], 4),
            "cpu_ratio": round(h["wall_s"] / b["wall_s"], 4),
            "baseline_events": b["events"],
            "events": h["events"],
            "events_ratio": round(h["events"] / b["events"], 4)
            if b["events"] else 1.0,
        }
    return report


def measure_obs_overhead(figures=None) -> "dict | None":
    return measure_tree_overhead(OBS_BASELINE_REF, figures or OBS_FIGURES)


def test_obs_zero_overhead():
    """Disabled observability stays within 5 % of the pre-obs tree.

    The registry is read-only-lazy and the profiler hook is one ``is None``
    check per busy charge, so both the simulated event count and the wall
    clock of the quick figures must be unchanged (modulo timer noise).
    """
    report = measure_obs_overhead()
    if report is None:
        import pytest

        pytest.skip(f"cannot produce baseline tree {OBS_BASELINE_REF} "
                    "(no git history?)")
    print()
    for name, f in report["figures"].items():
        print(f"  {name:6s} cpu  {f['baseline_cpu_s']:7.3f}s -> "
              f"{f['cpu_s']:7.3f}s (x{f['cpu_ratio']:.3f})  "
              f"events {f['baseline_events']:,} -> {f['events']:,} "
              f"(x{f['events_ratio']:.3f})")
        assert f["events_ratio"] <= OBS_OVERHEAD_MAX_RATIO, (
            f"{name}: observability changed the simulation itself "
            f"({f['baseline_events']:,} -> {f['events']:,} events)"
        )
        budget = f["baseline_cpu_s"] * OBS_OVERHEAD_MAX_RATIO + OBS_WALL_EPSILON_S
        assert f["cpu_s"] <= budget, (
            f"{name}: disabled observability costs CPU time "
            f"({f['baseline_cpu_s']}s -> {f['cpu_s']}s, budget {budget:.3f}s)"
        )


# ---------------------------------------------------------------------------
# tie-break zero-overhead gate
# ---------------------------------------------------------------------------

#: last commit before the pluggable tie-break / race-detector PR
TIEBREAK_BASELINE_REF = "c300c84"

#: with no policy installed the push path must be the historical one, so
#: the wall budget is the same 5 % noise band as the obs gate — but the
#: event counts must match the pre-PR tree EXACTLY (bit-identical FIFO)
TIEBREAK_WALL_MAX_RATIO = 1.05
TIEBREAK_WALL_EPSILON_S = 0.5
TIEBREAK_FIGURES = ["fig3", "fig9"]


def test_tiebreak_zero_overhead():
    """Default FIFO is bit-identical and free: same events, same wall.

    The pluggable tie-break only shadows ``_push`` on simulators given a
    policy; the default path keeps the class method and the historical
    ``(time, seq)`` heap tuples.  Identical event counts against the
    pre-PR tree prove the simulations are the same simulations; the wall
    ratio bounds the cost of the (unused) machinery at noise level.
    """
    report = measure_tree_overhead(TIEBREAK_BASELINE_REF, TIEBREAK_FIGURES)
    if report is None:
        import pytest

        pytest.skip(f"cannot produce baseline tree {TIEBREAK_BASELINE_REF} "
                    "(no git history?)")
    print()
    for name, f in report["figures"].items():
        print(f"  {name:6s} cpu  {f['baseline_cpu_s']:7.3f}s -> "
              f"{f['cpu_s']:7.3f}s (x{f['cpu_ratio']:.3f})  "
              f"events {f['baseline_events']:,} -> {f['events']:,}")
        assert f["events"] == f["baseline_events"], (
            f"{name}: the default tie-break changed the simulation "
            f"({f['baseline_events']:,} -> {f['events']:,} events; FIFO must "
            "be bit-identical to the pre-PR scheduler)"
        )
        budget = (f["baseline_cpu_s"] * TIEBREAK_WALL_MAX_RATIO
                  + TIEBREAK_WALL_EPSILON_S)
        assert f["cpu_s"] <= budget, (
            f"{name}: disabled tie-break machinery costs CPU time "
            f"({f['baseline_cpu_s']}s -> {f['cpu_s']}s, budget {budget:.3f}s)"
        )


def test_simspeed_quick_suite():
    """The acceptance gate: >=4x vs pre-PR CPU time, inside the budget,
    with every figure above its events/second floor."""
    report = run_suite()
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print()
    print(f"  [baseline: {report['baseline_mode']} @ {report['baseline_ref']}, "
          "cpu seconds]")
    for name, f in report["figures"].items():
        print(f"  {name:6s} {f['baseline_cpu_s']:7.3f}s -> {f['cpu_s']:7.3f}s "
              f"(x{f['speedup']:.2f}, {f['events_per_s']:,} ev/s)")
    print(f"  TOTAL  {report['baseline_total_cpu_s']:7.3f}s -> "
          f"{report['total_cpu_s']:7.3f}s (x{report['speedup_total']:.2f})")
    for name, ops in report["kernel_microbench"].items():
        print(f"  kernel {name:16s} {ops:,} ops/s")
    fab = report["fabric_microbench"]
    print(f"  fabric allreduce {fab['hosts']}h  {fab['events']:,} events, "
          f"{fab['events_per_s']:,} ev/s")
    soak = report["fabric_soak_microbench"]
    print(f"  fabric soak {soak['soak']} {soak['hosts']}h  "
          f"{soak['events']:,} events, {soak['events_per_s']:,} ev/s")
    print(f"  [wrote {OUTPUT}]")
    assert report["speedup_total"] >= MIN_SPEEDUP, (
        f"quick suite speedup x{report['speedup_total']} is below the "
        f"x{MIN_SPEEDUP} acceptance floor"
    )
    assert report["total_cpu_s"] <= WALL_BUDGET_SECONDS, (
        f"quick suite took {report['total_cpu_s']}s CPU, over the "
        f"{WALL_BUDGET_SECONDS}s budget"
    )
    for name, floor in MIN_EVENTS_PER_SECOND.items():
        rate = report["figures"][name]["events_per_s"]
        assert rate >= floor, (
            f"{name}: {rate:,} events/s is below the {floor:,} floor "
            "(event-kernel regression?)"
        )
    for name, floor in MIN_KERNEL_OPS_PER_SECOND.items():
        ops = report["kernel_microbench"][name]
        assert ops >= floor, (
            f"kernel microbench {name}: {ops:,} ops/s is below the "
            f"{floor:,} floor"
        )
    fab_rate = report["fabric_microbench"]["events_per_s"]
    assert fab_rate >= MIN_FABRIC_EVENTS_PER_SECOND, (
        f"fabric microbench: {fab_rate:,} events/s is below the "
        f"{MIN_FABRIC_EVENTS_PER_SECOND:,} floor (fabric scaling "
        "regression?)"
    )
    soak_rate = report["fabric_soak_microbench"]["events_per_s"]
    assert soak_rate >= MIN_FABRIC_SOAK_EVENTS_PER_SECOND, (
        f"fabric soak microbench: {soak_rate:,} events/s is below the "
        f"{MIN_FABRIC_SOAK_EVENTS_PER_SECOND:,} floor (chaos-path "
        "regression: retries/reroutes/health sampling gone superlinear?)"
    )


if __name__ == "__main__":
    test_simspeed_quick_suite()
    test_resilience_zero_overhead()
    test_obs_zero_overhead()
    test_tiebreak_zero_overhead()
