"""Seqnum / ack / retransmit sessions for eager and control packets.

Ethernet gives no delivery guarantee, so Open-MX runs its own lightweight
reliability for everything that is not covered by the pull protocol's own
block re-requests: tiny/small/medium fragments, rendezvous announcements and
completion notifies.

Design (modelled on the real liback machinery):

* every reliable packet carries a per-session (src endpoint → dst endpoint)
  sequence number;
* the receiver remembers recently-seen seqnums (dedup) and acknowledges
  cumulatively — piggybacked on any outbound packet to the same peer, with a
  delayed explicit ACK as fallback.  A **duplicate** arrival forces a re-ack
  even when the cumulative value has not advanced: a duplicate means the
  sender never saw our ack (it was lost), and without the re-ack it would
  retransmit until ``MAX_RETRIES`` and dead-letter a delivered packet;
* the sender keeps unacked packets (tiny/small keep their skbuff copy,
  mediums re-reference user pages) and retransmits ``retransmit_timeout``
  after each (re)transmission — the timer tracks the earliest per-packet
  deadline, so a packet stamped mid-interval is not retransmitted late;
* a packet that exhausts ``MAX_RETRIES`` is **dead-lettered loudly**: its
  ack-watchers' failure callbacks fire with a typed
  :class:`~repro.core.errors.DeliveryFailed` and the session's ``on_dead``
  hook tells the driver, which fails the owning request.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Generator, Optional

from repro.core.errors import DeliveryFailed
from repro.health.backpressure import BackoffPolicy
from repro.mx.wire import EndpointAddr, MxPacket

if TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.scheduler import Simulator

#: give up after this many retransmissions of one packet
MAX_RETRIES = 8

#: delayed-ack latency when no return traffic piggybacks the ack
DELAYED_ACK = 20_000  # 20 µs


@dataclass
class _Pending:
    packet: MxPacket
    #: time of the most recent (re)transmission — the retransmit deadline
    #: for this packet is ``last_sent + timeout``
    last_sent: int
    retries: int = 0


class TxSession:
    """Sender half: assigns seqnums, holds packets until acked."""

    def __init__(self, sim: "Simulator", peer: EndpointAddr,
                 resend: Callable[[MxPacket], None], timeout: int,
                 on_dead: Optional[Callable[[MxPacket, DeliveryFailed], None]] = None,
                 backoff: Optional[BackoffPolicy] = None,
                 backoff_seed: str = ""):
        self.sim = sim
        self.peer = peer
        self.resend = resend
        self.timeout = timeout
        #: driver hook fired once per dead-lettered packet (typed failure)
        self.on_dead = on_dead
        #: exponential-backoff shape applied on receiver BUSY signals; the
        #: jitter RNG is string-seeded so the curve is deterministic per seed
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self._backoff_rng = random.Random(backoff_seed or f"backoff:{peer}")
        self.backoff_level = 0
        self._backoff_until = 0
        self.busy_backoffs = 0
        self.next_seq = 0
        self.pending: dict[int, _Pending] = {}
        self._timer_running = False
        self.retransmissions = 0
        self.dead: list[MxPacket] = []
        self.dead_letters = 0
        #: (on_ack, on_fail) callback pairs fired when a seqnum resolves
        self._ack_watchers: dict[
            int, list[tuple[Callable[[], None],
                            Optional[Callable[[DeliveryFailed], None]]]]
        ] = {}

    def stamp(self, pkt: MxPacket) -> int:
        """Assign the next seqnum and track the packet until acked."""
        pkt.seqnum = self.next_seq
        self.next_seq += 1
        self.pending[pkt.seqnum] = _Pending(pkt, self.sim.now)
        self._arm_timer()
        return pkt.seqnum

    def on_ack(self, ack_seqnum: int) -> None:
        """Cumulative ack: everything <= ack_seqnum is delivered."""
        acked = sorted(s for s in self.pending if s <= ack_seqnum)
        if acked:
            # Forward progress: the peer is keeping up again.
            self.backoff_level = 0
            self._backoff_until = 0
        for seq in acked:
            del self.pending[seq]
            for cb, _fail in self._ack_watchers.pop(seq, ()):
                cb()

    def note_busy(self) -> None:
        """The peer signalled overload (BUSY): hold off retransmissions.

        Each BUSY escalates the backoff level; the retransmit timer will not
        fire before ``_backoff_until``, replacing the retransmission hammer
        with an exponentially spaced, seeded-jitter probe schedule.
        """
        self.backoff_level = min(self.backoff_level + 1, self.backoff.max_level)
        delay = self.backoff.delay(self.backoff_level, self._backoff_rng)
        self._backoff_until = max(self._backoff_until, self.sim.now + delay)
        self.busy_backoffs += 1

    def fail_all(self, err: Exception) -> int:
        """Peer declared dead: fail every pending packet with ``err``.

        Watchers' failure callbacks fire (typed error); the ``on_dead`` hook
        does not — the caller is the driver itself, tearing down peer state
        wholesale rather than one dead letter at a time.
        """
        seqs = sorted(self.pending)
        for seq in seqs:
            entry = self.pending.pop(seq)
            self.dead.append(entry.packet)
            self.dead_letters += 1
            for _cb, on_fail in self._ack_watchers.pop(seq, ()):
                if on_fail is not None:
                    on_fail(err)
        return len(seqs)

    def watch_ack(self, seqnum: int, cb: Callable[[], None],
                  on_fail: Optional[Callable[[DeliveryFailed], None]] = None) -> None:
        """Run ``cb`` once ``seqnum`` is acked (fires immediately if gone).

        ``on_fail`` (if given) runs instead when the packet dead-letters, so
        the watcher cannot stay armed forever on a lossy wire.
        """
        if seqnum not in self.pending:
            cb()
        else:
            self._ack_watchers.setdefault(seqnum, []).append((cb, on_fail))

    def collect_counters(self) -> dict[str, int]:
        """Per-session reliability counters (``omx_counters`` analogue)."""
        return {
            "retransmissions": self.retransmissions,
            "dead_letters": self.dead_letters,
            "pending": len(self.pending),
        }

    def _arm_timer(self) -> None:
        if self._timer_running:
            return
        self._timer_running = True
        self.sim.daemon(self._timer(), name=f"retx-{self.peer}")

    def _timer(self) -> Generator:
        while self.pending:
            now = self.sim.now
            deadline = min(e.last_sent for e in self.pending.values()) + self.timeout
            if self._backoff_until > deadline:
                # BUSY backoff: no retransmission before the backoff expires.
                deadline = self._backoff_until
            if deadline > now:
                # Sleep to the *earliest* per-packet deadline.  The old
                # fixed-period sleep retransmitted a packet stamped
                # mid-interval up to 2x the timeout late.
                yield deadline - now  # bare-int sleep
                continue  # acks may have landed while sleeping: re-evaluate
            for seq in sorted(self.pending):
                entry = self.pending.get(seq)
                if entry is None or now - entry.last_sent < self.timeout:
                    continue
                if entry.retries >= MAX_RETRIES:
                    self._dead_letter(seq, entry)
                    continue
                entry.retries += 1
                entry.last_sent = now
                self.retransmissions += 1
                self.resend(entry.packet)
        self._timer_running = False

    def _dead_letter(self, seq: int, entry: _Pending) -> None:
        """Give up on one packet — loudly (typed error, watchers fail)."""
        del self.pending[seq]
        self.dead.append(entry.packet)
        self.dead_letters += 1
        err = DeliveryFailed(self.peer, entry.packet, retries=entry.retries)
        for _cb, on_fail in self._ack_watchers.pop(seq, ()):
            if on_fail is not None:
                on_fail(err)
        if self.on_dead is not None:
            self.on_dead(entry.packet, err)


class RxSession:
    """Receiver half: duplicate filtering and cumulative-ack generation.

    Delivery is accepted in any order; ``cumulative`` tracks the highest
    seqnum below which everything has been seen (the value piggybacked on
    outbound traffic).
    """

    def __init__(self, sim: "Simulator", owner: EndpointAddr, peer: EndpointAddr,
                 send_ack: Callable[[EndpointAddr, EndpointAddr, int], None]):
        self.sim = sim
        #: the local endpoint this session belongs to (ACK source address)
        self.owner = owner
        self.peer = peer
        self.send_ack = send_ack
        self._seen: set[int] = set()
        self.cumulative = -1
        self._ack_scheduled = False
        self._acked_up_to = -1
        #: duplicates seen since the last ack actually went out; a truthy
        #: value forces the delayed ack even if ``cumulative`` is unchanged
        self._dup_since_ack = False
        self.duplicates = 0
        #: delayed acks whose only purpose was re-acking a duplicate
        self.reacks = 0

    def accept(self, pkt: MxPacket) -> bool:
        """True if this packet is new (deliver it); False for duplicates."""
        seq = pkt.seqnum
        if seq < 0:
            return True  # unsequenced packet (pull traffic)
        if seq <= self.cumulative or seq in self._seen:
            self.duplicates += 1
            self._dup_since_ack = True
            self._schedule_ack()  # re-ack so the sender stops resending
            return False
        self._seen.add(seq)
        while (self.cumulative + 1) in self._seen:
            self.cumulative += 1
            self._seen.remove(self.cumulative)
        self._schedule_ack()
        return True

    def piggyback(self) -> int:
        """Cumulative ack value to embed in an outbound packet."""
        self._acked_up_to = self.cumulative
        self._dup_since_ack = False
        return self.cumulative

    def note_keepalive(self) -> None:
        """An unsequenced KEEPALIVE arrived: the peer asks for proof of life.

        Force the delayed ack even when ``cumulative`` has not advanced —
        sustained mutual silence usually means our last ack was lost."""
        self._dup_since_ack = True
        self._schedule_ack()

    def collect_counters(self) -> dict[str, int]:
        """Per-session reliability counters (``omx_counters`` analogue)."""
        return {
            "duplicates": self.duplicates,
            "reacks": self.reacks,
            "cumulative": self.cumulative,
        }

    def _schedule_ack(self) -> None:
        if self._ack_scheduled:
            return
        self._ack_scheduled = True

        def delayed() -> Generator:
            yield DELAYED_ACK  # bare-int sleep
            self._ack_scheduled = False
            if self.cumulative > self._acked_up_to or self._dup_since_ack:
                # The duplicate case is the lost-ACK recovery path: without
                # it the sender livelocks into retransmitting a delivered
                # packet until MAX_RETRIES kills it.
                if self.cumulative <= self._acked_up_to:
                    self.reacks += 1
                self._acked_up_to = self.cumulative
                self._dup_since_ack = False
                self.send_ack(self.owner, self.peer, self.cumulative)

        self.sim.daemon(delayed(), name=f"delack-{self.peer}")


def register_reliability_metrics(reg, driver) -> None:
    """Publish driver-wide reliability sums into a metrics registry.

    Sessions come and go per peer, so the metrics aggregate over the
    driver's live session tables at read time.
    """
    reg.counter("reliability", "retransmissions",
                lambda: sum(s.retransmissions
                            for s in driver._tx_sessions.values()))
    reg.counter("reliability", "duplicates_filtered",
                lambda: sum(s.duplicates for s in driver._rx_sessions.values()))
    reg.counter("reliability", "reacks",
                lambda: sum(s.reacks for s in driver._rx_sessions.values()))
    reg.counter("reliability", "busy_backoffs",
                lambda: sum(s.busy_backoffs for s in driver._tx_sessions.values()),
                "BUSY-triggered sender backoff episodes")
