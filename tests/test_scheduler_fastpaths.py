"""Event-kernel fast paths: timer wheel, now-queue, and cancellation.

The scheduler keeps three containers (now-queue, timer wheel, binary heap)
that must be observationally identical to the single seq-keyed heap they
replaced.  These tests pin the contract from the outside: cancellation
semantics, far-horizon spill ordering, batched same-tick dispatch, and a
hypothesis differential against the keyed (historical) drain loop.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.simkernel import Simulator
from repro.simkernel.scheduler import _WHEEL_SHIFT, _WHEEL_SLOTS
from repro.simkernel.tiebreak import FifoTieBreak

#: one wheel rotation in ticks; anything scheduled at least this far ahead
#: of ``now`` must spill to the binary heap
HORIZON = _WHEEL_SLOTS << _WHEEL_SHIFT


class TestTimerHandleCancellation:
    def test_cancel_before_fire_suppresses_the_action(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(100, fired.append, "never")
        sim.call_at(200, fired.append, "after")
        handle.cancel()
        sim.run()
        assert fired == ["after"]
        assert sim.now == 200

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(50, fired.append, 1)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled
        sim.run()
        assert fired == []

    def test_cancelled_entries_are_not_counted_as_events(self):
        sim = Simulator()
        for _ in range(10):
            sim.schedule(5, lambda: None).cancel()
        live = sim.schedule(5, lambda: None)
        sim.run()
        assert not live.cancelled
        assert sim.events_processed == 1

    def test_cancel_far_horizon_timer(self):
        """Cancellation works the same for heap-resident (far) entries."""
        sim = Simulator()
        fired = []
        far = sim.schedule(2 * HORIZON, fired.append, "far")
        assert far.when == 2 * HORIZON
        sim.call_at(10, fired.append, "near")
        far.cancel()
        sim.run()
        assert fired == ["near"]

    def test_cancel_same_tick_entry(self):
        """Now-queue entries (when == now) honour cancellation too."""
        sim = Simulator()
        fired = []
        handle = sim.schedule(0, fired.append, "soon")
        handle.cancel()
        sim.call_soon(fired.append, "kept")
        sim.run()
        assert fired == ["kept"]

    def test_peek_skips_tombstones(self):
        sim = Simulator()
        sim.schedule(7, lambda: None).cancel()
        sim.schedule(9, lambda: None)
        assert sim.peek() == 9


class TestFarHorizonSpill:
    def test_heap_and_wheel_merge_in_fifo_order(self):
        """Entries pushed beyond the horizon (heap) and within it (wheel)
        for the *same* target time run in push order: heap entries were
        pushed earlier (the time was farther away), so they go first."""
        sim = Simulator()
        log = []
        target = HORIZON + 500
        sim.call_at(target, log.append, "pushed-far")   # beyond horizon -> heap
        sim.call_at(target - 10, _advance_then, sim, target, log)
        sim.run()
        assert log == ["pushed-far", "pushed-near"]

    def test_spill_boundary(self):
        """One tick inside the horizon stays in the wheel; the first tick
        at the horizon spills — both fire, in time order."""
        sim = Simulator()
        log = []
        inside = ((_WHEEL_SLOTS - 1) << _WHEEL_SHIFT)
        outside = HORIZON << 1
        sim.call_at(outside, log.append, "outside")
        sim.call_at(inside, log.append, "inside")
        sim.run()
        assert log == ["inside", "outside"]
        assert sim.now == outside

    def test_many_horizons_of_timers(self):
        """Timers spread over several wheel rotations all fire, in order."""
        sim = Simulator()
        times = []
        whens = [i * (HORIZON // 3) + 1 for i in range(12)]
        for when in reversed(whens):
            sim.call_at(when, times.append, when)
        sim.run()
        assert times == sorted(whens)


def _advance_then(sim, target, log):
    # Runs at target-10: schedules for `target`, now *within* the horizon,
    # after the far entry for the same time already sits in the heap.
    sim.call_at(target, log.append, "pushed-near")


@pytest.mark.racecheck
class TestSameTickDispatch:
    """Batched same-tick dispatch under every tie-break policy.

    Under FIFO the order is append order; under the shuffle policies the
    *order* may legally differ, but the batch contents, the event count,
    and the final clock must be invariant — that is the contract layers
    above are allowed to rely on."""

    def test_same_tick_batch_runs_complete_and_on_time(self):
        sim = Simulator()
        log = []
        for i in range(64):
            sim.call_at(1000, log.append, i)
        sim.run()
        assert sorted(log) == list(range(64))
        assert sim.now == 1000
        assert sim.events_processed == 64
        if sim.tiebreak is None:
            assert log == list(range(64))  # documented FIFO tie-break

    def test_callbacks_scheduling_same_tick_work_join_the_batch(self):
        sim = Simulator()
        log = []

        def parent(i):
            log.append(("parent", i))
            sim.call_soon(log.append, ("child", i))

        for i in range(8):
            sim.call_at(500, parent, i)
        sim.run()
        assert sim.now == 500
        assert sorted(log) == sorted(
            [("parent", i) for i in range(8)] + [("child", i) for i in range(8)]
        )


# ---------------------------------------------------------------------------
# differential oracle: fast containers vs the keyed (historical) heap loop
# ---------------------------------------------------------------------------

#: one schedule instruction: (delay-ish value, spawn-children?).  Delays are
#: drawn across all three container regimes: 0 (now-queue), small (wheel),
#: and beyond-horizon (heap spill).
_op = st.tuples(
    st.one_of(
        st.just(0),
        st.integers(min_value=1, max_value=1 << _WHEEL_SHIFT),
        st.integers(min_value=1, max_value=HORIZON - 1),
        st.integers(min_value=HORIZON, max_value=3 * HORIZON),
    ),
    st.booleans(),
)


def _run_program(sim: Simulator, program) -> tuple[list, int, int]:
    """Execute a schedule program; returns (log, end_time, event_count)."""
    log = []

    def action(idx, delay, spawn):
        log.append((sim.now, idx))
        if spawn:
            # re-schedule from inside a callback: same tick and future,
            # exercising the mid-drain push rules
            sim.call_soon(log.append, (sim.now, (idx, "soon")))
            sim.call_at(sim.now + 1 + (delay % 97), log.append,
                        (sim.now + 1 + (delay % 97), (idx, "later")))

    for idx, (delay, spawn) in enumerate(program):
        sim.call_at(sim.now + delay, action, idx, delay, spawn)
    sim.run()
    return log, sim.now, sim.events_processed


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(program=st.lists(_op, min_size=1, max_size=40))
def test_wheel_heap_nowq_identical_to_keyed_heap(program):
    """The three-container kernel replays any schedule program with the
    exact order, clock, and event count of the single keyed heap (the
    historical drain loop, forced via an explicit FIFO policy)."""
    fast = _run_program(Simulator(), program)
    keyed = _run_program(Simulator(tiebreak=FifoTieBreak()), program)
    assert fast == keyed


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(program=st.lists(_op, min_size=1, max_size=30),
       cancel_every=st.integers(min_value=2, max_value=5))
def test_cancellation_identical_to_keyed_heap(program, cancel_every):
    """Tombstoned timers perturb neither order nor event counts, on both
    kernels identically."""
    def run(sim):
        log = []
        handles = []
        for idx, (delay, _spawn) in enumerate(program):
            if idx % cancel_every == 0:
                handles.append(sim.schedule(sim.now + delay, log.append, idx))
            else:
                sim.call_at(sim.now + delay, log.append, idx)
        for h in handles:
            h.cancel()
        sim.run()
        return log, sim.now, sim.events_processed

    assert run(Simulator()) == run(Simulator(tiebreak=FifoTieBreak()))
