"""Fabric sweep cells: collectives over generated topologies, as data.

One *cell* runs one collective (allreduce / alltoall / bcast /
reduce_scatter / allgather / barrier) over one generated topology with one
receive-copy backend and returns a JSON-stable dict — no wall-clock, no
object references — so the sweep executor can cache it and two runs of the
same cell compare byte-identical (the ``fabric_sweep`` acceptance bar).

Three entry points:

* :func:`run_fabric_collective` — build spec, launch a
  :class:`~repro.fabric.mpi.FabricWorld`, run the collective SPMD, report;
* :func:`point_fabric` / :func:`point_fabric_cell` — top-level picklable
  wrappers registered as the ``"fabric"`` / ``"fabric_cell"`` lazy point
  kinds in :mod:`repro.reporting.sweeps`;
* :func:`fabric_scenario` — the ``--races`` corpus entry: the same cell
  packaged as a zero-arg callable returning an
  :class:`~repro.analysis.races.Observation`.

The fault cell (:func:`run_fabric_cell`) arms a
:class:`~repro.faults.plan.FaultPlan` whose ``fabric`` specs kill named
links mid-collective, then classifies the outcome: ``"rerouted"`` when the
collective completed over recomputed ECMP tables, ``"failed:<Type>"`` when
the partition surfaced as a typed :class:`~repro.core.errors.TransferError`.
Both classifications are byte-identical per seed.
"""

from __future__ import annotations

import math
from typing import Callable, Generator, Optional

from repro.core.errors import TransferError
from repro.fabric.cost import DEFAULT_CELL
from repro.fabric.mpi import FabricRank, FabricWorld, launch_fabric_world
from repro.fabric.spec import (
    TopologySpec,
    dragonfly,
    fat_tree,
    pair_topology,
    star_topology,
)
from repro.units import KiB, throughput_mib_s, us

#: topology kinds a sweep point may name
TOPOLOGIES = ("pair", "star", "fat_tree2", "fat_tree3", "dragonfly")

#: collectives a sweep point may name (all run unmodified generators)
COLLECTIVES = ("barrier", "bcast", "allreduce", "reduce_scatter",
               "allgather", "alltoall")

#: event-budget fuse per cell: generous for a 1024-host allreduce, small
#: enough that a livelocked cell dies loudly instead of spinning forever
CELL_MAX_EVENTS = 50_000_000


def make_topology(topology: str, hosts: int, oversubscription: float = 1.0,
                  hosts_per_edge: int = 8,
                  ecmp_seed: str = "fabric") -> TopologySpec:
    """Build the named topology for (at least) ``hosts`` hosts.

    Generators have structural constraints (divisibility, k-arity); the
    spec returned may round the host count up to the nearest shape the
    generator supports — callers read the actual count off the spec.
    """
    if topology == "pair":
        return pair_topology()
    if topology == "star":
        return star_topology(max(hosts, 2))
    if topology == "fat_tree2":
        hpe = math.gcd(hosts, hosts_per_edge) if hosts % hosts_per_edge else \
            hosts_per_edge
        return fat_tree(hosts=hosts, tiers=2, hosts_per_edge=max(hpe, 1),
                        oversubscription=oversubscription,
                        ecmp_seed=ecmp_seed)
    if topology == "fat_tree3":
        k = 2
        while k * k * k // 4 < hosts:
            k += 2
        return fat_tree(tiers=3, k=k, oversubscription=oversubscription,
                        ecmp_seed=ecmp_seed)
    if topology == "dragonfly":
        groups = max(2, -(-hosts // 4))
        return dragonfly(groups=groups, routers_per_group=2,
                         hosts_per_router=2, ecmp_seed=ecmp_seed)
    raise ValueError(f"unknown topology {topology!r}; "
                     f"expected one of {TOPOLOGIES}")


def collective_body(collective: str, size: int,
                    algo: str = "auto") -> Callable[[FabricRank], Generator]:
    """The SPMD body for one collective; ``size`` is the per-rank payload
    (per-peer block for alltoall / allgather / reduce_scatter)."""
    if collective not in COLLECTIVES:
        raise ValueError(f"unknown collective {collective!r}; "
                         f"expected one of {COLLECTIVES}")

    def body(rank: FabricRank) -> Generator:
        p = rank.size
        if collective == "barrier":
            yield from rank.barrier()
        elif collective == "bcast":
            buf = rank.space.alloc(size)
            yield from rank.bcast(buf, root=0)
        elif collective == "allreduce":
            sendbuf = rank.space.alloc(size)
            recvbuf = rank.space.alloc(size)
            yield from rank.allreduce(sendbuf, recvbuf, algo=algo)
        elif collective == "reduce_scatter":
            sendbuf = rank.space.alloc(size * p)
            recvbuf = rank.space.alloc(size)
            yield from rank.reduce_scatter(sendbuf, recvbuf, size)
        elif collective == "allgather":
            sendbuf = rank.space.alloc(size)
            recvbuf = rank.space.alloc(size * p)
            yield from rank.allgather(sendbuf, recvbuf, size)
        else:  # alltoall
            sendbuf = rank.space.alloc(size * p)
            recvbuf = rank.space.alloc(size * p)
            yield from rank.alltoall(sendbuf, recvbuf, size)

    return body


def _net_stats(world: FabricWorld) -> dict:
    net = world.net
    return {
        "msgs_sent": net.msgs_sent,
        "msgs_delivered": net.msgs_delivered,
        "msgs_failed": net.msgs_failed,
        "chunks_forwarded": net.chunks_forwarded,
        "chunks_dropped": net.chunks_dropped,
        "chunks_rerouted": net.chunks_rerouted,
    }


def run_fabric_collective(topology: str = "fat_tree2", hosts: int = 64,
                          oversubscription: float = 1.0,
                          collective: str = "allreduce",
                          size: int = 64 * KiB, backend: str = "memcpy",
                          algo: str = "auto", cell: int = DEFAULT_CELL,
                          hosts_per_edge: int = 8,
                          ecmp_seed: str = "fabric",
                          egress_limit_cells: Optional[int] = None) -> dict:
    """Run one fault-free fabric cell and report it as JSON-stable data."""
    spec = make_topology(topology, hosts, oversubscription, hosts_per_edge,
                         ecmp_seed)
    world = launch_fabric_world(spec, backend=backend, cell=cell,
                                egress_limit_cells=egress_limit_cells)
    body = collective_body(collective, size, algo)
    world.run_spmd(body, max_events=CELL_MAX_EVENTS)
    world.finish()
    t = world.sim.now
    return {
        "topology": spec.name,
        "kind": topology,
        "hosts": world.size,
        "oversubscription": oversubscription,
        "collective": collective,
        "size": size,
        "backend": backend,
        "algo": algo,
        "time_ns": t,
        "mib_s": round(throughput_mib_s(size, t), 3) if t else 0.0,
        "events": world.sim.events_processed,
        "net": _net_stats(world),
        "cpu_ticks": {k: world.cpu[k] for k in sorted(world.cpu)},
    }


def point_fabric(**params) -> dict:
    """Top-level sweep point (the ``"fabric"`` lazy kind): one fault-free
    fabric collective cell, picklable for subprocess executors."""
    return run_fabric_collective(**params)


# ---------------------------------------------------------------------------
# fault cell: kill a spine link mid-collective
# ---------------------------------------------------------------------------


def spine_kill_plan(spec: TopologySpec, at: int, seed: str = "0"):
    """A :class:`~repro.faults.plan.FaultPlan` killing the first (sorted)
    spine trunk of ``spec`` at absolute time ``at``."""
    from repro.faults.plan import FabricFaultSpec, FaultPlan

    spines = {s.name for s in spec.switches if s.tier == "spine"}
    trunks = sorted(l.name for l in spec.trunk_links()
                    if l.a in spines or l.b in spines)
    if not trunks:
        raise ValueError(f"{spec.name}: no spine trunk to kill")
    return FaultPlan(
        name=f"spine-kill@{at}",
        seed=seed,
        fabric=(FabricFaultSpec(link=trunks[0], action="kill", at=at),),
    )


def run_fabric_cell(topology: str = "fat_tree2", hosts: int = 16,
                    oversubscription: float = 1.0,
                    collective: str = "allreduce", size: int = 64 * KiB,
                    backend: str = "ioat", algo: str = "auto",
                    cell: int = DEFAULT_CELL, hosts_per_edge: int = 4,
                    kill_at: int = us(50), plan: Optional[dict] = None,
                    ecmp_seed: str = "fabric") -> dict:
    """One fabric *fault* cell: run the collective under an armed plan.

    ``plan`` is a :meth:`~repro.faults.plan.FaultPlan.to_dict` dict (the
    sweep executor needs JSON params); when None, a spine-kill plan firing
    at ``kill_at`` is generated from the topology.  The outcome classifies
    as ``"rerouted"`` (completed over recomputed routes), ``"completed"``
    (the kill touched no in-flight flow) or ``"failed:<Type>"`` (typed
    partition error) — byte-identically per seed.
    """
    from repro.faults.injectors import arm_plan
    from repro.faults.plan import FaultPlan

    spec = make_topology(topology, hosts, oversubscription, hosts_per_edge,
                         ecmp_seed)
    fplan = (FaultPlan.from_dict(plan) if plan is not None
             else spine_kill_plan(spec, kill_at))
    world = launch_fabric_world(spec, backend=backend, cell=cell)
    armed = arm_plan(world, fplan)
    body = collective_body(collective, size, algo)
    error: Optional[BaseException] = None
    try:
        world.run_spmd(body, max_events=CELL_MAX_EVENTS)
        world.sim.run()
    except TransferError as exc:
        error = exc
    net = world.net
    if error is not None:
        outcome = f"failed:{type(error).__name__}"
    elif net.chunks_rerouted:
        outcome = "rerouted"
    else:
        outcome = "completed"
    return {
        "topology": spec.name,
        "hosts": world.size,
        "collective": collective,
        "size": size,
        "backend": backend,
        "plan": fplan.name,
        "fabric_faults_armed": armed.fabric_armed,
        "outcome": outcome,
        "error": type(error).__name__ if error is not None else None,
        "detail": str(error) if error is not None else "",
        "end_time": world.sim.now,
        "net": _net_stats(world),
    }


def point_fabric_cell(**params) -> dict:
    """Top-level sweep point (the ``"fabric_cell"`` lazy kind)."""
    return run_fabric_cell(**params)


# ---------------------------------------------------------------------------
# --races corpus entry
# ---------------------------------------------------------------------------


def fabric_scenario(hosts: int = 8, size: int = 8 * KiB,
                    backend: str = "ioat", collective: str = "allreduce",
                    oversubscription: float = 2.0,
                    algo: str = "auto") -> Callable:
    """A race-detector scenario: one collective on a small 2-tier fat tree.

    The fabric has no per-host trace recorders; the observation is the
    network's full metric snapshot (every port's counters plus the
    aggregate flow counters), the final simulated time, and the per-cell
    outcome string — everything the sweep reports are built from.
    """
    from repro.analysis.races import Observation

    def scenario() -> Observation:
        spec = make_topology("fat_tree2", hosts, oversubscription,
                             hosts_per_edge=max(2, hosts // 2),
                             ecmp_seed="races")
        world = launch_fabric_world(spec, backend=backend)
        schedule = world.sim.record_schedule()
        body = collective_body(collective, size, algo)
        world.run_spmd(body, max_events=CELL_MAX_EVENTS)
        world.finish()
        return Observation(
            counters={"fabric": world.net.metrics.snapshot()},
            digests={},
            end_time=world.sim.now,
            pushes=world.sim._seq,
            schedule=schedule,
            outcomes={"cell": "completed",
                      "cpu": ",".join(f"{k}={world.cpu[k]}"
                                      for k in sorted(world.cpu))},
        )

    return scenario
