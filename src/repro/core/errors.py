"""Typed transfer errors surfaced to the owning endpoint/request.

Ethernet gives no delivery guarantee; the reliability layer and the pull
watchdog retry for a while and then *must* give up.  Before this module
existed, giving up was silent: packets beyond ``MAX_RETRIES`` were appended
to ``TxSession.dead`` and forgotten, leaving ack-watchers armed forever and
the sender request hung.  Every abandonment now surfaces as one of these
typed errors on the request (``OmxRequest.error``), so callers — and the
fault-injection campaigns in :mod:`repro.faults` — can distinguish "still in
flight" from "failed loudly" from "hung" (the last being always a bug).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.mx.wire import EndpointAddr, MxPacket


class TransferError(Exception):
    """Base class for errors that fail a user-visible transfer."""


class DeliveryFailed(TransferError):
    """The reliability layer gave up on a packet after ``MAX_RETRIES``.

    Carries the peer and the packet that dead-lettered so diagnostics (and
    the campaign reports) can say *which* hop of *which* message died.
    """

    def __init__(self, peer: "EndpointAddr", packet: Optional["MxPacket"] = None,
                 retries: int = 0, detail: str = ""):
        self.peer = peer
        self.packet = packet
        self.retries = retries
        what = packet.ptype.name if packet is not None else "packet"
        msg = f"delivery to {peer} failed: {what} dead-lettered after {retries} retries"
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)


class PullAborted(TransferError):
    """The receiver's pull watchdog gave up re-requesting stalled blocks."""

    def __init__(self, peer: "EndpointAddr", msg_id: int, received: int,
                 total: int, retransmits: int):
        self.peer = peer
        self.msg_id = msg_id
        self.received = received
        self.total = total
        self.retransmits = retransmits
        super().__init__(
            f"pull of msg {msg_id} from {peer} aborted after "
            f"{retransmits} watchdog re-requests ({received}/{total} bytes)"
        )


class RemoteAborted(TransferError):
    """The peer NACKed: its half of the transfer failed and was torn down."""

    def __init__(self, peer: "EndpointAddr", msg_id: int):
        self.peer = peer
        self.msg_id = msg_id
        super().__init__(f"peer {peer} aborted transfer of msg {msg_id}")


class FabricPartitioned(TransferError):
    """A fabric message lost its last live path to the destination.

    Raised by :class:`repro.fabric.network.FabricNetwork` when a link kill
    (or queue drop of an in-flight chunk) leaves a message with no live
    route and no retransmit layer to hide behind.  Carries enough identity
    for the fault campaign to assert *which* flow died, byte-identically
    per seed.
    """

    def __init__(self, src: str, dst: str, tag: int, where: str = "",
                 detail: str = ""):
        self.src = src
        self.dst = dst
        self.tag = tag
        self.where = where
        msg = f"fabric transfer {src}->{dst} (tag {tag}) unreachable"
        if where:
            msg += f" at {where}"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)


class RankDead(TransferError):
    """A fabric rank crash-stopped and took this operation with it.

    Declared by the fabric liveness layer
    (:class:`repro.fabric.resilience.FabricLivenessMonitor`) a short grace
    window after a :class:`~repro.fabric.mpi.FabricRank` is killed: every
    request the survivors still have pending against the current collective
    epoch fails with this error, deterministically and all at once, so the
    abort drains instead of livelocking.  Collective-level recovery (the
    shrink-and-retry ring in :mod:`repro.fabric.resilience`) catches it;
    everything else surfaces it — "abort and report" is the default.
    """

    def __init__(self, rank: int, host: str = "", at: int = 0,
                 detail: str = ""):
        self.rank = rank
        self.host = host
        self.at = at
        msg = f"rank {rank}"
        if host:
            msg += f" ({host})"
        msg += f" crash-stopped at t={at}"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)


class PeerDead(TransferError):
    """Sustained silence from a peer beyond the liveness deadline.

    Declared by :class:`repro.health.liveness.PeerLivenessMonitor` when a
    peer we have pending work with stays silent past ``peer_dead_timeout``
    (well beyond retransmit exhaustion).  Fails *every* pending request to
    that peer deterministically and releases their skbuffs/pins.
    """

    def __init__(self, peer: "EndpointAddr", silent_ns: int, pending: int = 0):
        self.peer = peer
        self.silent_ns = silent_ns
        self.pending = pending
        super().__init__(
            f"peer {peer.host}:{peer.endpoint} declared dead after "
            f"{silent_ns} ns of silence ({pending} request(s) failed)"
        )
