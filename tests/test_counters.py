"""Tests for the omx_counters-style statistics collection."""

import pytest

from repro import build_testbed
from repro.core.counters import collect_counters, render_counters
from repro.units import KiB, MiB


def run_traffic(tb, size):
    ep0, ep1 = tb.open_endpoint(0, 0), tb.open_endpoint(1, 0)
    c0, c1 = tb.user_core(0), tb.user_core(1)
    sbuf = ep0.space.alloc(size)
    rbuf = ep1.space.alloc(size)
    sbuf.fill_pattern(1)
    done = tb.sim.event()

    def sender():
        req = yield from ep0.isend(c0, ep1.addr, 1, sbuf)
        yield from ep0.wait(c0, req)

    def receiver():
        req = yield from ep1.irecv(c1, 1, ~0, rbuf)
        yield from ep1.wait(c1, req)
        done.succeed()

    tb.sim.process(sender())
    tb.sim.process(receiver())
    tb.sim.run_until(done, max_events=30_000_000)
    tb.sim.run(until=tb.sim.now + 2_000_000)


class TestCounters:
    def test_counters_reflect_large_transfer(self):
        tb = build_testbed(ioat_enabled=True)
        run_traffic(tb, 1 * MiB)
        rx = collect_counters(tb.stacks[1])
        tx = collect_counters(tb.stacks[0])
        assert rx["pull_replies_rx"] == 128  # 1 MiB / 8 KiB
        assert rx["offload_frags_dma"] > 0
        assert rx["ioat_bytes_copied"] > 0
        assert rx["active_pulls"] == 0  # all completed
        assert tx["active_large_sends"] == 0
        assert tx["nic_tx_frames"] >= 129  # RNDV + replies (+ acks)
        assert rx["skbuffs_outstanding"] == tb.hosts[1].platform.nic.rx_ring_size

    def test_counters_reflect_eager_transfer(self):
        tb = build_testbed()
        run_traffic(tb, 8 * KiB)
        rx = collect_counters(tb.stacks[1])
        assert rx["eager_rx"] == 2  # two 4 kB medium fragments
        assert rx["pull_replies_rx"] == 0
        assert rx["cpu_bytes_copied"] >= 8 * KiB

    def test_regcache_counters(self):
        tb = build_testbed()
        run_traffic(tb, 1 * MiB)
        rx = collect_counters(tb.stacks[1])
        assert rx["pin_calls"] >= 1
        assert rx["pages_pinned"] >= 256

    def test_kmatch_counters_present_when_enabled(self):
        tb = build_testbed(kernel_matching=True)
        run_traffic(tb, 16 * KiB)
        rx = collect_counters(tb.stacks[1])
        assert rx["kmatch_matches"] + rx["kmatch_fallbacks"] >= 1

    def test_kmatch_counters_absent_when_disabled(self):
        tb = build_testbed()
        run_traffic(tb, 16 * KiB)
        assert "kmatch_matches" not in collect_counters(tb.stacks[1])

    def test_render_is_printable(self):
        tb = build_testbed()
        run_traffic(tb, 64 * KiB)
        text = render_counters(tb.stacks[1])
        assert "pull_replies_rx" in text
        assert "omx_counters" in text
