"""Structured trace recording.

The paper illustrates its contribution with fragment-receive timelines
(Figs. 5 and 6): which CPU processed which fragment, when copies ran, and
when completion was notified.  :class:`TraceRecorder` collects such spans and
can render an ASCII timeline grouped by lane (core, DMA channel, ...), which
the `fig5/fig6`-style examples print.  :mod:`repro.obs.trace` exports the
same spans as Chrome/Perfetto ``trace_events`` JSON.

Recording is off by default and costs nothing when disabled: hot call sites
must guard span construction behind :attr:`TraceRecorder.enabled` themselves
(``if trace is not None and trace.enabled: trace.record(...)``) so that
neither the span arguments nor the label strings are built when tracing is
off; the check inside :meth:`TraceRecorder.record` is only a backstop.

Memory is boundable: with ``max_spans`` set, the recorder becomes a ring
buffer — the oldest spans fall off and :attr:`TraceRecorder.dropped_spans`
counts them (surfaced as the ``trace_dropped_spans`` metric), so a long
sweep with tracing left on cannot grow without bound.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.scheduler import Simulator


@dataclass(frozen=True)
class TraceSpan:
    """A labelled half-open interval [start, end) on a named lane."""

    lane: str
    label: str
    start: int
    end: int
    category: str = ""

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class TraceInstant:
    """A point event on a lane (fault injected, retransmit fired, drop)."""

    lane: str
    label: str
    at: int
    category: str = ""


class TraceRecorder:
    """Collects :class:`TraceSpan`/:class:`TraceInstant` records when enabled."""

    def __init__(self, sim: "Simulator", enabled: bool = False,
                 max_spans: Optional[int] = None):
        self.sim = sim
        self.enabled = enabled
        self.max_spans = max_spans
        self.spans = deque(maxlen=max_spans) if max_spans else []
        self.instants: list[TraceInstant] = []
        #: spans evicted by the ring buffer since the last clear()
        self.dropped_spans = 0

    def set_max_spans(self, max_spans: Optional[int]) -> None:
        """Re-bound the span buffer, keeping the newest existing spans."""
        self.max_spans = max_spans
        existing = list(self.spans)
        if max_spans:
            self.spans = deque(existing, maxlen=max_spans)
            self.dropped_spans += max(0, len(existing) - max_spans)
        else:
            self.spans = existing

    def record(self, lane: str, label: str, start: int, end: int, category: str = "") -> None:
        if self.enabled:
            if self.max_spans is not None and len(self.spans) == self.max_spans:
                self.dropped_spans += 1
            self.spans.append(TraceSpan(lane, label, start, end, category))

    def instant(self, lane: str, label: str, category: str = "") -> None:
        """Record a point event at the current simulated time."""
        if self.enabled:
            self.instants.append(TraceInstant(lane, label, self.sim.now, category))

    def clear(self) -> None:
        self.spans.clear()
        self.instants.clear()
        self.dropped_spans = 0

    def lanes(self) -> list[str]:
        """Lane names in first-appearance order."""
        seen: dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.lane, None)
        for i in self.instants:
            seen.setdefault(i.lane, None)
        return list(seen)

    def spans_on(self, lane: str) -> list[TraceSpan]:
        return [s for s in self.spans if s.lane == lane]

    def render_ascii(self, width: int = 100, t0: Optional[int] = None, t1: Optional[int] = None) -> str:
        """Render spans as a Fig.5/6-style ASCII timeline.

        Each lane becomes one row; spans are drawn as ``[label...]`` blocks
        scaled to the [t0, t1] window.
        """
        if not self.spans:
            return "(no trace spans)"
        lo = min(s.start for s in self.spans) if t0 is None else t0
        hi = max(s.end for s in self.spans) if t1 is None else t1
        if hi <= lo:
            hi = lo + 1
        scale = width / (hi - lo)
        lanes = [lane for lane in self.lanes() if any(s.lane == lane for s in self.spans)]
        name_w = max(len(n) for n in lanes) + 1
        lines = []
        for lane in lanes:
            row = [" "] * width
            for s in self.spans_on(lane):
                a = max(0, min(width - 1, int((s.start - lo) * scale)))
                b = max(a + 1, min(width, int((s.end - lo) * scale)))
                text = s.label[: b - a]
                block = list(text.ljust(b - a, "="))
                if block:
                    block[0] = "["
                    if len(block) > 1:
                        block[-1] = "]"
                row[a:b] = block
            lines.append(f"{lane.rjust(name_w)}|{''.join(row)}")
        header = f"{'':>{name_w}}|{lo} ns .. {hi} ns"
        return "\n".join([header] + lines)
