"""Intel MPI Benchmarks (IMB) reproduction harness.

Implements the eleven IMB-MPI1 tests of the paper's Fig. 12 — PingPong,
PingPing, SendRecv, Exchange, Allreduce, Reduce, Reduce_scatter, Allgather,
Allgatherv, Alltoall, Bcast — with IMB's timing conventions (synchronised
start, warm-up iterations, per-iteration average, the standard
bytes-per-iteration factors for the point-to-point tests).
"""

from repro.imb.harness import IMB_TESTS, ImbResult, run_imb

__all__ = ["IMB_TESTS", "ImbResult", "run_imb"]
