"""Tests for repro.fabric: topology invariants, deterministic routing,
bit-identical collectives at scale, fault cells, and the wrapper factories."""

import numpy as np
import pytest

from repro.fabric.routing import RouteTables, ecmp_pick
from repro.fabric.spec import (
    TopologySpec,
    dragonfly,
    fat_tree,
    pair_topology,
    star_topology,
)
from repro.fabric.sweep import (
    fabric_scenario,
    make_topology,
    run_fabric_cell,
    run_fabric_collective,
    spine_kill_plan,
)
from repro.fabric.build import build_fabric_testbed
from repro.fabric.mpi import launch_fabric_world
from repro.faults.injectors import arm_plan
from repro.faults.plan import FabricFaultSpec, FaultPlan
from repro.units import KiB

MAXEV = 10_000_000


# ---------------------------------------------------------------------------
# topology invariants
# ---------------------------------------------------------------------------

SPEC_CASES = [
    ("pair", 2, 1.0),
    ("star", 8, 1.0),
    ("fat_tree2", 16, 1.0),
    ("fat_tree2", 32, 4.0),
    ("fat_tree3", 64, 1.0),
    ("dragonfly", 16, 1.0),
]


@pytest.mark.parametrize("kind,hosts,oversub", SPEC_CASES)
class TestTopologyInvariants:
    def test_validates_and_connected(self, kind, hosts, oversub):
        spec = make_topology(kind, hosts, oversubscription=oversub)
        spec.validate()
        assert spec.connected()
        # fat_tree3 rounds the host count up to the next full k^3/4 tree
        assert len(spec.hosts) >= hosts
        if kind != "fat_tree3":
            assert len(spec.hosts) == hosts

    def test_every_host_has_one_access_link(self, kind, hosts, oversub):
        spec = make_topology(kind, hosts, oversubscription=oversub)
        if not spec.switches:  # back-to-back pair
            return
        adj = spec.neighbors()
        for h in spec.hosts:
            assert len(adj[h]) == 1
            assert spec.edge_of(h) in spec.switch_names()

    def test_json_round_trip(self, kind, hosts, oversub):
        spec = make_topology(kind, hosts, oversubscription=oversub)
        assert TopologySpec.from_dict(spec.to_dict()) == spec

    def test_diameter_positive(self, kind, hosts, oversub):
        spec = make_topology(kind, hosts, oversubscription=oversub)
        assert spec.diameter_hops() >= 1


class TestGenerators:
    def test_fat_tree2_oversubscription_reported(self):
        spec = make_topology("fat_tree2", 64, oversubscription=4.0)
        assert spec.oversubscription() == pytest.approx(4.0)

    def test_fat_tree3_tier_names(self):
        spec = fat_tree(tiers=3, k=4)
        tiers = {s.tier for s in spec.switches}
        assert tiers == {"edge", "agg", "spine"}

    def test_dragonfly_has_global_links(self):
        spec = dragonfly(groups=4)
        globals_ = [l for l in spec.trunk_links() if "g" in l.a and "g" in l.b
                    and l.a.split("r")[0] != l.b.split("r")[0]]
        assert globals_  # at least one inter-group trunk

    def test_pair_and_star_are_degenerate(self):
        assert pair_topology().switches == ()
        star = star_topology(4)
        assert len(star.switches) == 1
        assert not star.trunk_links()


# ---------------------------------------------------------------------------
# routing determinism
# ---------------------------------------------------------------------------


class TestRoutingDeterminism:
    def test_identical_tables_across_two_builds(self):
        spec = make_topology("fat_tree2", 32, oversubscription=1.0)
        r1, r2 = RouteTables(spec), RouteTables(spec)
        edges = sorted({spec.edge_of(h) for h in spec.hosts})
        for edge in edges:
            assert r1.table_for(edge) == r2.table_for(edge)

    def test_ecmp_pick_is_seeded_and_stable(self):
        picks = [ecmp_pick("s", "h0>h9", "sw1", 4) for _ in range(8)]
        assert len(set(picks)) == 1
        assert ecmp_pick("other-seed", "h0>h9", "sw1", 97) != \
            ecmp_pick("s", "h0>h9", "sw1", 97) or True  # differs or collides
        assert 0 <= picks[0] < 4

    def test_kill_and_revive_flip_liveness(self):
        spec = make_topology("fat_tree2", 16, oversubscription=1.0)
        routes = RouteTables(spec)
        trunk = spec.trunk_links()[0]
        v0 = routes.version
        assert routes.is_live(trunk.a, trunk.b)
        assert routes.kill_link(trunk.a, trunk.b)
        assert not routes.is_live(trunk.a, trunk.b)
        assert routes.version > v0
        routes.revive_link(trunk.a, trunk.b)
        assert routes.is_live(trunk.a, trunk.b)


# ---------------------------------------------------------------------------
# bit-identical collectives at scale (the acceptance bar)
# ---------------------------------------------------------------------------


class TestCollectiveDeterminism:
    @pytest.mark.parametrize("backend", ["memcpy", "ioat"])
    def test_256_host_allreduce_bit_identical(self, backend):
        kw = dict(topology="fat_tree2", hosts=256, oversubscription=1.0,
                  collective="allreduce", size=64 * KiB, backend=backend)
        assert run_fabric_collective(**kw) == run_fabric_collective(**kw)

    def test_backends_differ(self):
        kw = dict(topology="fat_tree2", hosts=16, size=64 * KiB,
                  hosts_per_edge=4)
        t_memcpy = run_fabric_collective(backend="memcpy", **kw)["time_ns"]
        t_ioat = run_fabric_collective(backend="ioat", **kw)["time_ns"]
        assert t_ioat < t_memcpy  # overlapped DMA beats the contended bus

    def test_oversubscription_hurts(self):
        kw = dict(topology="fat_tree2", hosts=16, size=256 * KiB,
                  hosts_per_edge=4, backend="ioat")
        t1 = run_fabric_collective(oversubscription=1.0, **kw)["time_ns"]
        t4 = run_fabric_collective(oversubscription=4.0, **kw)["time_ns"]
        assert t4 > t1

    @pytest.mark.parametrize("collective",
                             ["barrier", "bcast", "alltoall", "allgather"])
    def test_other_collectives_complete(self, collective):
        out = run_fabric_collective(hosts=8, hosts_per_edge=4, size=4 * KiB,
                                    collective=collective)
        assert out["events"] > 0 and out["time_ns"] > 0


# ---------------------------------------------------------------------------
# fault cells: spine kill mid-allreduce
# ---------------------------------------------------------------------------


class TestFabricFaults:
    REROUTE_KW = dict(hosts=16, hosts_per_edge=4, oversubscription=2.0,
                      size=256 * KiB, kill_at=1_000_000)
    PARTITION_KW = dict(hosts=16, hosts_per_edge=4, oversubscription=4.0,
                        size=256 * KiB, kill_at=50_000)

    def test_spine_kill_reroutes(self):
        out = run_fabric_cell(**self.REROUTE_KW)
        assert out["outcome"] == "rerouted"
        assert out["fabric_faults_armed"] == 1
        assert out["net"]["chunks_rerouted"] > 0

    def test_single_spine_kill_partitions(self):
        out = run_fabric_cell(**self.PARTITION_KW)
        assert out["outcome"] == "failed:FabricPartitioned"

    @pytest.mark.parametrize("kw", [REROUTE_KW, PARTITION_KW],
                             ids=["reroute", "partition"])
    def test_cells_bit_identical(self, kw):
        assert run_fabric_cell(**kw) == run_fabric_cell(**kw)

    def test_plan_round_trip(self):
        spec = make_topology("fat_tree2", 16, oversubscription=2.0,
                             hosts_per_edge=4)
        plan = spine_kill_plan(spec, at=1_000_000)
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        assert plan.fabric[0].action == "kill"

    def test_bad_action_rejected(self):
        with pytest.raises(ValueError):
            FabricFaultSpec(link="a~b", action="explode")

    def test_unknown_link_rejected(self):
        spec = make_topology("fat_tree2", 8, hosts_per_edge=4)
        world = launch_fabric_world(spec)
        plan = FaultPlan(name="bad", fabric=(
            FabricFaultSpec(link="no~such", action="kill", at=0),))
        with pytest.raises(KeyError):
            arm_plan(world, plan)

    def test_fabric_plan_needs_fabric_testbed(self):
        from repro import build_testbed
        plan = FaultPlan(name="bad", fabric=(
            FabricFaultSpec(link="a~b", action="kill", at=0),))
        with pytest.raises(ValueError):
            arm_plan(build_testbed(), plan)


# ---------------------------------------------------------------------------
# race detector + teardown sanitizers
# ---------------------------------------------------------------------------


class TestFabricRaces:
    def test_small_fat_tree_allreduce_race_free(self):
        from repro.analysis.races import RaceDetector
        det = RaceDetector(fabric_scenario(hosts=8, size=4 * KiB),
                           name="fabric/4KiB", seeds=(1, 2))
        report = det.run()
        assert report.ok, report.format()

    def test_teardown_clean_at_128_hosts(self):
        spec = make_topology("fat_tree2", 128, oversubscription=1.0)
        world = launch_fabric_world(spec, backend="ioat")
        from repro.fabric.sweep import collective_body
        world.run_spmd(collective_body("allreduce", 4 * KiB),
                       max_events=MAXEV)
        world.finish()  # sanitizers: no stuck process, no leaked message


# ---------------------------------------------------------------------------
# the full-hardware path: build_fabric_testbed + wrappers
# ---------------------------------------------------------------------------


class TestHardwareFabric:
    def _allreduce_sums(self, tb, algo="auto"):
        """Run a float32 allreduce of rank+1; returns {rank: ndarray}.

        Small integers sum exactly in float32, so the result is
        byte-identical whatever reduction order the algorithm uses.
        """
        from repro.mpi import create_world
        comm = create_world(tb, ppn=1)
        n = 4 * KiB
        out = {}

        def body(rank):
            sb = rank.space.alloc(n)
            rb = rank.space.alloc(n)
            sb.read().view(np.float32)[:] = float(rank.rank + 1)
            yield from rank.allreduce(sb, rb, algo=algo)
            out[rank.rank] = rb.read().view(np.float32).copy()

        comm.run_spmd(body, max_events=MAXEV)
        return out

    def _assert_sums(self, out, p):
        expected = sum(range(1, p + 1))
        assert len(out) == p
        for r, vals in out.items():
            assert np.all(vals == expected), f"rank {r}"

    def test_multi_switch_allreduce_all_ranks_agree(self):
        spec = make_topology("fat_tree2", 4, hosts_per_edge=2)
        tb = build_fabric_testbed(spec)
        assert len(tb.switches) > 1 and tb.trunks
        self._assert_sums(self._allreduce_sums(tb), 4)

    @pytest.mark.parametrize("algo", ["ring", "rd"])
    def test_explicit_algos_sum_correctly(self, algo):
        from repro.ethernet.switch import build_switched_testbed
        out = self._allreduce_sums(build_switched_testbed(4), algo=algo)
        self._assert_sums(out, 4)

    def test_trunk_ecmp_spreads_flows(self, monkeypatch):
        """Both spines of a 1:1 fat tree carry frames under all-pairs load.

        The trunk ECMP hash mixes the NIC MACs, which come from a
        process-global host-id counter — pin it so the flow->spine
        assignment doesn't depend on how many hosts earlier tests built.
        """
        import itertools
        import repro.cluster.host as host_mod
        monkeypatch.setattr(host_mod, "_HOST_IDS", itertools.count(1000))
        spec = make_topology("fat_tree2", 4, hosts_per_edge=2)
        tb = build_fabric_testbed(spec)
        self._assert_sums(self._allreduce_sums(tb), 4)
        spines = [sw for name, sw in sorted(tb.switches.items())
                  if name.startswith("spine")]
        assert len(spines) >= 2
        assert all(sw.forwarded > 0 for sw in spines)

    def test_switch_metrics_registered(self):
        spec = make_topology("fat_tree2", 4, hosts_per_edge=2)
        tb = build_fabric_testbed(spec)
        self._allreduce_sums(tb)
        snap = tb.metrics.snapshot()
        fwd = {k: v for k, v in snap.items() if k.endswith("_forwarded")
               and "_p" not in k.rsplit("sw_", 1)[-1]}
        assert any(v > 0 for v in fwd.values())

    def test_unroutable_frame_dropped_not_flooded(self):
        spec = make_topology("fat_tree2", 4, hosts_per_edge=2)
        tb = build_fabric_testbed(spec)
        sw = next(iter(tb.switches.values()))
        assert sw._routes  # static-route mode: no learning, no flooding

    def test_wrappers_preserve_shapes(self):
        from repro import build_testbed
        from repro.ethernet.switch import build_switched_testbed
        tb = build_testbed()
        assert len(tb.hosts) == 2 and tb.link is not None
        stb = build_switched_testbed(3)
        assert len(stb.hosts) == 3 and stb.switch is not None
        assert not stb.switch._routes  # lone switch keeps learning mode
