"""Campaign cells and matrices: workloads × message sizes × fault plans.

One *cell* builds a fresh testbed, arms one fault plan, drives one
workload through the full stack, runs the simulator to quiescence and
classifies every message pair:

* ``completed`` — the receive request finished without error;
* ``failed`` — a typed :class:`~repro.core.errors.TransferError` surfaced
  on either side (dead-lettered send, aborted pull, remote abort);
* ``hung`` — neither, by the deadline.  A hung pair is the bug class this
  whole layer exists to catch: the contract is that it never happens.

Classification reads the request objects directly after the run instead
of trusting workload processes to report — a receiver blocked on a
never-delivered message must not be able to hide the completion state of
its neighbours.

Cells are executed through the :class:`~repro.reporting.sweeps.SweepExecutor`
("fault_cell" point kind), so they memoize, fan out over processes, and run
in phantom-payload mode.  Reports exclude wall-clock fields; everything
left is a pure function of (workload, size, plan, seed) and the simulator
— the determinism the campaign test asserts bit-for-bit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.faults.injectors import arm_plan
from repro.faults.plan import QUICK_SIZES, FaultPlan, standard_plans
from repro.units import ms, us

#: per-cell simulated-time deadline: long enough for 8 retransmit rounds
#: (dead-lettering takes MAX_RETRIES x 500 us) on every message, with slack
CELL_DEADLINE = ms(60)

#: per-cell event budget (runaway guard; a healthy cell uses far less)
CELL_MAX_EVENTS = 30_000_000

WORKLOADS = ("pingpong", "stream", "incast")

#: incast fan-in degree (1 receiver + INCAST_SENDERS senders)
INCAST_SENDERS = 3


# ---------------------------------------------------------------------------
# workloads
# ---------------------------------------------------------------------------


class _Transfer:
    """One tracked message pair: the send request and its receive request."""

    def __init__(self, key: str):
        self.key = key
        self.send_req = None
        self.recv_req = None

    def classify(self) -> tuple[str, Optional[str]]:
        """(outcome, error name) — see the module docstring."""
        recv, send = self.recv_req, self.send_req
        if recv is not None and recv.done and recv.error is None:
            return "completed", None
        for req in (recv, send):
            if req is not None and req.error is not None:
                return "failed", type(req.error).__name__
        return "hung", None


def _match(sender: int, index: int) -> int:
    """Unique match info per (sender node, message index)."""
    return (sender << 16) | index


def _post_recvs(tb, ep, node, core, senders, size, iters, transfers):
    """Post every expected receive up front (one buffer per message)."""

    def proc():
        for src in senders:
            for i in range(iters):
                buf = ep.space.alloc(max(size, 1))
                req = yield from ep.irecv(
                    core, _match(src, i), ~0, buf, 0, size
                )
                transfers[f"{src}->{node}#{i}"].recv_req = req
        # Drive the library until the simulation ends; blocked waits still
        # progress every other request (wait() drains the event queue).
        for t in transfers.values():
            if t.recv_req is not None:
                yield from ep.wait(core, t.recv_req)

    # Daemons re-raise: a workload coding error must fail the cell loudly,
    # not masquerade as a hung transfer.
    tb.sim.daemon(proc(), name=f"faults-recv-n{node}")


def _run_senders(tb, ep, node, core, dst_node, dst_addr, size, iters, transfers):
    def proc():
        buf = ep.space.alloc(max(size, 1))
        for i in range(iters):
            req = yield from ep.isend(
                core, dst_addr, _match(node, i), buf, 0, size
            )
            transfers[f"{node}->{dst_node}#{i}"].send_req = req
            yield from ep.wait(core, req)

    tb.sim.daemon(proc(), name=f"faults-send-n{node}")


def _workload_stream(tb, size: int, iters: int) -> dict[str, _Transfer]:
    """Unidirectional stream: node0 sends ``iters`` messages to node1."""
    ep0, ep1 = tb.open_endpoint(0, 0), tb.open_endpoint(1, 0)
    transfers = {f"0->1#{i}": _Transfer(f"0->1#{i}") for i in range(iters)}
    _post_recvs(tb, ep1, 1, tb.user_core(1), [0], size, iters, transfers)
    _run_senders(tb, ep0, 0, tb.user_core(0), 1, ep1.addr, size, iters,
                 transfers)
    return transfers


def _workload_pingpong(tb, size: int, iters: int) -> dict[str, _Transfer]:
    """Request/response rounds: node0 pings, node1 pongs, ``iters`` times."""
    from repro.simkernel.sync import Signal

    ep0, ep1 = tb.open_endpoint(0, 0), tb.open_endpoint(1, 0)
    core0, core1 = tb.user_core(0), tb.user_core(1)
    transfers = {}
    for i in range(iters):
        transfers[f"0->1#{i}"] = _Transfer(f"0->1#{i}")
        transfers[f"1->0#{i}"] = _Transfer(f"1->0#{i}")

    # Both directions' receives are posted before either side sends, so a
    # dead-lettered message can never strand its successors unmatched.
    posted = {"count": 0}
    ready = Signal(tb.sim, name="pingpong-ready")

    def barrier():
        posted["count"] += 1
        ready.fire()
        while posted["count"] < 2:
            yield ready.wait()

    def node0():
        buf = ep0.space.alloc(max(size, 1))
        for i in range(iters):
            rbuf = ep0.space.alloc(max(size, 1))
            req = yield from ep0.irecv(core0, _match(1, i), ~0, rbuf, 0, size)
            transfers[f"1->0#{i}"].recv_req = req
        yield from barrier()
        for i in range(iters):
            req = yield from ep0.isend(core0, ep1.addr, _match(0, i), buf, 0, size)
            transfers[f"0->1#{i}"].send_req = req
            yield from ep0.wait(core0, req)
            yield from ep0.wait(core0, transfers[f"1->0#{i}"].recv_req)

    def node1():
        buf = ep1.space.alloc(max(size, 1))
        for i in range(iters):
            rbuf = ep1.space.alloc(max(size, 1))
            req = yield from ep1.irecv(core1, _match(0, i), ~0, rbuf, 0, size)
            transfers[f"0->1#{i}"].recv_req = req
        yield from barrier()
        for i in range(iters):
            yield from ep1.wait(core1, transfers[f"0->1#{i}"].recv_req)
            req = yield from ep1.isend(core1, ep0.addr, _match(1, i), buf, 0, size)
            transfers[f"1->0#{i}"].send_req = req
            yield from ep1.wait(core1, req)

    tb.sim.daemon(node0(), name="faults-pingpong-n0")
    tb.sim.daemon(node1(), name="faults-pingpong-n1")
    return transfers


def _workload_incast(tb, size: int, iters: int) -> dict[str, _Transfer]:
    """Fan-in: every other node streams to node0 through the switch."""
    n = INCAST_SENDERS + 1
    ep0 = tb.open_endpoint(0, 0)
    transfers = {}
    for src in range(1, n):
        for i in range(iters):
            key = f"{src}->0#{i}"
            transfers[key] = _Transfer(key)
    _post_recvs(tb, ep0, 0, tb.user_core(0), list(range(1, n)), size, iters,
                transfers)
    for src in range(1, n):
        ep = tb.open_endpoint(src, 0)
        _run_senders(tb, ep, src, tb.user_core(src), 0, ep0.addr, size, iters,
                     transfers)
    return transfers


def _build_testbed(workload: str):
    from repro.cluster.testbed import build_testbed
    from repro.ethernet.switch import build_switched_testbed

    if workload == "incast":
        return build_switched_testbed(INCAST_SENDERS + 1, ioat_enabled=True)
    return build_testbed(ioat_enabled=True)


# ---------------------------------------------------------------------------
# one cell
# ---------------------------------------------------------------------------


#: ring-buffer cap for campaign traces: a faulty cell can retransmit for
#: the full 60 ms deadline, so recorders are always bounded here
TRACE_MAX_SPANS = 4096


def run_cell(workload: str, size: int, plan: FaultPlan,
             iters: int = 3, trace: bool = False) -> dict:
    """Run one (workload, size, plan) cell; returns its JSON-able report.

    With ``trace=True`` every host records a bounded span timeline and the
    report gains a ``trace_events`` document (Perfetto JSON, one process
    group per host) — faults and retransmits show up as instant events.
    """
    from repro.analysis.sanitizers import Sanitizer
    from repro.core.counters import collect_counters

    if workload not in WORKLOADS:
        raise ValueError(f"unknown workload {workload!r}")
    tb = _build_testbed(workload)
    if trace:
        for host in tb.hosts:
            host.trace.enabled = True
            host.trace.set_max_spans(TRACE_MAX_SPANS)
    san = Sanitizer()
    for host in tb.hosts:
        san.watch_host(host)

    armed = arm_plan(tb, plan)
    if workload == "pingpong":
        transfers = _workload_pingpong(tb, size, iters)
    elif workload == "stream":
        transfers = _workload_stream(tb, size, iters)
    else:
        transfers = _workload_incast(tb, size, iters)

    tb.sim.run(until=CELL_DEADLINE, max_events=CELL_MAX_EVENTS)

    outcomes = {"completed": 0, "failed": 0, "hung": 0}
    failures: dict[str, int] = {}
    hung_keys = []
    for key in sorted(transfers):
        outcome, err = transfers[key].classify()
        outcomes[outcome] += 1
        if err is not None:
            failures[err] = failures.get(err, 0) + 1
        if outcome == "hung":
            hung_keys.append(key)

    stack_counters: dict[str, int] = {}
    for stack in tb.stacks:
        for key, val in collect_counters(stack).items():
            stack_counters[key] = stack_counters.get(key, 0) + val
    # Wall-clock is the one nondeterministic counter; reports must be a
    # pure function of the cell identity.
    stack_counters.pop("sim_wall_ms", None)
    if getattr(tb, "switch", None) is not None:
        stack_counters["switch_dropped"] = tb.switch.dropped
        stack_counters["switch_forwarded"] = tb.switch.forwarded

    violations = [v.format() for v in san.check()]
    report = {
        "workload": workload,
        "size": size,
        "plan": plan.name,
        "seed": plan.seed,
        "messages": len(transfers),
        "outcomes": outcomes,
        "failures": failures,
        "hung_keys": hung_keys,
        "injected": armed.counters(),
        "counters": stack_counters,
        "sanitizer": violations,
        "end_time": tb.sim.now,
    }
    if trace:
        from repro.obs.trace import export_trace_events

        report["trace_events"] = export_trace_events(
            [(host.name, host.trace) for host in tb.hosts]
        )
    return report


def point_fault_cell(workload: str, size: int, plan: dict, iters: int,
                     trace: bool = False) -> dict:
    """Sweep-executor entry: plans travel as dicts (JSON-serializable)."""
    return run_cell(workload, size, FaultPlan.from_dict(plan), iters=iters,
                    trace=trace)


# ---------------------------------------------------------------------------
# the matrix
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CampaignSpec:
    """A campaign matrix: the cross product, minus incompatible cells.

    Plans that fault the switch only apply to switched workloads (incast);
    the skip is recorded in the report rather than silently absorbed.
    """

    workloads: tuple = WORKLOADS
    sizes: tuple = QUICK_SIZES
    plans: tuple = field(default_factory=tuple)
    iters: int = 3
    seed: str = "campaign"

    def cells(self) -> tuple[list[tuple[str, int, FaultPlan]], list[str]]:
        plans = self.plans or tuple(standard_plans(self.seed))
        wanted, skipped = [], []
        for workload in self.workloads:
            for size in self.sizes:
                for plan in plans:
                    if plan.switches and workload != "incast":
                        skipped.append(f"{workload}/{size}/{plan.name}")
                        continue
                    wanted.append((workload, size, plan))
        return wanted, skipped


def quick_campaign_spec(seed: str = "campaign") -> CampaignSpec:
    """The tier-1 matrix: 3 workloads x 2 sizes x 4 plans (+switch cell).

    Small enough to run in seconds under phantom payloads, wide enough to
    cross every fault layer with every protocol regime (multi-fragment
    eager and rendezvous/pull).
    """
    plans = {p.name: p for p in standard_plans(seed)}
    from repro.faults.plan import SwitchFaultSpec

    egress = FaultPlan(
        name="egress-burst", seed=seed,
        switches=(SwitchFaultSpec(port=0, windows=((us(50), us(120)),)),),
    )
    return CampaignSpec(
        workloads=WORKLOADS,
        sizes=(16 * 1024, 256 * 1024),
        plans=(plans["clean"], plans["lossy-data"], plans["lossy-acks"],
               plans["ioat-fail"], egress),
        iters=3,
        seed=seed,
    )


def run_campaign(spec: CampaignSpec, executor=None, trace: bool = False) -> dict:
    """Execute a campaign matrix; returns the aggregated report.

    ``trace=True`` adds a bounded Perfetto timeline to every cell (see
    :func:`run_cell`); the parameter is only put on the point when set, so
    traceless campaigns keep their historical cache keys.
    """
    from repro.reporting.sweeps import SweepExecutor, point

    cells, skipped = spec.cells()
    if executor is None:
        executor = SweepExecutor()
    extra = {"trace": True} if trace else {}
    points = [
        point("fault_cell", workload=w, size=s, plan=p.to_dict(),
              iters=spec.iters, **extra)
        for (w, s, p) in cells
    ]
    results = executor.run(points)

    totals = {"completed": 0, "failed": 0, "hung": 0}
    injected = {}
    sanitizer_dirty = []
    retransmissions = dead_letters = fallback_copies = 0
    for cell in results:
        for key in totals:
            totals[key] += cell["outcomes"][key]
        for key, val in cell["injected"].items():
            injected[key] = injected.get(key, 0) + val
        if cell["sanitizer"]:
            sanitizer_dirty.append(
                f'{cell["workload"]}/{cell["size"]}/{cell["plan"]}'
            )
        retransmissions += cell["counters"].get("retransmissions", 0)
        dead_letters += cell["counters"].get("dead_letters", 0)
        fallback_copies += cell["counters"].get("offload_fallback_copies", 0)
    return {
        "spec": {
            "workloads": list(spec.workloads),
            "sizes": list(spec.sizes),
            "plans": [p.name for p in (spec.plans or standard_plans(spec.seed))],
            "iters": spec.iters,
            "seed": spec.seed,
        },
        "cells": results,
        "skipped_cells": skipped,
        "totals": totals,
        "injected": injected,
        "retransmissions": retransmissions,
        "dead_letters": dead_letters,
        "fallback_copies": fallback_copies,
        "sanitizer_dirty_cells": sanitizer_dirty,
    }


def write_report(report: dict, path) -> Path:
    """Serialize a campaign report (sorted keys: byte-stable output)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, sort_keys=True, indent=2) + "\n")
    return path
