"""The native MX / MXoE baseline: matching and deposit in NIC firmware.

On a Myri-10G board running the native firmware, the host posts sends and
receives through an OS-bypass doorbell; the NIC matches incoming messages
against posted receives and deposits data **directly into application
buffers** — no host-side copy ever happens.  Large messages still use a
rendezvous + pull exchange, but it is driven entirely by the two NICs'
processors.

This is the upper baseline of Figs. 3, 8, 11 and 12: wire-limited for large
messages (~1140 MiB/s) with negligible host CPU usage.

The endpoint API (``isend`` / ``irecv`` / ``wait``) is duck-type compatible
with :class:`repro.core.endpoint.OmxEndpoint`, so the MPI and IMB layers run
unmodified over either stack — mirroring the real API compatibility between
MX and Open-MX.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator, Optional

import numpy as np

from repro.ethernet.frame import ETHERTYPE_MX, EthernetFrame
from repro.memory.buffers import MemoryRegion
from repro.mx.wire import EndpointAddr, MxPacket, PktType
from repro.simkernel.resources import Store
from repro.simkernel.sync import Signal

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.host import Host
    from repro.simkernel.cpu import Core


def match_accepts(recv_match: int, recv_mask: int, send_match: int) -> bool:
    """MX matching rule: masked bits of the match info must agree."""
    return (send_match & recv_mask) == (recv_match & recv_mask)


@dataclass
class MxRequest:
    """A pending send or receive."""

    kind: str  # "send" | "recv"
    match_info: int
    mask: int
    region: Optional[MemoryRegion]
    offset: int
    length: int
    completion: object = None  # Event, set by the endpoint
    #: bytes actually transferred (set at completion)
    xfer_length: int = 0
    msg_id: int = -1


@dataclass
class _RecvState:
    """Receiver-side progress of one incoming message."""

    req: MxRequest
    received: int = 0
    total: int = 0


@dataclass
class _PullState:
    """Receiver-firmware state for one large incoming message."""

    req: MxRequest
    src: EndpointAddr
    msg_id: int
    total: int
    handle: int
    received: int = 0
    next_req_offset: int = 0


class NativeMxEndpoint:
    """One opened endpoint on a native-MX host."""

    def __init__(self, stack: "NativeMxStack", addr: EndpointAddr):
        self.stack = stack
        self.addr = addr
        self.sim = stack.sim
        self.activity = Signal(self.sim, name=f"mx{addr}.activity")
        self.posted_recvs: list[MxRequest] = []
        #: eager messages that arrived before a matching recv was posted
        self.unexpected: list[tuple[MxPacket, np.ndarray]] = []
        #: RNDV packets awaiting a matching recv
        self.pending_rndv: list[MxPacket] = []
        self._msg_ids = itertools.count()
        self.sends: dict[int, MxRequest] = {}

    # -- public API (generator methods; run on the caller's core) -----------

    def isend(
        self,
        core: "Core",
        dest: EndpointAddr,
        match_info: int,
        region: MemoryRegion,
        offset: int = 0,
        length: Optional[int] = None,
    ) -> Generator:
        """Post a send; returns an :class:`MxRequest` immediately."""
        length = len(region) - offset if length is None else length
        req = MxRequest("send", match_info, ~0, region, offset, length)
        req.completion = self.sim.event(f"mx-send@{self.addr}")
        req.msg_id = next(self._msg_ids)
        self.sends[req.msg_id] = req
        yield from core.execute(self.stack.params.host_post_cost, "user")
        self.stack._firmware_send(self, req, dest)
        return req

    def irecv(
        self,
        core: "Core",
        match_info: int,
        mask: int,
        region: MemoryRegion,
        offset: int = 0,
        length: Optional[int] = None,
    ) -> Generator:
        """Post a receive; returns an :class:`MxRequest` immediately."""
        length = len(region) - offset if length is None else length
        req = MxRequest("recv", match_info, mask, region, offset, length)
        req.completion = self.sim.event(f"mx-recv@{self.addr}")
        yield from core.execute(self.stack.params.host_post_cost, "user")
        self.posted_recvs.append(req)
        self.stack._match_unexpected(self, req)
        return req

    def wait(self, core: "Core", req: MxRequest) -> Generator:
        """Block until ``req`` completes; charges completion-reap cost."""
        while not req.completion.triggered:
            yield self.activity.wait()
        yield from core.execute(self.stack.params.host_completion_cost, "user")
        return req

    # -- stack-internal -------------------------------------------------------

    def _complete(self, req: MxRequest, xfer: int) -> None:
        req.xfer_length = xfer
        req.completion.succeed(req)
        self.activity.fire()


class NativeMxStack:
    """The firmware of one Myri-10G board (plus its host-side library)."""

    def __init__(self, host: "Host"):
        self.host = host
        self.sim = host.sim
        self.params = host.platform.mx
        self.endpoints: dict[int, NativeMxEndpoint] = {}
        self._rxq: Store = Store(self.sim, name=f"mxfw{host.host_id}.rx")
        self._txq: Store = Store(self.sim, name=f"mxfw{host.host_id}.tx")
        self._pulls: dict[int, _PullState] = {}
        self._pull_ids = itertools.count()
        self._recv_states: dict[tuple[EndpointAddr, int], _RecvState] = {}
        host.nic.frame_sink = self._on_frame
        self.sim.daemon(self._firmware_rx_loop(), name=f"mxfw{host.host_id}-rx")
        self.sim.daemon(self._firmware_tx_loop(), name=f"mxfw{host.host_id}-tx")

    # -- endpoint management ----------------------------------------------------

    def open_endpoint(self, ep_id: int) -> NativeMxEndpoint:
        if ep_id in self.endpoints:
            raise ValueError(f"endpoint {ep_id} already open")
        ep = NativeMxEndpoint(self, EndpointAddr(self.host.host_id, ep_id))
        self.endpoints[ep_id] = ep
        return ep

    # -- transmit side ----------------------------------------------------------

    def _firmware_send(self, ep: NativeMxEndpoint, req: MxRequest, dest: EndpointAddr) -> None:
        """Queue a send for the firmware TX processor."""
        self._txq.put(("send", ep, req, dest))

    def _emit(self, pkt: MxPacket) -> Generator:
        """Firmware: serialize one packet onto the wire (or NIC loopback).

        Intra-node traffic of the native stack goes through the NIC's
        loopback path at link speed — MX of this era had no host shared-
        memory shortcut comparable to Open-MX's one-copy model, which is why
        the paper's 2-process-per-node runs favour Open-MX+I/OAT (§IV-D).
        """
        yield self.params.firmware_frag_cost  # bare-int sleep (hot path)
        frame = EthernetFrame(
            src_mac=self.host.host_id, dst_mac=pkt.dst.host,
            ethertype=ETHERTYPE_MX, payload=pkt, payload_len=pkt.wire_payload_len,
        )
        if pkt.dst.host == self.host.host_id:
            from repro.units import transfer_time

            yield transfer_time(frame.wire_len, self.host.platform.nic.link_bw)
            self._rxq.put(frame.payload)
            return None
        egress = self.host.nic._egress
        if egress is None:
            raise RuntimeError("native MX NIC has no link")

        # The firmware pipelines descriptor processing with the wire: it
        # hands the frame to the serializer and moves on (FIFO order is
        # preserved by the link's timestamp queue).
        nic = self.host.nic

        def on_wire(delivered: bool) -> None:
            nic.tx_frames += 1

        egress.send(frame, on_serialized=on_wire)
        return None

    def _firmware_tx_loop(self) -> Generator:
        while True:
            item = yield self._txq.get()
            kind = item[0]
            if kind == "send":
                _, ep, req, dest = item
                yield from self._tx_message(ep, req, dest)
            elif kind == "pkt":
                yield from self._emit(item[1])
            elif kind == "pull_reply":
                _, pkt = item
                yield from self._tx_pull_replies(pkt)

    def _tx_message(self, ep: NativeMxEndpoint, req: MxRequest, dest: EndpointAddr) -> Generator:
        if req.length <= self.params.rndv_threshold:
            frag = max(self.params.eager_frag, 1)
            count = max(1, -(-req.length // frag))
            for i in range(count):
                off = i * frag
                n = min(frag, req.length - off)
                ptype = PktType.TINY if req.length <= 32 else (
                    PktType.SMALL if count == 1 else PktType.MEDIUM_FRAG
                )
                yield from self._emit(MxPacket(
                    ptype=ptype, src=ep.addr, dst=dest,
                    match_info=req.match_info, msg_id=req.msg_id,
                    msg_len=req.length, frag_index=i, frag_count=count,
                    offset=off, data_region=req.region,
                    data_offset=req.offset + off, data_length=n,
                ))
            # Eager sends complete locally once on the wire.
            ep._complete(req, req.length)
        else:
            yield from self._emit(MxPacket(
                ptype=PktType.RNDV, src=ep.addr, dst=dest,
                match_info=req.match_info, msg_id=req.msg_id, msg_len=req.length,
            ))
            # completion arrives later via NOTIFY

    def _tx_pull_replies(self, reqpkt: MxPacket) -> Generator:
        """Serve one PULL_REQ: stream the requested byte span."""
        send_req = None
        ep = self.endpoints.get(reqpkt.dst.endpoint)
        if ep is not None:
            send_req = ep.sends.get(reqpkt.msg_id)
        if send_req is None:
            return None
        frag = self.params.large_frag
        pos = reqpkt.req_offset
        end = min(reqpkt.req_offset + reqpkt.req_length, send_req.length)
        while pos < end:
            n = min(frag, end - pos)
            yield from self._emit(MxPacket(
                ptype=PktType.PULL_REPLY, src=reqpkt.dst, dst=reqpkt.src,
                msg_id=reqpkt.msg_id, pull_handle=reqpkt.pull_handle,
                offset=pos, msg_len=send_req.length,
                data_region=send_req.region, data_offset=send_req.offset + pos,
                data_length=n,
            ))
            pos += n
        return None

    # -- receive side -------------------------------------------------------------

    def _on_frame(self, frame: EthernetFrame) -> None:
        self._rxq.put(frame.payload)

    def _firmware_rx_loop(self) -> Generator:
        while True:
            pkt = yield self._rxq.get()
            yield self.params.firmware_frag_cost  # bare-int sleep (hot path)
            self._handle(pkt)

    def _handle(self, pkt: MxPacket) -> None:
        ep = self.endpoints.get(pkt.dst.endpoint)
        if ep is None:
            return
        if pkt.ptype in (PktType.TINY, PktType.SMALL, PktType.MEDIUM_FRAG):
            self._handle_eager(ep, pkt)
        elif pkt.ptype is PktType.RNDV:
            self._handle_rndv(ep, pkt)
        elif pkt.ptype is PktType.PULL_REQ:
            self._txq.put(("pull_reply", pkt))
        elif pkt.ptype is PktType.PULL_REPLY:
            self._handle_pull_reply(ep, pkt)
        elif pkt.ptype is PktType.NOTIFY:
            send_req = ep.sends.pop(pkt.msg_id, None)
            if send_req is not None:
                ep._complete(send_req, send_req.length)

    def _deposit(self, req: MxRequest, pkt: MxPacket) -> None:
        """Zero-copy deposit: NIC DMA straight into the app buffer."""
        data = pkt.gather_data()
        n = min(pkt.data_length, max(req.length - pkt.offset, 0))
        if n:
            req.region.write(req.offset + pkt.offset, data[:n])
            self.host.bus.record_dma_write(n)
            self.host.caches.invalidate_all(req.region.addr + req.offset + pkt.offset, n)

    def _find_recv(self, ep: NativeMxEndpoint, match_info: int) -> Optional[MxRequest]:
        for i, req in enumerate(ep.posted_recvs):
            if match_accepts(req.match_info, req.mask, match_info):
                return ep.posted_recvs.pop(i)
        return None

    def _handle_eager(self, ep: NativeMxEndpoint, pkt: MxPacket) -> None:
        key = (pkt.src, pkt.msg_id)
        state = self._recv_states.get(key)
        if state is None:
            req = self._find_recv(ep, pkt.match_info)
            if req is None:
                ep.unexpected.append((pkt, pkt.gather_data().copy()))
                return
            state = _RecvState(req, total=pkt.msg_len)
            if pkt.frag_count > 1:
                self._recv_states[key] = state
        self._deposit(state.req, pkt)
        state.received += pkt.data_length
        if state.received >= min(state.total, state.req.length) or pkt.frag_count == 1:
            self._recv_states.pop(key, None)
            ep._complete(state.req, min(state.total, state.req.length))

    def _match_unexpected(self, ep: NativeMxEndpoint, req: MxRequest) -> None:
        """Try to satisfy a fresh recv from queued unexpected traffic."""
        # Eager unexpected first (arrival order), then pending rendezvous.
        for i, (pkt, data) in enumerate(ep.unexpected):
            if match_accepts(req.match_info, req.mask, pkt.match_info):
                del ep.unexpected[i]
                n = min(len(data), req.length)
                if n:
                    req.region.write(req.offset, data[:n])
                ep._complete(req, n)
                ep.posted_recvs.remove(req)
                return
        for i, pkt in enumerate(ep.pending_rndv):
            if match_accepts(req.match_info, req.mask, pkt.match_info):
                del ep.pending_rndv[i]
                ep.posted_recvs.remove(req)
                self._start_pull(ep, req, pkt)
                return

    def _handle_rndv(self, ep: NativeMxEndpoint, pkt: MxPacket) -> None:
        req = self._find_recv(ep, pkt.match_info)
        if req is None:
            ep.pending_rndv.append(pkt)
            return
        self._start_pull(ep, req, pkt)

    def _start_pull(self, ep: NativeMxEndpoint, req: MxRequest, rndv: MxPacket) -> None:
        handle = next(self._pull_ids)
        total = min(rndv.msg_len, req.length)
        st = _PullState(req=req, src=rndv.src, msg_id=rndv.msg_id, total=total, handle=handle)
        self._pulls[handle] = st
        # Two pipelined block requests outstanding (like Open-MX).
        block = self.params.large_frag * 8
        for _ in range(2):
            self._request_next_block(ep, st, block)

    def _request_next_block(self, ep: NativeMxEndpoint, st: _PullState, block: int) -> None:
        if st.next_req_offset >= st.total:
            return
        n = min(block, st.total - st.next_req_offset)
        self._txq.put(("pkt", MxPacket(
            ptype=PktType.PULL_REQ, src=ep.addr, dst=st.src,
            msg_id=st.msg_id, pull_handle=st.handle,
            req_offset=st.next_req_offset, req_length=n,
        )))
        st.next_req_offset += n

    def _handle_pull_reply(self, ep: NativeMxEndpoint, pkt: MxPacket) -> None:
        st = self._pulls.get(pkt.pull_handle)
        if st is None:
            return
        self._deposit(st.req, pkt)
        st.received += pkt.data_length
        block = self.params.large_frag * 8
        if st.received % block == 0 or st.received >= st.total:
            self._request_next_block(ep, st, block)
        if st.received >= st.total:
            del self._pulls[pkt.pull_handle]
            ep._complete(st.req, st.total)
            self._txq.put(("pkt", MxPacket(
                ptype=PktType.NOTIFY, src=ep.addr, dst=st.src, msg_id=st.msg_id,
            )))
