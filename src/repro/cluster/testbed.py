"""Two-node back-to-back testbed factory (the paper's experimental setup).

Two dual-Clovertown hosts, Myri-10G NICs "connected without any switch"
(§II-B).  Each node runs either the Open-MX stack or the native MXoE
firmware — including one of each, since wire interoperability is an Open-MX
design goal that the tests exercise.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.cluster.host import Host
from repro.core.driver import OmxStack
from repro.ethernet.link import Link
from repro.mx.native import NativeMxStack
from repro.params import Platform, clovertown_5000x
from repro.simkernel.scheduler import Simulator

StackName = str  # "omx" | "mx"


class Testbed:
    """Assembled simulator + hosts + link + per-node stacks."""

    def __init__(self, sim: Simulator, platform: Platform,
                 hosts: list[Host], link: Optional[Link],
                 stacks: list[Union[OmxStack, NativeMxStack]]):
        self.sim = sim
        self.platform = platform
        self.hosts = hosts
        self.link = link
        self.stacks = stacks

    def stack(self, node: int) -> Union[OmxStack, NativeMxStack]:
        return self.stacks[node]

    def open_endpoint(self, node: int, ep_id: int):
        """Open endpoint ``ep_id`` on node ``node`` (either stack kind)."""
        stack = self.stacks[node]
        return stack.open_endpoint(ep_id)

    def user_core(self, node: int, index: int = 0):
        return self.hosts[node].user_core(index)

    def run(self, **kw) -> int:
        return self.sim.run(**kw)

    def run_until(self, ev, **kw):
        return self.sim.run_until(ev, **kw)


def build_testbed(
    platform: Optional[Platform] = None,
    stacks: Union[StackName, tuple[StackName, StackName]] = "omx",
    **omx_overrides,
) -> Testbed:
    """Build the canonical two-node testbed.

    Thin wrapper compiling the fabric pair spec
    (:func:`repro.fabric.spec.pair_topology`) with
    :func:`repro.fabric.build.build_fabric_testbed`; the construction
    order — and therefore every event count — is identical to the
    historical inline factory.

    ``stacks`` selects the software per node: a single name for both, or a
    pair like ``("omx", "mx")`` for the interoperability configuration.
    ``omx_overrides`` are forwarded to :class:`~repro.params.OmxConfig`.
    """
    from repro.fabric.build import build_fabric_testbed
    from repro.fabric.spec import pair_topology

    if platform is None:
        platform = clovertown_5000x(**omx_overrides)
    elif omx_overrides:
        platform = platform.with_omx(**omx_overrides)
    return build_fabric_testbed(pair_topology(), platform=platform,
                                stacks=stacks)


def build_single_node(
    platform: Optional[Platform] = None, **omx_overrides
) -> Testbed:
    """One host, no link: the shared-memory (Fig. 10) configuration."""
    if platform is None:
        platform = clovertown_5000x(**omx_overrides)
    elif omx_overrides:
        platform = platform.with_omx(**omx_overrides)
    sim = Simulator()
    host = Host(sim, platform, name="node0")
    return Testbed(sim, platform, [host], None, [OmxStack(host)])
