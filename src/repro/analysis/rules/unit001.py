"""UNIT001: bare integer literal where a units.py quantity is expected.

Sizes and times in this codebase go through :mod:`repro.units` (``KiB``,
``us``...) so a reader can tell 4096 bytes from 4096 nanoseconds.  A bare
small literal passed for one of the known size/time config fields is almost
always someone writing kilobytes or microseconds where the field wants raw
bytes/ns — e.g. ``ioat_min_frag=4`` (meaning 4 KiB) silently offloads
every 4-*byte* fragment.  Literals ≥512 pass: they are plausibly already in
base units (and the products of the units helpers are themselves ≥512).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint import Finding, ModuleSource, Rule, register_rule

#: config fields measured in bytes or nanoseconds (see repro.params.OmxConfig)
_UNIT_FIELDS = frozenset({
    "ioat_min_frag",
    "ioat_min_msg",
    "medium_frag",
    "medium_max",
    "large_frag",
    "eager_frag",
    "rndv_threshold",
    "shm_large_threshold",
    "shm_ioat_min",
    "retransmit_timeout",
})

_SUSPECT_MAX = 512


def _suspect(value: ast.AST) -> bool:
    return (
        isinstance(value, ast.Constant)
        and type(value.value) is int
        and 0 < value.value < _SUSPECT_MAX
    )


@register_rule
class BareUnitLiteralRule(Rule):
    code = "UNIT001"
    summary = "bare small integer for a byte/ns config field (use repro.units)"

    def check(self, module: ModuleSource,
              project=None) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg in _UNIT_FIELDS and _suspect(kw.value):
                        yield module.finding(
                            self.code, kw.value,
                            f"bare literal {kw.value.value} for '{kw.arg}' — "
                            f"spell the unit (e.g. KiB/us from repro.units)",
                        )
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                value = node.value
                if value is None or not _suspect(value):
                    continue
                for target in targets:
                    field = target.attr if isinstance(target, ast.Attribute) else None
                    if field in _UNIT_FIELDS:
                        yield module.finding(
                            self.code, value,
                            f"bare literal {value.value} assigned to '{field}' — "
                            f"spell the unit (e.g. KiB/us from repro.units)",
                        )
