"""The 4-channel I/OAT engine and its channel-allocation policy.

Open-MX "assigns a single channel per message and only relies on multiple
channels to handle multiple outstanding messages" (§V), trading peak
single-copy throughput for management simplicity.  The engine therefore
exposes round-robin channel checkout keyed by a flow (message) identity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.ioat.channel import DmaChannel
from repro.params import IoatParams

if TYPE_CHECKING:  # pragma: no cover
    from repro.memory.cache import CacheDirectory
    from repro.simkernel.scheduler import Simulator


class IoatEngine:
    """All DMA channels of the chipset."""

    def __init__(
        self,
        sim: "Simulator",
        params: IoatParams,
        caches: Optional["CacheDirectory"] = None,
    ):
        self.sim = sim
        self.params = params
        self.channels = [
            DmaChannel(sim, params, index=i, caches=caches) for i in range(params.channels)
        ]
        self._rr = 0

    def __len__(self) -> int:
        return len(self.channels)

    def __getitem__(self, i: int) -> DmaChannel:
        return self.channels[i]

    def register_metrics(self, reg) -> None:
        """Publish engine aggregates plus every channel's own metrics."""
        reg.counter("ioat", "ioat_bytes_copied", lambda: self.bytes_copied)
        reg.counter("ioat", "ioat_descriptors", lambda: self.descriptors_completed)
        reg.counter("ioat", "ioat_descriptors_failed",
                    lambda: self.descriptors_failed,
                    "descriptors aborted by channel failure")
        reg.counter("ioat", "ioat_stalls", lambda: self.stalls)
        reg.counter("ioat", "ioat_recoveries", lambda: self.recoveries,
                    "channels brought back after a hard failure")
        for channel in self.channels:
            channel.register_metrics(reg)

    def allocate_channel(self) -> DmaChannel:
        """Round-robin checkout: one channel per flow/message."""
        ch = self.channels[self._rr % len(self.channels)]
        self._rr += 1
        return ch

    def least_loaded_channel(self) -> DmaChannel:
        """Channel with the shallowest queue (used by the striping ablation)."""
        return min(self.channels, key=lambda c: (c.queue_depth, c.index))

    # -- aggregate statistics ------------------------------------------------

    @property
    def bytes_copied(self) -> int:
        return sum(c.bytes_copied for c in self.channels)

    @property
    def descriptors_completed(self) -> int:
        return sum(c.descriptors_completed for c in self.channels)

    @property
    def busy_ticks(self) -> int:
        return sum(c.busy_ticks for c in self.channels)

    @property
    def descriptors_failed(self) -> int:
        return sum(c.descriptors_failed for c in self.channels)

    @property
    def stalls(self) -> int:
        return sum(c.stalls for c in self.channels)

    @property
    def recoveries(self) -> int:
        return sum(c.recoveries for c in self.channels)
