"""The IMB driver: per-test bodies, timing, throughput arithmetic.

Timing follows IMB-MPI1: a barrier synchronises all ranks, ``warmup``
untimed iterations prime caches and registration state, then ``iterations``
timed repetitions run back-to-back.  ``t_avg`` is the makespan divided by
the iteration count; point-to-point tests also report MiB/s using IMB's
per-iteration byte factors (PingPong moves ``size`` per measured unit —
half a round-trip — SendRecv 2×, Exchange 4×).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Generator, Optional

from repro.mpi.comm import Communicator, Rank
from repro.units import MiB, SEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.testbed import Testbed


@dataclass
class ImbResult:
    """One (test, size) measurement."""

    test: str
    size: int
    iterations: int
    #: average time per iteration unit, microseconds (IMB t_avg)
    t_avg_us: float
    #: reported throughput, MiB/s (point-to-point tests; 0 for collectives)
    mib_s: float
    ranks: int


# ---------------------------------------------------------------------------
# per-test bodies: body(rank, size, buffers) runs ONE iteration
# ---------------------------------------------------------------------------


def _bufs(rank: Rank, *specs: tuple[str, int]):
    """Named reusable per-rank buffers."""
    cache = getattr(rank, "_imb_bufs", None)
    if cache is None:
        cache = rank._imb_bufs = {}
    out = []
    for name, nbytes in specs:
        region = cache.get(name)
        if region is None or len(region) < nbytes:
            region = rank.space.alloc(max(nbytes, 1))
            region.fill_pattern(hash(name) & 0xFF)
            cache[name] = region
        out.append(region)
    return out


def _pingpong(rank: Rank, size: int) -> Generator:
    sb, rb = _bufs(rank, ("s", size), ("r", size))
    if rank.rank == 0:
        yield from rank.send(1, sb, 0, size, tag=1)
        yield from rank.recv(1, rb, 0, size, tag=2)
    elif rank.rank == 1:
        yield from rank.recv(0, rb, 0, size, tag=1)
        yield from rank.send(0, sb, 0, size, tag=2)
    return None


def _pingping(rank: Rank, size: int) -> Generator:
    sb, rb = _bufs(rank, ("s", size), ("r", size))
    if rank.rank in (0, 1):
        other = 1 - rank.rank
        rreq = yield from rank.irecv(other, rb, 0, size, tag=3)
        sreq = yield from rank.isend(other, sb, 0, size, tag=3)
        yield from rank.wait(sreq)
        yield from rank.wait(rreq)
    return None


def _sendrecv(rank: Rank, size: int) -> Generator:
    sb, rb = _bufs(rank, ("s", size), ("r", size))
    p = rank.size
    yield from rank.sendrecv((rank.rank + 1) % p, sb, (rank.rank - 1) % p, rb,
                             length=size, stag=4, rtag=4)
    return None


def _exchange(rank: Rank, size: int) -> Generator:
    sb, rb_l, rb_r = _bufs(rank, ("s", size), ("rl", size), ("rr", size))
    p = rank.size
    left, right = (rank.rank - 1) % p, (rank.rank + 1) % p
    r1 = yield from rank.irecv(left, rb_l, 0, size, tag=5)
    r2 = yield from rank.irecv(right, rb_r, 0, size, tag=6)
    s1 = yield from rank.isend(right, sb, 0, size, tag=5)
    s2 = yield from rank.isend(left, sb, 0, size, tag=6)
    for req in (s1, s2, r1, r2):
        yield from rank.wait(req)
    return None


def _bcast(rank: Rank, size: int, iteration: int = 0) -> Generator:
    (buf,) = _bufs(rank, ("b", size))
    yield from rank.bcast(buf, root=iteration % rank.size, length=size)
    return None


def _reduce(rank: Rank, size: int, iteration: int = 0) -> Generator:
    sb, rb = _bufs(rank, ("s", size), ("r", size))
    yield from rank.reduce(sb, rb, root=iteration % rank.size, length=size)
    return None


def _allreduce(rank: Rank, size: int) -> Generator:
    sb, rb = _bufs(rank, ("s", size), ("r", size))
    yield from rank.allreduce(sb, rb, length=size)
    return None


def _reduce_scatter(rank: Rank, size: int) -> Generator:
    p = rank.size
    block = max(size // p, 4)
    sb, rb = _bufs(rank, ("s", block * p), ("r", block))
    yield from rank.reduce_scatter(sb, rb, block)
    return None


def _allgather(rank: Rank, size: int) -> Generator:
    p = rank.size
    sb, rb = _bufs(rank, ("s", size), ("r", size * p))
    yield from rank.allgather(sb, rb, size)
    return None


def _allgatherv(rank: Rank, size: int) -> Generator:
    p = rank.size
    lens = [size] * p
    sb, rb = _bufs(rank, ("s", size), ("r", size * p))
    yield from rank.allgatherv(sb, rb, lens)
    return None


def _alltoall(rank: Rank, size: int) -> Generator:
    p = rank.size
    sb, rb = _bufs(rank, ("s", size * p), ("r", size * p))
    yield from rank.alltoall(sb, rb, size)
    return None


#: test name → (body, bytes-per-iteration factor for MiB/s, takes_iteration)
IMB_TESTS: dict[str, tuple[Callable, float, bool]] = {
    "PingPong": (_pingpong, 1.0, False),
    "PingPing": (_pingping, 1.0, False),
    "SendRecv": (_sendrecv, 2.0, False),
    "Exchange": (_exchange, 4.0, False),
    "Allreduce": (_allreduce, 0.0, False),
    "Reduce": (_reduce, 0.0, True),
    "Red.Scat.": (_reduce_scatter, 0.0, False),
    "Allgather": (_allgather, 0.0, False),
    "Allgatherv": (_allgatherv, 0.0, False),
    "Alltoall": (_alltoall, 0.0, False),
    "Bcast": (_bcast, 0.0, True),
}


def run_imb(
    tb: "Testbed",
    comm: Communicator,
    test: str,
    size: int,
    iterations: int = 10,
    warmup: int = 2,
    max_events: Optional[int] = 200_000_000,
) -> ImbResult:
    """Run one IMB test at one size; returns the measurement."""
    if test not in IMB_TESTS:
        raise ValueError(f"unknown IMB test {test!r}; know {sorted(IMB_TESTS)}")
    body, bytes_factor, takes_iter = IMB_TESTS[test]
    marks: dict[str, int] = {}

    def rank_body(rank: Rank) -> Generator:
        yield from rank.barrier()
        for i in range(warmup):
            if takes_iter:
                yield from body(rank, size, i)
            else:
                yield from body(rank, size)
        yield from rank.barrier()
        if rank.rank == 0:
            marks["start"] = rank.sim.now
        for i in range(iterations):
            if takes_iter:
                yield from body(rank, size, warmup + i)
            else:
                yield from body(rank, size)
        yield from rank.barrier()
        if rank.rank == 0:
            marks["end"] = rank.sim.now

    comm.run_spmd(rank_body, max_events=max_events)
    elapsed = marks["end"] - marks["start"]
    per_iter = elapsed / iterations
    if test == "PingPong":
        per_iter /= 2.0  # IMB reports half the round trip
    t_avg_us = per_iter / 1000.0
    mib_s = 0.0
    if bytes_factor and per_iter > 0:
        mib_s = bytes_factor * size / MiB * SEC / per_iter
    return ImbResult(test, size, iterations, t_avg_us, mib_s, comm.size)
