"""repro: a simulation-based reproduction of Goglin's Open-MX I/OAT paper.

*Improving Message Passing over Ethernet with I/OAT Copy Offload in Open-MX*
(Brice Goglin, IEEE Cluster 2008).

Quick start::

    from repro import build_testbed

    tb = build_testbed(ioat_enabled=True)
    ep0 = tb.open_endpoint(0, 0)
    ep1 = tb.open_endpoint(1, 0)
    # ... spawn processes doing ep.isend / ep.irecv / ep.wait; tb.run()

See :mod:`repro.reporting.experiments` (CLI: ``omx-repro``) for regenerating
every figure of the paper, and DESIGN.md / EXPERIMENTS.md at the repository
root for the system inventory and measured results.
"""

from repro.cluster.testbed import Testbed, build_single_node, build_testbed
from repro.params import (
    HostParams,
    IoatParams,
    MxParams,
    NicParams,
    OmxConfig,
    Platform,
    clovertown_5000x,
)

__version__ = "1.0.0"

__all__ = [
    "HostParams",
    "IoatParams",
    "MxParams",
    "NicParams",
    "OmxConfig",
    "Platform",
    "Testbed",
    "build_single_node",
    "build_testbed",
    "clovertown_5000x",
]
