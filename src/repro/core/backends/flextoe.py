"""FlexTOE-style fine-grained parallel data path (Shashidhara et al.).

FlexTOE refactors the offload into many lightweight pipeline stages that
each do a small slice of work with tiny per-unit overhead.  Modeled here
as a group of slow-but-cheap copy lanes: each lane moves bytes at a
fraction of the chipset engine's bandwidth, but descriptor setup and
submission cost a fraction too, and one fragment's page chunks are
*striped across lanes in parallel* — the fine-grained pipelining that is
the design's whole point.  Aggregate bandwidth beats the single I/OAT
channel once a fragment spans multiple pages; single-chunk fragments see
the lighter submission cost but a slower individual lane.

The striping cursor lives per message (``state.backend_state``) so
consecutive fragments continue round the lane ring instead of all
starting at lane 0 — the same herding mistake the breaker-reroute bugfix
removed from channel assignment.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Generator

from repro.core.backends.base import LaneBackend, LaneTicket, register_backend
from repro.ioat.api import DmaCookie
from repro.ioat.descriptor import CopyDescriptor
from repro.memory.layout import count_page_aligned_chunks, page_aligned_chunks
from repro.units import GiB, ns

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.host import Host
    from repro.core.offload import MessageOffloadState
    from repro.memory.buffers import MemoryRegion
    from repro.params import IoatParams
    from repro.simkernel.cpu import Core


@register_backend
class FlexToeBackend(LaneBackend):
    """Many lightweight lanes; page chunks of one fragment run in parallel."""

    name = "flextoe"
    n_lanes = 6
    index_base = 100

    def lane_params(self, host: "Host") -> "IoatParams":
        base = host.params.ioat
        # Lightweight stages: ~1/3 the submission and descriptor setup
        # cost of the chipset engine, ~40% of its per-lane bandwidth —
        # the aggregate over 6 lanes exceeds one I/OAT channel.
        return replace(
            base,
            channels=self.n_lanes,
            submit_cost=ns(120),
            per_descriptor_cost=ns(180),
            engine_bw=1.45 * GiB,
            completion_latency=ns(400),
        )

    def submit_fragment(
        self,
        core: "Core",
        state: "MessageOffloadState",
        skb,
        skb_off: int,
        dst: "MemoryRegion",
        dst_off: int,
        length: int,
    ) -> Generator:
        from repro.core.offload import PendingCopy

        src = skb.head
        n_chunks = count_page_aligned_chunks(
            src.addr + skb_off, dst.addr + dst_off, length
        )
        if n_chunks == 1:
            pieces = ((0, 0, length),)
        else:
            pieces = page_aligned_chunks(
                src.addr + skb_off, dst.addr + dst_off, length
            )
        lanes = self.lanes.channels
        n_lanes = len(lanes)
        cursor = state.backend_state or 0
        sc = self.api.params.submit_cost
        last: dict[int, int] = {}
        counts: dict[int, int] = {}
        sizes: dict[int, int] = {}
        for i, (rel_src, rel_dst, n) in enumerate(pieces):
            ch = lanes[(cursor + i) % n_lanes]
            while ch.ring.free_slots == 0:
                ch.reap()
                if ch.ring.free_slots:
                    break
                start = core.sim.now
                yield ch.wait_completion().wait()
                core.account("bh", core.sim.now - start, phase="dma_wait")
            if sc:
                yield sc
            core.account("bh", sc, "dma_submit")
            last[ch.index] = ch.submit(CopyDescriptor(
                src, skb_off + rel_src, dst, dst_off + rel_dst, n
            ))
            counts[ch.index] = counts.get(ch.index, 0) + 1
            sizes[ch.index] = sizes.get(ch.index, 0) + n
        state.backend_state = (cursor + n_chunks) % n_lanes
        self.api.copies_submitted += 1
        self.api.descriptors_submitted += n_chunks
        by_index = {ch.index: ch for ch in lanes}
        ticket = LaneTicket(
            parts=tuple(
                DmaCookie(by_index[idx], cookie, sizes[idx], counts[idx])
                for idx, cookie in last.items()
            ),
            nbytes=length,
        )
        state.pending.append(
            PendingCopy(ticket, skb, skb_off, dst, dst_off, length)
        )
        state.offloaded_bytes += length
        return ticket

    # -- completion: tickets span lanes, so poll/drain cover the group --

    def poll_pending(self, core: "Core",
                     state: "MessageOffloadState") -> Generator:
        yield from core.busy(self.api.params.poll_cost, "bh",
                             phase="dma_poll")
        for ch in self.lanes.channels:
            ch.poll()
        return None

    def ticket_done(self, ticket, token) -> bool:
        return ticket.done

    def drain_state(self, core: "Core",
                    state: "MessageOffloadState") -> Generator:
        # Wait on every pending entry: per-lane FIFOs are independent, so
        # an earlier fragment may still be running on a lane the last
        # fragment never touched.
        start = core.sim.now
        for entry in state.pending:
            for part in entry.cookie.parts:
                while not part.done:
                    yield part.channel.wait_completion().wait()
        core.account("bh", core.sim.now - start, phase="dma_wait")
        yield from core.busy(
            self.api.params.completion_latency + self.api.params.poll_cost,
            "bh", phase="dma_poll",
        )

    def reap_state(self, state: "MessageOffloadState") -> None:
        for ch in self.lanes.channels:
            ch.reap()

    def fragment_cost(self, src_addr: int, dst_addr: int,
                      length: int) -> tuple[int, int]:
        """CPU pays per chunk; chunks run in parallel across lanes."""
        params = self.api.params
        n_chunks = count_page_aligned_chunks(src_addr, dst_addr, length)
        cpu = n_chunks * params.submit_cost
        ch = self.lanes.channels[0]
        per_lane = -(-n_chunks // len(self.lanes.channels))  # ceil
        chunk = -(-length // n_chunks)
        engine = per_lane * ch.service_time(chunk)
        return cpu, engine
