"""Experiment registry: one runner per paper figure/table.

Each ``fig*`` function rebuilds the workload of the corresponding figure in
the paper's evaluation section and returns a rendered-able result object
(:class:`~repro.reporting.figures.Figure` or
:class:`~repro.reporting.table.Table`).  The ``omx-repro`` CLI (see
``main``) runs any of them; the pytest-benchmark files under
``benchmarks/`` wrap the same runners.

Runners declare their sweep as a list of independent *points* and execute
them through a :class:`~repro.reporting.sweeps.SweepExecutor` — which
memoizes points on disk and can fan out over ``REPRO_JOBS`` worker
processes.  Pass ``executor=`` to share one executor (and its statistics)
across runners; the default executor is configured from the environment.

``quick=True`` trims sizes/iterations for CI-speed runs; the shapes remain.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Optional

from repro.params import clovertown_5000x
from repro.reporting.figures import Figure
from repro.reporting.sweeps import SweepExecutor, point
from repro.reporting.table import Table
from repro.units import GiB, KiB, MiB, SEC

# ---------------------------------------------------------------------------
# shared sweeps
# ---------------------------------------------------------------------------

SWEEP_SIZES = [16, 64, 256, 1 * KiB, 4 * KiB, 16 * KiB, 32 * KiB, 64 * KiB,
               128 * KiB, 256 * KiB, 512 * KiB, 1 * MiB, 4 * MiB]
QUICK_SIZES = [16, 4 * KiB, 64 * KiB, 256 * KiB, 1 * MiB, 4 * MiB]


def _executor(executor: Optional[SweepExecutor]) -> SweepExecutor:
    return executor if executor is not None else SweepExecutor()


def _pingpong_mib_s(stack: str, size: int, iters: int, **omx) -> float:
    """One ping-pong point, run directly (kept for tests/benchmarks)."""
    from repro.reporting import sweeps

    return sweeps.point_pingpong(stack, size, iters, omx)


def _memcpy_chunked_mib_s(size: int, chunk: int) -> float:
    from repro.reporting import sweeps

    return sweeps.point_memcpy_chunked(size, chunk)


def _ioat_chunked_mib_s(size: int, chunk: int) -> float:
    from repro.reporting import sweeps

    return sweeps.point_ioat_chunked(size, chunk)


# ---------------------------------------------------------------------------
# Figure 3 — expected improvement when removing the BH receive copy
# ---------------------------------------------------------------------------

def fig3(quick: bool = False, executor: Optional[SweepExecutor] = None) -> Figure:
    """MX vs Open-MX vs Open-MX with the BH copy ignored (prediction)."""
    sizes = QUICK_SIZES if quick else SWEEP_SIZES
    iters = 3 if quick else 5
    fig = Figure("FIG3", "Expected Open-MX improvement without the BH receive copy",
                 "message size", "throughput (MiB/s)")
    configs = [
        ("MX", "mx", {}),
        ("Open-MX ignoring BH receive copy", "omx", dict(ignore_bh_copy=True)),
        ("Open-MX", "omx", {}),
    ]
    points = [
        point("pingpong", stack=stack, size=size, iters=iters, omx=cfg)
        for _label, stack, cfg in configs
        for size in sizes
    ]
    values = iter(_executor(executor).run(points))
    for label, _stack, _cfg in configs:
        s = fig.new_series(label)
        for size in sizes:
            s.add(size, next(values))
    return fig


# ---------------------------------------------------------------------------
# Figure 7 — pipelined memcpy vs I/OAT copy for several chunk sizes
# ---------------------------------------------------------------------------

def fig7(quick: bool = False, executor: Optional[SweepExecutor] = None) -> Figure:
    """Raw copy throughput when streams are split into fixed chunks."""
    copy_sizes = [256, 1 * KiB, 4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB, 1 * MiB]
    if quick:
        copy_sizes = [1 * KiB, 16 * KiB, 256 * KiB, 1 * MiB]
    chunk_sizes = [4 * KiB, 1 * KiB, 256]
    fig = Figure("FIG7", "Pipelined memcpy vs I/OAT copy by chunk size",
                 "copy size", "throughput (MiB/s)")

    series: list[tuple[str, list[int]]] = []
    points = []
    for kind, label in (("memcpy_chunked", "Memcpy"), ("ioat_chunked", "I/OAT Copy")):
        for chunk in chunk_sizes:
            sizes = [size for size in copy_sizes if size >= chunk]
            series.append((f"{label} - {_sz(chunk)} chunks", sizes))
            points.extend(point(kind, size=size, chunk=chunk) for size in sizes)
    values = iter(_executor(executor).run(points))
    for label, sizes in series:
        s = fig.new_series(label)
        for size in sizes:
            s.add(size, next(values))
    return fig


def _sz(n: int) -> str:
    return f"{n >> 10}kB" if n >= 1024 else f"{n}B"


# ---------------------------------------------------------------------------
# §IV-A scalars — submission cost, break-even sizes
# ---------------------------------------------------------------------------

def micro(quick: bool = False, executor: Optional[SweepExecutor] = None) -> Table:
    """The micro-benchmark scalars quoted in §IV-A."""
    plat = clovertown_5000x()
    hp = plat.host
    ioat_4k, memcpy_4k = _executor(executor).run([
        point("ioat_chunked", size=1 * MiB, chunk=4 * KiB),
        point("memcpy_chunked", size=1 * MiB, chunk=4 * KiB),
    ])
    t = Table("MICRO: §IV-A scalar measurements",
              ["quantity", "paper", "model"])
    t.add_row("I/OAT submission cost (ns)", "~350", hp.ioat.submit_cost)
    t.add_row("completion poll cost (ns)", "negligible", hp.ioat.poll_cost)
    t.add_row("memcpy rate, uncached (GiB/s)", "~1.6",
              f"{hp.memcpy.uncached_bw / GiB:.2f}")
    t.add_row("memcpy rate, cached (GiB/s)", "up to 12 (sustained ~6)",
              f"{hp.cache.cached_copy_bw / GiB:.2f}")
    # break-even: memcpy duration equals the submission cost
    be_uncached = int(hp.ioat.submit_cost * hp.memcpy.uncached_bw / SEC)
    be_cached = int(hp.ioat.submit_cost * hp.cache.cached_copy_bw / SEC)
    t.add_row("break-even size, uncached (B)", "~600", be_uncached)
    t.add_row("break-even size, cached (B)", "~2048", be_cached)
    t.add_row("I/OAT rate @4kB chunks (GiB/s)", "~2.4", f"{ioat_4k / 1024:.2f}")
    t.add_row("memcpy @4kB chunks (GiB/s)", "~1.5", f"{memcpy_4k / 1024:.2f}")
    return t


# ---------------------------------------------------------------------------
# Figure 8 — ping-pong with I/OAT copy offload in the BH
# ---------------------------------------------------------------------------

def fig8(quick: bool = False, executor: Optional[SweepExecutor] = None) -> Figure:
    sizes = QUICK_SIZES if quick else SWEEP_SIZES
    iters = 3 if quick else 5
    fig = Figure("FIG8", "Ping-pong with I/OAT asynchronous copy offload",
                 "message size", "throughput (MiB/s)")
    configs = [
        ("MX", "mx", {}),
        ("Open-MX ignoring BH receive copy", "omx", dict(ignore_bh_copy=True)),
        ("Open-MX with DMA copy in BH receive", "omx", dict(ioat_enabled=True)),
        ("Open-MX", "omx", {}),
    ]
    points = [
        point("pingpong", stack=stack, size=size, iters=iters, omx=cfg)
        for _label, stack, cfg in configs
        for size in sizes
    ]
    values = iter(_executor(executor).run(points))
    for label, _stack, _cfg in configs:
        s = fig.new_series(label)
        for size in sizes:
            s.add(size, next(values))
    return fig


# ---------------------------------------------------------------------------
# Figure 9 — receive-side CPU usage, memcpy vs overlapped DMA
# ---------------------------------------------------------------------------

FIG9_SIZES = [64 * KiB, 256 * KiB, 1 * MiB, 4 * MiB, 16 * MiB]


def fig9(quick: bool = False, executor: Optional[SweepExecutor] = None) -> Table:
    sizes = FIG9_SIZES[:-1] if quick else FIG9_SIZES
    iters = 6 if quick else 10
    t = Table(
        "FIG9: receiver CPU usage (% of one core) while streaming large messages",
        ["size", "mode", "user-lib %", "driver %", "BH recv %", "total %", "MiB/s"],
    )
    # Registration cache off: the paper's Fig. 9 driver band is the
    # per-transfer memory pinning inside the system call ("driver time is
    # higher because it involves memory pinning during a system call prior
    # to the data transfer").
    points = [
        point("stream_usage", size=size, iters=iters, ioat=ioat, regcache=False)
        for ioat in (False, True)
        for size in sizes
    ]
    values = iter(_executor(executor).run(points))
    for ioat in (False, True):
        for size in sizes:
            u = next(values)
            t.add_row(
                _sz_mib(size), "DMA" if ioat else "Memcpy",
                u["user_pct"], u["driver_pct"], u["bh_pct"], u["total_pct"],
                u["throughput_mib_s"],
            )
    return t


def _sz_mib(n: int) -> str:
    return f"{n >> 20}MiB" if n >= MiB else f"{n >> 10}KiB"


# ---------------------------------------------------------------------------
# Figure 10 — shared-memory one-copy communication
# ---------------------------------------------------------------------------

def fig10(quick: bool = False, executor: Optional[SweepExecutor] = None) -> Figure:
    sizes = [16, 256, 4 * KiB, 64 * KiB, 1 * MiB, 16 * MiB] if quick else [
        16, 256, 1 * KiB, 4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB,
        1 * MiB, 4 * MiB, 16 * MiB,
    ]
    iters = 4 if quick else 8
    fig = Figure("FIG10", "Open-MX shared-memory one-copy ping-pong",
                 "message size", "throughput (MiB/s)")
    configs = [
        ("Memcpy on the same dual-core subchip", "same_die", {}),
        ("Memcpy between different processor sockets", "cross_socket", {}),
        ("I/OAT offloaded synchronous copy", "same_die", dict(ioat_enabled=True)),
    ]
    points = [
        point("shm_pingpong", size=size, placement=placement, iters=iters, cfg=cfg)
        for _label, placement, cfg in configs
        for size in sizes
    ]
    values = iter(_executor(executor).run(points))
    for label, _placement, _cfg in configs:
        s = fig.new_series(label)
        for size in sizes:
            s.add(size, next(values))
    return fig


# ---------------------------------------------------------------------------
# Figure 11 — IMB PingPong with/without I/OAT and registration cache
# ---------------------------------------------------------------------------

def fig11(quick: bool = False, executor: Optional[SweepExecutor] = None) -> Figure:
    sizes = (QUICK_SIZES + [16 * MiB]) if quick else (SWEEP_SIZES + [16 * MiB])
    iters = 3 if quick else 5
    fig = Figure("FIG11", "IMB PingPong: I/OAT and registration cache",
                 "message size", "throughput (MiB/s)")
    configs = [
        ("MX", "mx", {}),
        ("Open-MX I/OAT", "omx", dict(ioat_enabled=True)),
        ("Open-MX", "omx", {}),
        ("Open-MX I/OAT w/o regcache", "omx",
         dict(ioat_enabled=True, regcache_enabled=False)),
        ("Open-MX w/o regcache", "omx", dict(regcache_enabled=False)),
    ]
    points = [
        point("pingpong", stack=stack, size=size, iters=iters, omx=cfg)
        for _label, stack, cfg in configs
        for size in sizes
    ]
    values = iter(_executor(executor).run(points))
    for label, _stack, _cfg in configs:
        s = fig.new_series(label)
        for size in sizes:
            s.add(size, next(values))
    return fig


# ---------------------------------------------------------------------------
# Figure 12 — full IMB suite normalized to MXoE
# ---------------------------------------------------------------------------

FIG12_TESTS = ["PingPong", "PingPing", "SendRecv", "Exchange", "Allreduce",
               "Reduce", "Red.Scat.", "Allgather", "Allgatherv", "Alltoall",
               "Bcast"]


def fig12(quick: bool = False, sizes: Optional[list[int]] = None,
          executor: Optional[SweepExecutor] = None) -> Table:
    sizes = sizes if sizes is not None else ([128 * KiB] if quick else [128 * KiB, 4 * MiB])
    tests = FIG12_TESTS[:4] + ["Allreduce", "Alltoall", "Bcast"] if quick else FIG12_TESTS
    iters = 2 if quick else 4
    t = Table(
        "FIG12: IMB performance as percentage of MXoE (higher is better)",
        ["test", "size", "ppn", "Open-MX %", "Open-MX + I/OAT %"],
    )
    variants = [("mx", {}), ("omx", {}), ("omx", dict(ioat_enabled=True))]
    points = [
        point("imb_time", stack=stack, test=test, size=size, ppn=ppn,
              iters=iters, omx=cfg)
        for size in sizes
        for ppn in (1, 2)
        for test in tests
        for stack, cfg in variants
    ]
    values = iter(_executor(executor).run(points))
    for size in sizes:
        for ppn in (1, 2):
            for test in tests:
                base, plain, ioat = next(values), next(values), next(values)
                t.add_row(test, _sz_mib(size), ppn,
                          100.0 * base / plain, 100.0 * base / ioat)
    return t


# ---------------------------------------------------------------------------
# NAS IS (§IV-D)
# ---------------------------------------------------------------------------

def nas(quick: bool = False, executor: Optional[SweepExecutor] = None) -> Table:
    # 2^18 keys/rank -> ~1 MiB of keys, ~256 KiB alltoallv blocks: the
    # large-message regime the paper credits for IS's 10 % gain.
    keys = 1 << (16 if quick else 18)
    iters = 2 if quick else 3
    t = Table("NAS IS kernel (2 nodes x 2 ppn)",
              ["stack", "total ms", "comm ms", "sorted", "vs Open-MX"])
    configs = [
        ("MXoE", "mx", {}),
        ("Open-MX", "omx", {}),
        ("Open-MX + I/OAT", "omx", dict(ioat_enabled=True)),
    ]
    points = [
        point("nas_is", stack=stack, keys=keys, iters=iters, omx=cfg)
        for _label, stack, cfg in configs
    ]
    values = _executor(executor).run(points)
    results = {label: r for (label, _s, _c), r in zip(configs, values)}
    base = results["Open-MX"]["total_time_us"]
    for label, r in results.items():
        speedup = 100.0 * (base / r["total_time_us"] - 1.0)
        t.add_row(label, r["total_time_us"] / 1000.0, r["comm_time_us"] / 1000.0,
                  "yes" if r["sorted_ok"] else "NO", f"{speedup:+.1f}%")
    return t


# ---------------------------------------------------------------------------
# Engine shootout — every registered copy backend over the key sweeps
# ---------------------------------------------------------------------------

def engine_shootout(quick: bool = False,
                    executor: Optional[SweepExecutor] = None) -> Table:
    """Compare every registered :class:`~repro.core.backends.CopyBackend`.

    Each backend runs the Fig. 8 ping-pong sweep, the Fig. 9 CPU-usage
    stream, and the highly-vectorial scatter workload (§IV-A corner case),
    side by side in one table.  ``memcpy`` is the non-offloading baseline;
    ``ioat`` is the paper's engine; the others are the what-if engines
    (FlexTOE-style parallel lanes, sPIN-style in-NIC handlers, chained
    scatter-gather DMA).
    """
    from repro.core.backends import backend_names

    backends = backend_names()
    pp_sizes = [64 * KiB, 1 * MiB] if quick else [4 * KiB, 64 * KiB, 1 * MiB, 4 * MiB]
    pp_iters = 3 if quick else 5
    stream_size = 1 * MiB if quick else 4 * MiB
    stream_iters = 4 if quick else 8
    vec_total = 256 * KiB
    vec_segment = 3072  # page-straddling scatter segments (the hard case)

    def omx_for(name: str) -> dict:
        if name == "memcpy":
            return dict(copy_backend="memcpy")
        return dict(copy_backend=name, ioat_enabled=True)

    points = []
    for b in backends:
        cfg = omx_for(b)
        points.extend(
            point("pingpong", stack="omx", size=size, iters=pp_iters, omx=cfg)
            for size in pp_sizes
        )
        points.append(point("stream_usage", size=stream_size, iters=stream_iters,
                            ioat=(b != "memcpy"), regcache=False, omx=cfg))
        points.append(point("vectored", total=vec_total, segment=vec_segment,
                            backend=b))
    values = iter(_executor(executor).run(points))

    t = Table(
        "SHOOTOUT: copy backends over ping-pong, stream CPU usage, "
        "and vectored scatter",
        ["backend"]
        + [f"pingpong {_sz_mib(s)} MiB/s" for s in pp_sizes]
        + ["stream BH %", "stream MiB/s", "vectored MiB/s", "vectored descs"],
    )
    for b in backends:
        pp = [next(values) for _ in pp_sizes]
        stream = next(values)
        vec = next(values)
        t.add_row(
            b, *pp, stream["bh_pct"], stream["throughput_mib_s"],
            vec["throughput_mib_s"], vec["descriptors"],
        )
    return t


# ---------------------------------------------------------------------------
# Fabric sweep — collectives at datacenter scale (ROADMAP item 1)
# ---------------------------------------------------------------------------

def fabric_sweep(quick: bool = False,
                 executor: Optional[SweepExecutor] = None) -> Table:
    """Allreduce/alltoall over 2-tier fat trees: size x hosts x
    oversubscription x copy backend (chunk-level fabric model).

    Sweeps the paper's receive-copy question at fabric scale: does I/OAT
    offload still pay when the bottleneck could be an oversubscribed
    trunk instead of the receiver's memory bus?  Writes the full grid to
    ``results/fabric_sweep.json`` (sorted keys, byte-stable per seed).
    """
    from repro.faults.campaign import write_report

    if quick:
        grid = [("allreduce", h, os_, s)
                for h in (32,)
                for os_ in (1.0, 4.0)
                for s in (4 * KiB, 64 * KiB)]
        grid += [("alltoall", 32, os_, 4 * KiB) for os_ in (1.0, 4.0)]
    else:
        grid = [("allreduce", h, os_, s)
                for h in (64, 256)
                for os_ in (1.0, 4.0)
                for s in (4 * KiB, 64 * KiB, 1 * MiB)]
        grid += [("alltoall", 64, os_, s)
                 for os_ in (1.0, 4.0)
                 for s in (4 * KiB, 16 * KiB)]
    points = [
        point("fabric", topology="fat_tree2", hosts=hosts,
              oversubscription=os_, collective=coll, size=size,
              backend=backend)
        for coll, hosts, os_, size in grid
        for backend in ("memcpy", "ioat")
    ]
    # IMB smoke over the fabric: the frame-level benchmark harness run
    # unmodified at chunk scale (one Allreduce cell per backend).
    points += [
        point("imb_fabric", topology="fat_tree2", hosts=16,
              oversubscription=2.0, test="Allreduce", size=16 * KiB,
              backend=backend)
        for backend in ("memcpy", "ioat")
    ]
    values = _executor(executor).run(points)
    write_report({"cells": values}, "results/fabric_sweep.json")

    t = Table(
        "FABRIC: collectives over 2-tier fat trees "
        "(memcpy vs I/OAT receive copy)",
        ["collective", "hosts", "oversub", "size", "backend",
         "time (us)", "MiB/s", "events"],
    )
    it = iter(values)
    for coll, hosts, os_, size in grid:
        for backend in ("memcpy", "ioat"):
            cell = next(it)
            t.add_row(coll, cell["hosts"], f"{os_:g}", _sz(size), backend,
                      cell["time_ns"] // 1000, cell["mib_s"], cell["events"])
    for backend in ("memcpy", "ioat"):
        cell = next(it)
        t.add_row(f'imb:{cell["test"]}', cell["hosts"], "2",
                  _sz(cell["size"]), backend, round(cell["t_avg_us"]),
                  cell["mib_s"], cell["events"])
    return t


# ---------------------------------------------------------------------------
# registry + CLI
# ---------------------------------------------------------------------------

EXPERIMENTS: dict[str, Callable] = {
    "fig3": fig3,
    "fig7": fig7,
    "micro": micro,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "nas": nas,
    "engine_shootout": engine_shootout,
    "fabric_sweep": fabric_sweep,
}


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="omx-repro",
        description="Regenerate the figures of the Open-MX I/OAT paper "
                    "(Goglin, Cluster 2008) from the simulator.",
    )
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"],
                        help="which figure/table to regenerate")
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweeps / fewer iterations")
    parser.add_argument("--csv", metavar="FILE",
                        help="also write the data as CSV")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (default: $REPRO_JOBS or 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk sweep-point cache")
    args = parser.parse_args(argv)

    ex = SweepExecutor(jobs=args.jobs, cache=not args.no_cache)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        result = EXPERIMENTS[name](quick=args.quick, executor=ex)
        print(result.render())
        print()
        if args.csv:
            path = args.csv if len(names) == 1 else f"{name}_{args.csv}"
            with open(path, "w") as fh:
                fh.write(result.to_csv())
            print(f"[wrote {path}]")
    if ex.stats.points:
        print(f"[sweep: {ex.stats.points} points, {ex.stats.cache_hits} cached, "
              f"{ex.stats.computed} computed, jobs={ex.jobs}, "
              f"phantom={'on' if ex.phantom_mode else 'off'}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
