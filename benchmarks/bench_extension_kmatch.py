"""Extension (§VI planned rework): in-kernel matching for medium messages.

"We are now working on deporting the matching from user-space into the
driver so that a single completion event per medium message will be needed,
making the aforementioned overlapping possible."  This bench quantifies
what that rework buys in the model: medium-range streams gain throughput
while the BH sheds the synchronous copies and the library sheds its second
copy entirely.
"""

import pytest

from conftest import show
from repro import build_testbed
from repro.reporting.table import Table
from repro.units import KiB
from repro.workloads import run_stream_usage


def _stream(size, **omx):
    tb = build_testbed(**omx)
    return run_stream_usage(tb, size, iterations=12, warmup=3)


@pytest.mark.benchmark(group="extension-kmatch")
def test_kernel_matching_medium_overlap(once):
    def run():
        t = Table("EXTENSION: in-kernel matching, 32 kB stream",
                  ["config", "MiB/s", "BH %", "user %"])
        out = {}
        for label, omx in [
            ("classic", dict(ioat_enabled=True)),
            ("kernel matching", dict(ioat_enabled=True, kernel_matching=True)),
        ]:
            u = _stream(32 * KiB, **omx)
            out[label] = u
            t.add_row(label, u.throughput_mib_s, u.bh_pct, u.user_pct)
        return t, out

    table, out = once(run)
    show(table)
    classic, kernel = out["classic"], out["kernel matching"]
    # One event per message + overlapped medium copies:
    assert kernel.throughput_mib_s > 1.05 * classic.throughput_mib_s
    assert kernel.bh_pct < classic.bh_pct - 15
    assert kernel.user_pct < classic.user_pct / 3
