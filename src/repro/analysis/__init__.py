"""Simulator-aware static analysis and runtime resource sanitizers.

Two layers, both specific to this simulator's resource discipline:

* :mod:`repro.analysis.lint` — AST lint rules (``SKB001``, ``DMA001``,
  ``SIM001``, ``UNIT001``, ``GEN001``) run via ``python -m repro.analysis``
  or the ``repro-lint`` entry point;
* :mod:`repro.analysis.sanitizers` — runtime leak checks (skbuff pools,
  DMA cookies, pinned pages, pending events) that hook the instrumented
  ``observer`` attributes and :meth:`Simulator.add_teardown_check`.

The pytest plugin (:mod:`repro.analysis.pytest_plugin`) wires the
sanitizers to any test marked ``@pytest.mark.sanitize``.
"""

from repro.analysis.lint import (
    Finding,
    ModuleSource,
    Rule,
    all_rules,
    lint_file,
    lint_paths,
    register_rule,
)
from repro.analysis.sanitizers import Sanitizer, SanitizerError, Violation

__all__ = [
    "Finding",
    "ModuleSource",
    "Rule",
    "register_rule",
    "all_rules",
    "lint_file",
    "lint_paths",
    "Sanitizer",
    "SanitizerError",
    "Violation",
]
