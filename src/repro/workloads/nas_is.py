"""The NAS IS communication kernel (§IV-D: "up to 10 % ... especially on IS
which relies on large messages").

NAS Integer Sort ranks N integer keys per process by bucket sort: each
iteration computes local bucket histograms, Allreduces them, then
redistributes the keys with an all-to-all(v) exchange whose blocks are
large — the communication pattern that makes IS throughput-sensitive.

We reproduce that kernel (not the full verification machinery): real keys
are generated, really histogrammed and really exchanged, so the result can
be checked for sortedness; the timed part is dominated by the Alltoallv,
exactly as in the original benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.mpi.comm import Communicator, Rank
from repro.units import GiB, SEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.testbed import Testbed

#: local compute rate for histogram/permutation work (keys/s equivalent in
#: bytes/s) — only affects the compute/communication ratio, not the ranking
COMPUTE_BW = 1.5 * GiB


@dataclass
class NasIsResult:
    total_time_us: float
    comm_time_us: float
    keys_per_rank: int
    iterations: int
    sorted_ok: bool


def run_nas_is(tb: "Testbed", comm: Communicator, keys_per_rank: int = 1 << 16,
               iterations: int = 3,
               max_events: Optional[int] = 400_000_000) -> NasIsResult:
    """Run the IS kernel; keys are 4-byte integers."""
    p = comm.size
    n_bytes = keys_per_rank * 4
    marks: dict = {"comm": 0}
    final_keys: dict[int, np.ndarray] = {}

    def body(rank: Rank):
        rng = np.random.default_rng(1234 + rank.rank)
        keys = rng.integers(0, p * 4096, size=keys_per_rank, dtype=np.uint32)
        key_buf = rank.space.alloc(n_bytes)
        recv_buf = rank.space.alloc(n_bytes * p)
        hist_s = rank.space.alloc(p * 4)
        hist_r = rank.space.alloc(p * 4)

        yield from rank.barrier()
        if rank.rank == 0:
            marks["t0"] = rank.sim.now

        for _ in range(iterations):
            # 1. local histogram over p coarse buckets (charged compute)
            yield from rank.core.execute(
                max(int(n_bytes * SEC / COMPUTE_BW), 1), "user"
            )
            bucket = (keys.astype(np.uint64) * p // (p * 4096)).astype(np.uint32)
            counts = np.bincount(bucket, minlength=p).astype(np.uint32)
            hist_s.read().view(np.uint32)[:p] = counts

            # 2. Allreduce the histograms (small message)
            c0 = rank.sim.now
            yield from rank.allreduce(hist_s, hist_r, length=p * 4)

            # 3. sort keys by destination bucket, exchange counts, then the
            # big Alltoallv of the keys themselves (large messages)
            order = np.argsort(bucket, kind="stable")
            keys_sorted = keys[order]
            key_buf.read().view(np.uint32)[:] = keys_sorted
            send_counts = [int(c) * 4 for c in counts]
            # exchange per-destination counts so everyone can size receives
            cnt_s = rank.space.alloc(p * 4)
            cnt_r = rank.space.alloc(p * 4)
            cnt_s.read().view(np.uint32)[:p] = counts
            yield from rank.alltoall(cnt_s, cnt_r, 4)
            recv_counts = [int(c) * 4 for c in cnt_r.read().view(np.uint32)[:p]]

            # alltoallv via point-to-point (blocks are uneven)
            sdispl = np.concatenate([[0], np.cumsum(send_counts)[:-1]]).astype(int)
            rdispl = np.concatenate([[0], np.cumsum(recv_counts)[:-1]]).astype(int)
            reqs = []
            for step in range(p):
                src = (rank.rank - step) % p
                if recv_counts[src]:
                    r = yield from rank.irecv(src, recv_buf, int(rdispl[src]),
                                              recv_counts[src], tag=0x5A)
                    reqs.append(r)
            for step in range(p):
                dst = (rank.rank + step) % p
                if send_counts[dst]:
                    s = yield from rank.isend(dst, key_buf, int(sdispl[dst]),
                                              send_counts[dst], tag=0x5A)
                    reqs.append(s)
            for r in reqs:
                yield from rank.wait(r)
            if rank.rank == 0:
                marks["comm"] += rank.sim.now - c0

            # 4. local ranking of received keys (charged compute)
            total_recv = sum(recv_counts)
            yield from rank.core.execute(
                max(int(total_recv * SEC / COMPUTE_BW), 1), "user"
            )
            mine = recv_buf.read(0, total_recv).view(np.uint32).copy()
            mine.sort()
            final_keys[rank.rank] = mine

        yield from rank.barrier()
        if rank.rank == 0:
            marks["t1"] = rank.sim.now

    comm.run_spmd(body, max_events=max_events)

    # Global sortedness: each rank's keys sorted, and rank boundaries ordered.
    ok = True
    prev_max = -1
    for r in range(p):
        mine = final_keys.get(r)
        if mine is None:
            continue
        if mine.size:
            if prev_max > int(mine[0]):
                ok = False
            prev_max = int(mine[-1])
    return NasIsResult(
        total_time_us=(marks["t1"] - marks["t0"]) / 1000.0,
        comm_time_us=marks["comm"] / 1000.0,
        keys_per_rank=keys_per_rank,
        iterations=iterations,
        sorted_ok=ok,
    )
