"""A PVFS2-style striped file transfer over Open-MX.

The paper's motivating deployment is PVFS2 between BlueGene/P compute and
I/O nodes over Open-MX (§I, §II-A), and its I/OAT groundwork [23] measured
"PVFS file transfers".  This workload reproduces that shape: one client
stripes a file over N I/O servers in fixed-size strips; writes push each
strip as a large message, reads pull them back; servers store strips in a
memory-backed object store with a configurable storage bandwidth.

Everything rides the normal endpoint API, so strips are rendezvous'd,
pulled, and (optionally) copy-offloaded exactly like any other large
message — the file-transfer throughput difference with and without I/OAT
is the paper's story at application level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.mx.wire import EndpointAddr
from repro.units import GiB, KiB, SEC, throughput_mib_s

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.testbed import Testbed

#: match-info tag layout: op in the high bits, strip id low
_WRITE = 0x1 << 40
_READ_REQ = 0x2 << 40
_READ_DATA = 0x3 << 40

#: I/O-node storage bandwidth (BlueGene/P-era I/O node to storage); fast
#: enough that the network path, not the disk, is the bottleneck
STORAGE_BW = 4.0 * GiB


@dataclass
class PvfsResult:
    file_size: int
    strip_size: int
    n_servers: int
    write_mib_s: float
    read_mib_s: float
    verified: bool


def run_pvfs_transfer(
    tb: "Testbed",
    file_size: int = 8 << 20,
    strip_size: int = 512 * KiB,
    n_servers: Optional[int] = None,
    window: int = 4,
    max_events: Optional[int] = 400_000_000,
) -> PvfsResult:
    """Write then read back one striped file; node 0 is the client."""
    n_servers = (len(tb.hosts) - 1) if n_servers is None else n_servers
    if n_servers < 1:
        raise ValueError("need at least one I/O server node")
    n_strips = -(-file_size // strip_size)

    client_ep = tb.open_endpoint(0, 0)
    client_core = tb.user_core(0)
    server_eps = [tb.open_endpoint(1 + i, 0) for i in range(n_servers)]
    server_cores = [tb.user_core(1 + i) for i in range(n_servers)]

    file_out = client_ep.space.alloc(file_size)
    file_in = client_ep.space.alloc(file_size, fill=0)
    file_out.fill_pattern(seed=99)

    # Per-server object stores (strip id -> stored region).
    stores: list[dict[int, object]] = [dict() for _ in range(n_servers)]
    marks: dict[str, int] = {}
    done = tb.sim.event("pvfs-done")

    def strip_geometry(s: int) -> tuple[int, int, int]:
        """(server index, file offset, strip length)."""
        off = s * strip_size
        return s % n_servers, off, min(strip_size, file_size - off)

    def server(idx: int):
        ep, core = server_eps[idx], server_cores[idx]
        space = ep.space
        my_strips = [s for s in range(n_strips) if s % n_servers == idx]
        # --- write phase: receive every strip assigned to this server
        for s in my_strips:
            _, _, n = strip_geometry(s)
            region = space.alloc(n)
            req = yield from ep.irecv(core, _WRITE | s, ~0, region, 0, n)
            yield from ep.wait(core, req)
            # commit to storage
            yield from core.execute(max(int(n * SEC / STORAGE_BW), 1), "user")
            stores[idx][s] = region
        # --- read phase: serve each strip back on request
        for _ in my_strips:
            ctl = space.alloc(8)
            req = yield from ep.irecv(core, _READ_REQ, ~(0xFFFFFFFF), ctl, 0, 8)
            yield from ep.wait(core, req)
            # the requested strip id rides in the control payload
            s = int.from_bytes(bytes(ctl.read(0, 8)), "little")
            region = stores[idx][s]
            yield from core.execute(max(int(len(region) * SEC / STORAGE_BW), 1), "user")
            sreq = yield from ep.isend(core, client_ep.addr, _READ_DATA | s, region)
            yield from ep.wait(core, sreq)

    def client():
        ep, core = client_ep, client_core
        # --- write: keep `window` strips in flight
        marks["w0"] = tb.sim.now
        pending = []
        for s in range(n_strips):
            srv, off, n = strip_geometry(s)
            req = yield from ep.isend(core, server_eps[srv].addr, _WRITE | s,
                                      file_out, off, n)
            pending.append(req)
            if len(pending) >= window:
                yield from ep.wait(core, pending.pop(0))
        for req in pending:
            yield from ep.wait(core, req)
        marks["w1"] = tb.sim.now
        # --- read: request strips, keep `window` outstanding
        marks["r0"] = tb.sim.now
        recvs = []
        issued = 0
        completed = 0
        while completed < n_strips:
            while issued < n_strips and len(recvs) < window:
                s = issued
                srv, off, n = strip_geometry(s)
                rreq = yield from ep.irecv(core, _READ_DATA | s, ~0, file_in, off, n)
                ctl = ep.space.alloc(8)
                ctl.write(0, s.to_bytes(8, "little"))
                creq = yield from ep.isend(core, server_eps[srv].addr,
                                           _READ_REQ | s, ctl, 0, 8)
                recvs.append((rreq, creq))
                issued += 1
            rreq, creq = recvs.pop(0)
            yield from ep.wait(core, creq)
            yield from ep.wait(core, rreq)
            completed += 1
        marks["r1"] = tb.sim.now
        done.succeed()

    for i in range(n_servers):
        tb.sim.process(server(i), name=f"pvfs-srv{i}")
    tb.sim.process(client(), name="pvfs-client")
    tb.sim.run_until(done, max_events=max_events)

    return PvfsResult(
        file_size=file_size,
        strip_size=strip_size,
        n_servers=n_servers,
        write_mib_s=throughput_mib_s(file_size, marks["w1"] - marks["w0"]),
        read_mib_s=throughput_mib_s(file_size, marks["r1"] - marks["r0"]),
        verified=bytes(file_in.read()) == bytes(file_out.read()),
    )
