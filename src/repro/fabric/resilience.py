"""Gray-failure resilience: link health, hysteretic rerouting, rank death.

Datacenter fabrics rarely fail cleanly.  The dominant real-world modes are
*gray*: a trunk renegotiates to a quarter of its rate, a flaky transceiver
flaps up and down, a marginal cable eats one chunk in twenty, a whole host
crash-stops mid-collective.  PR 9's fabric only understood the binary kill
(reroute or partition); this layer adds the machinery that keeps a fabric
world delivering degraded-but-correct service through the gray zone:

* :class:`LinkHealthEstimator` — scores each watched link HEALTHY /
  DEGRADED / DEAD from the per-port forwarded/dropped/occupancy counters
  the ports already maintain, sampled on seeded-deterministic windows (a
  per-link phase drawn from the resilience seed, then a fixed cadence);
* :class:`LinkBreaker` — trip/reopen hysteresis per trunk, reusing the
  CLOSED/OPEN state-machine shape of
  :class:`repro.health.breaker.ChannelBreaker`: ``trip_samples``
  consecutive unhealthy windows demote the trunk out of the ECMP
  candidate set (:meth:`repro.fabric.routing.RouteTables.demote_link`,
  which guarantees demotion never partitions), and a demoted trunk must
  stay down for ``hold_down`` ticks *and* look healthy for
  ``reopen_samples`` consecutive windows before it is restored — so a
  flapping trunk settles into one stable demoted state instead of
  thrashing the route tables.  Every healthy-looking sample the hysteresis
  refuses to act on increments ``fabric_route_flaps_suppressed``;
* :class:`FabricLivenessMonitor` — the fabric-scale sibling of
  :class:`repro.health.liveness.PeerLivenessMonitor`: when a rank
  crash-stops, survivors' pending requests are failed *all at once* with
  the typed :class:`~repro.core.errors.RankDead` after a grace window, so
  the abort drains deterministically instead of livelocking;
* :func:`resilient_allreduce` — collective-level recovery: abort-and-
  report is the default everywhere, but a ring allreduce can opt into
  shrink-and-retry, rebuilding the ring over the survivors
  (:func:`survivor_ring_allreduce`) in a fresh, epoch-scoped tag
  namespace.

Zero-overhead contract: *attaching* a :class:`FabricResilience` creates no
simulation events and touches no schedule — per-figure event counts stay
bit-identical with resilience idle (``bench_simspeed.py`` gates this).
Sampling daemons only start when a fault plan with gray axes is armed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Generator, Iterable, Optional

from repro.core.errors import RankDead
from repro.units import us

if TYPE_CHECKING:  # pragma: no cover
    from repro.fabric.mpi import FabricRank, FabricWorld
    from repro.fabric.network import FabricNetwork, FabricPort


class LinkHealth(Enum):
    HEALTHY = "healthy"
    DEGRADED = "degraded"
    DEAD = "dead"


#: severity order for "worst of both directions"
_SEVERITY = {LinkHealth.HEALTHY: 0, LinkHealth.DEGRADED: 1, LinkHealth.DEAD: 2}


@dataclass(frozen=True)
class ResilienceParams:
    """Tunables of the resilience layer (DESIGN.md §17).

    The defaults are sized against the fabric cost model: a sampling
    window of 20 us is ~3 chunk serializations on a degraded 2.5 Gb/s
    trunk, so one window of traffic is enough signal to score it; the
    hold-down of 400 us spans a whole default flap period, which is what
    makes a flapping trunk converge to one stable demotion instead of
    tracking the flap.
    """

    #: sampling cadence per watched link
    window: int = us(20)
    #: fraction of ``window`` the seeded per-link phase offset may span
    phase_jitter: float = 0.5
    #: dropped/enqueued delta ratio at/above which a window is DEGRADED
    drop_threshold: float = 0.02
    #: busy-tick occupancy above which a window is DEGRADED (a saturated
    #: gray link serializes flat-out while its healthy siblings idle)
    busy_threshold: float = 0.95
    #: consecutive unhealthy windows before a trunk is demoted
    trip_samples: int = 3
    #: consecutive healthy windows before a demoted trunk may be restored
    reopen_samples: int = 4
    #: minimum ticks a demotion holds regardless of how healthy it looks
    hold_down: int = us(400)
    #: grace between a rank crash-stop and the RankDead declaration wave
    rank_death_grace: int = us(30)
    #: per-chunk retry budget on lossy links before the loss is fatal
    max_chunk_retries: int = 10

    def validate(self) -> None:
        if self.window <= 0:
            raise ValueError("resilience window must be positive")
        if not 0 <= self.phase_jitter < 1:
            raise ValueError("phase_jitter must be in [0, 1)")
        if not 0 < self.drop_threshold <= 1:
            raise ValueError("drop_threshold must be in (0, 1]")
        if not 0 < self.busy_threshold <= 1:
            raise ValueError("busy_threshold must be in (0, 1]")
        if self.trip_samples < 1 or self.reopen_samples < 1:
            raise ValueError("trip/reopen sample counts must be >= 1")
        if self.hold_down < 0 or self.rank_death_grace < 0:
            raise ValueError("hold_down/rank_death_grace must be >= 0")
        if self.max_chunk_retries < 0:
            raise ValueError("max_chunk_retries must be >= 0")


class LinkHealthEstimator:
    """Health of one link from its two egress ports' counter deltas.

    Signals, worst-of-both-directions:

    * a dead port (flap down-phase) is DEAD;
    * a renegotiated rate or added PHY latency is DEGRADED — real switches
      surface speed downshift in port status, so reading the degrade state
      off the port is observation, not cheating;
    * a window whose dropped/enqueued delta ratio crosses
      ``drop_threshold`` is DEGRADED (lossy link);
    * a window serialized busier than ``busy_threshold`` is DEGRADED (a
      gray link running flat-out while siblings keep up).
    """

    __slots__ = ("name", "ports", "params", "state", "samples", "_last")

    def __init__(self, name: str, ports: list["FabricPort"],
                 params: ResilienceParams):
        self.name = name
        self.ports = ports
        self.params = params
        self.state = LinkHealth.HEALTHY
        self.samples = 0
        self._last = [(p.enqueued, p.dropped, p.busy_ticks) for p in ports]

    def sample(self, window: int) -> LinkHealth:
        worst = LinkHealth.HEALTHY
        for i, port in enumerate(self.ports):
            enq0, drop0, busy0 = self._last[i]
            d_enq = port.enqueued - enq0
            d_drop = port.dropped - drop0
            d_busy = port.busy_ticks - busy0
            self._last[i] = (port.enqueued, port.dropped, port.busy_ticks)
            if not port.alive:
                health = LinkHealth.DEAD
            elif port.service_scale != 1.0 or port.extra_delay:
                health = LinkHealth.DEGRADED
            elif d_enq and d_drop / d_enq >= self.params.drop_threshold:
                health = LinkHealth.DEGRADED
            elif d_busy / window > self.params.busy_threshold:
                health = LinkHealth.DEGRADED
            else:
                health = LinkHealth.HEALTHY
            if _SEVERITY[health] > _SEVERITY[worst]:
                worst = health
        self.samples += 1
        self.state = worst
        return worst


class LinkBreaker:
    """Trip/reopen hysteresis for one trunk (the breaker shape, per link).

    CLOSED: the trunk is a normal ECMP candidate; ``trip_samples``
    consecutive unhealthy windows demote it and open the breaker.
    OPEN: the trunk is demoted; it is restored only after ``hold_down``
    ticks *and* ``reopen_samples`` consecutive healthy windows.  Healthy
    windows the hysteresis refuses to act on are counted as suppressed
    flaps — the whole point of the breaker is that a flapping trunk
    produces a large suppressed count and zero route oscillation.
    """

    __slots__ = ("res", "name", "a", "b", "state", "tripped_at",
                 "unhealthy_streak", "healthy_streak")

    def __init__(self, res: "FabricResilience", name: str, a: str, b: str):
        self.res = res
        self.name = name
        self.a = a
        self.b = b
        self.state = "closed"
        self.tripped_at = -1
        self.unhealthy_streak = 0
        self.healthy_streak = 0

    def on_sample(self, health: LinkHealth, now: int) -> None:
        p = self.res.params
        if self.state == "closed":
            if health is LinkHealth.HEALTHY:
                self.unhealthy_streak = 0
                return
            self.unhealthy_streak += 1
            if self.unhealthy_streak >= p.trip_samples:
                self._trip(now)
        else:
            if health is not LinkHealth.HEALTHY:
                self.healthy_streak = 0
                return
            self.healthy_streak += 1
            if (now - self.tripped_at < p.hold_down
                    or self.healthy_streak < p.reopen_samples):
                self.res.flaps_suppressed += 1
                self.res._instant(self.name, "flap suppressed")
            else:
                self._reopen()

    def _trip(self, now: int) -> None:
        self.state = "open"
        self.tripped_at = now
        self.unhealthy_streak = 0
        self.healthy_streak = 0
        res = self.res
        if res.net.routes.demote_link(self.a, self.b):
            res.demotions += 1
            res.reroutes += 1
            res._instant(self.name, "demoted")

    def _reopen(self) -> None:
        self.state = "closed"
        self.unhealthy_streak = 0
        self.healthy_streak = 0
        res = self.res
        if res.net.routes.restore_link(self.a, self.b):
            res.restorations += 1
            res.reroutes += 1
            res._instant(self.name, "restored")


class FabricResilience:
    """The attached resilience layer of one :class:`FabricNetwork`.

    Construction is pure — counters registered, zero events scheduled —
    so an idle attachment cannot perturb a figure.  :meth:`watch` starts
    one seeded sampling daemon per named link; each self-terminates once
    the watch horizon has passed and the network has quiesced.
    """

    def __init__(self, net: "FabricNetwork",
                 params: Optional[ResilienceParams] = None,
                 seed: str = "resilience", trace=None):
        self.net = net
        self.params = params if params is not None else ResilienceParams()
        self.params.validate()
        self.seed = seed
        self.trace = trace
        self.horizon = 0
        self.reroutes = 0
        self.flaps_suppressed = 0
        self.demotions = 0
        self.restorations = 0
        self._estimators: dict[str, LinkHealthEstimator] = {}
        self._breakers: dict[str, LinkBreaker] = {}
        net.resilience = self
        m = net.metrics
        m.counter("fabric", "fabric_reroutes", lambda: self.reroutes,
                  "health-driven route-table changes (demote + restore)")
        m.counter("fabric", "fabric_route_flaps_suppressed",
                  lambda: self.flaps_suppressed,
                  "healthy-looking samples the hysteresis refused to act on")

    # -- watching ----------------------------------------------------------

    def watch(self, links: Iterable[str], horizon: int) -> None:
        """Start health sampling over the named links until ``horizon``.

        Idempotent per link.  The per-link phase offset is drawn from the
        resilience seed, so two runs with the same seed sample — and
        therefore demote, restore and suppress — at identical ticks.
        """
        if horizon > self.horizon:
            self.horizon = horizon
        net = self.net
        hosts = set(net.spec.hosts)
        for name in sorted(set(links)):
            if name in self._estimators:
                continue
            link = net.spec.link_named(name)
            est = LinkHealthEstimator(name, net.ports_of_link(name),
                                      self.params)
            self._estimators[name] = est
            if link.a not in hosts and link.b not in hosts:
                self._breakers[name] = LinkBreaker(self, name, link.a, link.b)
            span = max(int(self.params.window * self.params.phase_jitter), 1)
            rng = random.Random(f"{self.seed}:phase:{name}")
            phase = 1 + rng.randrange(span)
            net.sim.daemon(self._watch_link(name, est, phase),
                           name=f"linkhealth:{name}")

    def _watch_link(self, name: str, est: LinkHealthEstimator,
                    phase: int) -> Generator:
        yield phase
        window = self.params.window
        net = self.net
        breaker = self._breakers.get(name)
        while True:
            yield window
            health = est.sample(window)
            if breaker is not None:
                breaker.on_sample(health, net.sim.now)
            open_msgs = (net.msgs_sent - net.msgs_delivered
                         - net.msgs_failed)
            if net.sim.now >= self.horizon and open_msgs == 0:
                return

    def _instant(self, link: str, label: str) -> None:
        t = self.trace
        if t is not None and t.enabled:
            t.instant(f"link {link}", label, "health")

    # -- observation -------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-stable summary for campaign/soak reports."""
        return {
            "reroutes": self.reroutes,
            "demotions": self.demotions,
            "restorations": self.restorations,
            "flaps_suppressed": self.flaps_suppressed,
            "route_version": self.net.routes.version,
            "links": {n: e.state.value
                      for n, e in sorted(self._estimators.items())},
            "samples": {n: e.samples
                        for n, e in sorted(self._estimators.items())},
            "demoted": sorted(n for n, b in self._breakers.items()
                              if b.state == "open"),
        }


# ---------------------------------------------------------------------------
# Rank-level liveness (crash-stop declaration)
# ---------------------------------------------------------------------------

class FabricLivenessMonitor:
    """Crash-stop rank liveness for one :class:`FabricWorld`.

    The fabric-scale sibling of
    :class:`repro.health.liveness.PeerLivenessMonitor`, with the same
    contract — a death is *declared*, deterministically and all at once,
    a grace window after the silence begins, and the declaration fails
    every pending request so the survivors drain instead of livelocking.
    Here the silence source is exact (the kill is simulated), so the
    grace window models detection latency rather than a timeout scan.
    """

    def __init__(self, world: "FabricWorld",
                 grace: int = ResilienceParams.rank_death_grace, trace=None):
        self.world = world
        self.grace = grace
        self.trace = trace
        self.deaths_declared = 0
        self.reqs_failed = 0

    def rank_killed(self, rank: int, host: str) -> None:
        """Schedule the declaration wave ``grace`` ticks from now."""
        sim = self.world.sim
        sim.call_at(sim.now + self.grace, self._declare, rank, host)

    def _declare(self, rank: int, host: str) -> None:
        self.deaths_declared += 1
        t = self.trace
        if t is not None and t.enabled:
            t.instant("fabric", f"rank {rank} ({host}) declared DEAD",
                      "fault")
        self.reqs_failed += self.world._declare_rank_dead(rank, host)

    def snapshot(self) -> dict:
        return {
            "deaths_declared": self.deaths_declared,
            "reqs_failed": self.reqs_failed,
            "stale_drained": self.world.stale_drained,
            "dead_ranks": sorted(self.world.dead),
            "epoch": self.world.epoch,
        }


# ---------------------------------------------------------------------------
# Collective-level recovery: shrink-and-retry ring allreduce
# ---------------------------------------------------------------------------

#: epoch-scoped tag namespace for recovery collectives — disjoint from the
#: normal collective namespace (0x4000_0000), so a stale epoch-0 message
#: can never match an epoch-1 receive
_RECOVERY_TAG_BASE = 0x50000000


def _recovery_tag(rank: "FabricRank", epoch: int) -> int:
    """A fresh 4096-tag window per call, epoch-scoped.

    The per-rank collective sequence (the same counter the normal
    collectives salt their tags with) keeps two successive shrunk
    allreduces in one epoch on disjoint tags; survivors agree on the
    counter because every rank makes the same collective calls in the
    same order.
    """
    seq = getattr(rank, "_coll_seq", 0)
    rank._coll_seq = seq + 1
    return (_RECOVERY_TAG_BASE | ((epoch & 0xF) << 24)
            | ((seq & 0xFFF) << 12))


def survivor_ring_allreduce(rank: "FabricRank", buf, n: int,
                            epoch: int) -> Generator:
    """Ring allreduce over the world's survivors (the shrunk ring).

    A faithful mirror of :func:`repro.mpi.collectives._allreduce_ring`
    with the ring built over ``world.survivors()`` instead of
    ``range(size)`` — same 4-byte-aligned block cuts, same reduce-scatter
    + allgather step structure, but epoch-scoped tags so retries after a
    second death cannot cross-match the first retry's stragglers.
    ``buf`` must already be seeded with the local contribution.
    """
    from repro.mpi.collectives import _accumulate, _scratch

    world = rank.world
    members = world.survivors()
    p = len(members)
    me = members.index(rank.rank)
    tag = _recovery_tag(rank, epoch)
    if p == 1 or n == 0:
        return None
    base = (n // p) & ~3
    sizes = [base] * (p - 1) + [n - base * (p - 1)]
    displs = [base * i for i in range(p)]
    right = members[(me + 1) % p]
    left = members[(me - 1) % p]
    tmp = _scratch(rank, "srr_tmp", sizes[p - 1])
    for step in range(p - 1):
        sb = (me - step) % p
        rb = (me - step - 1) % p
        sn, rn = sizes[sb], sizes[rb]
        rreq = sreq = None
        if rn:
            rreq = yield from rank.irecv(left, tmp, 0, rn, tag + step)
        if sn:
            sreq = yield from rank.isend(right, buf, displs[sb], sn,
                                         tag + step)
        if sreq is not None:
            yield from rank.wait(sreq)
        if rreq is not None:
            yield from rank.wait(rreq)
        if rn:
            yield from _accumulate(rank, buf, displs[rb], tmp, 0, rn)
    for step in range(p - 1):
        sb = (me + 1 - step) % p
        rb = (me - step) % p
        sn, rn = sizes[sb], sizes[rb]
        rreq = sreq = None
        if rn:
            rreq = yield from rank.irecv(left, buf, displs[rb], rn,
                                         tag + p + step)
        if sn:
            sreq = yield from rank.isend(right, buf, displs[sb], sn,
                                         tag + p + step)
        if sreq is not None:
            yield from rank.wait(sreq)
        if rreq is not None:
            yield from rank.wait(rreq)
    return None


def resilient_allreduce(rank: "FabricRank", sendbuf, recvbuf,
                        length=None, max_shrinks: int = 2) -> Generator:
    """Ring allreduce that shrinks over survivors on rank death.

    Runs the normal ring first; if a :class:`RankDead` surfaces, every
    survivor joins the recovery barrier (sleeps past the declaration
    wave, then the first waker advances the epoch and drains stale
    traffic) and retries over the shrunk ring — up to ``max_shrinks``
    deaths, after which the error propagates (abort-and-report).

    Correctness needs only per-rank ordering, not simultaneity: a rank
    may start epoch *e+1* sends while a peer is still unwinding epoch
    *e*, because epoch-scoped tags keep the traffic disjoint and the
    poison gate blocks any epoch-*e* send from entering the network
    after the declaration wave.
    """
    world = rank.world
    n = (len(sendbuf) if length is None else length)
    if not world.dead:
        try:
            yield from rank.allreduce(sendbuf, recvbuf, length, algo="ring")
            return None
        except RankDead:
            if max_shrinks < 1 or rank.rank in world.dead:
                raise
    # Already-shrunk world (a later round after a death): the full ring
    # would deadlock — ranks far from the dead one would post receives
    # their aborted neighbors never feed — so go straight to the survivor
    # ring.  join_recovery is a no-op when the declaration is long past.
    for attempt in range(max_shrinks):
        yield from world.join_recovery(rank)
        # Re-seed: partial accumulation from the failed epoch is garbage.
        if n:
            from repro.mpi.collectives import REDUCE_BW
            from repro.units import SEC

            yield from rank.core.execute(max(int(n * SEC / REDUCE_BW), 1),
                                         "user")
            recvbuf.read(0, n)[:] = sendbuf.read(0, n)
        try:
            yield from survivor_ring_allreduce(rank, recvbuf, n, world.epoch)
            return None
        except RankDead:
            if attempt == max_shrinks - 1 or rank.rank in world.dead:
                raise
    return None


# ---------------------------------------------------------------------------
# Full-hardware trunk health (EthernetSwitch path)
# ---------------------------------------------------------------------------

def trunk_health_snapshot(switches: dict,
                          params: Optional[ResilienceParams] = None) -> dict:
    """Score the full-hardware switches' trunk egress ports.

    The hardware path has no resilience control loop (its reliability
    story is the per-packet retransmit stack); this is the observation
    half only — campaigns snapshot it at teardown to report which trunks
    went gray.  Keyed ``"<switch>:p<port>"``, values are
    :class:`LinkHealth` names.
    """
    p = params if params is not None else ResilienceParams()
    out = {}
    for name in sorted(switches):
        sw = switches[name]
        for i, link in enumerate(sw.links):
            if link is None or not link.name.startswith("trunk-"):
                continue
            fwd = sw.port_forwarded[i]
            drp = sw.port_dropped[i]
            total = fwd + drp
            if total and drp / total >= p.drop_threshold:
                health = LinkHealth.DEGRADED
            else:
                health = LinkHealth.HEALTHY
            out[f"{name}:p{i}"] = health.value
    return out


__all__ = [
    "FabricLivenessMonitor",
    "FabricResilience",
    "LinkBreaker",
    "LinkHealth",
    "LinkHealthEstimator",
    "ResilienceParams",
    "resilient_allreduce",
    "survivor_ring_allreduce",
    "trunk_health_snapshot",
]
