"""Simulator self-benchmark: wall-clock and events/second per figure.

This PR applies the paper's own medicine to the simulator (copy-elided
phantom payloads, allocation-free event fast paths, cached sweep executor);
this benchmark quantifies the result.  It regenerates the quick figure
suite serially with a **cold** cache (the honest configuration: no
parallelism, no memoization credit), records wall seconds and simulator
events/second per figure, compares against the pre-optimization baseline,
and emits ``BENCH_simspeed.json``.

The baseline is **measured live**: the pre-PR source tree is extracted
from git (``BASELINE_REF``) into a temp dir and its quick suite is timed
in a subprocess immediately before the optimized run.  Back-to-back
measurement on the same machine state is what makes the speedup ratio
trustworthy on a noisy shared host — frozen wall-clock numbers from
another day would compare against a different machine.  When git or the
baseline ref is unavailable (shallow clone), the frozen same-machine
numbers in ``FALLBACK_BASELINE_QUICK_SECONDS`` are used instead.

Run standalone (``python benchmarks/bench_simspeed.py``) or under pytest.
"""

import json
import os
import subprocess
import sys
import tarfile
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.reporting.experiments import EXPERIMENTS
from repro.reporting.sweeps import SweepExecutor
from repro.simkernel.scheduler import Simulator

#: last commit before this PR's optimizations (byte-moving payloads,
#: process-per-delivery event loop, no sweep executor)
BASELINE_REF = "025bda4"

#: pre-PR quick-suite wall seconds per figure, frozen at commit time —
#: used only when the live baseline cannot be measured (no git history)
FALLBACK_BASELINE_QUICK_SECONDS = {
    "fig3": 2.91,
    "fig7": 0.518,
    "micro": 0.017,
    "fig8": 4.339,
    "fig9": 2.063,
    "fig10": 3.414,
    "fig11": 25.731,
    "fig12": 1.616,
    "nas": 0.25,
}

#: acceptance floor: the optimized quick suite must run at least this many
#: times faster than the pre-PR baseline (single worker, cold cache)
MIN_SPEEDUP = 2.0

#: absolute wall budget for the whole optimized quick suite; generous vs
#: the ~18 s measured at commit time so slower machines still pass, but
#: far under the ~41 s pre-PR total
WALL_BUDGET_SECONDS = 32.0

OUTPUT = ROOT / "BENCH_simspeed.json"

#: child process that times each requested figure against whatever repro
#: tree PYTHONPATH points at; works for both the baseline and HEAD trees
#: (the pre-PR runners take only ``quick``, so no executor is passed)
_CHILD_TIMER = """
import json, sys, time
from repro.reporting.experiments import EXPERIMENTS
out = {}
for name in json.loads(sys.argv[1]):
    t0 = time.perf_counter()
    EXPERIMENTS[name](quick=True)
    out[name] = time.perf_counter() - t0
print(json.dumps(out))
"""


def measure_baseline(figures: list) -> "dict | None":
    """Time the pre-PR quick suite, extracted from git, in a subprocess.

    Returns ``{figure: wall_seconds}`` or None when the baseline tree
    cannot be produced (no git, shallow history) or fails to run.
    """
    with tempfile.TemporaryDirectory(prefix="simspeed-base-") as tmp:
        tar_path = Path(tmp) / "baseline.tar"
        try:
            subprocess.run(
                ["git", "-C", str(ROOT), "archive", "-o", str(tar_path),
                 BASELINE_REF, "src"],
                check=True, capture_output=True, timeout=60,
            )
        except (OSError, subprocess.SubprocessError):
            return None
        with tarfile.open(tar_path) as tf:
            tf.extractall(tmp)
        env = dict(os.environ, PYTHONPATH=str(Path(tmp) / "src"))
        try:
            proc = subprocess.run(
                [sys.executable, "-c", _CHILD_TIMER, json.dumps(figures)],
                check=True, capture_output=True, timeout=600, env=env,
                cwd=tmp, text=True,
            )
        except (OSError, subprocess.SubprocessError):
            return None
        return json.loads(proc.stdout.strip().splitlines()[-1])


def run_suite() -> dict:
    """Regenerate every quick figure; returns the benchmark report."""
    figures = list(FALLBACK_BASELINE_QUICK_SECONDS)
    baseline = measure_baseline(figures)
    baseline_mode = "measured" if baseline is not None else "frozen"
    if baseline is None:
        baseline = FALLBACK_BASELINE_QUICK_SECONDS

    executor = SweepExecutor(jobs=1, cache_dir=tempfile.mkdtemp(prefix="simspeed-"))
    report_figures = {}
    for name in figures:
        ev0 = Simulator.events_total
        t0 = time.perf_counter()
        EXPERIMENTS[name](quick=True, executor=executor)
        wall = time.perf_counter() - t0
        events = Simulator.events_total - ev0
        report_figures[name] = {
            "wall_s": round(wall, 4),
            "events": events,
            "events_per_s": round(events / wall) if wall > 0 else 0,
            "baseline_wall_s": round(baseline[name], 4),
            "speedup": round(baseline[name] / wall, 2) if wall > 0 else float("inf"),
        }
    total = sum(f["wall_s"] for f in report_figures.values())
    base_total = sum(baseline[name] for name in figures)
    return {
        "suite": "quick",
        "jobs": 1,
        "cache": "cold",
        "phantom": executor.phantom_mode,
        "baseline_ref": BASELINE_REF,
        "baseline_mode": baseline_mode,
        "figures": report_figures,
        "total_wall_s": round(total, 3),
        "baseline_total_wall_s": round(base_total, 3),
        "speedup_total": round(base_total / total, 2),
        "events_total": sum(f["events"] for f in report_figures.values()),
        "min_speedup_required": MIN_SPEEDUP,
        "wall_budget_s": WALL_BUDGET_SECONDS,
    }


# ---------------------------------------------------------------------------
# observability zero-overhead gate
# ---------------------------------------------------------------------------

#: last commit before the repro.obs subsystem (metrics registry, trace
#: exporter, phase profiler hooks on Core.busy)
OBS_BASELINE_REF = "57a4d5b"

#: disabled observability must keep the quick suite within this factor of
#: the pre-obs tree, in both wall time and simulator events
OBS_OVERHEAD_MAX_RATIO = 1.05

#: wall-clock slack absorbing scheduler noise on sub-second figures
OBS_WALL_EPSILON_S = 0.5

#: figures timed by the overhead gate: the event-heaviest pull path (fig3)
#: and the instrumented-everywhere stream path (fig9)
OBS_FIGURES = ["fig3", "fig9"]

#: child timer for the overhead gate: wall seconds AND simulator events per
#: figure, serial, cold cache.  Works against any repro tree on PYTHONPATH
#: (events_total predates both refs).
_CHILD_TIMER_OBS = """
import json, sys, tempfile, time
from repro.reporting.experiments import EXPERIMENTS
from repro.reporting.sweeps import SweepExecutor
from repro.simkernel.scheduler import Simulator
out = {}
for name in json.loads(sys.argv[1]):
    ex = SweepExecutor(jobs=1, cache_dir=tempfile.mkdtemp(prefix="obsbench-"))
    ev0 = getattr(Simulator, "events_total", 0)
    t0 = time.perf_counter()
    EXPERIMENTS[name](quick=True, executor=ex)
    out[name] = {"wall_s": time.perf_counter() - t0,
                 "events": getattr(Simulator, "events_total", 0) - ev0}
print(json.dumps(out))
"""


def _time_tree(src_path: Path, figures: list) -> "dict | None":
    """Run the overhead child timer against one source tree."""
    env = dict(os.environ, PYTHONPATH=str(src_path), REPRO_JOBS="1")
    env.pop("REPRO_CACHE_DIR", None)
    try:
        proc = subprocess.run(
            [sys.executable, "-c", _CHILD_TIMER_OBS, json.dumps(figures)],
            check=True, capture_output=True, timeout=600, env=env, text=True,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return json.loads(proc.stdout.strip().splitlines()[-1])


def measure_tree_overhead(ref: str, figures: list) -> "dict | None":
    """Back-to-back comparison: the tree at ``ref`` vs HEAD.

    Both sides run in fresh subprocesses (serial, cold cache) so neither
    inherits the other's warmed allocator or bytecode cache unevenly.
    Returns None when the baseline tree cannot be produced.
    """
    with tempfile.TemporaryDirectory(prefix="tree-base-") as tmp:
        tar_path = Path(tmp) / "baseline.tar"
        try:
            subprocess.run(
                ["git", "-C", str(ROOT), "archive", "-o", str(tar_path),
                 ref, "src"],
                check=True, capture_output=True, timeout=60,
            )
        except (OSError, subprocess.SubprocessError):
            return None
        with tarfile.open(tar_path) as tf:
            tf.extractall(tmp)
        base = _time_tree(Path(tmp) / "src", figures)
        if base is None:
            return None
    head = _time_tree(ROOT / "src", figures)
    if head is None:
        return None
    report = {"baseline_ref": ref, "figures": {}}
    for name in figures:
        b, h = base[name], head[name]
        report["figures"][name] = {
            "baseline_wall_s": round(b["wall_s"], 4),
            "wall_s": round(h["wall_s"], 4),
            "wall_ratio": round(h["wall_s"] / b["wall_s"], 4),
            "baseline_events": b["events"],
            "events": h["events"],
            "events_ratio": round(h["events"] / b["events"], 4)
            if b["events"] else 1.0,
        }
    return report


def measure_obs_overhead(figures=None) -> "dict | None":
    return measure_tree_overhead(OBS_BASELINE_REF, figures or OBS_FIGURES)


def test_obs_zero_overhead():
    """Disabled observability stays within 5 % of the pre-obs tree.

    The registry is read-only-lazy and the profiler hook is one ``is None``
    check per busy charge, so both the simulated event count and the wall
    clock of the quick figures must be unchanged (modulo timer noise).
    """
    report = measure_obs_overhead()
    if report is None:
        import pytest

        pytest.skip(f"cannot produce baseline tree {OBS_BASELINE_REF} "
                    "(no git history?)")
    print()
    for name, f in report["figures"].items():
        print(f"  {name:6s} wall {f['baseline_wall_s']:7.3f}s -> "
              f"{f['wall_s']:7.3f}s (x{f['wall_ratio']:.3f})  "
              f"events {f['baseline_events']:,} -> {f['events']:,} "
              f"(x{f['events_ratio']:.3f})")
        assert f["events_ratio"] <= OBS_OVERHEAD_MAX_RATIO, (
            f"{name}: observability changed the simulation itself "
            f"({f['baseline_events']:,} -> {f['events']:,} events)"
        )
        budget = f["baseline_wall_s"] * OBS_OVERHEAD_MAX_RATIO + OBS_WALL_EPSILON_S
        assert f["wall_s"] <= budget, (
            f"{name}: disabled observability costs wall time "
            f"({f['baseline_wall_s']}s -> {f['wall_s']}s, budget {budget:.3f}s)"
        )


# ---------------------------------------------------------------------------
# tie-break zero-overhead gate
# ---------------------------------------------------------------------------

#: last commit before the pluggable tie-break / race-detector PR
TIEBREAK_BASELINE_REF = "c300c84"

#: with no policy installed the push path must be the historical one, so
#: the wall budget is the same 5 % noise band as the obs gate — but the
#: event counts must match the pre-PR tree EXACTLY (bit-identical FIFO)
TIEBREAK_WALL_MAX_RATIO = 1.05
TIEBREAK_WALL_EPSILON_S = 0.5
TIEBREAK_FIGURES = ["fig3", "fig9"]


def test_tiebreak_zero_overhead():
    """Default FIFO is bit-identical and free: same events, same wall.

    The pluggable tie-break only shadows ``_push`` on simulators given a
    policy; the default path keeps the class method and the historical
    ``(time, seq)`` heap tuples.  Identical event counts against the
    pre-PR tree prove the simulations are the same simulations; the wall
    ratio bounds the cost of the (unused) machinery at noise level.
    """
    report = measure_tree_overhead(TIEBREAK_BASELINE_REF, TIEBREAK_FIGURES)
    if report is None:
        import pytest

        pytest.skip(f"cannot produce baseline tree {TIEBREAK_BASELINE_REF} "
                    "(no git history?)")
    print()
    for name, f in report["figures"].items():
        print(f"  {name:6s} wall {f['baseline_wall_s']:7.3f}s -> "
              f"{f['wall_s']:7.3f}s (x{f['wall_ratio']:.3f})  "
              f"events {f['baseline_events']:,} -> {f['events']:,}")
        assert f["events"] == f["baseline_events"], (
            f"{name}: the default tie-break changed the simulation "
            f"({f['baseline_events']:,} -> {f['events']:,} events; FIFO must "
            "be bit-identical to the pre-PR scheduler)"
        )
        budget = (f["baseline_wall_s"] * TIEBREAK_WALL_MAX_RATIO
                  + TIEBREAK_WALL_EPSILON_S)
        assert f["wall_s"] <= budget, (
            f"{name}: disabled tie-break machinery costs wall time "
            f"({f['baseline_wall_s']}s -> {f['wall_s']}s, budget {budget:.3f}s)"
        )


def test_simspeed_quick_suite():
    """The acceptance gate: >=2x vs pre-PR, inside the wall budget."""
    report = run_suite()
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print()
    print(f"  [baseline: {report['baseline_mode']} @ {report['baseline_ref']}]")
    for name, f in report["figures"].items():
        print(f"  {name:6s} {f['baseline_wall_s']:7.3f}s -> {f['wall_s']:7.3f}s "
              f"(x{f['speedup']:.2f}, {f['events_per_s']:,} ev/s)")
    print(f"  TOTAL  {report['baseline_total_wall_s']:7.3f}s -> "
          f"{report['total_wall_s']:7.3f}s (x{report['speedup_total']:.2f})")
    print(f"  [wrote {OUTPUT}]")
    assert report["speedup_total"] >= MIN_SPEEDUP, (
        f"quick suite speedup x{report['speedup_total']} is below the "
        f"x{MIN_SPEEDUP} acceptance floor"
    )
    assert report["total_wall_s"] <= WALL_BUDGET_SECONDS, (
        f"quick suite took {report['total_wall_s']}s, over the "
        f"{WALL_BUDGET_SECONDS}s wall budget"
    )


if __name__ == "__main__":
    test_simspeed_quick_suite()
    test_obs_zero_overhead()
    test_tiebreak_zero_overhead()
