"""Driver statistics collection (the ``omx_counters`` tool analogue).

The real Open-MX ships a counters tool that dumps per-driver event counts
for diagnosing deployments.  This module used to scrape every component
attribute-by-attribute; it is now a thin view over the host's
:class:`~repro.obs.registry.MetricsRegistry`, into which each component
registers its own counters at construction time — a subsystem added
tomorrow shows up in the dump without anyone editing this file.

All pre-registry key names (``nic_rx_frames``, ``pull_replies_rx``...) are
preserved: components register under the exact names this module used to
emit, and ``tests/test_obs_registry.py`` pins the historical key set.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.reporting.table import Table

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.driver import OmxStack


def collect_counters(stack: "OmxStack") -> dict[str, int]:
    """Snapshot all counters of one host's Open-MX instance.

    The keys are whatever the host's components registered — a superset of
    the historical hand-maintained set.
    """
    return stack.host.metrics.snapshot()


def collect_health(stack: "OmxStack") -> dict[str, int]:
    """Snapshot just the health-supervision counters (breaker transitions,
    keepalives, peer deaths, busy signals) — the degradation dashboard."""
    return stack.host.metrics.snapshot(component="health")


def render_counters(stack: "OmxStack", title: str = "") -> str:
    """Human-readable counter dump."""
    counters = collect_counters(stack)
    t = Table(title or f"omx_counters: {stack.host.name}", ["counter", "value"])
    for name in sorted(counters):
        t.add_row(name, counters[name])
    return t.render()
