"""Intra-node (shared-memory) communication (§III-C, Fig. 10).

Open-MX routes local traffic through the same driver commands as network
traffic — "the driver automatically switches from regular to local
communication without needing any specific support in user-space" (§V).

* Small/medium local messages: the sender's syscall copies the data
  straight into the destination endpoint's eager ring (kernel can address
  both processes); the receiving library copies it out — the usual
  two-copy eager path, but with no wire in between.
* Large local messages use the **one-copy** model: a rendezvous event is
  posted to the receiver; when the library matches it, a pull command makes
  the driver copy directly from the source process's (pinned) pages into
  the destination buffer within a single system call — with a plain memcpy,
  or with *synchronous* I/OAT copies (submit all descriptors, busy-poll for
  completion) when enabled and the message is at least ``shm_ioat_min``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from repro.core.types import EvType, OmxEvent, OmxRequest
from repro.mx.wire import EndpointAddr

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.driver import OmxDriver
    from repro.core.endpoint import OmxEndpoint
    from repro.simkernel.cpu import Core


@dataclass
class _LocalSend:
    req: OmxRequest
    endpoint: "OmxEndpoint"


class ShmEngine:
    """Driver-internal local delivery."""

    def __init__(self, driver: "OmxDriver"):
        self.driver = driver
        self.host = driver.host
        self.config = driver.config
        self.params = driver.params
        self._msg_ids = itertools.count()
        self._pending: dict[int, _LocalSend] = {}
        # statistics
        self.local_eager = 0
        self.local_large = 0
        self.ioat_copies = 0

    # -- syscall-context commands -------------------------------------------------

    def cmd_send_local(self, core: "Core", ep: "OmxEndpoint", req: OmxRequest) -> Generator:
        """Local send: eager-copy into the peer ring or post a rendezvous."""
        dest_ep = self.driver.endpoints.get(req.peer.endpoint)
        if dest_ep is None:
            raise ValueError(f"no local endpoint {req.peer.endpoint}")
        yield from self.driver._enter_syscall(core)
        try:
            req.msg_id = next(self._msg_ids)
            if req.length < self.config.shm_large_threshold:
                yield from self._eager_local(core, ep, dest_ep, req)
            else:
                self._pending[req.msg_id] = _LocalSend(req, ep)
                dest_ep.post_event(OmxEvent(
                    EvType.RNDV_LOCAL, peer=ep.addr, match_info=req.match_info,
                    msg_id=req.msg_id, msg_len=req.length,
                ))
                self.local_large += 1
        finally:
            core.res.release()
        return None

    def _eager_local(self, core: "Core", ep: "OmxEndpoint",
                     dest_ep: "OmxEndpoint", req: OmxRequest) -> Generator:
        """Two-copy local path: kernel copies into the peer's eager ring."""
        frag = self.config.medium_frag
        count = max(1, -(-req.length // frag))
        for i in range(count):
            off = i * frag
            n = min(frag, req.length - off)
            slot = dest_ep.ring.acquire_slot()
            while slot is None:
                # Ring full: wait for the consumer to drain (local traffic
                # cannot be dropped; there is no retransmission path).
                yield dest_ep.ring_drain.wait()
                slot = dest_ep.ring.acquire_slot()
            if n:
                yield from self.host.copier.memcpy(
                    core, req.region, req.offset + off,
                    dest_ep.ring.slot_region(slot), 0, n, "driver",
                )
            dest_ep.post_event(OmxEvent(
                EvType.EAGER_FRAG, peer=ep.addr, match_info=req.match_info,
                msg_id=req.msg_id, msg_len=req.length, frag_index=i,
                frag_count=count, offset=off, length=n, ring_slot=slot,
            ))
        self.local_eager += 1
        req.xfer_length = req.length
        ep.post_event(OmxEvent(EvType.SEND_DONE, peer=req.peer, req=req))
        return None

    def cmd_pull_local(self, core: "Core", ep: "OmxEndpoint", req: OmxRequest,
                       peer: EndpointAddr, msg_id: int, msg_len: int) -> Generator:
        """The one-copy transfer, executed in the receiver's system call."""
        state = self._pending.pop(msg_id, None)
        if state is None:
            raise ValueError(f"no pending local send {msg_id}")
        total = min(msg_len, req.length)
        yield from self.driver._enter_syscall(core)
        try:
            src_req = state.req
            pinned_src = pinned_dst = None
            if total:
                src_sub = src_req.region.subregion(src_req.offset, total)
                dst_sub = req.region.subregion(req.offset, total)
                # get_user_pages on both address spaces (the kernel maps the
                # remote process's pages to copy from them).
                pinned_src = yield from self.host.regcache.acquire(core, src_sub, "driver")
                pinned_dst = yield from self.host.regcache.acquire(core, dst_sub, "driver")
                use_ioat = (
                    self.config.ioat_enabled and total >= self.config.shm_ioat_min
                )
                if use_ioat:
                    cookie = yield from self.host.ioat.submit_copy(
                        core, src_req.region, src_req.offset,
                        req.region, req.offset, total, "driver",
                    )
                    if self.config.ioat_sleep_model:
                        yield from self.host.ioat.sleep_wait(core, cookie, "driver")
                    else:
                        yield from self.host.ioat.busy_wait(core, cookie, "driver")
                    self.ioat_copies += 1
                else:
                    yield from self.host.copier.memcpy(
                        core, src_req.region, src_req.offset,
                        req.region, req.offset, total, "driver",
                    )
            if pinned_src is not None:
                yield from self.host.regcache.release(core, pinned_src, "driver")
            if pinned_dst is not None:
                yield from self.host.regcache.release(core, pinned_dst, "driver")
            req.xfer_length = total
            src_req.xfer_length = total
            ep.post_event(OmxEvent(EvType.RECV_LARGE_DONE, peer=peer,
                                   msg_len=total, req=req))
            state.endpoint.post_event(OmxEvent(EvType.SEND_DONE, peer=req.peer,
                                               req=src_req))
        finally:
            core.res.release()
        return None
