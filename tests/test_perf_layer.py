"""Tests for the performance layer (phantom payloads, event fast paths,
cached/parallel sweep executor).

The determinism guarantees this PR rests on are proven here:

* phantom vs byte-moving payloads yield **bit-identical** figure data
  (the cost model is content-blind);
* serial vs ``REPRO_JOBS=4`` sweeps yield bit-identical results (points
  are independent simulations);
* a cache hit replays the stored result **without running any
  simulation** (asserted via the process-wide event counter).
"""

import pytest

from repro import build_testbed
from repro.core.counters import collect_counters
from repro.memory import phantom
from repro.reporting.experiments import fig7
from repro.reporting.sweeps import SweepExecutor, point, point_key
from repro.simkernel import Simulator
from repro.simkernel.errors import SimulationError
from repro.units import KiB, MiB


# ---------------------------------------------------------------------------
# event-loop fast paths
# ---------------------------------------------------------------------------


class TestEventFastPaths:
    def test_call_at_runs_in_time_order(self):
        sim = Simulator()
        seen = []
        sim.call_at(50, lambda: seen.append(("a", sim.now)))
        sim.call_at(10, lambda: seen.append(("b", sim.now)))
        sim.run()
        assert seen == [("b", 10), ("a", 50)]

    def test_call_soon_is_fifo_at_the_current_time(self):
        sim = Simulator()
        seen = []
        sim.call_soon(lambda: seen.append(1))
        sim.call_soon(lambda: seen.append(2))
        sim.call_at(0, lambda: seen.append(3))
        sim.run()
        assert seen == [1, 2, 3]

    def test_call_at_in_the_past_raises(self):
        sim = Simulator()
        sim.call_at(100, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(50, lambda: None)

    def test_events_processed_and_process_total_count(self):
        sim = Simulator()
        before_total = Simulator.events_total
        for t in (5, 10, 15):
            sim.call_at(t, lambda: None)
        sim.run()
        assert sim.events_processed == 3
        assert Simulator.events_total == before_total + 3
        assert sim.wall_seconds > 0.0

    def test_counters_surface_event_loop_stats(self):
        tb = build_testbed()
        ep0, ep1 = tb.open_endpoint(0, 0), tb.open_endpoint(1, 0)
        c0, c1 = tb.user_core(0), tb.user_core(1)
        sbuf, rbuf = ep0.space.alloc(4 * KiB), ep1.space.alloc(4 * KiB)
        done = tb.sim.event()

        def sender():
            req = yield from ep0.isend(c0, ep1.addr, 7, sbuf)
            yield from ep0.wait(c0, req)

        def receiver():
            req = yield from ep1.irecv(c1, 7, ~0, rbuf)
            yield from ep1.wait(c1, req)
            done.succeed()

        tb.sim.process(sender())
        tb.sim.process(receiver())
        tb.sim.run_until(done, max_events=1_000_000)
        c = collect_counters(tb.stacks[0])
        assert c["sim_events_processed"] > 0
        assert c["sim_events_processed"] == tb.sim.events_processed
        assert "sim_wall_ms" in c


# ---------------------------------------------------------------------------
# phantom payloads
# ---------------------------------------------------------------------------


class TestPhantomMode:
    def test_defaults_off_with_integrity_floor(self):
        assert not phantom.is_active()
        assert not phantom.elide(1 * MiB)  # inactive: never elide
        with phantom.phantom_payloads(True):
            assert phantom.is_active()
            assert phantom.elide(phantom.INTEGRITY_FLOOR + 1)
            assert not phantom.elide(phantom.INTEGRITY_FLOOR)
        assert not phantom.is_active()  # scope restored

    def test_phantom_and_byte_pingpong_bit_identical(self, tmp_path):
        """The tentpole determinism proof on the full network path:
        eager + pull + I/OAT offload, with and without real bytes."""
        pts = [
            point("pingpong", stack="omx", size=8 * KiB, iters=2, omx={}),
            point("pingpong", stack="omx", size=1 * MiB, iters=2,
                  omx={"ioat_enabled": True}),
        ]
        byte_mode = SweepExecutor(jobs=1, cache=False, phantom_mode=False)
        ghost_mode = SweepExecutor(jobs=1, cache=False, phantom_mode=True)
        assert byte_mode.run(pts) == ghost_mode.run(pts)

    def test_phantom_and_byte_figure_csv_identical(self, tmp_path):
        byte_fig = fig7(quick=True, executor=SweepExecutor(
            jobs=1, cache_dir=tmp_path / "byte", phantom_mode=False))
        ghost_fig = fig7(quick=True, executor=SweepExecutor(
            jobs=1, cache_dir=tmp_path / "ghost", phantom_mode=True))
        assert byte_fig.to_csv() == ghost_fig.to_csv()


# ---------------------------------------------------------------------------
# sweep executor
# ---------------------------------------------------------------------------


class TestSweepExecutor:
    POINTS = [
        point("memcpy_chunked", size=256 * KiB, chunk=4 * KiB),
        point("memcpy_chunked", size=256 * KiB, chunk=1 * KiB),
        point("ioat_chunked", size=256 * KiB, chunk=4 * KiB),
        point("pingpong", stack="omx", size=32 * KiB, iters=2, omx={}),
    ]

    def test_cache_hit_skips_simulation(self, tmp_path):
        cold = SweepExecutor(jobs=1, cache_dir=tmp_path)
        before = Simulator.events_total
        first = cold.run(self.POINTS)
        assert Simulator.events_total > before  # simulations actually ran
        assert cold.stats.computed == len(self.POINTS)

        warm = SweepExecutor(jobs=1, cache_dir=tmp_path)
        before = Simulator.events_total
        second = warm.run(self.POINTS)
        assert Simulator.events_total == before  # zero simulation on hits
        assert warm.stats.cache_hits == len(self.POINTS)
        assert warm.stats.computed == 0
        assert second == first

    def test_serial_vs_parallel_bit_identical(self, tmp_path, monkeypatch):
        serial = SweepExecutor(jobs=1, cache=False).run(self.POINTS)
        monkeypatch.setenv("REPRO_JOBS", "4")
        parallel_ex = SweepExecutor(cache=False)  # jobs from the environment
        assert parallel_ex.jobs == 4
        assert parallel_ex.run(self.POINTS) == serial

    def test_cache_keys_isolate_modes_and_params(self):
        base = point_key("pingpong", {"size": 1024}, True)
        assert point_key("pingpong", {"size": 1024}, False) != base
        assert point_key("pingpong", {"size": 2048}, True) != base
        assert point_key("imb_time", {"size": 1024}, True) != base
        assert point_key("pingpong", {"size": 1024}, True) == base

    def test_unknown_point_kind_rejected(self):
        with pytest.raises(KeyError):
            point("warp_drive", size=1)

    def test_results_in_declaration_order(self, tmp_path):
        pts = [
            point("memcpy_chunked", size=128 * KiB, chunk=256),
            point("memcpy_chunked", size=128 * KiB, chunk=4 * KiB),
        ]
        ex = SweepExecutor(jobs=1, cache_dir=tmp_path)
        fine, coarse = ex.run(pts)
        # both are MiB/s throughputs; 256 B chunks pay 16x the per-chunk
        # setup cost, so the pair must not come back swapped
        assert fine < coarse
        assert ex.run(pts) == [fine, coarse]  # cached replay, same order
