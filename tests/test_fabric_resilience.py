"""Gray-failure resilience acceptance (DESIGN.md §17).

The ISSUE's acceptance bars, as tier-1 tests:

* the gray axes (degrade / flap / lossy) arm against both the chunk-level
  :class:`~repro.fabric.network.FabricNetwork` and full-hardware
  :class:`~repro.ethernet.switch.EthernetSwitch` trunks, and fail with a
  typed :class:`~repro.faults.injectors.NoTrunksError` on topologies with
  no trunks to act on;
* the health estimator scores seeded windows, the breaker's hysteresis
  demotes a gray trunk once and refuses to track a flap
  (``fabric_route_flaps_suppressed > 0`` with stable final routes);
* crash-stop rank kills drain sanitizer-clean as the typed
  :class:`~repro.core.errors.RankDead` (abort-and-report) or shrink the
  ring over the survivors (``resilient_allreduce``);
* the chaos campaign covers all five outcome classes, byte-identical per
  seed; random seeded flap schedules (hypothesis) never partition a
  still-connected fat-tree and never perturb determinism;
* the fabric soaks run to quiescence with live livelock checkpoints.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.errors import RankDead, TransferError
from repro.fabric.build import build_fabric_testbed
from repro.fabric.mpi import launch_fabric_world
from repro.fabric.resilience import (
    FabricResilience,
    LinkBreaker,
    LinkHealth,
    LinkHealthEstimator,
    ResilienceParams,
    resilient_allreduce,
    trunk_health_snapshot,
)
from repro.fabric.sweep import (
    chaos_campaign,
    collective_body,
    make_topology,
    run_fabric_cell,
    run_imb_fabric,
)
from repro.faults import (
    FabricDegradeSpec,
    FabricFlapSpec,
    FabricLossySpec,
    FaultPlan,
    NoTrunksError,
    RankFaultSpec,
    arm_plan,
    flap_windows,
    run_fabric_soak_suite,
)
from repro.units import KiB, us

MAXEV = 50_000_000

#: the canonical test fabric: 8 hosts behind 2 edges, 4 spines, 1:1 —
#: every single-trunk failure leaves it connected
FT2 = dict(topology="fat_tree2", hosts=8, oversubscription=1.0,
           hosts_per_edge=4)


def _trunks(**kw):
    spec = make_topology(kw.get("topology", "fat_tree2"), kw.get("hosts", 8),
                         kw.get("oversubscription", 1.0),
                         kw.get("hosts_per_edge", 4))
    return sorted(l.name for l in spec.trunk_links())


# ---------------------------------------------------------------------------
# units: params, flap schedules, estimator, breaker
# ---------------------------------------------------------------------------


class TestUnits:
    @pytest.mark.parametrize("bad", [
        dict(window=0), dict(phase_jitter=1.0), dict(drop_threshold=0.0),
        dict(busy_threshold=1.5), dict(trip_samples=0),
        dict(reopen_samples=0), dict(hold_down=-1),
        dict(max_chunk_retries=-1),
    ])
    def test_params_validate_rejects(self, bad):
        with pytest.raises(ValueError):
            ResilienceParams(**bad).validate()

    def test_flap_windows_seeded_and_ordered(self):
        spec = FabricFlapSpec(link="edge0~spine0", at=us(50),
                              period=us(400), duty=0.5, cycles=3,
                              jitter=0.2)
        w1 = flap_windows(spec, "s1")
        assert w1 == flap_windows(spec, "s1")  # seeded: same seed, same cuts
        assert w1 != flap_windows(spec, "s2")
        assert len(w1) == 3
        flat = [t for w in w1 for t in w]
        assert flat == sorted(flat)  # down/up alternation never overlaps
        assert flat[0] >= us(50)

    def test_estimator_scores_port_state(self):
        world = launch_fabric_world(make_topology(**{
            "topology": "fat_tree2", "hosts": 8, "oversubscription": 1.0,
            "hosts_per_edge": 4}))
        net = world.net
        trunk = _trunks()[0]
        ports = net.ports_of_link(trunk)
        params = ResilienceParams()
        est = LinkHealthEstimator(trunk, ports, params)
        assert est.sample(params.window) is LinkHealth.HEALTHY
        ports[0].service_scale = 4.0  # noqa: FAB001 — unit pokes the port
        assert est.sample(params.window) is LinkHealth.DEGRADED
        ports[0].service_scale = 1.0  # noqa: FAB001
        ports[0].alive = False
        assert est.sample(params.window) is LinkHealth.DEAD
        assert est.samples == 3

    def test_breaker_trips_holds_down_then_reopens(self):
        world = launch_fabric_world(make_topology(**FT2))
        net = world.net
        trunk = _trunks()[0]
        link = net.spec.link_named(trunk)
        res = FabricResilience(net, seed="unit")
        p = res.params
        br = LinkBreaker(res, trunk, link.a, link.b)
        now = 0
        for _ in range(p.trip_samples):
            br.on_sample(LinkHealth.DEGRADED, now)
            now += p.window
        assert br.state == "open" and res.demotions == 1
        assert res.reroutes == 1
        # healthy inside the hold-down: refused, counted as suppressed
        for _ in range(p.reopen_samples + 2):
            br.on_sample(LinkHealth.HEALTHY, now)
            now += p.window
        assert br.state == "open"
        assert res.flaps_suppressed >= p.reopen_samples
        # past the hold-down AND a fresh healthy streak: restored
        now = br.tripped_at + p.hold_down + 1
        br.healthy_streak = 0
        for _ in range(p.reopen_samples):
            br.on_sample(LinkHealth.HEALTHY, now)
            now += p.window
        assert br.state == "closed"
        assert res.restorations == 1 and res.reroutes == 2


# ---------------------------------------------------------------------------
# gray axes on the chunk-level fabric
# ---------------------------------------------------------------------------


class TestGrayAxes:
    def _plan(self, **axes):
        return FaultPlan(name="t-gray", seed="t", **axes).to_dict()

    def test_degrade_demotes_and_completes(self):
        trunk = _trunks()[0]
        out = run_fabric_cell(
            **FT2, size=16 * KiB, backend="memcpy",
            plan=self._plan(degrade=(
                FabricDegradeSpec(link=trunk, at=0, bw_factor=0.1),)))
        assert out["outcome"] == "degraded-completed"
        snap = out["resilience"]
        assert snap["demotions"] >= 1 and snap["reroutes"] >= 1
        assert snap["links"][trunk] == "degraded"
        assert out["net"]["msgs_failed"] == 0

    def test_lossy_retries_until_delivered(self):
        # every trunk lossy: whatever paths ECMP picks, drops happen
        out = run_fabric_cell(
            **FT2, size=16 * KiB, backend="memcpy",
            plan=self._plan(lossy=tuple(
                FabricLossySpec(link=t, drop_rate=0.3, at=0)
                for t in _trunks())))
        assert out["net"]["chunks_retried"] > 0
        assert out["net"]["msgs_failed"] == 0
        assert out["outcome"] in ("rerouted", "degraded-completed",
                                  "completed")

    def test_flap_is_suppressed_and_routes_settle(self):
        """The regression the ISSUE pins: a flapping trunk produces a
        positive suppressed-flap count and *stable* final routes — the
        breaker holds one demotion through the flap instead of racing
        the duty cycle, and the demotion lifts once the link settles."""
        trunk = _trunks()[0]
        plan = self._plan(flap=(
            FabricFlapSpec(link=trunk, at=us(20), period=us(120),
                           duty=0.5, cycles=4),))
        out = run_fabric_cell(**FT2, size=16 * KiB, backend="memcpy",
                              plan=plan)
        snap = out["resilience"]
        assert snap["flaps_suppressed"] > 0
        assert snap["demoted"] == []  # final routes: nothing left demoted
        assert 1 <= snap["demotions"] <= 4  # one-ish demotion, not 4 flaps
        assert out["net"]["msgs_failed"] == 0
        assert out == run_fabric_cell(**FT2, size=16 * KiB,
                                      backend="memcpy", plan=plan)

    def test_no_trunks_error_names_offenders(self):
        world = launch_fabric_world(make_topology("star", 4,
                                                  hosts_per_edge=4))
        plan = FaultPlan(name="bad", seed="t", degrade=(
            FabricDegradeSpec(link="node0~sw0", at=0),))
        with pytest.raises(NoTrunksError) as exc:
            arm_plan(world, plan)
        assert "node0~sw0" in str(exc.value)
        assert "no trunks" in str(exc.value)


# ---------------------------------------------------------------------------
# crash-stop ranks: abort-and-report and shrink-and-retry
# ---------------------------------------------------------------------------


class TestCrashStop:
    KILL = dict(size=16 * KiB, backend="memcpy",
                plan=FaultPlan(name="t-kill", seed="t", ranks=(
                    RankFaultSpec(rank=1, at=us(30)),)).to_dict())

    def test_abort_surfaces_typed_rank_dead(self):
        out = run_fabric_cell(**FT2, recovery="abort", **self.KILL)
        assert out["outcome"] == "failed:RankDead"
        assert out["liveness"]["deaths_declared"] == 1
        assert out["liveness"]["dead_ranks"] == [1]

    def test_shrink_completes_over_survivors(self):
        out = run_fabric_cell(**FT2, recovery="shrink", **self.KILL)
        assert out["outcome"] == "shrunk-completed"
        assert out["liveness"]["dead_ranks"] == [1]
        assert out["liveness"]["epoch"] == 1
        assert out == run_fabric_cell(**FT2, recovery="shrink", **self.KILL)

    def test_shrunk_allreduce_drains_clean_and_every_survivor_finishes(self):
        """Raw-world shrink: rank 1 dies mid-ring, the seven survivors
        all complete the retried ring (fabric payloads are phantom — the
        cost model, not the bytes, is what the chunk level simulates, so
        the check is structural: who finished, what epoch, clean drain)."""

        def run():
            world = launch_fabric_world(make_topology(**FT2),
                                        backend="memcpy")
            arm_plan(world, FaultPlan(name="t-kill", seed="t", ranks=(
                RankFaultSpec(rank=1, at=us(30)),)))
            n = 16 * KiB
            done = []

            def body(rank):
                sb = rank.space.alloc(n)
                rb = rank.space.alloc(n)
                yield from resilient_allreduce(rank, sb, rb)
                done.append(rank.rank)

            world.run_spmd(body, max_events=MAXEV)
            world.finish()  # sanitizer-clean drain
            return sorted(done), world.survivors(), world.epoch, world.sim.now

        done, survivors, epoch, end = run()
        assert survivors == [0, 2, 3, 4, 5, 6, 7]
        assert done == survivors  # every survivor finished, the dead did not
        assert epoch == 1
        assert run() == (done, survivors, epoch, end)  # deterministic


# ---------------------------------------------------------------------------
# the chaos campaign: every outcome class, byte-identical
# ---------------------------------------------------------------------------


class TestChaosCampaign:
    def test_covers_all_five_outcome_classes(self):
        report = chaos_campaign()
        assert report["outcomes"] == [
            "degraded-completed",
            "failed:FabricPartitioned",
            "failed:RankDead",
            "rerouted",
            "shrunk-completed",
        ]
        assert len(report["cells"]) == 18  # 3 topologies x 6 axes

    def test_campaign_byte_identical(self):
        assert chaos_campaign() == chaos_campaign()


# ---------------------------------------------------------------------------
# hypothesis: random seeded flap schedules
# ---------------------------------------------------------------------------


class TestFlapProperty:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(trunk_idx=st.integers(0, 7),
           at=st.integers(0, 40),
           period=st.integers(60, 300),
           duty=st.sampled_from([0.25, 0.5, 0.75]),
           cycles=st.integers(1, 4),
           seed=st.integers(0, 2 ** 16))
    def test_flap_never_partitions_and_stays_deterministic(
            self, trunk_idx, at, period, duty, cycles, seed):
        """Any seeded flap of one trunk of a 1:1 fat-tree (which stays
        connected throughout) completes the collective — never a
        partition, never a hang — and two runs of the same schedule are
        byte-identical."""
        trunks = _trunks()
        plan = FaultPlan(name="prop-flap", seed=f"prop{seed}", flap=(
            FabricFlapSpec(link=trunks[trunk_idx % len(trunks)], at=us(at),
                           period=us(period), duty=duty, cycles=cycles),
        )).to_dict()
        out = run_fabric_cell(**FT2, size=8 * KiB, backend="memcpy",
                              plan=plan)
        assert not out["outcome"].startswith("failed:"), out["detail"]
        assert out["net"]["msgs_failed"] == 0
        assert out == run_fabric_cell(**FT2, size=8 * KiB,
                                      backend="memcpy", plan=plan)

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 2 ** 16))
    def test_flapped_world_drains_sanitizer_clean(self, seed):
        """Same property, against the raw world: after a flapped
        allreduce the teardown sanitizers (no stuck process, no leaked
        message, quiesced ports) all pass."""
        world = launch_fabric_world(make_topology(**FT2), backend="memcpy")
        trunk = _trunks()[seed % 8]
        arm_plan(world, FaultPlan(name="prop-drain", seed=f"d{seed}", flap=(
            FabricFlapSpec(link=trunk, at=us(10 + seed % 30),
                           period=us(100 + seed % 100), duty=0.5,
                           cycles=2),)))
        world.run_spmd(collective_body("allreduce", 8 * KiB),
                       max_events=MAXEV)
        world.finish()


# ---------------------------------------------------------------------------
# full-hardware trunks: gray frame hooks + health observation
# ---------------------------------------------------------------------------


class TestHardwareGray:
    def _sums(self, tb, n=4 * KiB):
        from repro.mpi import create_world
        comm = create_world(tb, ppn=1)
        out = {}

        def body(rank):
            sb = rank.space.alloc(n)
            rb = rank.space.alloc(n)
            sb.read().view(np.float32)[:] = float(rank.rank + 1)
            yield from rank.allreduce(sb, rb)
            out[rank.rank] = rb.read().view(np.float32).copy()

        comm.run_spmd(body, max_events=MAXEV)
        return out

    def test_gray_trunks_arm_and_health_observes(self):
        spec = make_topology("fat_tree2", 4, hosts_per_edge=2)
        tb = build_fabric_testbed(spec)
        trunk = sorted(tb.trunks)[0]
        armed = arm_plan(tb, FaultPlan(name="hw-gray", seed="t", lossy=(
            FabricLossySpec(link=trunk, drop_rate=0.2, at=0),), degrade=(
            FabricDegradeSpec(link=trunk, at=0, bw_factor=0.5),)))
        assert armed.fabric_armed == 2 and armed.gray_hooks
        out = self._sums(tb)
        expected = float(sum(range(1, 5)))
        assert all(np.all(v == expected) for v in out.values())
        snap = trunk_health_snapshot(tb.switches)
        assert snap  # every trunk egress port scored
        assert set(snap.values()) <= {"healthy", "degraded"}
        # the retransmit stack absorbed the loss; the hooks really fired
        fired = sum(h.lossy_drops + h.delayed for h in armed.gray_hooks)
        assert fired > 0

    def test_kill_axis_rejected_on_hardware(self):
        from repro.faults import FabricFaultSpec
        spec = make_topology("fat_tree2", 4, hosts_per_edge=2)
        tb = build_fabric_testbed(spec)
        plan = FaultPlan(name="hw-kill", seed="t", fabric=(
            FabricFaultSpec(link=sorted(tb.trunks)[0], action="kill",
                            at=0),))
        with pytest.raises(ValueError):
            arm_plan(tb, plan)


# ---------------------------------------------------------------------------
# fabric soak + IMB over the fabric
# ---------------------------------------------------------------------------


class TestFabricSoak:
    def test_suite_byte_identical_and_clean(self):
        a = run_fabric_soak_suite("t-soak")
        assert a == run_fabric_soak_suite("t-soak")
        assert a["sanitizer_dirty_runs"] == []
        names = {r["soak"] for r in a["runs"]}
        assert names == {"gray-churn", "gray-crash"}
        for run in a["runs"]:
            assert run["checkpoints"], "livelock checkpoints must run"
            last = run["checkpoints"][-1]
            assert last["open_msgs"] == 0
            assert run["resilience"]["flaps_suppressed"] > 0
        crash = next(r for r in a["runs"] if r["soak"] == "gray-crash")
        assert crash["dead_ranks"] == [2] and crash["epoch"] == 1
        assert crash["net"]["msgs_failed"] > 0  # the typed drain, counted


class TestImbFabric:
    def test_smoke_cell(self):
        out = run_imb_fabric(hosts=8, size=4 * KiB, iterations=2, warmup=1,
                             hosts_per_edge=4)
        assert out["t_avg_us"] > 0  # Allreduce is a latency test: no MiB/s
        assert out["test"] == "Allreduce" and out["hosts"] == 8
        assert out == run_imb_fabric(hosts=8, size=4 * KiB, iterations=2,
                                     warmup=1, hosts_per_edge=4)

    def test_allgatherv_rejected(self):
        with pytest.raises(ValueError):
            run_imb_fabric(test="Allgatherv")
