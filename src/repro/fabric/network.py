"""Chunk-level fabric simulator on the event kernel.

A :class:`FabricNetwork` executes message flows over a
:class:`~repro.fabric.spec.TopologySpec` at *chunk* granularity (default
16 KiB cells) instead of per-frame: coarse enough that a 256-host allreduce
is a few hundred thousand events, fine enough that store-and-forward hops,
trunk contention and the receive-copy serializer pipeline all emerge.  The
per-chunk costs come from a shared :class:`~repro.fabric.cost.CostTable`;
no per-host hardware object graphs are built (ports are created lazily on
first use).

Determinism under tie-break shuffles
------------------------------------
Every queueing point is a :class:`FabricPort` using **one-tick arbitration
batching**: chunks enqueued at tick *t* are admitted by an arbiter at
*t + 1* that sorts the batch by ``(ready, flow-key)``.  Batch membership
depends only on timestamps (every pending entry was enqueued exactly one
tick before its arbiter runs) and the admission order is a canonical sort —
never the dispatch order the tie-break policy permutes — so schedules,
drops, ECMP reroutes and all counters are byte-identical under
``--races``.  Serialization start times are ``max(port free time, ready)``
with a >= 1-tick service, so completions land strictly after the arbiter
and can never be scheduled in the past.

Faults
------
``kill_link("edge0~spine1", at=...)`` cuts a link mid-run: chunks already
serialized onto the wire arrive, queued chunks are deterministically
rerouted over recomputed tables (seeded ECMP over the live-link set), and
flows with no remaining path fail their messages with the typed
:class:`~repro.core.errors.FabricPartitioned`.  Per-port drop/occupancy
counters and the aggregate flow counters are registered in a
:class:`~repro.obs.registry.MetricsRegistry`.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.errors import DeliveryFailed, FabricPartitioned, RankDead
from repro.fabric.cost import DEFAULT_CELL, CostTable, cost_table
from repro.fabric.routing import RouteTables
from repro.fabric.spec import LinkSpec, TopologySpec
from repro.obs.registry import MetricsRegistry
from repro.params import Platform, clovertown_5000x
from repro.simkernel import Simulator
from repro.units import transfer_time


class _Message:
    """One in-flight fabric message (the transfer handle)."""

    __slots__ = ("src", "dst", "tag", "nbytes", "seq", "key", "flow",
                 "path", "n_chunks", "rx_remaining", "tx_remaining",
                 "error", "t_start", "t_done", "on_tx", "user")

    def __init__(self, src: str, dst: str, tag: int, nbytes: int, seq: int,
                 path: tuple, now: int):
        self.src = src
        self.dst = dst
        self.tag = tag
        self.nbytes = nbytes
        self.seq = seq
        #: canonical total order over messages (drives chunk sort keys)
        self.key = (src, dst, tag, seq)
        self.flow = f"{src}>{dst}/{tag}/{seq}"
        self.path = path
        self.n_chunks = 0
        self.rx_remaining = 0
        self.tx_remaining = 0
        self.error: Optional[Exception] = None
        self.t_start = now
        self.t_done = -1
        #: fired once when the last chunk clears the source NIC (MPI local
        #: send completion); set by the upper layer
        self.on_tx: Optional[Callable[[], None]] = None
        #: upper-layer payload (the MPI layer parks its request here)
        self.user: object = None

    @property
    def failed(self) -> bool:
        return self.error is not None


class _Chunk:
    """One cell of a message walking the fabric."""

    __slots__ = ("msg", "size", "idx", "hop", "path", "key", "txed",
                 "retries")

    def __init__(self, msg: _Message, size: int, idx: int):
        self.msg = msg
        self.size = size
        self.idx = idx
        self.hop = 0
        #: the switch walk; starts as the message's shared tuple, replaced
        #: per-chunk on reroute
        self.path = msg.path
        self.key = msg.key + (idx,)
        #: has this chunk cleared the source NIC yet?
        self.txed = False
        #: lossy-link retries burned so far (resilience-managed)
        self.retries = 0


class FabricPort:
    """One egress serializer (switch port, host NIC, or rx-copy stage).

    ``service(chunk)`` gives the serialization ticks; ``handler(chunk)`` is
    scheduled at ``finish + delay`` (next-hop arrival, including link
    propagation and the far switch's forwarding latency).
    """

    __slots__ = ("net", "sim", "name", "owner", "service", "handler",
                 "delay", "pending", "free_at", "alive", "limit_ns",
                 "fault", "enqueued", "admitted", "dropped", "rerouted",
                 "peak_backlog_ns", "busy_ticks", "_arb_at",
                 "service_scale", "extra_delay")

    def __init__(self, net: "FabricNetwork", name: str, owner: Optional[str],
                 service: Callable[[_Chunk], int],
                 handler: Callable[[_Chunk], None],
                 delay: int, limit_ns: Optional[int] = None):
        self.net = net
        self.sim = net.sim
        self.name = name
        #: the switch this port hangs off (None for host-owned stages);
        #: reroutes restart the walk here
        self.owner = owner
        self.service = service
        self.handler = handler
        self.delay = delay
        self.pending: list[tuple[int, tuple, _Chunk]] = []
        self.free_at = 0
        self.alive = True
        #: drop chunks whose queueing delay would exceed this (None = never)
        self.limit_ns = limit_ns
        #: fault hook: ``fault(chunk, now) -> True`` drops the chunk
        self.fault: Optional[Callable[[_Chunk, int], bool]] = None
        self.enqueued = 0
        self.admitted = 0
        self.dropped = 0
        self.rerouted = 0
        self.peak_backlog_ns = 0
        self.busy_ticks = 0
        self._arb_at = -1
        #: gray-failure degrade state: service-time multiplier (1.0 when
        #: healthy) and extra per-hop propagation delay (0 when healthy)
        self.service_scale = 1.0
        self.extra_delay = 0

    # -- ingress -----------------------------------------------------------

    def enqueue(self, chunk: _Chunk) -> None:
        if chunk.msg.failed:
            return
        if not self.alive:
            self.rerouted += 1
            self.net._reroute(chunk, self.owner, self.name)
            return
        now = self.sim.now
        self.enqueued += 1
        self.pending.append((now, chunk.key, chunk))
        if self._arb_at <= now:
            self._arb_at = now + 1
            self.sim.call_at(self._arb_at, self._arbitrate)

    # -- the one-tick arbiter ---------------------------------------------

    def _arbitrate(self) -> None:
        now = self.sim.now
        # Entries enqueued *this* tick (after this arbiter was scheduled)
        # belong to the next arbitration; membership is by timestamp only.
        batch = [e for e in self.pending if e[0] < now]
        rest = [e for e in self.pending if e[0] >= now]
        batch.sort()
        self.pending = rest
        if not self.alive:
            for _ready, _key, chunk in batch:
                if not chunk.msg.failed:
                    self.rerouted += 1
                    self.net._reroute(chunk, self.owner, self.name)
        else:
            call_at = self.sim.call_at
            dead = self.net._dead_hosts
            for ready, _key, chunk in batch:
                msg = chunk.msg
                if msg.failed:
                    continue
                if dead and (msg.src in dead or msg.dst in dead):
                    self.net._crash_fail(msg, self.name)
                    continue
                start = self.free_at if self.free_at > ready else ready
                wait = start - now
                if wait > self.peak_backlog_ns:
                    self.peak_backlog_ns = wait
                if self.limit_ns is not None and wait > self.limit_ns:
                    self.dropped += 1
                    self.net._drop(chunk, self.name)
                    continue
                if self.fault is not None and self.fault(chunk, now):
                    self.dropped += 1
                    self.net._chunk_lost(chunk, self)
                    continue
                ticks = self.service(chunk)
                if ticks < 1:
                    ticks = 1
                if self.service_scale != 1.0:
                    ticks = int(ticks * self.service_scale)
                finish = start + ticks
                self.free_at = finish
                self.busy_ticks += ticks
                self.admitted += 1
                call_at(finish + self.delay + self.extra_delay,
                        self.handler, chunk)
        if rest and self._arb_at <= now:
            self._arb_at = now + 1
            self.sim.call_at(self._arb_at, self._arbitrate)

    # -- observation -------------------------------------------------------

    def register_metrics(self, metrics: MetricsRegistry) -> None:
        comp = self.owner or "host"
        metrics.counter(comp, f"fabric_{self.name}_enqueued",
                        lambda: self.enqueued, "chunks queued on this port")
        metrics.counter(comp, f"fabric_{self.name}_dropped",
                        lambda: self.dropped, "chunks dropped at this port")
        metrics.counter(comp, f"fabric_{self.name}_rerouted",
                        lambda: self.rerouted,
                        "chunks detoured off this port after a link kill")
        metrics.gauge(comp, f"fabric_{self.name}_peak_backlog_ns",
                      lambda: self.peak_backlog_ns,
                      "worst queueing delay seen at this port")

    def stats(self) -> dict:
        return {
            "enqueued": self.enqueued,
            "admitted": self.admitted,
            "dropped": self.dropped,
            "rerouted": self.rerouted,
            "peak_backlog_ns": self.peak_backlog_ns,
            "busy_ticks": self.busy_ticks,
        }


class FabricNetwork:
    """Message flows over one topology, with deterministic ECMP routing."""

    def __init__(self, spec: TopologySpec, platform: Optional[Platform] = None,
                 backend: str = "memcpy", cell: int = DEFAULT_CELL,
                 sim: Optional[Simulator] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 egress_limit_cells: Optional[int] = None):
        spec.validate()
        self.spec = spec
        self.platform = platform if platform is not None else clovertown_5000x()
        self.cost: CostTable = cost_table(self.platform, backend, cell)
        self.sim = sim if sim is not None else Simulator()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.routes = RouteTables(spec)
        self.egress_limit_cells = egress_limit_cells
        hosts = set(spec.hosts)
        #: canonical (min,max) endpoint pair -> LinkSpec
        self._links: dict[tuple[str, str], LinkSpec] = {}
        for l in spec.links:
            self._links[self._lkey(l.a, l.b)] = l
        self._fwd_latency = {s.name: s.forwarding_latency for s in spec.switches}
        self._is_host = hosts
        #: direct host~host link (the switchless pair degenerate case)
        self._direct: dict[str, str] = {}
        for l in spec.links:
            if l.a in hosts and l.b in hosts:
                self._direct[l.a] = l.b
                self._direct[l.b] = l.a
        # lazy port maps
        self._tx_ports: dict[str, FabricPort] = {}
        self._sw_ports: dict[tuple[str, str], FabricPort] = {}
        self._rx_cpu_ports: dict[str, FabricPort] = {}
        self._rx_dma_ports: dict[str, FabricPort] = {}
        #: per-(src,dst) message sequence counters: owned by the sender's
        #: program order, so flow keys never depend on global dispatch order
        self._pair_seq: dict[tuple[str, str], int] = {}
        # flow counters
        self.msgs_sent = 0
        self.msgs_delivered = 0
        self.msgs_failed = 0
        self.chunks_forwarded = 0
        self.chunks_dropped = 0
        self.chunks_rerouted = 0
        self.chunks_retried = 0
        #: resilience layer attachment (set by FabricResilience.attach);
        #: None = losses are fatal, exactly the pre-resilience behavior
        self.resilience = None
        #: crash-stopped hosts (fed by the MPI layer's rank-kill axis)
        self._dead_hosts: set[str] = set()
        self._dead_rank_of: dict[str, int] = {}
        self._death_at: dict[str, int] = {}
        #: aggregate simulated CPU/DMA ticks spent in the fabric data plane
        self.cpu_ticks = {"fabric_send": 0, "fabric_rx": 0, "fabric_dma": 0}
        #: delivery/failure callback installed by the MPI layer
        self.on_complete: Optional[Callable[[_Message], None]] = None
        m = self.metrics
        m.counter("fabric", "fabric_msgs_sent", lambda: self.msgs_sent)
        m.counter("fabric", "fabric_msgs_delivered", lambda: self.msgs_delivered)
        m.counter("fabric", "fabric_msgs_failed", lambda: self.msgs_failed)
        m.counter("fabric", "fabric_chunks_forwarded", lambda: self.chunks_forwarded)
        m.counter("fabric", "fabric_chunks_dropped", lambda: self.chunks_dropped)
        m.counter("fabric", "fabric_chunks_rerouted", lambda: self.chunks_rerouted)
        m.counter("fabric", "fabric_chunks_retried", lambda: self.chunks_retried)
        self.sim.add_teardown_check(self._check_quiesced)

    @staticmethod
    def _lkey(a: str, b: str) -> tuple[str, str]:
        return (a, b) if a < b else (b, a)

    def _link(self, a: str, b: str) -> LinkSpec:
        return self._links[self._lkey(a, b)]

    # -- lazy port construction -------------------------------------------

    def _wire_service(self, bw: float) -> Callable[[_Chunk], int]:
        wire_bytes = self.cost.wire_bytes

        def service(chunk: _Chunk) -> int:
            return transfer_time(wire_bytes(chunk.size), bw)

        return service

    def _limit_ns(self, bw: float) -> Optional[int]:
        if self.egress_limit_cells is None:
            return None
        cell_ticks = transfer_time(self.cost.wire_bytes(self.cost.cell), bw)
        return self.egress_limit_cells * cell_ticks

    def host_tx_port(self, host: str) -> FabricPort:
        """The host NIC egress serializer (access link, or the pair wire)."""
        port = self._tx_ports.get(host)
        if port is None:
            peer = self._direct.get(host) or self.routes.edge_of[host]
            link = self._link(host, peer)
            delay = link.latency + self._fwd_latency.get(peer, 0)
            port = FabricPort(self, f"{host}:tx", None,
                              self._wire_service(link.bw), self._forward,
                              delay, self._limit_ns(link.bw))
            port.register_metrics(self.metrics)
            self._tx_ports[host] = port
        return port

    def switch_port(self, switch: str, peer: str) -> FabricPort:
        """The egress port of ``switch`` toward ``peer`` (switch or host)."""
        key = (switch, peer)
        port = self._sw_ports.get(key)
        if port is None:
            link = self._link(switch, peer)
            delay = link.latency + self._fwd_latency.get(peer, 0)
            port = FabricPort(self, f"{switch}:{peer}", switch,
                              self._wire_service(link.bw), self._forward,
                              delay, self._limit_ns(link.bw))
            port.register_metrics(self.metrics)
            self._sw_ports[key] = port
        return port

    def rx_cpu_port(self, host: str) -> FabricPort:
        """The receiver's BH + copy (or submit/poll) CPU serializer."""
        port = self._rx_cpu_ports.get(host)
        if port is None:
            cost = self.cost
            handler = (self._after_rx_cpu if cost.dma_bw
                       else self._chunk_delivered)
            port = FabricPort(self, f"{host}:rx", None,
                              lambda c: cost.rx_cpu(c.size), handler, 0)
            port.register_metrics(self.metrics)
            self._rx_cpu_ports[host] = port
        return port

    def rx_dma_port(self, host: str) -> FabricPort:
        """The receiver's I/OAT engine serializer (offloaded copies)."""
        port = self._rx_dma_ports.get(host)
        if port is None:
            cost = self.cost
            port = FabricPort(self, f"{host}:dma", None,
                              lambda c: cost.rx_dma(c.size),
                              self._chunk_delivered, 0)
            port.register_metrics(self.metrics)
            self._rx_dma_ports[host] = port
        return port

    def ports(self) -> list[FabricPort]:
        """Every port built so far, in canonical name order."""
        out = (list(self._tx_ports.values()) + list(self._sw_ports.values())
               + list(self._rx_cpu_ports.values())
               + list(self._rx_dma_ports.values()))
        out.sort(key=lambda p: p.name)
        return out

    # -- sending -----------------------------------------------------------

    def send(self, src: str, dst: str, tag: int, nbytes: int) -> _Message:
        """Start a message; returns the transfer handle.

        The caller is a simulation process (the MPI layer charges the
        sender CPU before calling).  Completion/failure is reported through
        :attr:`on_complete`; the handle's ``error``/``t_done`` fields carry
        the outcome.
        """
        seq = self._pair_seq.get((src, dst), 0)
        self._pair_seq[(src, dst)] = seq + 1
        now = self.sim.now
        if src == dst:
            path: Optional[tuple] = ()
        elif self._direct.get(src) == dst:
            # switchless pair: the tx port's wire IS the whole path
            path = ()
        else:
            src_edge = self.routes.edge_of[src]
            dst_edge = self.routes.edge_of[dst]
            path = self.routes.path(src_edge, dst_edge,
                                    f"{src}>{dst}/{tag}/{seq}")
        msg = _Message(src, dst, tag, nbytes, seq, path or (), now)
        self.msgs_sent += 1
        sizes = self.cost.chunk_sizes(nbytes)
        msg.n_chunks = len(sizes)
        msg.rx_remaining = len(sizes)
        msg.tx_remaining = len(sizes)
        self.cpu_ticks["fabric_send"] += self.cost.send_cpu(nbytes)
        if path is None:
            self._fail(msg, FabricPartitioned(src, dst, tag,
                                              where=self.routes.edge_of[src],
                                              detail="no live path at send"))
            return msg
        if src == dst:
            msg.tx_remaining = 0
            rx = self.rx_cpu_port(dst)
            for i, size in enumerate(sizes):
                rx.enqueue(_Chunk(msg, size, i))
            return msg
        tx = self.host_tx_port(src)
        for i, size in enumerate(sizes):
            tx.enqueue(_Chunk(msg, size, i))
        return msg

    # -- chunk pipeline ----------------------------------------------------

    def _forward(self, chunk: _Chunk) -> None:
        """Arrival at the next node on the walk (scheduled by a port)."""
        msg = chunk.msg
        if msg.failed:
            return
        if self._dead_hosts and (msg.src in self._dead_hosts
                                 or msg.dst in self._dead_hosts):
            self._crash_fail(msg, "wire")
            return
        if not chunk.txed:
            # first arrival off the source NIC: the send buffer is free
            chunk.txed = True
            msg.tx_remaining -= 1
            if msg.tx_remaining == 0 and msg.on_tx is not None:
                msg.on_tx()
        path = chunk.path
        if chunk.hop >= len(path):
            self.rx_cpu_port(msg.dst).enqueue(chunk)
            return
        here = path[chunk.hop]
        nxt = path[chunk.hop + 1] if chunk.hop + 1 < len(path) else msg.dst
        chunk.hop += 1
        self.chunks_forwarded += 1
        self.switch_port(here, nxt).enqueue(chunk)

    def _after_rx_cpu(self, chunk: _Chunk) -> None:
        if chunk.msg.failed:
            return
        self.cpu_ticks["fabric_rx"] += self.cost.rx_cpu(chunk.size)
        self.rx_dma_port(chunk.msg.dst).enqueue(chunk)

    def _chunk_delivered(self, chunk: _Chunk) -> None:
        msg = chunk.msg
        if msg.failed:
            return
        if self.cost.dma_bw:
            self.cpu_ticks["fabric_dma"] += self.cost.rx_dma(chunk.size)
        else:
            self.cpu_ticks["fabric_rx"] += self.cost.rx_cpu(chunk.size)
        msg.rx_remaining -= 1
        if msg.rx_remaining == 0:
            msg.t_done = self.sim.now
            self.msgs_delivered += 1
            if self.on_complete is not None:
                self.on_complete(msg)

    # -- failure and rerouting ---------------------------------------------

    def _drop(self, chunk: _Chunk, where: str) -> None:
        self.chunks_dropped += 1
        msg = chunk.msg
        if not msg.failed:
            self._fail(msg, DeliveryFailed(
                msg.dst, retries=0,
                detail=f"fabric chunk {chunk.idx} dropped at {where}"))

    def _reroute(self, chunk: _Chunk, at_switch: Optional[str],
                 port_name: str) -> None:
        """Detour a chunk stranded on a dead port, or fail its message."""
        msg = chunk.msg
        if msg.failed:
            return
        if at_switch is None:
            # a host-owned stage died: no detour exists for an access link
            self._fail(msg, FabricPartitioned(msg.src, msg.dst, msg.tag,
                                              where=port_name,
                                              detail="access link down"))
            return
        dst_edge = self.routes.edge_of[msg.dst]
        # A fresh ECMP draw per routing epoch: the detour is a function of
        # the flow key and the live-link set, never of dispatch order.
        flow = f"{msg.flow}/r{self.routes.version}/c{chunk.idx}"
        path = self.routes.path(at_switch, dst_edge, flow)
        if path is None:
            self._fail(msg, FabricPartitioned(msg.src, msg.dst, msg.tag,
                                              where=at_switch,
                                              detail="no detour after link kill"))
            return
        self.chunks_rerouted += 1
        chunk.path = path
        chunk.hop = 0
        self._forward(chunk)

    def _fail(self, msg: _Message, error: Exception) -> None:
        if msg.failed:
            return
        msg.error = error
        msg.t_done = self.sim.now
        self.msgs_failed += 1
        if self.on_complete is not None:
            self.on_complete(msg)

    def _crash_fail(self, msg: _Message, where: str) -> None:
        """Fail an in-flight message touching a crash-stopped host."""
        host = msg.dst if msg.dst in self._dead_hosts else msg.src
        self._fail(msg, RankDead(
            self._dead_rank_of.get(host, -1), host=host,
            at=self._death_at.get(host, self.sim.now),
            detail=f"in-flight chunk drained at {where}"))

    def _chunk_lost(self, chunk: _Chunk, port: FabricPort) -> None:
        """A fault hook ate a chunk at ``port``.

        Without a resilience layer the loss is fatal — same as a queue
        overflow, there is no retransmit layer to hide behind.  With one
        attached, the chunk retries: host-owned ports re-serialize (the
        link-level retransmit model), switch ports restart the walk with a
        retry-salted ECMP draw so a gray link sheds load — up to the
        resilience retry cap, then the loss is fatal after all.  Each retry
        is a fresh arbiter event, so a 100%-lossy link burns its cap in a
        bounded number of events and can never livelock.
        """
        res = self.resilience
        if res is None or chunk.retries >= res.params.max_chunk_retries:
            self._drop(chunk, port.name)
            return
        chunk.retries += 1
        self.chunks_retried += 1
        if port.owner is None:
            port.enqueue(chunk)
            return
        msg = chunk.msg
        dst_edge = self.routes.edge_of[msg.dst]
        flow = (f"{msg.flow}/r{self.routes.version}"
                f"/c{chunk.idx}/t{chunk.retries}")
        path = self.routes.path(port.owner, dst_edge, flow)
        if path is None:
            self._fail(msg, FabricPartitioned(
                msg.src, msg.dst, msg.tag, where=port.owner,
                detail="no path for lossy retry"))
            return
        self.chunks_rerouted += 1
        chunk.path = path
        chunk.hop = 0
        self._forward(chunk)

    # -- fault surface -------------------------------------------------------

    def kill_link(self, name: str, at: Optional[int] = None) -> None:
        """Cut the named link (``"a~b"``), now or at absolute time ``at``."""
        link = self.spec.link_named(name)
        if at is not None and at > self.sim.now:
            self.sim.call_at(at, self._kill_link_now, link)
        else:
            self._kill_link_now(link)

    def _kill_link_now(self, link: LinkSpec) -> None:
        a, b = link.a, link.b
        trunk = a not in self._is_host and b not in self._is_host
        if trunk:
            self.routes.kill_link(a, b)
        for port in self._ports_of_link(a, b):
            port.alive = False
            if port.pending and port._arb_at <= self.sim.now:
                port._arb_at = self.sim.now + 1
                self.sim.call_at(port._arb_at, port._arbitrate)

    def revive_link(self, name: str, at: Optional[int] = None) -> None:
        link = self.spec.link_named(name)
        if at is not None and at > self.sim.now:
            self.sim.call_at(at, self._revive_link_now, link)
        else:
            self._revive_link_now(link)

    def _revive_link_now(self, link: LinkSpec) -> None:
        a, b = link.a, link.b
        if a not in self._is_host and b not in self._is_host:
            self.routes.revive_link(a, b)
        for port in self._ports_of_link(a, b):
            port.alive = True

    def degrade_link(self, name: str, bw_factor: float = 0.25,
                     extra_latency: int = 0, at: Optional[int] = None,
                     until: Optional[int] = None) -> None:
        """Gray-degrade the named link: scale its serialization time by
        ``1/bw_factor`` and add ``extra_latency`` per hop, on both
        directions, from ``at`` until ``until`` (None = rest of run).

        Unlike a kill this changes no routing state — the link stays live
        and forwarding; only the health layer can decide to route around
        it.  When idle the degrade is pure state (no extra events), which
        is what keeps the resilience-idle event counts bit-identical.
        """
        link = self.spec.link_named(name)
        scale = 1.0 / bw_factor
        if at is not None and at > self.sim.now:
            self.sim.call_at(at, self._set_link_degrade, link, scale,
                             extra_latency)
        else:
            self._set_link_degrade(link, scale, extra_latency)
        if until is not None:
            self.sim.call_at(until, self._set_link_degrade, link, 1.0, 0)

    def _set_link_degrade(self, link: LinkSpec, scale: float,
                          extra: int) -> None:
        for port in self._ports_of_link(link.a, link.b):
            port.service_scale = scale
            port.extra_delay = extra

    def ports_of_link(self, name: str) -> list[FabricPort]:
        """Both directions' egress ports of the named link.

        Public so the fault injectors can hang lossy hooks here and the
        health estimator can sample per-direction counters.
        """
        link = self.spec.link_named(name)
        return self._ports_of_link(link.a, link.b)

    def mark_host_dead(self, host: str, rank: int) -> None:
        """Crash-stop a host: every in-flight chunk touching it fails with
        :class:`RankDead` at its next port event, draining the queues
        without ever livelocking (each pending chunk already has an
        arbiter or handler event scheduled)."""
        self._dead_hosts.add(host)
        self._dead_rank_of[host] = rank
        self._death_at[host] = self.sim.now

    def _ports_of_link(self, a: str, b: str) -> list[FabricPort]:
        """Both directions' egress ports of one cable (built if absent)."""
        out = []
        for near, far in ((a, b), (b, a)):
            if near in self._is_host:
                out.append(self.host_tx_port(near))
            else:
                out.append(self.switch_port(near, far))
        return out

    # -- teardown ------------------------------------------------------------

    def _check_quiesced(self) -> None:
        """Sanitizer: no stranded chunks or half-finished messages."""
        stuck = sorted(p.name for p in self.ports()
                       if any(not e[2].msg.failed for e in p.pending))
        if stuck:
            raise AssertionError(
                f"fabric teardown: chunks still queued on ports {stuck}")
        open_msgs = self.msgs_sent - self.msgs_delivered - self.msgs_failed
        if open_msgs:
            raise AssertionError(
                f"fabric teardown: {open_msgs} message(s) neither delivered "
                "nor failed")
