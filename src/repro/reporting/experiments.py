"""Experiment registry: one runner per paper figure/table.

Each ``fig*`` function rebuilds the workload of the corresponding figure in
the paper's evaluation section and returns a rendered-able result object
(:class:`~repro.reporting.figures.Figure` or
:class:`~repro.reporting.table.Table`).  The ``omx-repro`` CLI (see
``main``) runs any of them; the pytest-benchmark files under
``benchmarks/`` wrap the same runners.

``quick=True`` trims sizes/iterations for CI-speed runs; the shapes remain.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Optional

from repro.cluster.testbed import build_single_node, build_testbed
from repro.imb import run_imb
from repro.ioat.descriptor import CopyDescriptor
from repro.memory.buffers import AddressSpace
from repro.mpi import create_world
from repro.params import clovertown_5000x
from repro.reporting.figures import Figure
from repro.reporting.table import Table
from repro.units import GiB, KiB, MiB, PAGE_SIZE, SEC, throughput_mib_s
from repro.workloads import run_nas_is, run_shm_pingpong, run_stream_usage

# ---------------------------------------------------------------------------
# shared sweeps
# ---------------------------------------------------------------------------

SWEEP_SIZES = [16, 64, 256, 1 * KiB, 4 * KiB, 16 * KiB, 32 * KiB, 64 * KiB,
               128 * KiB, 256 * KiB, 512 * KiB, 1 * MiB, 4 * MiB]
QUICK_SIZES = [16, 4 * KiB, 64 * KiB, 256 * KiB, 1 * MiB, 4 * MiB]


def _pingpong_mib_s(stack: str, size: int, iters: int, **omx) -> float:
    tb = build_testbed(stacks=stack, **omx)
    comm = create_world(tb, ppn=1)
    res = run_imb(tb, comm, "PingPong", size, iterations=iters, warmup=2)
    return res.mib_s


# ---------------------------------------------------------------------------
# Figure 3 — expected improvement when removing the BH receive copy
# ---------------------------------------------------------------------------

def fig3(quick: bool = False) -> Figure:
    """MX vs Open-MX vs Open-MX with the BH copy ignored (prediction)."""
    sizes = QUICK_SIZES if quick else SWEEP_SIZES
    iters = 3 if quick else 5
    fig = Figure("FIG3", "Expected Open-MX improvement without the BH receive copy",
                 "message size", "throughput (MiB/s)")
    configs = [
        ("MX", dict(stack="mx")),
        ("Open-MX ignoring BH receive copy", dict(stack="omx", ignore_bh_copy=True)),
        ("Open-MX", dict(stack="omx")),
    ]
    for label, cfg in configs:
        s = fig.new_series(label)
        stack = cfg.pop("stack")
        for size in sizes:
            s.add(size, _pingpong_mib_s(stack, size, iters, **cfg))
    return fig


# ---------------------------------------------------------------------------
# Figure 7 — pipelined memcpy vs I/OAT copy for several chunk sizes
# ---------------------------------------------------------------------------

def fig7(quick: bool = False) -> Figure:
    """Raw copy throughput when streams are split into fixed chunks."""
    copy_sizes = [256, 1 * KiB, 4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB, 1 * MiB]
    if quick:
        copy_sizes = [1 * KiB, 16 * KiB, 256 * KiB, 1 * MiB]
    chunk_sizes = [4 * KiB, 1 * KiB, 256]
    fig = Figure("FIG7", "Pipelined memcpy vs I/OAT copy by chunk size",
                 "copy size", "throughput (MiB/s)")

    for chunk in chunk_sizes:
        s = fig.new_series(f"Memcpy - {_sz(chunk)} chunks")
        for size in copy_sizes:
            if size < chunk:
                continue
            s.add(size, _memcpy_chunked_mib_s(size, chunk))
    for chunk in chunk_sizes:
        s = fig.new_series(f"I/OAT Copy - {_sz(chunk)} chunks")
        for size in copy_sizes:
            if size < chunk:
                continue
            s.add(size, _ioat_chunked_mib_s(size, chunk))
    return fig


def _sz(n: int) -> str:
    return f"{n >> 10}kB" if n >= 1024 else f"{n}B"


def _memcpy_chunked_mib_s(size: int, chunk: int) -> float:
    """Uncached pipelined memcpy, chunked (fresh buffers: cache-cold)."""
    tb = build_single_node()
    host = tb.hosts[0]
    core = host.user_core(0)
    space = AddressSpace("fig7")
    src, dst = space.alloc(size), space.alloc(size)
    done = tb.sim.event()

    def work():
        yield core.res.request()
        t0 = tb.sim.now
        yield from host.copier.memcpy(core, src, 0, dst, 0, size, "bench", chunk=chunk)
        core.res.release()
        done.succeed(tb.sim.now - t0)

    tb.sim.process(work())
    elapsed = tb.sim.run_until(done)
    return throughput_mib_s(size, elapsed)


def _ioat_chunked_mib_s(size: int, chunk: int) -> float:
    """I/OAT copy split into fixed chunks, submission pipelined with the
    engine (the Fig. 7 measurement loop)."""
    tb = build_single_node()
    host = tb.hosts[0]
    core = host.user_core(0)
    space = AddressSpace("fig7io")
    src, dst = space.alloc(size), space.alloc(size)
    ch = host.ioat_engine[0]
    done = tb.sim.event()

    def work():
        yield core.res.request()
        t0 = tb.sim.now
        last = -1
        pos = 0
        while pos < size:
            n = min(chunk, size - pos)
            while ch.ring.free_slots == 0:
                # Ring full: wait for the hardware and reap completed
                # descriptors (what the real driver's cleanup does).
                yield ch.wait_completion().wait()
                ch.reap()
            yield from core.busy(host.params.ioat.submit_cost, "bench")
            last = ch.submit(CopyDescriptor(src, pos, dst, pos, n))
            pos += n
        while not ch.is_complete(last):
            yield ch.wait_completion().wait()
        ch.reap()
        core.res.release()
        done.succeed(tb.sim.now - t0)

    tb.sim.daemon(work(), name="fig7-ioat")
    elapsed = tb.sim.run_until(done)
    return throughput_mib_s(size, elapsed)


# ---------------------------------------------------------------------------
# §IV-A scalars — submission cost, break-even sizes
# ---------------------------------------------------------------------------

def micro(quick: bool = False) -> Table:
    """The micro-benchmark scalars quoted in §IV-A."""
    plat = clovertown_5000x()
    hp = plat.host
    t = Table("MICRO: §IV-A scalar measurements",
              ["quantity", "paper", "model"])
    t.add_row("I/OAT submission cost (ns)", "~350", hp.ioat.submit_cost)
    t.add_row("completion poll cost (ns)", "negligible", hp.ioat.poll_cost)
    t.add_row("memcpy rate, uncached (GiB/s)", "~1.6",
              f"{hp.memcpy.uncached_bw / GiB:.2f}")
    t.add_row("memcpy rate, cached (GiB/s)", "up to 12 (sustained ~6)",
              f"{hp.cache.cached_copy_bw / GiB:.2f}")
    # break-even: memcpy duration equals the submission cost
    be_uncached = int(hp.ioat.submit_cost * hp.memcpy.uncached_bw / SEC)
    be_cached = int(hp.ioat.submit_cost * hp.cache.cached_copy_bw / SEC)
    t.add_row("break-even size, uncached (B)", "~600", be_uncached)
    t.add_row("break-even size, cached (B)", "~2048", be_cached)
    t.add_row("I/OAT rate @4kB chunks (GiB/s)", "~2.4",
              f"{_ioat_chunked_mib_s(1 * MiB, 4 * KiB) / 1024:.2f}")
    t.add_row("memcpy @4kB chunks (GiB/s)", "~1.5",
              f"{_memcpy_chunked_mib_s(1 * MiB, 4 * KiB) / 1024:.2f}")
    return t


# ---------------------------------------------------------------------------
# Figure 8 — ping-pong with I/OAT copy offload in the BH
# ---------------------------------------------------------------------------

def fig8(quick: bool = False) -> Figure:
    sizes = QUICK_SIZES if quick else SWEEP_SIZES
    iters = 3 if quick else 5
    fig = Figure("FIG8", "Ping-pong with I/OAT asynchronous copy offload",
                 "message size", "throughput (MiB/s)")
    configs = [
        ("MX", "mx", {}),
        ("Open-MX ignoring BH receive copy", "omx", dict(ignore_bh_copy=True)),
        ("Open-MX with DMA copy in BH receive", "omx", dict(ioat_enabled=True)),
        ("Open-MX", "omx", {}),
    ]
    for label, stack, cfg in configs:
        s = fig.new_series(label)
        for size in sizes:
            s.add(size, _pingpong_mib_s(stack, size, iters, **cfg))
    return fig


# ---------------------------------------------------------------------------
# Figure 9 — receive-side CPU usage, memcpy vs overlapped DMA
# ---------------------------------------------------------------------------

FIG9_SIZES = [64 * KiB, 256 * KiB, 1 * MiB, 4 * MiB, 16 * MiB]


def fig9(quick: bool = False) -> Table:
    sizes = FIG9_SIZES[:-1] if quick else FIG9_SIZES
    iters = 6 if quick else 10
    t = Table(
        "FIG9: receiver CPU usage (% of one core) while streaming large messages",
        ["size", "mode", "user-lib %", "driver %", "BH recv %", "total %", "MiB/s"],
    )
    for ioat in (False, True):
        for size in sizes:
            # Registration cache off: the paper's Fig. 9 driver band is the
            # per-transfer memory pinning inside the system call ("driver
            # time is higher because it involves memory pinning during a
            # system call prior to the data transfer").
            tb = build_testbed(ioat_enabled=ioat, regcache_enabled=False)
            u = run_stream_usage(tb, size, iterations=iters)
            t.add_row(
                _sz_mib(size), "DMA" if ioat else "Memcpy",
                u.user_pct, u.driver_pct, u.bh_pct, u.total_pct,
                u.throughput_mib_s,
            )
    return t


def _sz_mib(n: int) -> str:
    return f"{n >> 20}MiB" if n >= MiB else f"{n >> 10}KiB"


# ---------------------------------------------------------------------------
# Figure 10 — shared-memory one-copy communication
# ---------------------------------------------------------------------------

def fig10(quick: bool = False) -> Figure:
    sizes = [16, 256, 4 * KiB, 64 * KiB, 1 * MiB, 16 * MiB] if quick else [
        16, 256, 1 * KiB, 4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB,
        1 * MiB, 4 * MiB, 16 * MiB,
    ]
    iters = 4 if quick else 8
    fig = Figure("FIG10", "Open-MX shared-memory one-copy ping-pong",
                 "message size", "throughput (MiB/s)")
    configs = [
        ("Memcpy on the same dual-core subchip", "same_die", {}),
        ("Memcpy between different processor sockets", "cross_socket", {}),
        ("I/OAT offloaded synchronous copy", "same_die", dict(ioat_enabled=True)),
    ]
    for label, placement, cfg in configs:
        s = fig.new_series(label)
        for size in sizes:
            tb = build_single_node(**cfg)
            s.add(size, run_shm_pingpong(tb, size, placement, iterations=iters))
    return fig


# ---------------------------------------------------------------------------
# Figure 11 — IMB PingPong with/without I/OAT and registration cache
# ---------------------------------------------------------------------------

def fig11(quick: bool = False) -> Figure:
    sizes = (QUICK_SIZES + [16 * MiB]) if quick else (SWEEP_SIZES + [16 * MiB])
    iters = 3 if quick else 5
    fig = Figure("FIG11", "IMB PingPong: I/OAT and registration cache",
                 "message size", "throughput (MiB/s)")
    configs = [
        ("MX", "mx", {}),
        ("Open-MX I/OAT", "omx", dict(ioat_enabled=True)),
        ("Open-MX", "omx", {}),
        ("Open-MX I/OAT w/o regcache", "omx",
         dict(ioat_enabled=True, regcache_enabled=False)),
        ("Open-MX w/o regcache", "omx", dict(regcache_enabled=False)),
    ]
    for label, stack, cfg in configs:
        s = fig.new_series(label)
        for size in sizes:
            s.add(size, _pingpong_mib_s(stack, size, iters, **cfg))
    return fig


# ---------------------------------------------------------------------------
# Figure 12 — full IMB suite normalized to MXoE
# ---------------------------------------------------------------------------

FIG12_TESTS = ["PingPong", "PingPing", "SendRecv", "Exchange", "Allreduce",
               "Reduce", "Red.Scat.", "Allgather", "Allgatherv", "Alltoall",
               "Bcast"]


def fig12(quick: bool = False, sizes: Optional[list[int]] = None) -> Table:
    sizes = sizes if sizes is not None else ([128 * KiB] if quick else [128 * KiB, 4 * MiB])
    tests = FIG12_TESTS[:4] + ["Allreduce", "Alltoall", "Bcast"] if quick else FIG12_TESTS
    iters = 2 if quick else 4
    t = Table(
        "FIG12: IMB performance as percentage of MXoE (higher is better)",
        ["test", "size", "ppn", "Open-MX %", "Open-MX + I/OAT %"],
    )

    def time_of(stack: str, test: str, size: int, ppn: int, **omx) -> float:
        tb = build_testbed(stacks=stack, **omx)
        comm = create_world(tb, ppn=ppn)
        return run_imb(tb, comm, test, size, iterations=iters, warmup=1).t_avg_us

    for size in sizes:
        for ppn in (1, 2):
            for test in tests:
                base = time_of("mx", test, size, ppn)
                plain = time_of("omx", test, size, ppn)
                ioat = time_of("omx", test, size, ppn, ioat_enabled=True)
                t.add_row(test, _sz_mib(size), ppn,
                          100.0 * base / plain, 100.0 * base / ioat)
    return t


# ---------------------------------------------------------------------------
# NAS IS (§IV-D)
# ---------------------------------------------------------------------------

def nas(quick: bool = False) -> Table:
    # 2^18 keys/rank -> ~1 MiB of keys, ~256 KiB alltoallv blocks: the
    # large-message regime the paper credits for IS's 10 % gain.
    keys = 1 << (16 if quick else 18)
    iters = 2 if quick else 3
    t = Table("NAS IS kernel (2 nodes x 2 ppn)",
              ["stack", "total ms", "comm ms", "sorted", "vs Open-MX"])
    results = {}
    for label, stack, cfg in [
        ("MXoE", "mx", {}),
        ("Open-MX", "omx", {}),
        ("Open-MX + I/OAT", "omx", dict(ioat_enabled=True)),
    ]:
        tb = build_testbed(stacks=stack, **cfg)
        comm = create_world(tb, ppn=2)
        results[label] = run_nas_is(tb, comm, keys_per_rank=keys, iterations=iters)
    base = results["Open-MX"].total_time_us
    for label, r in results.items():
        speedup = 100.0 * (base / r.total_time_us - 1.0)
        t.add_row(label, r.total_time_us / 1000.0, r.comm_time_us / 1000.0,
                  "yes" if r.sorted_ok else "NO", f"{speedup:+.1f}%")
    return t


# ---------------------------------------------------------------------------
# registry + CLI
# ---------------------------------------------------------------------------

EXPERIMENTS: dict[str, Callable] = {
    "fig3": fig3,
    "fig7": fig7,
    "micro": micro,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "nas": nas,
}


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="omx-repro",
        description="Regenerate the figures of the Open-MX I/OAT paper "
                    "(Goglin, Cluster 2008) from the simulator.",
    )
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"],
                        help="which figure/table to regenerate")
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweeps / fewer iterations")
    parser.add_argument("--csv", metavar="FILE",
                        help="also write the data as CSV")
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        result = EXPERIMENTS[name](quick=args.quick)
        print(result.render())
        print()
        if args.csv:
            path = args.csv if len(names) == 1 else f"{name}_{args.csv}"
            with open(path, "w") as fh:
                fh.write(result.to_csv())
            print(f"[wrote {path}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
