"""Store-and-forward Ethernet switches for multi-node testbeds.

The paper's measurements are back-to-back ("two Myri-10G NICs connected
without any switch"), but its motivating deployment — PVFS2 transport
between BlueGene/P compute and I/O nodes — is a switched fabric.  This
switch enables N-node testbeds: each port is a full-duplex link to one
NIC *or to another switch* (a trunk), frames are forwarded after a
store-and-forward latency with per-output-port serialization (so
congestion on a hot receiver emerges naturally) and a bounded per-port
egress queue that drops when full (tail drop), exercising the stacks'
retransmission machinery.

Multi-switch forwarding (:mod:`repro.fabric` testbeds) uses **static
routes** installed at build time: per destination MAC, the set of
candidate egress ports, one of which is picked by a seeded crc32 hash of
the (src, dst) MAC pair — deterministic ECMP, byte-identical across runs
and platforms (never Python's ``hash``), and per-pair stable so a flow's
frames never reorder across trunks.  With static routes installed the
learning path is bypassed entirely: flooding over a fat tree's redundant
trunks would loop, and first-arrival MAC learning would leak dispatch
order into the forwarding state.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Generator, Optional, Sequence

from repro.ethernet.frame import EthernetFrame
from repro.ethernet.link import Link
from repro.simkernel.resources import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.ethernet.nic import Nic
    from repro.obs.registry import MetricsRegistry
    from repro.simkernel.scheduler import Simulator


class _SwitchPort:
    """Endpoint object plugged into one side of a Link, posing as a NIC."""

    def __init__(self, switch: "EthernetSwitch", index: int):
        self.switch = switch
        self.index = index
        self._egress = None  # filled by Link.attach

    def on_frame(self, frame: EthernetFrame) -> None:
        self.switch._ingress(self.index, frame)


class EthernetSwitch:
    """N-port cut-through-ish switch with per-port egress queues."""

    def __init__(self, sim: "Simulator", n_ports: int, link_bw: float,
                 propagation_delay: int, forwarding_latency: int = 500,
                 egress_queue_frames: int = 128, name: str = "sw0",
                 ecmp_seed: str = "fabric"):
        self.sim = sim
        self.name = name
        self.ecmp_seed = ecmp_seed
        self.link_bw = link_bw
        self.propagation_delay = propagation_delay
        self.forwarding_latency = forwarding_latency
        self.ports = [_SwitchPort(self, i) for i in range(n_ports)]
        self.links: list[Optional[Link]] = [None] * n_ports
        #: the egress direction of each port's cable (NIC ports transmit on
        #: the link's b->a half; a trunk's near side transmits on a->b)
        self._tx_dir = [None] * n_ports
        self._mac_table: dict[int, int] = {}
        #: static routes: dst MAC -> candidate egress ports (ECMP set).
        #: Non-empty => multi-switch mode: learning and flooding disabled.
        self._routes: dict[int, tuple[int, ...]] = {}
        self._egress_q: list[Store] = [
            Store(sim, capacity=egress_queue_frames, name=f"sw-eg{i}")
            for i in range(n_ports)
        ]
        for i in range(n_ports):
            sim.daemon(self._egress_daemon(i), name=f"switch-eg{i}")
        #: fault hook: ``drop_egress(port, frame, now)`` forces a tail drop
        #: on the named egress port, as if its queue had overflowed
        self.fault = None
        # statistics (aggregate and per egress port)
        self.forwarded = 0
        self.dropped = 0
        self.flooded = 0
        self.port_forwarded = [0] * n_ports
        self.port_dropped = [0] * n_ports
        self.port_peak_queue = [0] * n_ports

    # -- wiring ---------------------------------------------------------------

    def attach_nic(self, port: int, nic: "Nic") -> None:
        """Cable ``nic`` to switch ``port``."""
        if self.links[port] is not None:
            raise ValueError(f"port {port} already in use")
        link = Link(self.sim, self.link_bw, self.propagation_delay,
                    name=f"sw-p{port}")
        link.attach(nic, self.ports[port])  # type: ignore[arg-type]
        self.links[port] = link
        self._tx_dir[port] = link.b_to_a
        self._mac_table[nic.mac] = port

    def attach_trunk(self, port: int, peer: "EthernetSwitch", peer_port: int,
                     bw: Optional[float] = None,
                     latency: Optional[int] = None) -> Link:
        """Cable switch ``port`` to ``peer_port`` of another switch.

        Returns the trunk :class:`~repro.ethernet.link.Link` (this switch
        is side *a*, the peer side *b*) so fault plans can target it.
        """
        if self.links[port] is not None:
            raise ValueError(f"port {port} already in use")
        if peer.links[peer_port] is not None:
            raise ValueError(f"peer port {peer_port} already in use")
        link = Link(self.sim,
                    self.link_bw if bw is None else bw,
                    self.propagation_delay if latency is None else latency,
                    name=f"trunk-{self.name}~{peer.name}")
        link.attach(self.ports[port],  # type: ignore[arg-type]
                    peer.ports[peer_port])  # type: ignore[arg-type]
        self.links[port] = link
        peer.links[peer_port] = link
        self._tx_dir[port] = link.a_to_b
        peer._tx_dir[peer_port] = link.b_to_a
        return link

    def add_route(self, dst_mac: int, out_ports: Sequence[int]) -> None:
        """Install the static ECMP port set for one destination MAC."""
        if not out_ports:
            raise ValueError(f"{self.name}: empty route for MAC {dst_mac}")
        self._routes[dst_mac] = tuple(sorted(out_ports))

    def _route_port(self, frame: EthernetFrame) -> Optional[int]:
        """Deterministic ECMP pick among the static candidates."""
        candidates = self._routes.get(frame.dst_mac)
        if candidates is None:
            return None
        if len(candidates) == 1:
            return candidates[0]
        key = (f"{self.ecmp_seed}|{frame.src_mac}>{frame.dst_mac}"
               f"|{self.name}")
        return candidates[zlib.crc32(key.encode()) % len(candidates)]

    # -- forwarding -------------------------------------------------------------

    def _ingress(self, in_port: int, frame: EthernetFrame) -> None:
        if self._routes:
            # Multi-switch mode: static routes only, no learning/flooding.
            out = self._route_port(frame)
            if out is None:
                self.dropped += 1
                return
            targets = [out]
        else:
            # Learn the source, look up the destination.
            self._mac_table.setdefault(frame.src_mac, in_port)
            out = self._mac_table.get(frame.dst_mac)
            if out is None:
                # Unknown destination: flood (rare; endpoints are pre-learned).
                self.flooded += 1
                targets = [p for p in range(len(self.ports))
                           if p != in_port and self.links[p] is not None]
            else:
                targets = [out]
        for port in targets:
            if self.fault is not None and self.fault.drop_egress(
                port, frame, self.sim.now
            ):
                self.dropped += 1
                self.port_dropped[port] += 1
                continue
            if not self._egress_q[port].try_put(frame):
                self.dropped += 1
                self.port_dropped[port] += 1
                continue
            depth = len(self._egress_q[port])
            if depth > self.port_peak_queue[port]:
                self.port_peak_queue[port] = depth

    def _egress_daemon(self, port: int) -> Generator:
        while True:
            frame = yield self._egress_q[port].get()
            yield self.forwarding_latency  # bare-int sleep (per frame)
            direction = self._tx_dir[port]
            if direction is None:
                continue
            yield from direction.transmit(frame)
            self.forwarded += 1
            self.port_forwarded[port] += 1

    # -- observation ------------------------------------------------------------

    def register_metrics(self, metrics: "MetricsRegistry") -> None:
        """Expose per-port egress counters in a metrics registry."""
        metrics.counter(self.name, f"sw_{self.name}_forwarded",
                        lambda: self.forwarded, "frames forwarded")
        metrics.counter(self.name, f"sw_{self.name}_dropped",
                        lambda: self.dropped, "frames tail-dropped")
        for i in range(len(self.ports)):
            metrics.counter(
                self.name, f"sw_{self.name}_p{i}_forwarded",
                lambda i=i: self.port_forwarded[i],
                "frames forwarded out this port")
            metrics.counter(
                self.name, f"sw_{self.name}_p{i}_dropped",
                lambda i=i: self.port_dropped[i],
                "frames dropped at this egress queue")
            metrics.gauge(
                self.name, f"sw_{self.name}_p{i}_peak_queue",
                lambda i=i: self.port_peak_queue[i],
                "worst egress queue occupancy (frames)")


def build_switched_testbed(n_nodes: int, platform=None, **omx_overrides):
    """An N-node Open-MX testbed around one switch.

    Thin wrapper over the fabric star spec: equivalent to compiling
    :func:`repro.fabric.spec.star_topology` with
    :func:`repro.fabric.build.build_fabric_testbed` (construction order —
    and therefore every event count — is identical to the historical
    inline factory).
    """
    from repro.fabric.build import build_fabric_testbed
    from repro.fabric.spec import star_topology
    from repro.params import clovertown_5000x

    if platform is None:
        platform = clovertown_5000x(**omx_overrides)
    elif omx_overrides:
        platform = platform.with_omx(**omx_overrides)
    return build_fabric_testbed(star_topology(n_nodes), platform=platform)
