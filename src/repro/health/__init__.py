"""repro.health: graceful degradation, peer liveness, backpressure.

PR 3 taught the stack to *survive* single faults (one fallback memcpy, one
NACK); this package adds memory: supervised state machines that detect
sustained failure, degrade deterministically, and recover (DESIGN.md §12).

* :mod:`repro.health.breaker` — per-channel I/OAT circuit breakers with
  half-open probe copies, aggregated per host by :class:`HostHealth`.
* :mod:`repro.health.liveness` — keepalive/deadline tracking per remote
  endpoint; sustained silence surfaces a typed ``PeerDead``.
* :mod:`repro.health.backpressure` — receiver busy-signal gating and the
  seeded exponential backoff policy senders apply to it.
"""

from repro.health.backpressure import BackoffPolicy, BusyGate
from repro.health.breaker import BreakerState, ChannelBreaker, HostHealth
from repro.health.liveness import PeerLivenessMonitor

__all__ = [
    "BackoffPolicy",
    "BreakerState",
    "BusyGate",
    "ChannelBreaker",
    "HostHealth",
    "PeerLivenessMonitor",
]
