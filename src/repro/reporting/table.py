"""Minimal ASCII table renderer for benchmark output."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


@dataclass
class Table:
    """Column-aligned text table with a title."""

    title: str
    columns: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([_fmt(c) for c in cells])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        head = " | ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        sep = "-+-".join("-" * w for w in widths)
        body = [
            " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
            for row in self.rows
        ]
        return "\n".join([f"== {self.title} ==", head, sep] + body)

    def to_csv(self) -> str:
        out = [",".join(self.columns)]
        out += [",".join(r) for r in self.rows]
        return "\n".join(out) + "\n"


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)
