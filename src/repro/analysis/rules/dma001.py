"""DMA001: DmaCookie from a submit is never passed to poll/cleanup.

I/OAT completions are only *observed* by polling (§VI: the engine has no
completion interrupt in this stack), so a cookie that is submitted and then
dropped means nobody will ever notice the copy finishing — the destination
buffer gets handed to the application before the data lands.  Any later use
of the cookie counts as tracking it (stored in a ``PendingCopy``, compared
against ``poll()``, passed to ``busy_wait``...); only a cookie that is
*never referenced again* is flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint import (
    Finding,
    ModuleSource,
    Rule,
    name_escapes,
    own_nodes,
    register_rule,
)

_SUBMIT_METHODS = ("submit", "submit_copy", "submit_copy_striped")


@register_rule
class DmaCookieLeakRule(Rule):
    code = "DMA001"
    summary = "DMA cookie from a submit is never polled, waited, or stored"

    def check(self, module: ModuleSource,
              project=None) -> Iterator[Finding]:
        for fn in module.functions():
            for node in own_nodes(fn):
                if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                    continue
                target = node.targets[0]
                call = node.value
                # submit_copy is a generator: `cookie = yield from api.submit_copy(...)`
                if isinstance(call, (ast.Await, ast.YieldFrom)):
                    call = call.value
                if not (
                    isinstance(target, ast.Name)
                    and isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)
                    and call.func.attr in _SUBMIT_METHODS
                ):
                    continue
                name = target.id
                if not name_escapes(fn, name, binding=node, any_use_releases=True):
                    yield module.finding(
                        self.code, node,
                        f"DMA cookie '{name}' from {call.func.attr}() is never "
                        f"polled, waited on, or stored in '{fn.name}'",
                    )
