"""One-shot events: the unit of synchronisation in the kernel.

An :class:`Event` starts *pending*; it is later *succeeded* with a value or
*failed* with an exception.  Callbacks registered on a pending event run when
it triggers; callbacks registered on an already-triggered event run
immediately at the current simulation time (same-tick semantics), which keeps
"check then wait" code free of lost-wakeup races.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.simkernel.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.scheduler import Simulator

Callback = Callable[["Event"], None]

_PENDING = object()


class Event:
    """A one-shot condition that processes can wait on.

    Parameters
    ----------
    sim:
        The owning simulator.
    name:
        Optional label used in traces and repr.
    """

    __slots__ = ("sim", "name", "_value", "_exc", "callbacks")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._value: object = _PENDING
        self._exc: Optional[BaseException] = None
        self.callbacks: Optional[list[Callback]] = []

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has succeeded or failed."""
        return self._value is not _PENDING or self._exc is not None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (triggered without an exception)."""
        return self.triggered and self._exc is None

    @property
    def value(self) -> object:
        """The success value.  Raises if the event failed or is pending."""
        if self._exc is not None:
            raise self._exc
        if self._value is _PENDING:
            raise SimulationError(f"event {self!r} has not triggered yet")
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure exception, or None."""
        return self._exc

    # -- triggering -------------------------------------------------------

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully, scheduling callbacks now."""
        # `self.triggered` inlined: succeed() runs once per timeout/grant.
        if self._value is not _PENDING or self._exc is not None:
            raise SimulationError(f"event {self!r} already triggered")
        self._value = value
        self.sim._dispatch(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception, scheduling callbacks now."""
        if self._value is not _PENDING or self._exc is not None:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exc = exc
        self.sim._dispatch(self)
        return self

    # -- waiting ----------------------------------------------------------

    def add_callback(self, cb: Callback) -> None:
        """Run ``cb(self)`` when the event triggers (immediately if it has)."""
        if self.callbacks is None:
            # Already dispatched: run at the current time via the scheduler
            # so ordering relative to other same-tick work stays FIFO.
            self.sim._push(self.sim.now, cb, (self,))
        else:
            self.callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending"
        if self.triggered:
            state = "failed" if self._exc is not None else "ok"
        label = self.name or self.__class__.__name__
        return f"<{label} {state} @{id(self):#x}>"


class Timeout(Event):
    """An event that succeeds ``delay`` ticks after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: object = None, name: str = ""):
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay}")
        # The name is left empty unless given: timeouts are the hottest event
        # kind, and __repr__ falls back to the class name + delay anyway.
        super().__init__(sim, name)
        self.delay = int(delay)
        sim._schedule_timeout(self, self.delay, value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "ok" if self.triggered else "pending"
        label = self.name or f"timeout({self.delay})"
        return f"<{label} {state} @{id(self):#x}>"


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    __slots__ = ("events", "_n_done")

    def __init__(self, sim: "Simulator", events: Iterable[Event], name: str):
        super().__init__(sim, name)
        self.events = tuple(events)
        self._n_done = 0
        if not self.events:
            self.succeed(self._result())
            return
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _result(self) -> object:
        raise NotImplementedError

    def _on_child(self, ev: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Succeeds when the first of ``events`` triggers.

    The value is the ``(event, value)`` pair of the first trigger.  A failing
    child fails the composite.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, "any_of")

    def _result(self) -> object:
        return None

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev.exception is not None:
            self.fail(ev.exception)
        else:
            self.succeed((ev, ev.value))


class AllOf(_Condition):
    """Succeeds when every one of ``events`` has triggered.

    The value is the list of child values in the original order.  The first
    failing child fails the composite.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, "all_of")

    def _result(self) -> object:
        return []

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev.exception is not None:
            self.fail(ev.exception)
            return
        self._n_done += 1
        if self._n_done == len(self.events):
            self.succeed([e.value for e in self.events])
