"""Ablation (§V): one DMA channel per message vs striping across all four.

The paper cites [22]: striping a single copy over multiple channels raises
raw copy throughput by up to 40 %, but Open-MX keeps one channel per
message, relying on concurrent messages to fill the channels.  This bench
quantifies both sides of that trade-off on the engine model.
"""

import pytest

from conftest import show
from repro.cluster.testbed import build_single_node
from repro.memory.buffers import AddressSpace
from repro.reporting.table import Table
from repro.units import MiB, throughput_mib_s


def _copy_once(striped: bool, size: int = 4 * MiB) -> float:
    tb = build_single_node()
    host = tb.hosts[0]
    core = host.user_core(0)
    space = AddressSpace("ablation")
    src, dst = space.alloc(size), space.alloc(size)
    done = tb.sim.event()

    def work():
        yield core.res.request()
        t0 = tb.sim.now
        if striped:
            cookies = yield from host.ioat.submit_copy_striped(
                core, src, 0, dst, 0, size, "bench"
            )
            for c in cookies:
                yield from host.ioat.busy_wait(core, c, "bench")
        else:
            cookie = yield from host.ioat.submit_copy(
                core, src, 0, dst, 0, size, "bench"
            )
            yield from host.ioat.busy_wait(core, cookie, "bench")
        core.res.release()
        done.succeed(tb.sim.now - t0)

    tb.sim.daemon(work(), name="ablation-copy")
    elapsed = tb.sim.run_until(done)
    return throughput_mib_s(size, elapsed)


def _concurrent_messages(striped: bool, n_msgs: int = 4, size: int = 1 * MiB) -> float:
    """Aggregate throughput with several outstanding messages."""
    tb = build_single_node()
    host = tb.hosts[0]
    space = AddressSpace("ablation-multi")
    pairs = [(space.alloc(size), space.alloc(size)) for _ in range(n_msgs)]
    t0 = tb.sim.now
    procs = []
    for i, (src, dst) in enumerate(pairs):
        core = host.user_core(i)

        def work(core=core, src=src, dst=dst):
            yield core.res.request()
            if striped:
                cookies = yield from host.ioat.submit_copy_striped(
                    core, src, 0, dst, 0, size, "bench"
                )
                for c in cookies:
                    yield from host.ioat.busy_wait(core, c, "bench")
            else:
                cookie = yield from host.ioat.submit_copy(
                    core, src, 0, dst, 0, size, "bench"
                )
                yield from host.ioat.busy_wait(core, cookie, "bench")
            core.res.release()

        procs.append(tb.sim.process(work(), name=f"msg{i}"))
    from repro.simkernel.event import AllOf

    tb.sim.run_until(AllOf(tb.sim, procs))
    return throughput_mib_s(n_msgs * size, tb.sim.now - t0)


@pytest.mark.benchmark(group="ablation-channels")
def test_channel_striping_tradeoff(once):
    def run():
        t = Table("ABLATION: DMA channel assignment policy",
                  ["scenario", "1 chan/msg (MiB/s)", "striped x4 (MiB/s)"])
        t.add_row("single message, 4 MiB",
                  _copy_once(striped=False), _copy_once(striped=True))
        t.add_row("4 concurrent messages, 1 MiB each",
                  _concurrent_messages(striped=False),
                  _concurrent_messages(striped=True))
        return t

    table = once(run)
    show(table)
    single_plain = float(table.rows[0][1])
    single_striped = float(table.rows[0][2])
    multi_plain = float(table.rows[1][1])
    multi_striped = float(table.rows[1][2])

    # [22]'s observation: striping a lone copy is substantially faster
    # (bounded by the submission pipeline rather than 4x).
    assert single_striped > 1.3 * single_plain
    # Open-MX's bet: with concurrent messages, one-channel-per-message
    # already fills the engine, so striping buys little there.
    assert multi_striped < 1.15 * multi_plain
    # Concurrency recovers most of the striped single-copy rate.
    assert multi_plain > 0.8 * single_striped
