"""End-to-end integration tests of the Open-MX stack over the simulated wire.

Every test moves real bytes through the full path: user buffer → zero-copy
skbuff → link → NIC DMA → receive skbuff → BH copy (memcpy or I/OAT) → user
buffer, asserting byte-exact delivery.
"""

import pytest

from repro import build_testbed
from repro.mx.wire import EndpointAddr
from repro.units import KiB, MiB


def pingpong_once(tb, size, match=0x42, prefill=7):
    """One message node0 → node1; returns (sent_bytes, recv_bytes, elapsed)."""
    ep0 = tb.open_endpoint(0, 0)
    ep1 = tb.open_endpoint(1, 0)
    core0 = tb.user_core(0)
    core1 = tb.user_core(1)
    sbuf = ep0.space.alloc(max(size, 1))
    rbuf = ep1.space.alloc(max(size, 1), fill=0)
    sbuf.fill_pattern(prefill)
    done = tb.sim.event("done")

    def sender():
        req = yield from ep0.isend(core0, ep1.addr, match, sbuf, 0, size)
        yield from ep0.wait(core0, req)

    def receiver():
        req = yield from ep1.irecv(core1, match, ~0, rbuf, 0, size)
        yield from ep1.wait(core1, req)
        return req

    p_s = tb.sim.process(sender())
    p_r = tb.sim.process(receiver())

    def joiner():
        yield p_s
        req = yield p_r
        done.succeed(req)

    tb.sim.process(joiner())
    req = tb.sim.run_until(done, max_events=2_000_000)
    tb.sim.run(until=tb.sim.now + 1_000_000)  # drain acks etc.
    return bytes(sbuf.read(0, size)), bytes(rbuf.read(0, size)), req


@pytest.mark.parametrize("size", [0, 1, 16, 128, 129, 4096, 5000, 32 * KiB])
def test_eager_sizes_delivered(size):
    tb = build_testbed()
    sent, got, req = pingpong_once(tb, size)
    assert got == sent
    assert req.xfer_length == size


@pytest.mark.sanitize
@pytest.mark.parametrize("size", [32 * KiB + 1, 64 * KiB, 100_000, 1 * MiB])
def test_large_rendezvous_delivered(size):
    tb = build_testbed()
    sent, got, req = pingpong_once(tb, size)
    assert got == sent
    assert req.xfer_length == size


@pytest.mark.sanitize
@pytest.mark.parametrize("size", [64 * KiB, 1 * MiB])
def test_large_with_ioat_delivered(size):
    tb = build_testbed(ioat_enabled=True)
    sent, got, req = pingpong_once(tb, size)
    assert got == sent
    # The offload path was actually used.
    driver = tb.stacks[1].driver
    assert driver.offload.frags_offloaded > 0


def test_ioat_faster_than_memcpy_for_large():
    t_plain = build_testbed()
    pingpong_once(t_plain, 4 * MiB)
    t_ioat = build_testbed(ioat_enabled=True)
    pingpong_once(t_ioat, 4 * MiB)
    assert t_ioat.sim.now < t_plain.sim.now


def test_ioat_not_used_below_thresholds():
    tb = build_testbed(ioat_enabled=True)
    pingpong_once(tb, 48 * KiB)  # large message, but below ioat_min_msg=64k
    driver = tb.stacks[1].driver
    assert driver.offload.frags_offloaded == 0
    assert driver.offload.frags_memcpy > 0


def test_unexpected_message_then_recv():
    """Send before the receive is posted: unexpected queue path."""
    tb = build_testbed()
    ep0 = tb.open_endpoint(0, 0)
    ep1 = tb.open_endpoint(1, 0)
    core0, core1 = tb.user_core(0), tb.user_core(1)
    size = 8 * KiB
    sbuf = ep0.space.alloc(size)
    rbuf = ep1.space.alloc(size, fill=0)
    sbuf.fill_pattern(3)
    done = tb.sim.event()

    def sender():
        req = yield from ep0.isend(core0, ep1.addr, 0x99, sbuf)
        yield from ep0.wait(core0, req)

    def receiver():
        # Post the receive long after the data has arrived.
        yield tb.sim.timeout(3_000_000)
        req = yield from ep1.irecv(core1, 0x99, ~0, rbuf)
        yield from ep1.wait(core1, req)
        done.succeed()

    tb.sim.process(sender())
    tb.sim.process(receiver())
    tb.sim.run_until(done, max_events=2_000_000)
    assert bytes(rbuf.read()) == bytes(sbuf.read())


def test_unexpected_rendezvous_then_recv():
    tb = build_testbed()
    ep0 = tb.open_endpoint(0, 0)
    ep1 = tb.open_endpoint(1, 0)
    core0, core1 = tb.user_core(0), tb.user_core(1)
    size = 256 * KiB
    sbuf = ep0.space.alloc(size)
    rbuf = ep1.space.alloc(size, fill=0)
    sbuf.fill_pattern(5)
    done = tb.sim.event()

    def sender():
        req = yield from ep0.isend(core0, ep1.addr, 0x7, sbuf)
        yield from ep0.wait(core0, req)

    def receiver():
        yield tb.sim.timeout(2_000_000)
        req = yield from ep1.irecv(core1, 0x7, ~0, rbuf)
        yield from ep1.wait(core1, req)
        done.succeed()

    tb.sim.process(sender())
    tb.sim.process(receiver())
    tb.sim.run_until(done, max_events=4_000_000)
    assert bytes(rbuf.read()) == bytes(sbuf.read())


def test_matching_respects_mask():
    """A recv with a masked match must not steal a non-matching message."""
    tb = build_testbed()
    ep0 = tb.open_endpoint(0, 0)
    ep1 = tb.open_endpoint(1, 0)
    core0, core1 = tb.user_core(0), tb.user_core(1)
    b_a = ep0.space.alloc(64)
    b_b = ep0.space.alloc(64)
    b_a.fill_pattern(1)
    b_b.fill_pattern(2)
    r_a = ep1.space.alloc(64, fill=0)
    r_b = ep1.space.alloc(64, fill=0)
    done = tb.sim.event()

    def sender():
        r1 = yield from ep0.isend(core0, ep1.addr, 0xAA00, b_a)
        r2 = yield from ep0.isend(core0, ep1.addr, 0xBB00, b_b)
        yield from ep0.wait(core0, r1)
        yield from ep0.wait(core0, r2)

    def receiver():
        # Match only on the high byte: 0xBB__ first, then 0xAA__.
        req_b = yield from ep1.irecv(core1, 0xBB00, 0xFF00, r_b)
        req_a = yield from ep1.irecv(core1, 0xAA00, 0xFF00, r_a)
        yield from ep1.wait(core1, req_b)
        yield from ep1.wait(core1, req_a)
        done.succeed()

    tb.sim.process(sender())
    tb.sim.process(receiver())
    tb.sim.run_until(done, max_events=2_000_000)
    assert bytes(r_a.read()) == bytes(b_a.read())
    assert bytes(r_b.read()) == bytes(b_b.read())


@pytest.mark.sanitize
def test_no_skbuff_leak_after_transfers():
    tb = build_testbed(ioat_enabled=True)
    pingpong_once(tb, 1 * MiB)
    tb.sim.run()  # fully drain
    for host in tb.hosts:
        # rx ring keeps its pre-posted buffers; nothing else may be live
        assert host.skb_pool.outstanding == host.platform.nic.rx_ring_size


def test_interop_omx_to_native_mx():
    """Wire compatibility: Open-MX node 0 talking to native-MX node 1."""
    tb = build_testbed(stacks=("omx", "mx"))
    ep0 = tb.open_endpoint(0, 0)
    ep1 = tb.open_endpoint(1, 0)
    core0, core1 = tb.user_core(0), tb.user_core(1)
    size = 16 * KiB
    sbuf = ep0.space if hasattr(ep0, "space") else None
    sbuf = ep0.space.alloc(size)
    rbuf = tb.hosts[1].user_space("mxapp").alloc(size, fill=0)
    sbuf.fill_pattern(11)
    done = tb.sim.event()

    def sender():
        req = yield from ep0.isend(core0, EndpointAddr(tb.hosts[1].host_id, 0), 0x5, sbuf)
        yield from ep0.wait(core0, req)

    def receiver():
        req = yield from ep1.irecv(core1, 0x5, ~0, rbuf)
        yield from ep1.wait(core1, req)
        done.succeed()

    tb.sim.process(sender())
    tb.sim.process(receiver())
    tb.sim.run_until(done, max_events=2_000_000)
    assert bytes(rbuf.read()) == bytes(sbuf.read())
