"""HLT001: channel fault/offload decisions bypassing the health layer.

The circuit breaker (:mod:`repro.health.breaker`, DESIGN.md §12) is only
sound if it *sees* every channel-health event and *gates* every offload
decision.  Two call shapes silently break that contract:

* ``channel.fail(...)`` called directly — the channel aborts its pending
  descriptors, but nothing in supervision recorded why, and fault
  schedules become unreproducible.  Faults belong in a
  :class:`~repro.faults.plan.FaultPlan` armed through the injector layer;
  runtime degradation belongs in :mod:`repro.health`.
* ``should_offload(...)`` called from outside the offload manager — the
  breaker's memcpy-only verdict lives inside that method; re-deriving the
  decision elsewhere (or caching its result) reintroduces submissions to
  channels the breaker already tripped.

Only *channel-like* receivers are matched for ``.fail``: a name spelled
``ch``/``chan``/``channel`` (or ending in ``channel``), or an attribute
chain ending in ``channel`` (``state.channel``, ``self._channel``).  The
simkernel's ``Process.fail``/``Event.fail`` never look like that, so the
event machinery stays clean without pragmas.

Sanctioned homes — the health package, the fault-injection layer, the
offload manager and the channel implementation itself — are skipped by
path; anywhere else, suppress a deliberate exception with
``# noqa: HLT001``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.lint import Finding, ModuleSource, Rule, register_rule

#: module paths allowed to touch these APIs directly (substring match on
#: the /-normalized path)
_SANCTIONED = (
    "repro/health/",
    "repro/faults/",
    "repro/core/offload.py",
    "repro/ioat/channel.py",
    "repro/ioat/engine.py",
)

_CHANNEL_NAMES = ("ch", "chan", "channel")


def _channel_like(node: ast.AST) -> Optional[str]:
    """The receiver's spelling when it plausibly denotes a DMA channel."""
    if isinstance(node, ast.Name):
        name = node.id
        if name in _CHANNEL_NAMES or name.lower().endswith("channel"):
            return name
    if isinstance(node, ast.Attribute):
        if node.attr in _CHANNEL_NAMES or node.attr.lower().endswith("channel"):
            return node.attr
    return None


@register_rule
class HealthBypassRule(Rule):
    code = "HLT001"
    summary = "channel fail()/should_offload() call bypasses the circuit breaker"

    def check(self, module: ModuleSource,
              project=None) -> Iterator[Finding]:
        norm = module.path.replace("\\", "/")
        if any(part in norm for part in _SANCTIONED):
            return
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            attr = node.func.attr
            if attr == "fail":
                receiver = _channel_like(node.func.value)
                if receiver is not None:
                    yield module.finding(
                        self.code, node,
                        f"direct '{receiver}.fail()' bypasses the health "
                        f"layer: inject faults through a FaultPlan "
                        f"(repro.faults) so the circuit breaker records them",
                    )
            elif attr == "should_offload":
                yield module.finding(
                    self.code, node,
                    "'should_offload()' outside the offload manager "
                    "re-derives a breaker-gated decision; route copies "
                    "through OffloadManager.copy_fragment instead",
                )
