"""Parallel, cached execution of figure sweeps.

Every paper figure is a sweep: a list of independent *points* (one
simulated scenario each — a ping-pong at one size under one config, one
chunked-copy measurement, one IMB test run...).  The runners in
:mod:`repro.reporting.experiments` declare their points and hand them to a
:class:`SweepExecutor`, which

* **memoizes** each point in an on-disk JSON cache keyed by a fingerprint
  of (point kind, parameters, phantom mode, source-tree version) — a
  re-run after editing only the reporting layer replays instantly, and the
  key's code-version component invalidates everything when the simulator
  changes;
* optionally **fans out** over a process pool (``REPRO_JOBS=N``; default
  serial) — points are independent simulations, so this is
  embarrassingly parallel and bit-deterministic in any order;
* runs points in **phantom-payload mode** by default (see
  :mod:`repro.memory.phantom`): the cost model never reads payload bytes,
  so figure sweeps skip moving them.  ``REPRO_PHANTOM=0`` restores the
  byte-moving integrity mode.

Point functions must stay top-level (picklable), take JSON-serializable
keyword parameters and return JSON-serializable results — that is what
makes both the cache and the process pool safe.
"""

from __future__ import annotations

import concurrent.futures
import gc
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from repro.memory import phantom

# ---------------------------------------------------------------------------
# point kinds: the actual measurements, one simulation per call
# ---------------------------------------------------------------------------


def point_pingpong(stack: str, size: int, iters: int, omx: dict) -> float:
    """IMB PingPong throughput (MiB/s) between two hosts."""
    from repro.cluster.testbed import build_testbed
    from repro.imb import run_imb
    from repro.mpi import create_world

    tb = build_testbed(stacks=stack, **omx)
    comm = create_world(tb, ppn=1)
    res = run_imb(tb, comm, "PingPong", size, iterations=iters, warmup=2)
    return res.mib_s


def point_memcpy_chunked(size: int, chunk: int) -> float:
    """Uncached pipelined memcpy, chunked (fresh buffers: cache-cold)."""
    from repro.cluster.testbed import build_single_node
    from repro.memory.buffers import AddressSpace
    from repro.units import throughput_mib_s

    tb = build_single_node()
    host = tb.hosts[0]
    core = host.user_core(0)
    space = AddressSpace("fig7")
    src, dst = space.alloc(size), space.alloc(size)
    done = tb.sim.event()

    def work():
        yield core.res.request()
        t0 = tb.sim.now
        yield from host.copier.memcpy(core, src, 0, dst, 0, size, "bench", chunk=chunk)
        core.res.release()
        done.succeed(tb.sim.now - t0)

    tb.sim.process(work())
    elapsed = tb.sim.run_until(done)
    return throughput_mib_s(size, elapsed)


def point_ioat_chunked(size: int, chunk: int) -> float:
    """I/OAT copy split into fixed chunks, submission pipelined with the
    engine (the Fig. 7 measurement loop)."""
    from repro.cluster.testbed import build_single_node
    from repro.ioat.descriptor import CopyDescriptor
    from repro.memory.buffers import AddressSpace
    from repro.units import throughput_mib_s

    tb = build_single_node()
    host = tb.hosts[0]
    core = host.user_core(0)
    space = AddressSpace("fig7io")
    src, dst = space.alloc(size), space.alloc(size)
    ch = host.ioat_engine[0]
    done = tb.sim.event()

    def work():
        yield core.res.request()
        t0 = tb.sim.now
        last = -1
        pos = 0
        while pos < size:
            n = min(chunk, size - pos)
            while ch.ring.free_slots == 0:  # noqa: OFF001 (raw-engine bench)
                # Ring full: wait for the hardware and reap completed
                # descriptors (what the real driver's cleanup does).
                yield ch.wait_completion().wait()
                ch.reap()
            yield from core.busy(host.params.ioat.submit_cost, "bench")
            last = ch.submit(CopyDescriptor(src, pos, dst, pos, n))  # noqa: OFF001
            pos += n
        while not ch.is_complete(last):
            yield ch.wait_completion().wait()
        ch.reap()
        core.res.release()
        done.succeed(tb.sim.now - t0)

    tb.sim.daemon(work(), name="fig7-ioat")
    elapsed = tb.sim.run_until(done)
    return throughput_mib_s(size, elapsed)


def point_stream_usage(size: int, iters: int, ioat: bool, regcache: bool,
                       omx: dict = None) -> dict:
    """Receiver CPU-usage bands while streaming large messages (Fig. 9).

    ``omx`` carries extra config overrides (e.g. ``copy_backend`` for the
    engine shootout); the parameter is optional so points declared without
    it keep their existing cache keys.
    """
    from repro.cluster.testbed import build_testbed
    from repro.workloads import run_stream_usage

    overrides = dict(ioat_enabled=ioat, regcache_enabled=regcache)
    overrides.update(omx or {})
    tb = build_testbed(**overrides)
    u = run_stream_usage(tb, size, iterations=iters)
    return {
        "user_pct": u.user_pct,
        "driver_pct": u.driver_pct,
        "bh_pct": u.bh_pct,
        "total_pct": u.total_pct,
        "throughput_mib_s": u.throughput_mib_s,
    }


def point_shm_pingpong(size: int, placement: str, iters: int, cfg: dict) -> float:
    """Intra-node one-copy ping-pong throughput (Fig. 10)."""
    from repro.cluster.testbed import build_single_node
    from repro.workloads import run_shm_pingpong

    tb = build_single_node(**cfg)
    return run_shm_pingpong(tb, size, placement, iterations=iters)


def point_imb_time(stack: str, test: str, size: int, ppn: int,
                   iters: int, omx: dict) -> float:
    """Average IMB test time in microseconds (Fig. 12)."""
    from repro.cluster.testbed import build_testbed
    from repro.imb import run_imb
    from repro.mpi import create_world

    tb = build_testbed(stacks=stack, **omx)
    comm = create_world(tb, ppn=ppn)
    return run_imb(tb, comm, test, size, iterations=iters, warmup=1).t_avg_us


def point_nas_is(stack: str, keys: int, iters: int, omx: dict) -> dict:
    """NAS IS kernel timing on 2 nodes x 2 ppn (§IV-D)."""
    from repro.cluster.testbed import build_testbed
    from repro.mpi import create_world
    from repro.workloads import run_nas_is

    tb = build_testbed(stacks=stack, **omx)
    comm = create_world(tb, ppn=2)
    r = run_nas_is(tb, comm, keys_per_rank=keys, iterations=iters)
    return {
        "total_time_us": r.total_time_us,
        "comm_time_us": r.comm_time_us,
        "sorted_ok": bool(r.sorted_ok),
    }


POINT_KINDS: dict[str, Callable] = {
    "pingpong": point_pingpong,
    "memcpy_chunked": point_memcpy_chunked,
    "ioat_chunked": point_ioat_chunked,
    "stream_usage": point_stream_usage,
    "shm_pingpong": point_shm_pingpong,
    "imb_time": point_imb_time,
    "nas_is": point_nas_is,
}

#: kinds resolved on first use ("module:function") — packages that import
#: this module can still contribute point kinds without an import cycle
#: (repro.faults.campaign imports SweepExecutor from here)
LAZY_POINT_KINDS: dict[str, str] = {
    "fault_cell": "repro.faults.campaign:point_fault_cell",
    "cpu_profile": "repro.obs.profiler:point_cpu_profile",
    "vectored": "repro.workloads.vectored:point_vectored",
    "fabric": "repro.fabric.sweep:point_fabric",
    "fabric_cell": "repro.fabric.sweep:point_fabric_cell",
    "imb_fabric": "repro.fabric.sweep:point_imb_fabric",
}


def resolve_kind(kind: str) -> Callable:
    """The point function for ``kind``, importing lazy kinds on demand."""
    fn = POINT_KINDS.get(kind)
    if fn is None:
        target = LAZY_POINT_KINDS.get(kind)
        if target is None:
            raise KeyError(f"unknown sweep point kind {kind!r}")
        import importlib

        mod, _, attr = target.partition(":")
        fn = getattr(importlib.import_module(mod), attr)
        POINT_KINDS[kind] = fn
    return fn


def point(kind: str, **params) -> tuple[str, dict]:
    """Declare one sweep point; validates the kind early."""
    if kind not in POINT_KINDS and kind not in LAZY_POINT_KINDS:
        raise KeyError(f"unknown sweep point kind {kind!r}")
    return (kind, params)


def _execute_point(kind: str, params: dict, phantom_on: bool) -> object:
    """Run one point (also the process-pool worker entry).

    The cyclic GC is paused for the whole point — testbed construction
    allocates tens of thousands of objects (address spaces, skbuff rings,
    per-host engines) and triggers generation-0 sweeps that the run loops'
    own GC pause cannot cover.  A point is bounded work and the model holds
    no reference cycles worth collecting mid-point; anything cyclic a point
    leaves behind is reclaimed by the next naturally-triggered collection
    (an explicit collect here would scan the whole heap once per point,
    which costs more than the pause saves on many-point sweeps).
    """
    was_on = gc.isenabled()
    if was_on:
        gc.disable()
    try:
        with phantom.phantom_payloads(phantom_on):
            return resolve_kind(kind)(**params)
    finally:
        if was_on:
            gc.enable()


# ---------------------------------------------------------------------------
# fingerprinting
# ---------------------------------------------------------------------------

_code_version_cache: Optional[str] = None


def code_version() -> str:
    """Content hash of the installed ``repro`` source tree.

    Part of every cache key: any edit to the simulator invalidates all
    cached points, so a stale cache can never masquerade as fresh results.
    """
    global _code_version_cache
    if _code_version_cache is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _code_version_cache = h.hexdigest()[:16]
    return _code_version_cache


def point_key(kind: str, params: dict, phantom_on: bool) -> str:
    """Stable cache key for one point."""
    blob = json.dumps(
        {"kind": kind, "params": params, "phantom": phantom_on,
         "code": code_version()},
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:32]


# ---------------------------------------------------------------------------
# the executor
# ---------------------------------------------------------------------------


@dataclass
class SweepStats:
    """What one :meth:`SweepExecutor.run` call actually did."""

    points: int = 0
    computed: int = 0
    cache_hits: int = 0


class SweepExecutor:
    """Runs sweep points with memoization and optional fan-out.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` reads ``REPRO_JOBS`` (default 1 =
        serial, in-process).
    cache_dir:
        On-disk cache location; ``None`` reads ``REPRO_CACHE_DIR``,
        falling back to ``<tempdir>/repro-sweep-cache``.  ``cache=False``
        disables memoization entirely.
    phantom_mode:
        Run points with phantom payloads; ``None`` reads ``REPRO_PHANTOM``
        (default on — figure data is bit-identical either way, see
        ``tests/test_perf_layer.py``).
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache_dir: Optional[str] = None,
        phantom_mode: Optional[bool] = None,
        cache: bool = True,
    ):
        if jobs is None:
            raw = os.environ.get("REPRO_JOBS", "1")
            try:
                jobs = int(raw)
            except ValueError:
                raise ValueError(
                    f"REPRO_JOBS must be an integer, got {raw!r}"
                ) from None
        self.jobs = max(1, jobs)
        if cache_dir is None:
            cache_dir = os.environ.get("REPRO_CACHE_DIR") or os.path.join(
                tempfile.gettempdir(), "repro-sweep-cache"
            )
        self.cache_dir = Path(cache_dir)
        self.cache_enabled = cache
        if phantom_mode is None:
            phantom_mode = phantom.env_default(True)
        self.phantom_mode = phantom_mode
        #: cumulative over this executor's lifetime
        self.stats = SweepStats()

    # -- cache ----------------------------------------------------------------

    def _cache_path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def _cache_load(self, key: str) -> tuple[bool, object]:
        if not self.cache_enabled:
            return False, None
        path = self._cache_path(key)
        try:
            with open(path) as fh:
                return True, json.load(fh)["result"]
        except (OSError, ValueError, KeyError):
            return False, None

    def _cache_store(self, key: str, kind: str, params: dict, result: object) -> None:
        if not self.cache_enabled:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {"kind": kind, "params": params, "phantom": self.phantom_mode,
             "result": result},
            sort_keys=True,
        )
        # Atomic publish: parallel runs may race on the same key.
        fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
            os.replace(tmp, self._cache_path(key))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -- execution ------------------------------------------------------------

    def run(self, points: list[tuple[str, dict]]) -> list:
        """Execute ``points``; returns results in declaration order."""
        results: list = [None] * len(points)
        missing: list[int] = []
        self.stats.points += len(points)
        for i, (kind, params) in enumerate(points):
            hit, value = self._cache_load(point_key(kind, params, self.phantom_mode))
            if hit:
                results[i] = value
                self.stats.cache_hits += 1
            else:
                missing.append(i)

        if missing and self.jobs > 1:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self.jobs, len(missing))
            ) as pool:
                futures = {
                    i: pool.submit(
                        _execute_point, points[i][0], points[i][1], self.phantom_mode
                    )
                    for i in missing
                }
                for i, fut in futures.items():
                    results[i] = fut.result()
        else:
            for i in missing:
                results[i] = _execute_point(
                    points[i][0], points[i][1], self.phantom_mode
                )

        for i in missing:
            kind, params = points[i]
            self._cache_store(point_key(kind, params, self.phantom_mode),
                              kind, params, results[i])
        self.stats.computed += len(missing)
        return results
