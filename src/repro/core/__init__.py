"""Open-MX: message passing over generic Ethernet, with I/OAT copy offload.

This package is the paper's contribution.  It mirrors the real Open-MX split:

* :mod:`~repro.core.endpoint` — the **user-space library**: request posting,
  matching of small/medium messages, eager-ring consumption, rendezvous
  initiation, event progression.
* :mod:`~repro.core.driver` — the **kernel module**: command processing
  (syscalls), the BH receive callback, the pull engine for large messages,
  the shared-memory one-copy path, transmit helpers.
* :mod:`~repro.core.offload` — the **copy-offload manager** (§III): decides
  memcpy vs I/OAT per fragment, tracks pending skbuffs awaiting DMA
  completion, and implements the cleanup routine bounding their number.
* :mod:`~repro.core.pull` — receiver-side pull protocol state (2 pipelined
  blocks of 8 fragments, retransmission on timeout).
* :mod:`~repro.core.reliability` — seqnum/ack/retransmit sessions for eager
  and control traffic.
* :mod:`~repro.core.types` — events, requests and the pinned eager ring.
"""

from repro.core.driver import OmxDriver, OmxStack
from repro.core.endpoint import OmxEndpoint
from repro.core.types import EvType, OmxEvent, OmxRequest

__all__ = [
    "EvType",
    "OmxDriver",
    "OmxEndpoint",
    "OmxEvent",
    "OmxRequest",
    "OmxStack",
]
