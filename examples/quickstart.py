#!/usr/bin/env python
"""Quickstart: two nodes, one message, with and without I/OAT offload.

Builds the paper's testbed (dual quad-core Clovertown + Myri-10G back to
back), opens one Open-MX endpoint per node, and ping-pongs messages of a
few sizes — first with the plain memcpy receive path, then with I/OAT
asynchronous copy offload — printing the throughput side by side.

Run:  python examples/quickstart.py
"""

from repro import build_testbed
from repro.units import KiB, MiB, throughput_mib_s


def pingpong(tb, size: int, iterations: int = 5) -> float:
    """Ping-pong ``size`` bytes; returns one-way throughput in MiB/s."""
    ep0 = tb.open_endpoint(0, 0)
    ep1 = tb.open_endpoint(1, 0)
    core0, core1 = tb.user_core(0), tb.user_core(1)
    buf0 = ep0.space.alloc(size)
    buf1 = ep1.space.alloc(size)
    buf0.fill_pattern(seed=42)
    marks = {}
    done = tb.sim.event()

    def node0():
        for i in range(1 + iterations):  # one warm-up round
            if i == 1:
                marks["start"] = tb.sim.now
            req = yield from ep0.isend(core0, ep1.addr, 0x1, buf0, 0, size)
            yield from ep0.wait(core0, req)
            req = yield from ep0.irecv(core0, 0x2, ~0, buf0, 0, size)
            yield from ep0.wait(core0, req)
        marks["end"] = tb.sim.now
        done.succeed()

    def node1():
        for _ in range(1 + iterations):
            req = yield from ep1.irecv(core1, 0x1, ~0, buf1, 0, size)
            yield from ep1.wait(core1, req)
            req = yield from ep1.isend(core1, ep0.addr, 0x2, buf1, 0, size)
            yield from ep1.wait(core1, req)

    tb.sim.process(node0())
    tb.sim.process(node1())
    tb.sim.run_until(done)
    assert bytes(buf1.read()) == bytes(buf0.read()), "data corrupted!"
    return throughput_mib_s(2 * size * iterations, marks["end"] - marks["start"])


def main() -> None:
    sizes = [4 * KiB, 64 * KiB, 256 * KiB, 1 * MiB, 4 * MiB]
    print(f"{'size':>8} | {'Open-MX':>10} | {'Open-MX + I/OAT':>16} | gain")
    print("-" * 52)
    for size in sizes:
        plain = pingpong(build_testbed(), size)
        ioat = pingpong(build_testbed(ioat_enabled=True), size)
        gain = 100.0 * (ioat / plain - 1.0)
        label = f"{size >> 20}MiB" if size >= MiB else f"{size >> 10}KiB"
        print(f"{label:>8} | {plain:>7.1f} MiB/s | {ioat:>10.1f} MiB/s | {gain:+.0f}%")
    print("\n(10GbE line rate is 1186 MiB/s; the paper reports 800 -> 1114 MiB/s.)")


if __name__ == "__main__":
    main()
