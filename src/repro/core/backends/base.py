"""The pluggable copy-engine backend contract (DESIGN.md §15).

The offload manager used to speak to exactly one engine — the host's I/OAT
DMA model — through calls scattered over ``copy_fragment``/``cleanup``/
``wait_all``.  This module narrows that contact surface to one interface:

* **policy** — :meth:`CopyBackend.min_msg`/:meth:`~CopyBackend.min_frag`
  (the §IV-A thresholds, which a backend with different fixed costs may
  override) and :attr:`CopyBackend.offloads` (False = the memcpy baseline);
* **submission** — :meth:`CopyBackend.submit_fragment`, a generator run in
  BH context that charges CPU submission cost and queues the copy, handing
  back a *ticket* (a :class:`~repro.ioat.api.DmaCookie` or a multi-lane
  :class:`LaneTicket`) that the manager files as pending;
* **completion** — :meth:`CopyBackend.poll_pending` (one cheap status
  read), :meth:`CopyBackend.ticket_done` (is this pending entry finished,
  given the poll's token), :meth:`CopyBackend.drain_state` (the
  last-fragment busy wait) and :meth:`CopyBackend.reap_state`;
* **failure** — tickets expose ``.failed`` and ``.channel``; the manager's
  heal path redoes aborted copies with memcpy and feeds the owning lane's
  circuit breaker, whatever backend submitted them.

Backends that bring their own execution lanes (FlexTOE, sPIN, SG-DMA)
build them as :class:`LaneGroup`\\ s of ordinary
:class:`~repro.ioat.channel.DmaChannel` servers with re-derived parameters:
the channels keep their trace/observer/health hooks, so Perfetto lanes,
sanitizers, circuit breakers (adopted via
:meth:`repro.health.breaker.HostHealth.adopt`) and fault injectors all work
on every backend for free.  Lane construction allocates no simulator events
and no kernel-space memory — selecting the I/OAT backend is
schedule-identical to the pre-refactor code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Optional

from repro.ioat.api import DmaCookie, IoatDmaApi
from repro.ioat.channel import DmaChannel
from repro.memory.layout import count_page_aligned_chunks

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.host import Host
    from repro.core.offload import MessageOffloadState
    from repro.ioat.descriptor import CopyDescriptor
    from repro.memory.buffers import MemoryRegion
    from repro.params import IoatParams, OmxConfig
    from repro.simkernel.cpu import Core


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

BACKENDS: dict[str, type] = {}


def register_backend(cls):
    """Class decorator: make ``cls`` selectable via ``OmxConfig.copy_backend``."""
    BACKENDS[cls.name] = cls
    return cls


def backend_names() -> list[str]:
    """Every registered backend name, sorted (the shootout's roster)."""
    return sorted(BACKENDS)


def create_backend(host: "Host", config: "OmxConfig") -> "CopyBackend":
    """Instantiate the backend named by ``config.copy_backend``."""
    try:
        cls = BACKENDS[config.copy_backend]
    except KeyError:
        raise ValueError(
            f"unknown copy backend {config.copy_backend!r}; "
            f"registered: {', '.join(backend_names())}"
        ) from None
    return cls(host, config)


# ---------------------------------------------------------------------------
# multi-lane plumbing
# ---------------------------------------------------------------------------


class LaneGroup:
    """A private set of DMA lanes owned by one backend.

    Quacks like :class:`~repro.ioat.engine.IoatEngine` (``params``,
    ``channels``, ``allocate_channel``) so :class:`~repro.ioat.api.
    IoatDmaApi` and the manager's round-robin assignment work unchanged.
    ``index_base`` keeps lane indices (and thus trace lane names, metric
    names and breaker identities) disjoint from the host engine's channels.
    """

    def __init__(self, host: "Host", params: "IoatParams", n_lanes: int,
                 index_base: int):
        self.sim = host.sim
        self.params = params
        self.channels = [
            DmaChannel(host.sim, params, index=index_base + i,
                       caches=host.caches)
            for i in range(n_lanes)
        ]
        self._rr = 0
        for ch in self.channels:
            ch.trace = host.trace
            # Published on the host so fault injectors and sanitizers
            # enumerate backend lanes exactly like engine channels.
            host.extra_dma_channels.append(ch)
            if host.health is not None:
                host.health.adopt(ch)

    def __len__(self) -> int:
        return len(self.channels)

    def __getitem__(self, i: int) -> DmaChannel:
        return self.channels[i]

    def allocate_channel(self) -> DmaChannel:
        ch = self.channels[self._rr % len(self.channels)]
        self._rr += 1
        return ch

    @property
    def bytes_copied(self) -> int:
        return sum(c.bytes_copied for c in self.channels)

    @property
    def descriptors_completed(self) -> int:
        return sum(c.descriptors_completed for c in self.channels)

    @property
    def descriptors_failed(self) -> int:
        return sum(c.descriptors_failed for c in self.channels)


@dataclass(frozen=True)
class LaneTicket:
    """Completion handle for one fragment striped over several lanes.

    Mirrors the :class:`~repro.ioat.api.DmaCookie` surface the manager
    relies on (``done`` / ``failed`` / ``channel``), aggregating one
    per-lane cookie per lane touched.
    """

    parts: tuple[DmaCookie, ...]
    nbytes: int

    @property
    def done(self) -> bool:
        return all(p.done for p in self.parts)

    @property
    def failed(self) -> bool:
        return any(p.failed for p in self.parts)

    @property
    def channel(self) -> DmaChannel:
        """The lane to blame: the first failed part's, else the first."""
        for p in self.parts:
            if p.failed:
                return p.channel
        return self.parts[0].channel


# ---------------------------------------------------------------------------
# the contract
# ---------------------------------------------------------------------------


class CopyBackend:
    """One copy engine behind the offload manager.

    Single-lane default implementations (poll / done-test / drain / reap
    against ``state.channel``) match the dmaengine-style I/OAT semantics;
    multi-lane backends override them.  All generator methods run in BH
    context — the caller holds ``core``.
    """

    #: registry key and display name
    name = "abstract"
    #: False = never offload (the manager memcpys every fragment)
    offloads = True

    def __init__(self, host: "Host", config: "OmxConfig"):
        self.host = host
        self.config = config
        #: channel source for per-message assignment (round-robin); the
        #: host engine by default, a private LaneGroup for lane backends
        self.engine = host.ioat_engine
        #: submission/polling facade whose params price this backend
        self.api = host.ioat

    # -- policy ---------------------------------------------------------

    def min_msg(self, config: "OmxConfig") -> int:
        """Smallest message worth offloading (§IV-A: 64 kB for I/OAT)."""
        return config.ioat_min_msg

    def min_frag(self, config: "OmxConfig") -> int:
        """Smallest fragment worth offloading (§IV-A: ~1 kB for I/OAT)."""
        return config.ioat_min_frag

    # -- cost model -----------------------------------------------------

    def fragment_cost(self, src_addr: int, dst_addr: int,
                      length: int) -> tuple[int, int]:
        """Analytic ``(cpu_ns, engine_ns)`` for one fragment copy.

        The submission-side CPU price plus the engine service time this
        backend's parameters predict — the model behind the vectored
        threshold ablation and the conformance suite's sanity checks.
        """
        params = self.api.params
        n_chunks = count_page_aligned_chunks(src_addr, dst_addr, length)
        cpu = n_chunks * params.submit_cost
        ch = self.engine.channels[0]
        engine = n_chunks * params.per_descriptor_cost
        engine += ch.service_time(length) - params.per_descriptor_cost
        return cpu, engine

    # -- execution (BH context) -----------------------------------------

    def submit_fragment(
        self,
        core: "Core",
        state: "MessageOffloadState",
        skb,
        skb_off: int,
        dst: "MemoryRegion",
        dst_off: int,
        length: int,
    ) -> Generator:
        """Queue one fragment copy; appends the pending entry to ``state``
        and returns its ticket."""
        raise NotImplementedError

    def poll_pending(self, core: "Core",
                     state: "MessageOffloadState") -> Generator:
        """One cheap status read; returns the completion token that
        :meth:`ticket_done` interprets."""
        yield from self.api.poll_once(core, state.channel, "bh")
        return state.channel.poll()

    def ticket_done(self, ticket, token) -> bool:
        """Did ``ticket`` complete, given :meth:`poll_pending`'s token?"""
        return ticket.last_cookie <= token

    def drain_state(self, core: "Core",
                    state: "MessageOffloadState") -> Generator:
        """Busy-wait until every pending copy of this message completed
        (the §III-A last-fragment discipline)."""
        last = state.pending[-1].cookie
        yield from self.api.busy_wait(core, last, "bh")

    def reap_state(self, state: "MessageOffloadState") -> None:
        """Release ring slots of completed descriptors."""
        state.channel.reap()

    # -- integration hooks ----------------------------------------------

    def fault_channels(self) -> list[DmaChannel]:
        """Lanes this backend owns privately (fault-injection surface);
        engine-backed backends return [] — the host engine is already
        reachable by node/channel specs."""
        return []

    def register_metrics(self, reg) -> None:
        """Publish backend-owned counters (lane backends add theirs)."""


class LaneBackend(CopyBackend):
    """Shared machinery for backends that own a private :class:`LaneGroup`.

    Subclasses define ``lane_params()``, ``n_lanes`` and ``index_base``;
    submission is still theirs to model.
    """

    n_lanes = 1
    index_base = 100

    def __init__(self, host: "Host", config: "OmxConfig"):
        super().__init__(host, config)
        self.lanes = LaneGroup(host, self.lane_params(host), self.n_lanes,
                               self.index_base)
        self.engine = self.lanes
        self.api = IoatDmaApi(self.lanes)

    def lane_params(self, host: "Host") -> "IoatParams":
        raise NotImplementedError

    def fault_channels(self) -> list[DmaChannel]:
        return list(self.lanes.channels)

    def register_metrics(self, reg) -> None:
        name = self.name
        reg.counter("backend", f"backend_{name}_bytes",
                    lambda: self.lanes.bytes_copied)
        reg.counter("backend", f"backend_{name}_descriptors",
                    lambda: self.lanes.descriptors_completed)
        reg.counter("backend", f"backend_{name}_descriptors_failed",
                    lambda: self.lanes.descriptors_failed)
        for ch in self.lanes.channels:
            ch.register_metrics(reg)
