"""FIG3 — expected Open-MX improvement when the BH receive copy is removed.

Regenerates the ping-pong comparison of native MX, stock Open-MX and the
``ignore_bh_copy`` prediction mode, and asserts the paper's qualitative
findings: the BH copy is what separates Open-MX (~800 MiB/s) from the line
rate its sender side can already sustain.
"""

import pytest

from conftest import show
from repro.reporting.experiments import fig3
from repro.units import KiB, MiB, TEN_GBE_LINE_RATE_MIB_S


@pytest.mark.benchmark(group="fig3")
def test_fig3_expected_improvement(once):
    fig = once(fig3, quick=True)
    show(fig)
    mx = fig.get("MX")
    omx = fig.get("Open-MX")
    ignore = fig.get("Open-MX ignoring BH receive copy")

    for size in (1 * MiB, 4 * MiB):
        # Stock Open-MX is BH-copy-bound near the paper's ~800 MiB/s...
        assert 650 < omx.y_at(size) < 900
        # ...while removing the copy predicts near-line-rate,
        assert ignore.y_at(size) > 0.9 * TEN_GBE_LINE_RATE_MIB_S
        # close to what the native firmware stack achieves.
        assert ignore.y_at(size) > 0.95 * mx.y_at(size)
        # The headroom motivating the paper: >= 30 % left on the table.
        assert ignore.y_at(size) > 1.3 * omx.y_at(size)

    # MX wins everywhere (no syscall/BH path at all).
    for size, y in zip(omx.xs, omx.ys):
        assert mx.y_at(size) >= y
