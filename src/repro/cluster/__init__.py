"""Testbed assembly: hosts and the two-node back-to-back configuration."""

from repro.cluster.host import Host
from repro.cluster.testbed import Testbed, build_testbed

__all__ = ["Host", "Testbed", "build_testbed"]
