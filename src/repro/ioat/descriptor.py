"""Copy descriptors and per-channel descriptor rings.

A descriptor describes one chunk that crosses no page boundary on either
side (the hardware takes DMA addresses).  Descriptors are numbered with
monotonically increasing *cookies* per channel; because the hardware
completes strictly in order, "cookie N is done" implies all earlier cookies
are done — the property that makes completion polling a single memory read
(§IV-A).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.memory.buffers import MemoryRegion


@dataclass
class CopyDescriptor:
    """One hardware copy: ``length`` bytes, page-contained on both sides."""

    src: MemoryRegion
    src_off: int
    dst: MemoryRegion
    dst_off: int
    length: int
    #: per-channel sequence number, assigned at submission
    cookie: int = -1
    #: simulation time when the engine finished this descriptor
    completed_at: Optional[int] = None
    #: set when the channel aborted this descriptor (no data was moved);
    #: such descriptors still "complete" so status polls observe them
    failed: bool = False

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError("descriptor length must be positive")
        if self.src_off < 0 or self.src_off + self.length > len(self.src):
            raise ValueError("descriptor source outside region")
        if self.dst_off < 0 or self.dst_off + self.length > len(self.dst):
            raise ValueError("descriptor destination outside region")

    @property
    def done(self) -> bool:
        return self.completed_at is not None


class DescriptorRing:
    """Bounded FIFO of submitted-but-unreaped descriptors."""

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("ring size must be >= 1")
        self.size = size
        self._ring: deque[CopyDescriptor] = deque()
        # Completed-prefix view: descriptors not yet *observed* done, in
        # submission order.  Because hardware completion is in order, the
        # head of this deque is always the oldest pending descriptor, so
        # oldest_pending() and last_completed_cookie() are O(1) amortised
        # instead of rescanning the ring (which busy-polls rescan per
        # completion on multi-megabyte synchronous copies).
        self._pending: deque[CopyDescriptor] = deque()
        self._next_cookie = 0

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def free_slots(self) -> int:
        return self.size - len(self._ring)

    def push(self, desc: CopyDescriptor) -> int:
        """Append a descriptor, assigning its cookie.  Raises when full."""
        if not self.free_slots:
            raise BufferError("descriptor ring full")
        desc.cookie = self._next_cookie
        self._next_cookie += 1
        self._ring.append(desc)
        self._pending.append(desc)
        return desc.cookie

    def oldest_pending(self) -> Optional[CopyDescriptor]:
        """The oldest descriptor not yet completed, if any."""
        pend = self._pending
        while pend and pend[0].done:
            pend.popleft()
        return pend[0] if pend else None

    def pending(self) -> list[CopyDescriptor]:
        """All not-yet-completed descriptors, in submission order."""
        return [d for d in self._ring if not d.done]

    def reap_completed(self) -> list[CopyDescriptor]:
        """Pop-and-return the completed prefix of the ring."""
        out = []
        while self._ring and self._ring[0].done:
            out.append(self._ring.popleft())
        return out

    def last_completed_cookie(self) -> int:
        """Highest cookie known complete (-1 if none completed yet).

        Because completion is in-order this is exactly the hardware's
        status-writeback value.
        """
        pend = self._pending
        while pend and pend[0].done:
            pend.popleft()
        return (pend[0].cookie if pend else self._next_cookie) - 1
