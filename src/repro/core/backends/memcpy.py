"""The CPU-copy baseline as a backend: never offloads.

Selecting ``copy_backend="memcpy"`` makes :meth:`~repro.core.offload.
OffloadManager.should_offload` answer False for every fragment, so the
manager's synchronous memcpy path (the paper's non-I/OAT curves) runs —
one backend name per column in the engine shootout, including the
baseline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.backends.base import CopyBackend, register_backend
from repro.memory.layout import count_page_aligned_chunks
from repro.units import SEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.cpu import Core


@register_backend
class MemcpyBackend(CopyBackend):
    """No engine: every fragment is copied synchronously on the CPU."""

    name = "memcpy"
    offloads = False

    def fragment_cost(self, src_addr: int, dst_addr: int,
                      length: int) -> tuple[int, int]:
        """All CPU, no engine: per-chunk setup plus the uncached move."""
        mp = self.host.params.memcpy
        n_chunks = count_page_aligned_chunks(src_addr, dst_addr, length)
        move = int(round(length * SEC / mp.uncached_bw))
        return n_chunks * mp.setup_cost + move, 0

    def submit_fragment(self, core: "Core", state, skb, skb_off, dst,
                        dst_off, length):
        raise RuntimeError("memcpy backend never offloads")
        yield  # pragma: no cover - makes this a generator like its peers

    def drain_state(self, core: "Core", state):
        return
        yield  # pragma: no cover

    def reap_state(self, state) -> None:
        pass
