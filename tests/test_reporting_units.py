"""Tests for units, parameters, reporting containers and tracing."""

import pytest

from repro import clovertown_5000x, units
from repro.params import OmxConfig, Platform
from repro.reporting import Figure, Series, Table, ascii_plot
from repro.simkernel import Simulator, TraceRecorder


class TestUnits:
    def test_time_conversions(self):
        assert units.us(1.5) == 1500
        assert units.ms(2) == 2_000_000
        assert units.seconds(1) == units.SEC
        assert units.to_us(2500) == 2.5
        assert units.to_seconds(units.SEC) == 1.0

    def test_transfer_time_rounding(self):
        assert units.transfer_time(0, 1e9) == 0
        assert units.transfer_time(1, 1e12) == 1  # never zero for real bytes
        assert units.transfer_time(1000, 1e9) == 1000

    def test_throughput(self):
        assert units.throughput_mib_s(units.MiB, units.SEC) == pytest.approx(1.0)
        assert units.throughput_mib_s(0, 0) == 0.0

    def test_line_rate_constant_matches_paper(self):
        # paper: 9953 Mbit/s = 1186 MiB/s
        assert units.TEN_GBE_LINE_RATE_MIB_S == pytest.approx(1186.4, abs=1.0)

    def test_bandwidth_helpers(self):
        assert units.bandwidth_gib_s(2) == 2 * units.GiB
        assert units.bandwidth_mib_s(3) == 3 * units.MiB


class TestParams:
    def test_preset_topology(self):
        plat = clovertown_5000x()
        assert plat.host.n_cores == 8
        assert plat.host.ioat.channels == 4

    def test_omx_overrides(self):
        plat = clovertown_5000x(ioat_enabled=True, ioat_min_msg=1)  # noqa: UNIT001 (sentinel override)
        assert plat.omx.ioat_enabled
        assert plat.omx.ioat_min_msg == 1

    def test_with_omx_returns_new_platform(self):
        plat = Platform()
        plat2 = plat.with_omx(ioat_enabled=True)
        assert not plat.omx.ioat_enabled
        assert plat2.omx.ioat_enabled

    @pytest.mark.parametrize("bad", [
        dict(small_max=0),
        dict(small_max=1 << 20, medium_max=1),  # noqa: UNIT001 (invalid on purpose)
        dict(medium_frag=0),
        dict(pull_block_frags=0),
        dict(pull_outstanding_blocks=0),
        dict(ioat_min_frag=0),
    ])
    def test_validation_rejects_nonsense(self, bad):
        with pytest.raises(ValueError):
            OmxConfig(**bad).validate()


class TestReporting:
    def _figure(self):
        fig = Figure("T", "title", "size", "MiB/s")
        s1 = fig.new_series("a")
        s1.add(16, 1.0)
        s1.add(1024, 100.0)
        s2 = fig.new_series("b")
        s2.add(16, 2.0)
        s2.add(1024, 50.0)
        return fig

    def test_series_lookup(self):
        fig = self._figure()
        assert fig.get("a").y_at(16) == 1.0
        assert fig.get("a").y_at(999) is None
        with pytest.raises(KeyError):
            fig.get("zzz")

    def test_render_contains_values(self):
        text = self._figure().render()
        assert "100.0" in text and "title" in text

    def test_csv_round_trip(self):
        csv = self._figure().to_csv()
        lines = csv.strip().split("\n")
        assert lines[0] == "size,a,b"
        assert lines[1].startswith("16,")

    def test_ascii_plot_empty(self):
        assert "empty" in ascii_plot([])

    def test_table_render_and_csv(self):
        t = Table("x", ["a", "b"])
        t.add_row(1, 2.5)
        assert "2.5" in t.render()
        assert t.to_csv().splitlines()[1] == "1,2.5"

    def test_table_row_width_checked(self):
        t = Table("x", ["a"])
        with pytest.raises(ValueError):
            t.add_row(1, 2)


class TestTracing:
    def test_disabled_records_nothing(self):
        sim = Simulator()
        tr = TraceRecorder(sim, enabled=False)
        tr.record("lane", "x", 0, 10)
        assert not tr.spans

    def test_render_groups_by_lane(self):
        sim = Simulator()
        tr = TraceRecorder(sim, enabled=True)
        tr.record("CPU#1", "Proc", 0, 100)
        tr.record("I/OAT", "Copy", 50, 250)
        text = tr.render_ascii(width=40)
        assert "CPU#1" in text and "I/OAT" in text
        assert tr.lanes() == ["CPU#1", "I/OAT"]

    def test_span_duration(self):
        sim = Simulator()
        tr = TraceRecorder(sim, enabled=True)
        tr.record("l", "x", 5, 15)
        assert tr.spans[0].duration == 10

    def test_empty_render(self):
        sim = Simulator()
        tr = TraceRecorder(sim, enabled=True)
        assert "no trace" in tr.render_ascii()
