"""Simulator-aware static lint framework.

The correctness of an offload data path — skbuffs parked behind in-flight
I/OAT copies, DMA cookies that must be polled before user-space is notified,
generator processes that silently no-op when invoked without being driven —
is exactly the kind of property that rots without tooling (§III-B, Figs.
5/6).  This module provides the AST-walking framework; the individual rules
live one-per-module under :mod:`repro.analysis.rules` and register
themselves with the :func:`register_rule` decorator.

Suppression uses ``ruff``/``flake8``-style inline pragmas: a line ending in
``# noqa`` silences every rule on that line, ``# noqa: SKB001`` (or a
comma-separated list) silences specific codes.

Adding a rule::

    from repro.analysis.lint import Finding, ModuleSource, Rule, register_rule

    @register_rule
    class MyRule(Rule):
        code = "ABC001"
        summary = "one-line description"

        def check(self, module: ModuleSource, project=None):
            yield module.finding(self.code, node, "message")

Rules that need to see across modules use ``project`` — the
:class:`~repro.analysis.dataflow.Project` built over the whole sweep
(symbol table, call graph, taint reachability).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.dataflow import Project

__all__ = [
    "Finding",
    "ModuleSource",
    "Rule",
    "register_rule",
    "all_rules",
    "lint_file",
    "lint_paths",
]

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9,\s]+))?", re.IGNORECASE)


@dataclass(frozen=True)
class Finding:
    """One lint violation, anchored to a source location."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}"


class ModuleSource:
    """One parsed module handed to every rule.

    Besides the AST, rules get the raw source lines (for pragma handling)
    and a resolved import-alias map (``np`` → ``numpy``, ``sleep`` →
    ``time.sleep``) so they can reason about dotted call targets without
    caring how the module spelled its imports.
    """

    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self.lines = source.splitlines()
        self.import_aliases = _collect_import_aliases(self.tree)

    # -- findings -----------------------------------------------------------

    def finding(self, code: str, node: ast.AST, message: str) -> Finding:
        return Finding(code, message, self.path,
                       getattr(node, "lineno", 1), getattr(node, "col_offset", 0))

    def suppressed(self, finding: Finding) -> bool:
        """True when the finding's line carries a matching noqa pragma."""
        if not (1 <= finding.line <= len(self.lines)):
            return False
        m = _NOQA_RE.search(self.lines[finding.line - 1])
        if m is None:
            return False
        codes = m.group("codes")
        if codes is None:
            return True  # bare "# noqa" silences everything
        return finding.code in {c.strip().upper() for c in codes.split(",")}

    # -- AST helpers shared by rules ---------------------------------------

    def functions(self) -> Iterator[ast.FunctionDef]:
        """Every function/method definition in the module, outermost first."""
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """Resolve a call target to a dotted name through import aliases.

        ``t.sleep`` with ``import time as t`` resolves to ``time.sleep``;
        ``randint`` with ``from random import randint`` to
        ``random.randint``.  Returns None for non-name expressions.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.import_aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))


def _collect_import_aliases(tree: ast.Module) -> Dict[str, str]:
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name != "*":
                    aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def is_generator(fn: ast.FunctionDef) -> bool:
    """True when ``fn`` itself contains a yield (nested defs excluded)."""
    for node in ast.walk(fn):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not fn:
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom)) and _owner(fn, node):
            return True
    return False


def _owner(fn: ast.FunctionDef, target: ast.AST) -> bool:
    """True when ``target`` belongs to ``fn``'s own body, not a nested def."""
    todo: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while todo:
        node = todo.pop()
        if node is target:
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        todo.extend(ast.iter_child_nodes(node))
    return False


def own_nodes(fn: ast.FunctionDef) -> Iterator[ast.AST]:
    """Walk ``fn``'s body without descending into nested function defs."""
    todo: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while todo:
        node = todo.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        todo.extend(ast.iter_child_nodes(node))


def name_escapes(fn: ast.FunctionDef, name: str, *, binding: ast.AST,
                 release_attrs: Sequence[str] = (),
                 any_use_releases: bool = False) -> bool:
    """Conservative escape analysis for a resource bound to ``name``.

    Returns True when, anywhere in ``fn`` after the binding statement, the
    name is

    * passed as an argument (positional, keyword, or starred) to any call —
      ownership hand-off;
    * returned or yielded;
    * aliased or stored (``x = name``, ``self.x = name``, ``d[k] = name``,
      a container literal, an augmented assignment);
    * used as ``name.<attr>()`` with ``attr`` in ``release_attrs`` (e.g.
      ``skb.free()``).

    With ``any_use_releases`` every later Load-context mention counts (used
    by DMA001, where touching the cookie at all implies someone tracked it).
    Reads/writes of other attributes (``name.data_len = 8``) deliberately do
    NOT release: configuring a buffer and dropping it is precisely the leak.
    """
    for node in own_nodes(fn):
        if node is binding or getattr(node, "lineno", 0) < getattr(binding, "lineno", 0):
            continue
        if isinstance(node, ast.Call):
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if _mentions(arg, name):
                    return True
            func = node.func
            if (isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name)
                    and func.value.id == name and func.attr in release_attrs):
                return True
        elif isinstance(node, ast.Return) and node.value is not None:
            if _mentions(node.value, name):
                return True
        elif isinstance(node, (ast.Yield, ast.YieldFrom)) and node.value is not None:
            if _mentions(node.value, name):
                return True
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = node.value
            if value is not None and value is not binding and _mentions(value, name):
                return True
        elif any_use_releases and isinstance(node, ast.Name):
            if node.id == name and isinstance(node.ctx, ast.Load):
                return True
    return False


def _mentions(node: ast.AST, name: str) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == name and isinstance(sub.ctx, ast.Load):
            return True
    return False


# ---------------------------------------------------------------------------
# Rule registry
# ---------------------------------------------------------------------------


class Rule:
    """Base class: subclass, set ``code``/``summary``, implement check().

    ``check`` receives the module under scrutiny plus the
    :class:`~repro.analysis.dataflow.Project` built over the whole sweep,
    so rules can resolve calls across modules (call graph, taint
    reachability).  Single-module rules simply ignore ``project``; when a
    lone source string is linted the project contains just that module.
    """

    code: str = ""
    summary: str = ""

    def check(self, module: ModuleSource,
              project: Optional["Project"] = None) -> Iterable[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the global registry (keyed by code)."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> Dict[str, Type[Rule]]:
    """The registry, loading the built-in rule modules on first use."""
    from repro.analysis import rules as _builtin  # noqa: F401  (registration side effect)

    return dict(_REGISTRY)


# ---------------------------------------------------------------------------
# Running
# ---------------------------------------------------------------------------


def _lint_module(module: ModuleSource, project: "Project",
                 codes: Sequence[str], registry) -> List[Finding]:
    findings: List[Finding] = []
    for code in codes:
        for finding in registry[code]().check(module, project):
            if not module.suppressed(finding):
                findings.append(finding)
    findings.sort(key=lambda f: (f.line, f.col, f.code))
    return findings


def _select_codes(select: Optional[Sequence[str]], registry) -> List[str]:
    codes = list(select) if select else sorted(registry)
    unknown = [c for c in codes if c not in registry]
    if unknown:
        raise ValueError(f"unknown rule code(s): {', '.join(unknown)}")
    return codes


def lint_source(source: str, path: str = "<string>",
                select: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint one source string; ``select`` restricts to the given codes.

    The dataflow project contains just this module, so cross-module rules
    degrade to their local approximation.
    """
    from repro.analysis.dataflow import Project

    registry = all_rules()
    codes = _select_codes(select, registry)
    module = ModuleSource(path, source)
    project = Project([module])
    return _lint_module(module, project, codes, registry)


def lint_file(path: Path, select: Optional[Sequence[str]] = None) -> List[Finding]:
    return lint_source(Path(path).read_text(encoding="utf-8"), str(path), select)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        path = Path(path)
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py") if "egg-info" not in p.parts)
        elif path.suffix == ".py":
            yield path


def lint_paths(paths: Iterable[Path],
               select: Optional[Sequence[str]] = None) -> Tuple[List[Finding], int]:
    """Lint files/directories as ONE project; returns (findings, files).

    Every file is parsed up front and the dataflow engine builds the
    project-wide symbol table and call graph over all of them, so rules
    see across module boundaries (a wall-clock call two hops away from a
    sim process is still two *resolved* hops).  Findings stay grouped by
    file, in path order.
    """
    from repro.analysis.dataflow import Project

    registry = all_rules()
    codes = _select_codes(select, registry)
    modules = [
        ModuleSource(str(file), file.read_text(encoding="utf-8"))
        for file in iter_python_files(paths)
    ]
    project = Project(modules)
    findings: List[Finding] = []
    for module in modules:
        findings.extend(_lint_module(module, project, codes, registry))
    return findings, len(modules)
