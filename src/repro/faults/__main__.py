"""Run a fault-injection campaign (or soak) from the command line.

::

    python -m repro.faults                      # quick matrix -> results/
    python -m repro.faults --seed s2 --iters 5
    python -m repro.faults --out /tmp/faults.json --jobs 4
    python -m repro.faults --soak               # chained-fault soak suite
    python -m repro.faults --soak --seed s7 --duration 120

The report is JSON with sorted keys: running the same seed twice produces
byte-identical files (the determinism the campaign and soak tests assert).
``--soak`` swaps the one-fault-per-cell matrix for the chained soak suite
(fail→recover I/OAT flaps, flapping links, incast bursts) with periodic
livelock/leak checkpoints — see DESIGN.md §12.  ``--tiebreak-seed`` replays
the whole run under a seeded shuffle of same-timestamp ties (see
:mod:`repro.analysis.races`): outcome totals should be unchanged by any
such shuffle, so a differing report is a schedule race under faults.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.faults.campaign import quick_campaign_spec, run_campaign, write_report
from repro.reporting.sweeps import SweepExecutor
from repro.reporting.table import Table


def _write_cell_traces(report: dict, out_dir: str) -> int:
    """Extract each cell's trace into its own Perfetto file.

    The timelines are moved out of the report (they would swamp the JSON
    and break its byte-stable determinism contract, which excludes traces).
    """
    from repro.obs.trace import write_trace

    written = 0
    for cell in report["cells"]:
        doc = cell.pop("trace_events", None)
        if doc is None:
            continue
        name = f'{cell["workload"]}-{cell["size"]}-{cell["plan"]}.json'
        write_trace(doc, Path(out_dir) / name)
        written += 1
    return written


def _soak_main(args) -> int:
    """``--soak``: the chained-fault suite with checkpointed invariants."""
    from repro.faults.soak import SOAK_DEADLINE, run_soak_suite
    from repro.units import ms

    deadline = ms(args.duration) if args.duration is not None else SOAK_DEADLINE
    seed = args.seed if args.seed != "campaign" else "soak"
    report = run_soak_suite(seed, iters=args.iters * 2, deadline=deadline)
    out = args.out
    if out == "results/faults_campaign.json":
        out = "results/faults_soak.json"
    path = write_report(report, out)

    t = Table(f"fault soak (seed={seed!r})",
              ["run", "completed", "failed", "hung", "breaker trips",
               "reopens", "sanitizer"])
    for run in report["runs"]:
        t.add_row(
            f'{run["soak"]}/{run["workload"]}/{run["size"] // 1024}K',
            run["outcomes"]["completed"],
            run["outcomes"]["failed"],
            run["outcomes"]["hung"],
            run["health"].get("breaker_trips", 0),
            run["health"].get("breaker_reopens", 0),
            "DIRTY" if run["sanitizer"] else "clean",
        )
    print(t.render())
    fabric = report.get("fabric")
    if fabric is not None:
        ft = Table(f"fabric soak (seed={seed!r})",
                   ["run", "topology", "delivered", "failed", "retried",
                    "reroutes", "flaps supp.", "dead", "epoch", "sanitizer"])
        for run in fabric["runs"]:
            res = run.get("resilience", {})
            ft.add_row(
                run["soak"], run["topology"],
                run["net"]["msgs_delivered"], run["net"]["msgs_failed"],
                run["net"]["chunks_retried"],
                res.get("reroutes", 0), res.get("flaps_suppressed", 0),
                len(run["dead_ranks"]), run["epoch"],
                "DIRTY" if run["sanitizer"] else "clean",
            )
        print(ft.render())
    totals = report["totals"]
    print(f"report: {path}")
    print(f"totals: {totals['completed']} completed, {totals['failed']} "
          f"failed (typed), {totals['hung']} hung")
    bad = totals["hung"] or report["sanitizer_dirty_runs"]
    if fabric is not None and fabric["sanitizer_dirty_runs"]:
        bad = True
    return 1 if bad else 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="deterministic fault-injection campaign",
    )
    ap.add_argument("--seed", default="campaign", help="plan seed (string)")
    ap.add_argument("--iters", type=int, default=3,
                    help="messages per sender per cell")
    ap.add_argument("--out", default="results/faults_campaign.json",
                    help="report path")
    ap.add_argument("--jobs", type=int, default=None,
                    help="worker processes (default: REPRO_JOBS or 1)")
    ap.add_argument("--no-cache", action="store_true",
                    help="disable the sweep cache")
    ap.add_argument("--trace", default=None, metavar="DIR",
                    help="also write one Perfetto trace per cell into DIR")
    ap.add_argument("--soak", action="store_true",
                    help="run the chained-fault soak suite instead of the "
                         "campaign matrix")
    ap.add_argument("--duration", type=int, default=None, metavar="MS",
                    help="soak deadline in simulated milliseconds "
                         "(default 60)")
    ap.add_argument("--tiebreak-seed", default=None, metavar="SEED",
                    help="replay the whole run under a seeded shuffle of "
                         "same-timestamp event ties (schedule-race hunting; "
                         "forces --jobs 1 and disables the sweep cache)")
    args = ap.parse_args(argv)

    if args.tiebreak_seed is not None:
        # The policy factory is process-global state: worker processes would
        # not inherit it, and cached cells would be stale FIFO results.
        from repro.simkernel.tiebreak import SeededShuffleTieBreak, default_tiebreak

        args.jobs, args.no_cache = 1, True
        with default_tiebreak(lambda: SeededShuffleTieBreak(args.tiebreak_seed)):
            return _dispatch(args)
    return _dispatch(args)


def _dispatch(args) -> int:
    if args.soak:
        return _soak_main(args)

    spec = quick_campaign_spec(args.seed)
    if args.iters != spec.iters:
        from dataclasses import replace

        spec = replace(spec, iters=args.iters)
    executor = SweepExecutor(jobs=args.jobs, cache=not args.no_cache)
    report = run_campaign(spec, executor=executor, trace=args.trace is not None)
    if args.trace is not None:
        n = _write_cell_traces(report, args.trace)
        print(f"traces: {n} file(s) under {args.trace}")
    path = write_report(report, args.out)

    t = Table(f"fault campaign (seed={args.seed!r})",
              ["cell", "completed", "failed", "hung", "sanitizer"])
    for cell in report["cells"]:
        t.add_row(
            f'{cell["workload"]}/{cell["size"] // 1024}K/{cell["plan"]}',
            cell["outcomes"]["completed"],
            cell["outcomes"]["failed"],
            cell["outcomes"]["hung"],
            "DIRTY" if cell["sanitizer"] else "clean",
        )
    print(t.render())
    totals = report["totals"]
    print(f"report: {path}")
    print(f"totals: {totals['completed']} completed, {totals['failed']} "
          f"failed (typed), {totals['hung']} hung; "
          f"{report['retransmissions']} retransmissions, "
          f"{report['dead_letters']} dead letters, "
          f"{report['fallback_copies']} memcpy fallbacks")
    bad = totals["hung"] or report["sanitizer_dirty_cells"]
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
