"""FAB001: fabric route/link state mutated outside the resilience stack.

The fabric's determinism story (DESIGN.md §17) hangs on one invariant:
every change to the live-link set, the ECMP demotion set, or a port's
gray-degrade state flows through exactly three layers —

* :mod:`repro.fabric.routing` owns the versioned tables (every mutation
  bumps the version and drops the cache, so reroutes are a pure function
  of the live-link set);
* :mod:`repro.fabric.resilience` is the only writer of *demotions*
  (the breaker hysteresis is what guarantees demotion never partitions
  and flapping trunks settle instead of thrashing);
* :mod:`repro.faults.injectors` is the only place fault *plans* arm
  kills, flaps, degrades — so a fault schedule stays serializable,
  seeded, and replayable.

A ``routes.demote_link(...)`` call from a workload, or a port's
``service_scale`` poked from a test helper, silently breaks all three:
the route version desyncs from the mutation, the breaker's suppressed-
flap accounting lies, and the run is no longer reproducible from its
plan.  This rule flags the two shapes:

* calls to ``demote_link`` / ``restore_link`` / ``kill_link`` /
  ``revive_link`` / ``degrade_link`` (the route/link mutation surface);
* assignments to ``.service_scale`` / ``.extra_delay`` (a port's
  gray-degrade state).

Sanctioned homes — the three layers above, plus
:mod:`repro.fabric.network` itself (it owns the ports and schedules the
timed kill/degrade legs the injectors arm) — are skipped by path;
anywhere else, suppress a deliberate exception with ``# noqa: FAB001``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint import Finding, ModuleSource, Rule, register_rule

#: module paths allowed to touch the routing/link surface directly
#: (substring match on the /-normalized path)
_SANCTIONED = (
    "repro/fabric/routing.py",
    "repro/fabric/resilience.py",
    "repro/fabric/network.py",
    "repro/faults/injectors.py",
)

#: the route/link mutation calls
_MUTATORS = ("demote_link", "restore_link", "kill_link", "revive_link",
             "degrade_link")

#: per-port gray-degrade attributes
_PORT_STATE = ("service_scale", "extra_delay")


@register_rule
class FabricRouteMutationRule(Rule):
    code = "FAB001"
    summary = "fabric route/link state mutated outside the resilience stack"

    def check(self, module: ModuleSource,
              project=None) -> Iterator[Finding]:
        norm = module.path.replace("\\", "/")
        if any(part in norm for part in _SANCTIONED):
            return
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATORS):
                yield module.finding(
                    self.code, node,
                    f"direct '{node.func.attr}()' call mutates fabric "
                    f"route/link state: arm a FaultPlan through "
                    f"repro.faults (kills, flaps, degrades) or let the "
                    f"health breaker (repro.fabric.resilience) drive "
                    f"demotions, so the schedule stays seeded and "
                    f"replayable",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if (isinstance(target, ast.Attribute)
                            and target.attr in _PORT_STATE):
                        yield module.finding(
                            self.code, target,
                            f"direct '.{target.attr}' write bypasses the "
                            f"fabric degrade surface: use "
                            f"FabricNetwork.degrade_link (or a FaultPlan "
                            f"degrade axis) so the health estimator and "
                            f"the route version see the change",
                        )
