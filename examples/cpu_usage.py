#!/usr/bin/env python
"""Receive-side CPU usage under a large-message stream (Fig. 9).

Streams 4 MiB messages from node 0 to node 1 and decomposes the receiver's
CPU time into the paper's three bands — user library, driver (syscalls and
pinning) and bottom-half receive — with and without I/OAT offload.

Run:  python examples/cpu_usage.py
      python examples/cpu_usage.py --profile    # per-phase decomposition
"""

import argparse

from repro import build_testbed
from repro.units import MiB
from repro.workloads import run_stream_usage


def main(argv=None) -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--profile", action="store_true",
                    help="attach the simulated-time profiler and show phases")
    args = ap.parse_args(argv)

    size = 4 * MiB
    print(f"Streaming {size >> 20} MiB messages, receiver CPU usage "
          f"(% of one 2.33 GHz core):\n")
    print(f"{'mode':>8} | {'user':>6} | {'driver':>6} | {'BH recv':>7} | "
          f"{'total':>6} | {'MiB/s':>7}")
    print("-" * 56)
    profiles = []
    for ioat in (False, True):
        tb = build_testbed(ioat_enabled=ioat, regcache_enabled=False)
        prof = None
        if args.profile:
            from repro.obs import PhaseProfiler

            prof = PhaseProfiler(tb.sim).attach(tb.hosts[1].cpus)
        u = run_stream_usage(tb, size, iterations=8)
        mode = "I/OAT" if ioat else "memcpy"
        print(f"{mode:>8} | {u.user_pct:>6.1f} | {u.driver_pct:>6.1f} | "
              f"{u.bh_pct:>7.1f} | {u.total_pct:>6.1f} | "
              f"{u.throughput_mib_s:>7.1f}")
        if prof is not None:
            profiles.append((mode, prof.percent(u.window_ticks)))
    for mode, phases in profiles:
        print(f"\n{mode} phases (% of one core):")
        for phase, pct in sorted(phases.items(), key=lambda kv: -kv[1]):
            print(f"  {phase:>14}: {pct:5.1f}")
    print("\nPaper: the memcpy path saturates a core (~95 %); overlapped DMA")
    print("copies drop multi-megabyte streams to ~60 % while raising throughput.")


if __name__ == "__main__":
    main()
