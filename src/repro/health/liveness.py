"""Peer liveness: keepalives, silence deadlines, typed peer death.

The reliability layer handles *per-packet* loss; what it cannot see is a
peer that stops talking while we hold state for it — the classic case is a
large send whose RNDV was acked: the sender then waits for a NOTIFY that a
dead receiver will never produce, with pinned pages held forever.

The monitor tracks, per remote endpoint we have pending work with, when we
last heard *anything* from it.  After ``keepalive_interval`` of silence an
unsequenced KEEPALIVE is sent (whose arrival forces the peer to re-ack);
after ``peer_dead_timeout`` — chosen well beyond retransmit exhaustion
(8 x 500 us) and the pull watchdog budget — the peer is declared dead: a
typed :class:`~repro.core.errors.PeerDead` deterministically fails every
pending request to it and releases their skbuffs/pins.

The scan daemon is **demand-armed**: it starts when pending work appears
(:meth:`ensure_armed` from the driver's send/pull paths) and exits as soon
as no peer has pending work, so idle hosts add no events and ``sim.run()``
callers that expect full heap drainage still terminate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.mx.wire import EndpointAddr, MxPacket, PktType

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.driver import OmxDriver
    from repro.params import HealthParams


class PeerLivenessMonitor:
    """Per-driver keepalive/deadline tracking of remote endpoints."""

    def __init__(self, driver: "OmxDriver", params: "HealthParams"):
        self.driver = driver
        self.sim = driver.sim
        self.params = params
        #: when we last heard anything from each remote endpoint
        self.last_heard: dict[EndpointAddr, int] = {}
        #: when the current interest episode in a peer began (silence is
        #: measured from max(last_heard, first_interest) so a peer we never
        #: heard from is not declared dead retroactively)
        self._first_interest: dict[EndpointAddr, int] = {}
        self.dead: set[EndpointAddr] = set()
        self._armed = False
        # statistics
        self.keepalives_tx = 0
        self.keepalives_rx = 0
        self.peers_declared_dead = 0

    # -- driver-side notifications --------------------------------------

    def heard(self, peer: EndpointAddr) -> None:
        """Any packet from ``peer`` arrived (called from the BH callback)."""
        self.last_heard[peer] = self.sim.now
        # A resurrected peer may talk to us again; new work is allowed.
        self.dead.discard(peer)

    def ensure_armed(self) -> None:
        """Start the scan daemon if pending work exists and it is idle."""
        if not self.params.liveness_enabled or self._armed:
            return
        self._armed = True
        self.sim.daemon(self._scan_loop(),
                        name=f"liveness{self.driver.host.host_id}")

    # -- scan daemon ----------------------------------------------------

    def _pending_peers(self) -> dict[EndpointAddr, int]:
        """Peers we hold state for, mapped to a local endpoint id to speak
        from (lowest one with business toward the peer — deterministic)."""
        drv = self.driver
        peers: dict[EndpointAddr, int] = {}

        def note(peer: EndpointAddr, local_ep: int) -> None:
            if peer in self.dead:
                return
            cur = peers.get(peer)
            if cur is None or local_ep < cur:
                peers[peer] = local_ep

        for (local_ep, peer), sess in drv._tx_sessions.items():
            if sess.pending:
                note(peer, local_ep)
        for handle in drv._pulls.values():
            if not handle.done:
                note(handle.peer, handle.endpoint.addr.endpoint)
        for state in drv._large_sends.values():
            note(state.req.peer, state.endpoint.addr.endpoint)
        return peers

    def _scan_loop(self) -> Generator:
        interval = self.params.keepalive_interval
        while True:
            yield interval  # bare-int sleep
            peers = self._pending_peers()
            if not peers:
                # Disarm: no pending work means nothing to supervise; the
                # next send/pull re-arms us.  Keeps the event heap drainable.
                self._armed = False
                self._first_interest.clear()
                return
            now = self.sim.now
            for stale in [p for p in self._first_interest if p not in peers]:
                del self._first_interest[stale]
            for peer in sorted(peers):
                base = self._first_interest.setdefault(peer, now)
                ref = self.last_heard.get(peer)
                if ref is None or ref < base:
                    ref = base
                silence = now - ref
                if silence >= self.params.peer_dead_timeout:
                    self._declare_dead(peer, silence)
                elif silence >= interval:
                    self._send_keepalive(peer, peers[peer])

    def _send_keepalive(self, peer: EndpointAddr, local_ep: int) -> None:
        self.keepalives_tx += 1
        # Transmitted in kernel-timer context; _xmit_packet piggybacks our
        # cumulative ack, so the keepalive doubles as a lost-ack repair.
        self.driver._ctl_queue.put(MxPacket(
            ptype=PktType.KEEPALIVE,
            src=EndpointAddr(self.driver.host.host_id, local_ep), dst=peer,
        ))

    def _declare_dead(self, peer: EndpointAddr, silence: int) -> None:
        # Imported here, not at module scope: repro.core.__init__ pulls in
        # the driver, which imports this module — the health package must
        # stay importable from either direction (host wiring or driver).
        from repro.core.errors import PeerDead

        self.dead.add(peer)
        self.peers_declared_dead += 1
        trace = self.driver.host.trace
        if trace is not None and trace.enabled:
            trace.instant("events", f"peer {peer} DEAD ({silence} ns silent)",
                          "fault")
        err = PeerDead(peer, silence, pending=self._count_pending(peer))
        self.driver._queue_peer_death(peer, err)

    def _count_pending(self, peer: EndpointAddr) -> int:
        drv = self.driver
        n = sum(len(s.pending) for (_, p), s in drv._tx_sessions.items()
                if p == peer)
        n += sum(1 for h in drv._pulls.values()
                 if h.peer == peer and not h.done)
        n += sum(1 for s in drv._large_sends.values() if s.req.peer == peer)
        return n

    def register_metrics(self, reg) -> None:
        reg.counter("health", "keepalives_tx", lambda: self.keepalives_tx,
                    "proof-of-life probes sent to silent peers")
        reg.counter("health", "keepalives_rx", lambda: self.keepalives_rx)
        reg.counter("health", "peers_declared_dead",
                    lambda: self.peers_declared_dead)
        reg.gauge("health", "peers_dead", lambda: len(self.dead))
