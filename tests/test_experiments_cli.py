"""Smoke tests for the experiment registry and the omx-repro CLI."""

import os

import pytest

from repro.reporting.experiments import EXPERIMENTS, main, micro


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert set(EXPERIMENTS) == {
            "fig3", "fig7", "micro", "fig8", "fig9", "fig10", "fig11",
            "fig12", "nas", "engine_shootout", "fabric_sweep",
        }

    def test_micro_runs_standalone(self):
        table = micro()
        assert any("submission" in row[0] for row in table.rows)


class TestCli:
    def test_cli_runs_micro(self, capsys):
        assert main(["micro"]) == 0
        out = capsys.readouterr().out
        assert "350" in out

    def test_cli_quick_fig7_with_csv(self, tmp_path, capsys):
        csv = tmp_path / "fig7.csv"
        assert main(["fig7", "--quick", "--csv", str(csv)]) == 0
        assert csv.exists()
        header = csv.read_text().splitlines()[0]
        assert header.startswith("copy size,")

    def test_cli_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["fig99"])
