"""NAS IS kernel (§IV-D): "up to 10 % performance increase ... especially
on IS which relies on large messages"."""

import pytest

from conftest import show
from repro.reporting.experiments import nas


@pytest.mark.benchmark(group="nas")
def test_nas_is_improvement(once):
    table = once(nas, quick=False)
    show(table)
    times = {row[0]: float(row[1]) for row in table.rows}
    sortedness = {row[0]: row[3] for row in table.rows}

    # The kernel actually sorts on every stack.
    assert all(v == "yes" for v in sortedness.values())

    # I/OAT gives the IS-class improvement (paper: up to ~10 %).
    gain = times["Open-MX"] / times["Open-MX + I/OAT"] - 1.0
    assert gain > 0.05, f"I/OAT gain only {gain:+.1%}"

    # Open-MX without offload trails MXoE (as on every large workload).
    assert times["Open-MX"] >= times["MXoE"] * 0.95
