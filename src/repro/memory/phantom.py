"""Phantom-payload mode: charge copies without moving bytes (perf layer).

The simulator's cost model is *content-blind*: copy durations depend on
lengths, page offsets, cache residency and bus contention — never on the
byte values being moved.  Moving real bytes therefore only matters for the
end-to-end integrity checks of the test suite; for figure sweeps it is pure
wall-clock overhead (the very overhead the paper removes from the receive
path with I/OAT).

When phantom mode is active, bulk data-plane byte movement is elided while
every cost, counter and cache side effect is charged exactly as before:

* :func:`repro.memory.buffers.copy_bytes` (CPU memcpy, I/OAT descriptors,
  shared-memory strips) skips the store;
* :meth:`repro.memory.buffers.MemoryRegion.write` (NIC DMA deposit, native
  firmware deposit) skips the store;
* :meth:`repro.memory.buffers.MemoryRegion.fill_pattern` skips the fill.

Copies of at most :data:`INTEGRITY_FLOOR` bytes always move real bytes.
Control-plane payloads ride below the floor — tiny eager messages (<= 32 B),
the NAS IS count alltoall (4 B) and histogram allreduce (16 B), the PVFS
strip-id control packets (8 B) — so every *content-dependent* branch of the
workloads sees real data and simulated timings are bit-identical between
modes (``tests/test_perf_layer.py`` proves it).

Byte-moving integrity mode stays the default; figure sweeps
(:mod:`repro.reporting.sweeps`) default to phantom.  The ``REPRO_PHANTOM``
environment variable (``0``/``1``) overrides the sweep default.
"""

from __future__ import annotations

import os
from typing import Optional

#: copies at or below this length always move real bytes, keeping
#: control-plane payloads (counts, strip ids, tiny messages) intact
INTEGRITY_FLOOR = 64

_active = False


def set_active(on: bool) -> None:
    """Globally enable/disable phantom payload elision."""
    global _active
    _active = bool(on)


def is_active() -> bool:
    """True while phantom mode is on."""
    return _active


def elide(length: int) -> bool:
    """Should a byte movement of ``length`` be skipped right now?"""
    return _active and length > INTEGRITY_FLOOR


def env_default(default: bool = True) -> bool:
    """The phantom default for sweeps, honouring ``REPRO_PHANTOM``."""
    raw = os.environ.get("REPRO_PHANTOM")
    if raw is None or raw == "":
        return default
    return raw not in ("0", "false", "no", "off")


class phantom_payloads:
    """Context manager scoping phantom mode (used by sweeps and tests)."""

    def __init__(self, on: bool = True):
        self.on = on
        self._prev: Optional[bool] = None

    def __enter__(self) -> "phantom_payloads":
        self._prev = _active
        set_active(self.on)
        return self

    def __exit__(self, *exc) -> None:
        set_active(bool(self._prev))
