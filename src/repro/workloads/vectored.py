"""Highly-vectorial buffer workloads (§IV-A corner case).

"Such very small fragments may actually only be involved in Open-MX if the
application uses highly-vectorial buffers": when an application sends from
a scatter list of tiny segments, copies degrade into sub-kilobyte chunks
where I/OAT submission overhead dominates — the reason for the 1 kB
fragment threshold.

This module provides a measurement of copy cost versus segment size for
both engines, used by the threshold-ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.host import Host
from repro.memory.layout import iter_chunks
from repro.units import SEC


@dataclass
class VectoredCopyResult:
    segment: int
    total: int
    memcpy_ns: int
    ioat_submit_ns: int
    ioat_total_ns: int

    @property
    def memcpy_gib_s(self) -> float:
        return self.total * SEC / self.memcpy_ns / (1 << 30) if self.memcpy_ns else 0.0

    @property
    def ioat_gib_s(self) -> float:
        return self.total * SEC / self.ioat_total_ns / (1 << 30) if self.ioat_total_ns else 0.0


def measure_vectored_copy(host: Host, total: int, segment: int) -> VectoredCopyResult:
    """Cost of copying ``total`` bytes in ``segment``-sized pieces.

    Uses the analytic cost models directly (no event loop needed): memcpy
    setup per segment vs I/OAT descriptor submission + engine service per
    segment — the trade-off behind ``ioat_min_frag``.
    """
    params = host.params
    n_segments = sum(1 for _ in iter_chunks(0, total, segment))
    # memcpy: per-segment setup + uncached move
    move = int(round(total * SEC / params.memcpy.uncached_bw))
    memcpy_ns = n_segments * params.memcpy.setup_cost + move
    # I/OAT: CPU submission per descriptor; engine runs them in order
    submit = n_segments * params.ioat.submit_cost
    engine = sum(
        host.ioat_engine[0].service_time(n) for _, n in iter_chunks(0, total, segment)
    )
    return VectoredCopyResult(segment, total, memcpy_ns, submit, max(submit, engine))
