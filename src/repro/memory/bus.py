"""Memory-bus contention between CPU copies and NIC DMA ingress.

On the paper's FSB-era platform, the receive-side memcpy competes with the
NIC's DMA stream for chipset memory bandwidth ("severe pressure on the CPU
and memory bus", §II-B).  We model this with a fluid approximation: the bus
has a total bandwidth; the NIC's recent ingress rate is measured over a
sliding window; an uncached CPU copy, which moves ``traffic_multiplier``
bytes of bus traffic per payload byte, gets the residual share:

    effective_bw = clamp(min(cpu_bw, (total - nic_rate) / multiplier),
                         min_copy_bw, cpu_bw)

Cache-resident copies bypass the bus entirely.  The I/OAT engine sits inside
the memory chipset with its own paths (Fig. 4), so its transfers are not
throttled by this model either — that asymmetry is precisely why offloading
helps beyond just freeing the CPU.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.params import BusParams
from repro.units import SEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.scheduler import Simulator


class MemoryBus:
    """Sliding-window ingress tracking + residual-bandwidth arithmetic."""

    def __init__(self, sim: "Simulator", params: BusParams):
        self.sim = sim
        self.params = params
        self._ingress: deque[tuple[int, int]] = deque()  # (time, bytes)
        self._ingress_bytes_in_window = 0
        #: lifetime ingress bytes (diagnostics)
        self.total_ingress = 0

    # -- NIC side --------------------------------------------------------------

    def record_dma_write(self, nbytes: int) -> None:
        """Account a NIC (or other device) DMA write into host memory."""
        now = self.sim.now
        q = self._ingress
        q.append((now, nbytes))
        self._ingress_bytes_in_window += nbytes
        self.total_ingress += nbytes
        # Inline trim: one comparison in the common (nothing expired) case.
        horizon = now - self.params.rate_window
        if q[0][0] < horizon:
            w = self._ingress_bytes_in_window
            popleft = q.popleft
            while q and q[0][0] < horizon:
                w -= popleft()[1]
            self._ingress_bytes_in_window = w

    def _trim(self) -> None:
        horizon = self.sim.now - self.params.rate_window
        q = self._ingress
        while q and q[0][0] < horizon:
            _, nbytes = q.popleft()
            self._ingress_bytes_in_window -= nbytes

    def nic_ingress_rate(self) -> float:
        """Recent device-ingress rate in bytes/s."""
        self._trim()
        if not self._ingress:
            return 0.0
        return self._ingress_bytes_in_window * SEC / self.params.rate_window

    # -- CPU copy side ------------------------------------------------------------

    def effective_copy_bw(self, cpu_bw: float) -> float:
        """Uncached-copy bandwidth available right now (bytes/s)."""
        residual = (self.params.total_bw - self.nic_ingress_rate()) / self.params.traffic_multiplier
        bw = min(cpu_bw, residual)
        return max(bw, min(self.params.min_copy_bw, cpu_bw))
