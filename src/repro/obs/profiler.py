"""Simulated-time CPU profiler: phase attribution and the Fig. 9 report.

The busy-tick categories (``user``/``driver``/``bh``) reproduce the paper's
three Fig. 9 bands but cannot say *what* the BH band was doing — copying
fragments, submitting DMA descriptors, or spinning on completions.  A
:class:`PhaseProfiler` attached to a host's cores receives every
:meth:`~repro.simkernel.cpu.Core.busy` charge together with an optional
*phase* tag set at the call site (``frag_copy``, ``dma_submit``,
``dma_poll``, ``dma_wait``, ``syscall``, ``pin``, ``fallback_copy``...) and
accumulates per-core, per-phase busy ticks in simulated time.  Attachment
is explicit and off by default: an unattached core pays one ``is None``
check per charge.

:func:`fig9_report` drives the paper's Fig. 9 experiment through the sweep
executor (cached, parallelizable): receiver CPU usage versus message size,
memcpy versus I/OAT, with the phase decomposition alongside the classic
bands.  Calibration targets come from DESIGN.md §5 — ≈95 % vs ≈60 % of one
core at 16 MiB, ≈50 % vs ≈42 % at 32 kB.  The 32 kB point is measured in
the *rendezvous regime* (``medium_max`` lowered below 32 kB so the message
takes the pull path, ``ioat_min_msg`` lowered so offload applies): with the
default thresholds a 32 kB message is medium-eager and I/OAT never engages,
which would make the memcpy/I/OAT comparison degenerate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.units import KiB, MiB

if TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.cpu import Core, CpuSet
    from repro.simkernel.scheduler import Simulator


class PhaseProfiler:
    """Attributes per-core busy intervals to phases, in simulated time."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        #: cpu_id -> phase -> busy ticks
        self.by_core: dict[int, dict[str, int]] = {}
        #: cpu_id -> window start (reset together with the core's counters)
        self.window_start: dict[int, int] = {}

    def attach(self, cpus: "CpuSet") -> "PhaseProfiler":
        """Hook every core of ``cpus``; returns self for chaining."""
        for core in cpus.cores:
            core.profiler = self
        return self

    def detach(self, cpus: "CpuSet") -> None:
        for core in cpus.cores:
            if core.profiler is self:
                core.profiler = None

    # -- recording (called from Core.busy / Core.account) -------------------

    def record(self, core: "Core", category: str, phase: Optional[str],
               ticks: int) -> None:
        if not ticks:
            return
        key = phase if phase is not None else f"{category}:other"
        phases = self.by_core.get(core.cpu_id)
        if phases is None:
            phases = self.by_core[core.cpu_id] = {}
        phases[key] = phases.get(key, 0) + ticks

    def on_reset(self, core: "Core") -> None:
        """The core opened a fresh measurement window; follow it."""
        self.by_core.pop(core.cpu_id, None)
        self.window_start[core.cpu_id] = self.sim.now

    # -- reading -------------------------------------------------------------

    def phases(self, cores: Optional[Iterable["Core"]] = None) -> dict[str, int]:
        """Aggregate phase ticks (all profiled cores by default)."""
        agg: dict[str, int] = {}
        if cores is None:
            sources = self.by_core.values()
        else:
            sources = [self.by_core.get(c.cpu_id, {}) for c in cores]
        for phases in sources:
            for phase, ticks in phases.items():
                agg[phase] = agg.get(phase, 0) + ticks
        return agg

    def percent(self, elapsed: int,
                cores: Optional[Iterable["Core"]] = None) -> dict[str, float]:
        """Phase busy percent *of one core* (the Fig. 9 presentation)."""
        if elapsed <= 0:
            return {}
        return {
            phase: 100.0 * ticks / elapsed
            for phase, ticks in sorted(self.phases(cores).items())
        }


# ---------------------------------------------------------------------------
# the Fig. 9 sweep point (top-level: picklable for the process pool)
# ---------------------------------------------------------------------------


def point_cpu_profile(size: int, iters: int, ioat: bool, regcache: bool,
                      overrides: dict) -> dict:
    """One profiled stream run: Fig. 9 bands + phase decomposition."""
    from repro.cluster.testbed import build_testbed
    from repro.workloads import run_stream_usage

    tb = build_testbed(ioat_enabled=ioat, regcache_enabled=regcache, **overrides)
    receiver = tb.hosts[1]
    prof = PhaseProfiler(tb.sim).attach(receiver.cpus)
    u = run_stream_usage(tb, size, iterations=iters)
    return {
        "user_pct": u.user_pct,
        "driver_pct": u.driver_pct,
        "bh_pct": u.bh_pct,
        "total_pct": u.total_pct,
        "throughput_mib_s": u.throughput_mib_s,
        "phases_pct": prof.percent(u.window_ticks),
    }


# ---------------------------------------------------------------------------
# the Fig. 9 report
# ---------------------------------------------------------------------------

#: paper calibration targets: (size, mode) -> percent of one core
#: (DESIGN.md §5: 95 % vs 60 % at 16 MiB, 50 % vs 42 % at 32 kB)
PAPER_TARGETS = {
    (32 * KiB, "memcpy"): 50.0,
    (32 * KiB, "ioat"): 42.0,
    (16 * MiB, "memcpy"): 95.0,
    (16 * MiB, "ioat"): 60.0,
}

#: acceptance band around each target, in percent-of-one-core points —
#: wide because the model reproduces shapes and ratios, not exact heights
#: (EXPERIMENTS.md documents the honest deviations)
TOLERANCE_POINTS = 16.0

#: the 32 kB point runs in the rendezvous regime (see module docstring)
RNDV_REGIME_32K = {"medium_max": 16 * KiB, "ioat_min_msg": 32 * KiB}

_QUICK_SIZES = (32 * KiB, 1 * MiB, 16 * MiB)
_FULL_SIZES = (32 * KiB, 128 * KiB, 1 * MiB, 4 * MiB, 16 * MiB)


def _point_params(size: int, ioat: bool, quick: bool) -> dict:
    overrides = dict(RNDV_REGIME_32K) if size <= 32 * KiB else {}
    iters = 4 if size >= 4 * MiB else (6 if quick else 10)
    return {"size": size, "iters": iters, "ioat": ioat,
            "regcache": False, "overrides": overrides}


def fig9_report(quick: bool = True, executor=None) -> dict:
    """Receiver CPU usage vs message size, memcpy vs I/OAT, with phases.

    Returns a JSON-able report: one row per (size, mode) with the three
    classic bands, total percent, throughput and the phase decomposition,
    plus a per-target calibration verdict against :data:`PAPER_TARGETS`.
    """
    from repro.reporting.sweeps import SweepExecutor, point

    if executor is None:
        executor = SweepExecutor()
    sizes = _QUICK_SIZES if quick else _FULL_SIZES
    points = [
        point("cpu_profile", **_point_params(size, ioat, quick))
        for ioat in (False, True)
        for size in sizes
    ]
    values = iter(executor.run(points))

    rows = []
    by_key: dict[tuple[int, str], dict] = {}
    for ioat in (False, True):
        for size in sizes:
            u = next(values)
            mode = "ioat" if ioat else "memcpy"
            row = {
                "size": size, "mode": mode,
                "rndv_regime": size <= 32 * KiB,
                "user_pct": round(u["user_pct"], 1),
                "driver_pct": round(u["driver_pct"], 1),
                "bh_pct": round(u["bh_pct"], 1),
                "total_pct": round(u["total_pct"], 1),
                "throughput_mib_s": round(u["throughput_mib_s"], 1),
                "phases_pct": {k: round(v, 2)
                               for k, v in u["phases_pct"].items()},
            }
            rows.append(row)
            by_key[(size, mode)] = row

    calibration = []
    ok = True
    for (size, mode), target in sorted(PAPER_TARGETS.items()):
        row = by_key.get((size, mode))
        if row is None:
            continue
        measured = row["total_pct"]
        within = abs(measured - target) <= TOLERANCE_POINTS
        ok = ok and within
        calibration.append({
            "size": size, "mode": mode, "paper_pct": target,
            "measured_pct": measured, "tolerance_points": TOLERANCE_POINTS,
            "within_tolerance": within,
        })
    # the qualitative claims matter more than absolute heights: offload must
    # beat memcpy at every common size, decisively at multi-megabyte sizes
    for size in sizes:
        m, d = by_key[(size, "memcpy")], by_key[(size, "ioat")]
        ok = ok and d["total_pct"] < m["total_pct"]

    return {
        "figure": 9,
        "suite": "quick" if quick else "full",
        "rows": rows,
        "calibration": calibration,
        "calibration_ok": ok,
    }


def render_fig9(report: dict) -> str:
    """ASCII table of a :func:`fig9_report` result."""
    from repro.reporting.table import Table

    t = Table(
        "repro.obs: receiver CPU usage (% of one core) with phase profile",
        ["size", "mode", "user", "driver", "BH", "total", "MiB/s", "top phases"],
    )
    for row in report["rows"]:
        top = sorted(row["phases_pct"].items(), key=lambda kv: -kv[1])[:3]
        t.add_row(
            _fmt_size(row["size"]), row["mode"], row["user_pct"],
            row["driver_pct"], row["bh_pct"], row["total_pct"],
            row["throughput_mib_s"],
            " ".join(f"{k}={v:.1f}" for k, v in top),
        )
    lines = [t.render(), ""]
    for c in report["calibration"]:
        verdict = "ok" if c["within_tolerance"] else "OUT OF TOLERANCE"
        lines.append(
            f"  {_fmt_size(c['size'])} {c['mode']:>6}: paper {c['paper_pct']:.0f} % "
            f"-> measured {c['measured_pct']:.1f} % "
            f"(±{c['tolerance_points']:.0f} pts: {verdict})"
        )
    lines.append(f"  calibration_ok: {report['calibration_ok']}")
    return "\n".join(lines)


def _fmt_size(n: int) -> str:
    if n >= MiB:
        return f"{n // MiB} MiB"
    return f"{n // KiB} KiB"
