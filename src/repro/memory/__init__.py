"""Memory-system substrate: address spaces, pinning, caches, copy costs.

This package models everything the paper's copy paths depend on:

* :mod:`~repro.memory.layout` — page math and the page-aligned chunking that
  governs how copies are split into DMA descriptors (Fig. 7's x-axis).
* :mod:`~repro.memory.buffers` — numpy-backed memory regions and per-process
  address spaces.  All copies in the simulator move real bytes.
* :mod:`~repro.memory.pinning` — the get_user_pages/registration model with
  per-page costs.
* :mod:`~repro.memory.regcache` — the registration cache of Fig. 11.
* :mod:`~repro.memory.cache` — per-die shared L2 residency model (warm/cold
  copies, cache pollution; the basis of Fig. 10's three regimes).
* :mod:`~repro.memory.copyengine` — the CPU memcpy cost model.
* :mod:`~repro.memory.bus` — memory-bus contention between CPU copies and
  NIC DMA ingress.
"""

from repro.memory.buffers import AddressSpace, MemoryRegion
from repro.memory.bus import MemoryBus
from repro.memory.cache import L2Cache
from repro.memory.copyengine import CpuCopier
from repro.memory.layout import iter_chunks, page_aligned_chunks, pages_spanned
from repro.memory.pinning import PinnedRegion, Pinner
from repro.memory.regcache import RegistrationCache

__all__ = [
    "AddressSpace",
    "CpuCopier",
    "L2Cache",
    "MemoryBus",
    "MemoryRegion",
    "PinnedRegion",
    "Pinner",
    "RegistrationCache",
    "iter_chunks",
    "page_aligned_chunks",
    "pages_spanned",
]
