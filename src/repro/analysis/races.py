"""Schedule-race detector: replay under permuted same-timestamp tie-breaks.

The static rules (RACE001/ORD001/DET002) prove the *absence of known
patterns*; this module tests the property itself.  A scenario is
**schedule-race free** when its observable outcome — per-host counters,
the multiset of trace spans, the final simulated time — is identical under
every legal ordering of same-timestamp events.  The FIFO tie-break the
:class:`~repro.simkernel.scheduler.Simulator` ships is *one* such ordering;
:class:`~repro.simkernel.tiebreak.SeededShuffleTieBreak` generates others.
Running both and diffing the observations flushes out any hidden
dependence on tie order — the dynamic twin of the lint sweep, and the
property the sharded-parallel roadmap item needs proven before partition
boundaries can reorder deliveries.

Workflow (:class:`RaceDetector`):

1. run the scenario once under default FIFO — the **baseline**;
2. for each seed, run it again under a seeded shuffle of tie priorities;
3. diff the :class:`Observation`\\ s (volatile keys stripped, trace digests
   order-insensitive); identical → that permutation is clean;
4. on divergence, **bisect**: re-run under
   :class:`~repro.simkernel.tiebreak.PrefixShuffleTieBreak` with a binary
   search on the prefix length to find the minimal single tie-flip that
   still flips the outcome, then line up the two schedule logs and report
   the first diverging event with both schedules around it.

Scenarios are plain callables ``() -> Observation`` that build their own
simulator(s); the detector installs the tie-break policy via
:func:`~repro.simkernel.tiebreak.default_tiebreak`, so anything that
constructs a :class:`Simulator` inside the callable is covered —
including :func:`repro.cluster.testbed.build_testbed`.
:func:`workload_scenario` wraps the standard corpus (the fault-campaign
workloads pingpong / stream / incast plus the chunk-level ``fabric``
collective cell) into that shape; ``python -m repro.analysis --races``
sweeps them all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.registry import diff_snapshots
from repro.obs.trace import trace_digest
from repro.simkernel.tiebreak import (
    PrefixShuffleTieBreak,
    SeededShuffleTieBreak,
    default_tiebreak,
)

#: metrics that legitimately differ between observationally equivalent
#: runs: wall-clock is real time, and the event count varies because the
#: dispatcher elides hops whose callback list emptied — an order-dependent
#: *optimization*, not an order-dependent *outcome*
VOLATILE_METRICS = frozenset({"sim_wall_ms", "sim_events_processed"})

#: the standard ``--races`` corpus: the fault-campaign workloads plus the
#: fabric collective cell.  Deliberately NOT ``campaign.WORKLOADS`` —
#: the campaign matrix (and its bit-identical reports) must not grow a
#: cell when the race corpus does.
RACE_WORKLOADS = ("pingpong", "stream", "incast", "fabric")

#: schedule-log entries shown on each side of the first diverging event
CONTEXT = 3

#: hard cap on scenario re-runs during one bisection (a scenario with
#: ~2**20 pushes bisects in ~20 runs; the cap is a runaway guard)
MAX_BISECT_RUNS = 48


@dataclass
class Observation:
    """Everything the detector compares between two runs of a scenario."""

    counters: Dict[str, Dict[str, object]]  #: host name -> metric snapshot
    digests: Dict[str, str]                 #: host name -> trace digest
    end_time: int                           #: final simulated now (ns)
    pushes: int                             #: total heap pushes (bisect domain)
    schedule: List[Tuple[int, str]]         #: dispatch log [(time, label)]
    outcomes: Dict[str, str] = field(default_factory=dict)

    def equivalent(self, other: "Observation", strict: bool = False) -> bool:
        """Same observable outcome, ignoring volatile keys and ordering.

        By default the comparison is **host-relabel tolerant**: two
        observations match if some bijection of host names maps one onto
        the other.  Symmetric peers (the incast senders) race for the wire
        at t=0 and any tie-break decides who wins; the loser's timeline is
        the winner's with the names swapped, which is an isomorphism of
        the run, not a schedule race.  ``strict=True`` demands the
        identity mapping (useful when a scenario's hosts are known to be
        distinguishable).
        """
        if self.end_time != other.end_time:
            return False
        if self.outcomes != other.outcomes:
            return False
        if set(self.counters) != set(other.counters):
            return False
        if strict:
            for host, snap in self.counters.items():
                if diff_snapshots(snap, other.counters[host],
                                  exclude=VOLATILE_METRICS):
                    return False
            return self.digests == other.digests
        return self._canonical_hosts() == other._canonical_hosts()

    def _canonical_hosts(self) -> List[tuple]:
        """Per-host (filtered counters, trace digest) pairs, name-blind."""
        out = []
        for host, snap in self.counters.items():
            items = tuple(sorted((k, v) for k, v in snap.items()
                                 if k not in VOLATILE_METRICS))
            out.append((items, self.digests.get(host)))
        return sorted(out)


def observe_testbed(tb, schedule: List[Tuple[int, str]],
                    outcomes: Optional[Dict[str, str]] = None) -> Observation:
    """Package a finished testbed run into an :class:`Observation`."""
    counters = {h.name: h.metrics.snapshot() for h in tb.hosts}
    digests = {h.name: trace_digest(h.trace) for h in tb.hosts}
    return Observation(
        counters=counters,
        digests=digests,
        end_time=tb.sim.now,
        pushes=tb.sim._seq,
        schedule=schedule,
        outcomes=dict(outcomes or {}),
    )


@dataclass
class Divergence:
    """One permutation whose outcome differs from the FIFO baseline."""

    scenario: str
    seed: int
    counter_diffs: Dict[str, Dict[str, tuple]]  #: host -> {metric: (base, got)}
    digest_hosts: List[str]                     #: hosts with trace-set drift
    end_times: Tuple[int, int]
    outcome_diffs: Dict[str, Tuple[Optional[str], Optional[str]]]
    flip_index: Optional[int] = None     #: minimal tie-flip (push seq), if bisected
    diverge_at: Optional[int] = None     #: first differing schedule index
    baseline_window: List[Tuple[int, str]] = field(default_factory=list)
    variant_window: List[Tuple[int, str]] = field(default_factory=list)

    def format(self) -> str:
        lines = [f"{self.scenario}: seed {self.seed} diverges from FIFO baseline"]
        if self.end_times[0] != self.end_times[1]:
            lines.append(f"  end_time: {self.end_times[0]} != {self.end_times[1]}")
        for key, (a, b) in sorted(self.outcome_diffs.items()):
            lines.append(f"  outcome[{key}]: {a} != {b}")
        for host, diffs in sorted(self.counter_diffs.items()):
            for metric, (a, b) in sorted(diffs.items()):
                lines.append(f"  {host}.{metric}: {a} != {b}")
        for host in self.digest_hosts:
            lines.append(f"  {host}: trace span sets differ")
        if self.flip_index is not None:
            lines.append(f"  minimal tie-flip: push #{self.flip_index}")
        if self.diverge_at is not None:
            lines.append(f"  first diverging event at schedule index "
                         f"{self.diverge_at}:")
            lines.append("    baseline:")
            for t, label in self.baseline_window:
                lines.append(f"      {t:>12} ns  {label}")
            lines.append("    with flip:")
            for t, label in self.variant_window:
                lines.append(f"      {t:>12} ns  {label}")
        return "\n".join(lines)


@dataclass
class RaceReport:
    """Result of one scenario swept over N tie-break permutations."""

    scenario: str
    seeds: Tuple[int, ...]
    runs: int
    divergences: List[Divergence]

    @property
    def ok(self) -> bool:
        return not self.divergences

    def format(self) -> str:
        if self.ok:
            return (f"{self.scenario}: ok — {len(self.seeds)} permutation(s) "
                    f"equivalent to FIFO baseline ({self.runs} run(s))")
        return "\n".join(d.format() for d in self.divergences)


class RaceDetector:
    """Replays one scenario under permuted tie-breaks and diffs outcomes.

    ``scenario`` is a zero-argument callable returning an
    :class:`Observation`; every :class:`Simulator` it constructs picks up
    the detector's tie-break policy through
    ``Simulator.default_tiebreak_factory``.  ``bisect=False`` skips the
    minimal-flip search (the sessionstart quick-check does, to stay cheap:
    a divergence there aborts the suite either way).
    """

    def __init__(self, scenario: Callable[[], Observation],
                 name: str = "scenario",
                 seeds: Sequence[int] = (1, 2, 3),
                 bisect: bool = True, strict: bool = False):
        self.scenario = scenario
        self.name = name
        self.seeds = tuple(seeds)
        self.bisect = bisect
        self.strict = strict
        self.runs = 0

    # -- running ------------------------------------------------------------

    def _observe(self, factory) -> Observation:
        self.runs += 1
        with default_tiebreak(factory):
            return self.scenario()

    def run(self) -> RaceReport:
        self.runs = 0
        baseline = self._observe(None)
        divergences: List[Divergence] = []
        for seed in self.seeds:
            variant = self._observe(lambda: SeededShuffleTieBreak(seed))
            if baseline.equivalent(variant, self.strict):
                continue
            div = self._describe(baseline, variant, seed)
            if self.bisect:
                self._bisect(baseline, seed, div)
            divergences.append(div)
        return RaceReport(self.name, self.seeds, self.runs, divergences)

    # -- divergence analysis ------------------------------------------------

    def _describe(self, base: Observation, got: Observation,
                  seed: int) -> Divergence:
        counter_diffs = {}
        for host in sorted(set(base.counters) | set(got.counters)):
            diffs = diff_snapshots(base.counters.get(host, {}),
                                   got.counters.get(host, {}),
                                   exclude=VOLATILE_METRICS)
            if diffs:
                counter_diffs[host] = diffs
        digest_hosts = sorted(
            h for h in set(base.digests) | set(got.digests)
            if base.digests.get(h) != got.digests.get(h)
        )
        outcome_diffs = {
            k: (base.outcomes.get(k), got.outcomes.get(k))
            for k in set(base.outcomes) | set(got.outcomes)
            if base.outcomes.get(k) != got.outcomes.get(k)
        }
        return Divergence(self.name, seed, counter_diffs, digest_hosts,
                          (base.end_time, got.end_time), outcome_diffs)

    def _bisect(self, baseline: Observation, seed: int,
                div: Divergence) -> None:
        """Find the minimal tie-flip prefix that still diverges.

        ``PrefixShuffleTieBreak(seed, limit)`` applies the seed's shuffled
        priorities to the first ``limit`` pushes only, drawing (and
        discarding) the same RNG stream beyond it — so runs at ``limit``
        and ``limit - 1`` differ in exactly one tie assignment.  ``limit=0``
        is FIFO (clean by construction); a large enough limit reproduces
        the full shuffle (divergent by hypothesis); binary search lands on
        the smallest divergent prefix.
        """
        budget = [MAX_BISECT_RUNS]

        def diverges(limit: int) -> Optional[Observation]:
            if budget[0] <= 0:
                return None
            budget[0] -= 1
            obs = self._observe(lambda: PrefixShuffleTieBreak(seed, limit))
            return None if baseline.equivalent(obs, self.strict) else obs

        # The divergent run may push more than the baseline did; grow the
        # prefix until it reproduces the divergence.
        hi = max(baseline.pushes, 1)
        hi_obs = diverges(hi)
        while hi_obs is None and budget[0] > 0:
            hi *= 2
            hi_obs = diverges(hi)
        if hi_obs is None:
            return  # budget exhausted without reproducing; report unbisected
        lo = 0
        while hi - lo > 1 and budget[0] > 0:
            mid = (lo + hi) // 2
            obs = diverges(mid)
            if obs is None:
                lo = mid
            else:
                hi, hi_obs = mid, obs
        div.flip_index = hi
        self._first_divergence(baseline, hi_obs, div)

    def _first_divergence(self, base: Observation, got: Observation,
                          div: Divergence) -> None:
        a, b = base.schedule, got.schedule
        n = min(len(a), len(b))
        idx = next((i for i in range(n) if a[i] != b[i]), None)
        if idx is None:
            if len(a) == len(b):
                return  # identical dispatch logs; divergence is sub-event
            idx = n
        div.diverge_at = idx
        lo = max(0, idx - CONTEXT)
        div.baseline_window = a[lo:idx + CONTEXT + 1]
        div.variant_window = b[lo:idx + CONTEXT + 1]


# ---------------------------------------------------------------------------
# standard scenario corpus: the fault-campaign workloads, fault-free
# ---------------------------------------------------------------------------


def workload_scenario(workload: str, size: int = 4096,
                      iters: int = 2) -> Callable[[], Observation]:
    """A detector scenario running one campaign workload with no faults.

    Reuses the fault campaign's workload builders and testbed wiring
    (pingpong / stream / incast, I/OAT enabled) so the race sweep exercises
    the same end-to-end paths the fault grid does.  Traces are enabled
    *unbounded*: a bounded ring drops the oldest spans in recording order,
    which would leak tie order back into the digest.
    """
    from repro.faults import campaign

    if workload not in RACE_WORKLOADS:
        raise ValueError(f"unknown workload {workload!r}")
    if workload == "fabric":
        # the chunk-level fabric cell: a small 2-tier fat-tree allreduce
        from repro.fabric.sweep import fabric_scenario

        return fabric_scenario(size=size)
    build = {
        "pingpong": campaign._workload_pingpong,
        "stream": campaign._workload_stream,
        "incast": campaign._workload_incast,
    }[workload]

    def scenario() -> Observation:
        tb = campaign._build_testbed(workload)
        schedule = tb.sim.record_schedule()
        for host in tb.hosts:
            host.trace.enabled = True
        transfers = build(tb, size, iters)
        tb.sim.run(until=campaign.CELL_DEADLINE,
                   max_events=campaign.CELL_MAX_EVENTS)
        outcomes = {key: transfers[key].classify()[0]
                    for key in sorted(transfers)}
        return observe_testbed(tb, schedule, outcomes)

    return scenario


def check_workload(workload: str, size: int = 4096, iters: int = 2,
                   seeds: Sequence[int] = (1, 2, 3),
                   bisect: bool = True) -> RaceReport:
    """Race-check one standard workload; the CLI's unit of work."""
    det = RaceDetector(workload_scenario(workload, size, iters),
                       name=f"{workload}/{size}B x{iters}",
                       seeds=seeds, bisect=bisect)
    return det.run()


def standard_reports(seeds: Sequence[int] = (1, 2, 3),
                     workloads: Optional[Iterable[str]] = None,
                     size: int = 4096, iters: int = 2,
                     bisect: bool = True) -> List[RaceReport]:
    """Sweep the standard corpus; ``--races`` renders these."""
    names = list(workloads) if workloads is not None else list(RACE_WORKLOADS)
    return [check_workload(w, size=size, iters=iters, seeds=seeds,
                           bisect=bisect) for w in names]
