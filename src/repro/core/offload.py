"""The copy-offload manager: the heart of the paper's contribution (§III).

For each large-message fragment arriving in the BH, decide:

* **memcpy** — when I/OAT is disabled, the message is below ``ioat_min_msg``
  (64 kB), or the fragment below ``ioat_min_frag`` (1 kB): copy now on the
  CPU and free the skbuff immediately.
* **I/OAT offload** — replace the copy with descriptor submissions (~350 ns
  each) on the message's assigned DMA channel and release the CPU at once;
  the skbuff stays alive until the hardware finishes (§III-A, Fig. 6).

Resource tracking (§III-B): pending (skbuff, ticket) pairs are kept per
message; :meth:`OffloadManager.cleanup` polls the backend once and frees the
skbuffs of every completed copy.  It is called whenever a new pull block is
requested and when the retransmission timer fires — bounding the pool of
queued skbuffs.  ``max_pending_skbuffs`` is a hard cap: beyond it the
fragment is copied synchronously instead (memory-starvation guard).

Since DESIGN.md §15 the engine itself is pluggable: the manager decides
*whether* to copy on the CPU (policy, thresholds, breaker gating, healing)
while a :class:`~repro.core.backends.CopyBackend` decides *how* an
offloaded fragment is executed (which lanes, what submission shape).  The
``"ioat"`` backend reproduces the paper's engine schedule-identically.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Optional

from repro.core.backends import create_backend
from repro.ethernet.skbuff import Skbuff
from repro.ioat.channel import DmaChannel
from repro.memory.buffers import MemoryRegion

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.host import Host
    from repro.params import OmxConfig
    from repro.simkernel.cpu import Core


@dataclass
class PendingCopy:
    """One fragment awaiting asynchronous completion.

    The copy geometry is retained so that a channel failure can be healed:
    if the engine aborted this copy, the reaper redoes it with memcpy
    before freeing the skbuff (graceful degradation — the transfer still
    completes, just without the offload win).
    """

    #: completion handle: a DmaCookie or a multi-lane LaneTicket — both
    #: expose ``done`` / ``failed`` / ``channel``
    cookie: object
    skb: Skbuff
    skb_off: int
    dst: MemoryRegion
    dst_off: int
    length: int


class MessageOffloadState:
    """Per-large-message offload context: one DMA channel, pending frags."""

    def __init__(self, channel: DmaChannel):
        self.channel = channel
        self.pending: deque[PendingCopy] = deque()
        self.offloaded_bytes = 0
        self.copied_bytes = 0
        #: every breaker was open at assignment time: copy this whole
        #: message on the CPU instead of submitting to a tripped channel
        self.memcpy_only = False
        #: backend-private per-message scratch (e.g. a lane-striping cursor)
        self.backend_state = None

    @property
    def pending_count(self) -> int:
        return len(self.pending)


class OffloadManager:
    """Decides and executes per-fragment copies for the receive path."""

    def __init__(self, host: "Host", config: "OmxConfig"):
        self.host = host
        self.config = config
        #: the engine executing offloaded copies (DESIGN.md §15)
        self.backend = create_backend(host, config)
        # statistics
        self.frags_offloaded = 0
        self.frags_memcpy = 0
        self.cleanups = 0
        self.skbuffs_reaped = 0
        self.starvation_fallbacks = 0
        #: copies redone on the CPU because the DMA channel aborted them
        self.fallback_copies = 0
        #: offloads refused because the channel's circuit breaker is open
        self.breaker_shortcircuits = 0
        #: messages steered off a tripped channel at assignment time
        self.breaker_reroutes = 0
        #: messages degraded to memcpy because every breaker was open
        self.breaker_exhausted = 0

    def register_metrics(self, reg) -> None:
        """Publish offload decisions into a metrics registry."""
        reg.counter("offload", "offload_frags_dma", lambda: self.frags_offloaded)
        reg.counter("offload", "offload_frags_memcpy", lambda: self.frags_memcpy)
        reg.counter("offload", "offload_cleanups", lambda: self.cleanups)
        reg.counter("offload", "offload_skbuffs_reaped",
                    lambda: self.skbuffs_reaped)
        reg.counter("offload", "offload_starvation_fallbacks",
                    lambda: self.starvation_fallbacks,
                    "fragments copied synchronously at the skbuff cap")
        reg.counter("offload", "offload_fallback_copies",
                    lambda: self.fallback_copies,
                    "copies redone on the CPU after a channel failure")
        reg.counter("offload", "offload_breaker_shortcircuits",
                    lambda: self.breaker_shortcircuits,
                    "offloads refused while the channel breaker was open")
        reg.counter("offload", "offload_breaker_reroutes",
                    lambda: self.breaker_reroutes,
                    "messages assigned away from a tripped channel")
        reg.counter("offload", "offload_breaker_exhausted",
                    lambda: self.breaker_exhausted,
                    "messages degraded to memcpy with every breaker open")
        self.backend.register_metrics(reg)

    # -- policy -------------------------------------------------------------

    def new_message_state(self) -> MessageOffloadState:
        """Per-message context; channels are assigned round-robin per
        message (§V: one channel per message), steering around channels
        whose circuit breaker is open."""
        engine = self.backend.engine
        channel = engine.allocate_channel()
        health = self.host.health
        if health is not None and not health.allows_offload(channel):
            # Continue the round-robin draw instead of restarting the scan
            # from channels[0], which herded every rerouted message onto
            # the first healthy channel: drawing keeps advancing the
            # cursor, so rerouted messages spread over all healthy
            # channels.  At most n-1 further draws — each channel is seen
            # once.
            for _ in range(len(engine.channels) - 1):
                candidate = engine.allocate_channel()
                if health.allows_offload(candidate):
                    self.breaker_reroutes += 1
                    return MessageOffloadState(candidate)
            # Every breaker is open: degrade the whole message to memcpy
            # rather than silently submitting to a tripped channel.
            self.breaker_exhausted += 1
            state = MessageOffloadState(channel)
            state.memcpy_only = True
            return state
        return MessageOffloadState(channel)

    def should_offload(self, state: MessageOffloadState, msg_len: int, frag_len: int) -> bool:
        """The §IV-A thresholds, gated by the channel's circuit breaker."""
        if not self.config.ioat_enabled or self.config.ignore_bh_copy:
            return False
        backend = self.backend
        if not backend.offloads:
            return False
        health = self.host.health
        if state.memcpy_only:
            # Assignment found every breaker open.  Each refused fragment
            # still signals offload demand so recovery probes keep flowing.
            if health is not None:
                health.allows_offload(state.channel)
            self.breaker_shortcircuits += 1
            return False
        if state.channel.failed:
            # Dead channel: stop submitting to it, copy on the CPU instead —
            # and feed the refusal into the breaker's failure history, so a
            # channel that stays dead trips to OPEN and recovery is probed
            # (the abort events alone only cover copies in flight at the
            # moment of failure).
            if health is not None:
                health.record_fallback(state.channel)
            return False
        if health is not None and not health.allows_offload(state.channel):
            # Breaker open: memcpy-only until a half-open probe re-opens it.
            self.breaker_shortcircuits += 1
            return False
        if (msg_len < backend.min_msg(self.config)
                or frag_len < backend.min_frag(self.config)):
            return False
        if state.pending_count >= self.config.max_pending_skbuffs:
            self.starvation_fallbacks += 1
            return False
        return True

    # -- execution (BH context: caller holds the core) ------------------------

    def copy_fragment(
        self,
        core: "Core",
        state: MessageOffloadState,
        skb: Skbuff,
        skb_off: int,
        dst: MemoryRegion,
        dst_off: int,
        length: int,
        msg_len: int,
    ) -> Generator:
        """Copy one fragment by the chosen mechanism.

        Returns True if the fragment was offloaded (skbuff retained), False
        if it was copied synchronously (skbuff freed by the caller).
        """
        if self.config.ignore_bh_copy:
            # Fig. 3 prediction mode: the copy is skipped entirely.
            return False
        if self.should_offload(state, msg_len, length):
            yield from self.backend.submit_fragment(
                core, state, skb, skb_off, dst, dst_off, length
            )
            self.frags_offloaded += 1
            return True
        copier = self.host.copier
        src = skb.head
        cost = copier.copy_cost(core, src, skb_off, dst, dst_off, length)
        if cost:
            yield cost  # bare-int sleep, as memcpy itself would
        copier.commit(core, src, skb_off, dst, dst_off, length, "bh", cost,
                      phase="frag_copy")
        state.copied_bytes += length
        self.frags_memcpy += 1
        return False

    def cleanup(self, core: "Core", state: MessageOffloadState) -> Generator:
        """§III-B cleanup routine: poll once, free completed skbuffs.

        Invoked when a new block request is sent and when the retransmit
        timer expires.  Returns the number of skbuffs released.
        """
        if not state.pending:
            return 0
        backend = self.backend
        token = yield from backend.poll_pending(core, state)
        self.cleanups += 1
        freed = 0
        while state.pending and backend.ticket_done(state.pending[0].cookie,
                                                    token):
            entry = state.pending.popleft()
            yield from self._heal_if_failed(core, state, entry)
            entry.skb.free()
            freed += 1
        self.skbuffs_reaped += freed
        backend.reap_state(state)
        return freed

    def wait_all(self, core: "Core", state: MessageOffloadState) -> Generator:
        """Last-fragment path (§III-A): busy-poll until every pending copy
        of this message completed, then free the remaining skbuffs."""
        if not state.pending:
            return 0
        yield from self.backend.drain_state(core, state)
        freed = 0
        while state.pending:
            entry = state.pending.popleft()
            yield from self._heal_if_failed(core, state, entry)
            entry.skb.free()
            freed += 1
        self.skbuffs_reaped += freed
        self.backend.reap_state(state)
        return freed

    def _heal_if_failed(
        self, core: "Core", state: MessageOffloadState, entry: PendingCopy
    ) -> Generator:
        """Redo an aborted DMA copy with memcpy (channel-failure fallback)."""
        if not entry.cookie.failed:
            return
        yield from self.host.copier.memcpy(
            core, entry.skb.head, entry.skb_off, entry.dst, entry.dst_off,
            entry.length, "bh", phase="fallback_copy",
        )
        state.offloaded_bytes -= entry.length
        state.copied_bytes += entry.length
        self.fallback_copies += 1
        # Thread the failure into the owning lane's breaker: without this,
        # repeated heals never accumulate history and a permanently dead
        # channel keeps being picked, healed, and picked again forever.
        # Multi-lane tickets blame the lane that actually aborted.
        if self.host.health is not None:
            self.host.health.record_fallback(entry.cookie.channel)
