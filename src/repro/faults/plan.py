"""Fault plans: declarative, JSON-serializable, seeded fault schedules.

A :class:`FaultPlan` is pure data — which layers misbehave, how much, and
when — with no reference to any live testbed.  That keeps plans cacheable
by the sweep executor (they round-trip through JSON) and makes a campaign
cell's identity fully describable by ``(workload, size, plan, seed)``.

Determinism: probabilistic specs (frame loss etc.) draw from a
``random.Random`` seeded with a *string* derived from the plan seed and the
spec's position.  CPython seeds string inputs through SHA-512, so the
schedule is identical across platforms and runs — the property the
campaign's bit-identical-report check rests on.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import Optional

from repro.units import KiB, us


@dataclass(frozen=True)
class LinkFaultSpec:
    """Per-frame randomized faults on one link direction.

    Rates are independent probabilities folded into a single draw per
    frame (at most one fault per frame, drop winning over duplicate over
    corrupt over reorder).  ``first_index``/``last_index`` bound the
    attack window in serialized-frame indices; ``port`` selects the
    switch-port link on switched testbeds (ignored back-to-back).
    """

    direction_a2b: bool = True
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    corrupt_rate: float = 0.0
    reorder_rate: float = 0.0
    #: extra delivery delay for reordered frames (ticks)
    reorder_delay: int = us(30)
    first_index: int = 0
    last_index: Optional[int] = None
    port: Optional[int] = None
    #: optional (start, stop) *tick* windows; when non-empty, faults only
    #: fire inside them (a "flapping" link).  The RNG still draws exactly
    #: once per in-index-window frame so the schedule stays a pure
    #: function of (seed, frame index) regardless of timing windows.
    windows: tuple = ()


@dataclass(frozen=True)
class NicFaultSpec:
    """Receive-ring exhaustion: drop all rx frames inside the windows."""

    node: int
    #: (start, stop) tick windows, half-open
    windows: tuple = ()


@dataclass(frozen=True)
class SwitchFaultSpec:
    """Egress-queue overflow: tail-drop on one port inside the windows."""

    port: int
    windows: tuple = ()


@dataclass(frozen=True)
class IoatFaultSpec:
    """I/OAT channel fault: failure, transient stall, or recovery at ``at``.

    ``channel=None`` hits every channel of the node's engine — the
    whole-chipset failure the memcpy-fallback path must survive.
    ``action="recover"`` un-fails a previously failed channel (chipset
    reset), which is what lets soak plans chain fail→recover cycles and
    exercise the circuit breaker's half-open probe path.
    """

    node: int
    action: str = "fail"  # "fail" | "stall" | "recover"
    at: int = us(100)
    #: stall duration (ticks); ignored for "fail"/"recover"
    duration: int = us(200)
    channel: Optional[int] = None

    def __post_init__(self) -> None:
        if self.action not in ("fail", "stall", "recover"):
            raise ValueError(f"unknown ioat fault action {self.action!r}")


@dataclass(frozen=True)
class FabricFaultSpec:
    """Kill (or revive) one *named* fabric link at absolute time ``at``.

    ``link`` is the spec-level ``"a~b"`` name (either orientation); on a
    fabric world the kill recomputes the seeded ECMP tables and strands
    in-queue chunks onto deterministic detours — or fails their messages
    with :class:`~repro.core.errors.FabricPartitioned` when no path is
    left.  Unlike the frame-level specs above this targets the chunk-level
    :class:`~repro.fabric.network.FabricNetwork`, so it composes with the
    fat-tree/dragonfly topologies the frame-level models never see.
    """

    link: str
    action: str = "kill"  # "kill" | "revive"
    at: int = 0

    def __post_init__(self) -> None:
        if self.action not in ("kill", "revive"):
            raise ValueError(f"unknown fabric fault action {self.action!r}")


@dataclass(frozen=True)
class FabricDegradeSpec:
    """Gray failure: one named link slows down instead of dying.

    From ``at`` (until ``until``, or forever when None) the link serializes
    at ``bw_factor`` of its spec'd bandwidth and adds ``extra_latency``
    ticks of propagation per chunk/frame.  Nothing is dropped — this is the
    failure mode that never shows up in a binary kill matrix, and exactly
    what the per-link health estimator scores DEGRADED from occupancy.
    """

    link: str
    at: int = 0
    #: effective-bandwidth multiplier (0 < bw_factor <= 1)
    bw_factor: float = 0.25
    #: extra per-hop propagation delay (ticks)
    extra_latency: int = 0
    until: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.bw_factor <= 1.0:
            raise ValueError(f"bw_factor must be in (0, 1], got {self.bw_factor}")
        if self.extra_latency < 0:
            raise ValueError("extra_latency must be >= 0")


@dataclass(frozen=True)
class FabricFlapSpec:
    """Seeded up/down duty cycle on one named link.

    The link dies at each down-edge and revives at each up-edge, for
    ``cycles`` cycles of ``period`` ticks starting at ``at``; the link is
    *up* for ``duty`` of each cycle.  ``jitter`` perturbs each edge by up to
    that fraction of the period, drawn from ``random.Random`` seeded with
    the plan seed and the link name — the schedule is pure data (see
    :func:`flap_windows`) so two runs flap identically.
    """

    link: str
    at: int = us(50)
    period: int = us(400)
    duty: float = 0.5
    cycles: int = 3
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 0 or self.cycles < 1:
            raise ValueError("flap needs a positive period and >= 1 cycle")
        if not 0.0 < self.duty < 1.0:
            raise ValueError(f"duty must be in (0, 1), got {self.duty}")
        if not 0.0 <= self.jitter < 0.5:
            raise ValueError(f"jitter must be in [0, 0.5), got {self.jitter}")


@dataclass(frozen=True)
class FabricLossySpec:
    """Per-chunk (or per-frame) drop probability on one named link."""

    link: str
    drop_rate: float = 0.05
    at: int = 0
    until: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.drop_rate <= 1.0:
            raise ValueError(f"drop_rate must be in (0, 1], got {self.drop_rate}")


@dataclass(frozen=True)
class RankFaultSpec:
    """Crash-stop: kill one fabric rank (by index) at absolute time ``at``.

    The rank's process is terminated mid-collective; a grace window later
    the fabric liveness layer declares it dead and fails every survivor's
    pending request with :class:`~repro.core.errors.RankDead`.
    """

    rank: int
    at: int = us(100)

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError("rank must be >= 0")


def flap_windows(spec: FabricFlapSpec, seed: str) -> tuple:
    """The (down_start, down_end) tick windows of one flap schedule.

    A pure function of (spec, seed): the RNG is seeded from the plan seed
    and the link name only, so arming the same plan twice — or replaying
    it under a shuffled tie-break — yields the identical schedule.
    """
    rng = random.Random(f"{seed}:flap:{spec.link}")
    windows = []
    up = int(spec.period * spec.duty)
    for cycle in range(spec.cycles):
        start = spec.at + cycle * spec.period + up
        end = spec.at + (cycle + 1) * spec.period
        if spec.jitter:
            span = int(spec.period * spec.jitter)
            start += rng.randrange(-span, span + 1)
            end += rng.randrange(-span, span + 1)
        if end > start >= 0:
            windows.append((start, end))
    return tuple(windows)


@dataclass(frozen=True)
class FaultPlan:
    """One named, seeded composition of fault specs across the layers."""

    name: str
    seed: str = "0"
    links: tuple = ()
    nics: tuple = ()
    switches: tuple = ()
    ioat: tuple = ()
    fabric: tuple = ()
    #: gray-failure fabric axes (degrade / flap / lossy named links)
    degrade: tuple = ()
    flap: tuple = ()
    lossy: tuple = ()
    #: crash-stop rank failures (fabric worlds only)
    ranks: tuple = ()

    def fabric_axes(self) -> tuple:
        """Every spec that names a fabric link, across all four link axes."""
        return self.fabric + self.degrade + self.flap + self.lossy

    # -- JSON round-trip -------------------------------------------------

    def to_dict(self) -> dict:
        d = asdict(self)
        for key in ("links", "nics", "switches", "ioat", "fabric",
                    "degrade", "flap", "lossy", "ranks"):
            d[key] = list(d[key])
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        def tup(spec_cls, entries):
            out = []
            for e in entries:
                e = dict(e)
                if "windows" in e:
                    e["windows"] = tuple(tuple(w) for w in e["windows"])
                out.append(spec_cls(**e))
            return tuple(out)

        return cls(
            name=d["name"],
            seed=d.get("seed", "0"),
            links=tup(LinkFaultSpec, d.get("links", ())),
            nics=tup(NicFaultSpec, d.get("nics", ())),
            switches=tup(SwitchFaultSpec, d.get("switches", ())),
            ioat=tup(IoatFaultSpec, d.get("ioat", ())),
            fabric=tup(FabricFaultSpec, d.get("fabric", ())),
            degrade=tup(FabricDegradeSpec, d.get("degrade", ())),
            flap=tup(FabricFlapSpec, d.get("flap", ())),
            lossy=tup(FabricLossySpec, d.get("lossy", ())),
            ranks=tup(RankFaultSpec, d.get("ranks", ())),
        )


def standard_plans(seed: str = "campaign") -> list[FaultPlan]:
    """The stock plan library the quick campaign sweeps.

    Each plan targets one failure mode the reliability layer claims to
    survive; "clean" is the control cell the others are compared against.
    """
    return [
        FaultPlan(name="clean", seed=seed),
        # Data-direction loss: retransmission must recover both eager
        # fragments and pull replies.
        FaultPlan(
            name="lossy-data", seed=seed,
            links=(LinkFaultSpec(direction_a2b=True, drop_rate=0.05),),
        ),
        # ACK-direction loss: exercises the duplicate-arrival re-ack path
        # (a lost ACK must not livelock the sender into dead-lettering).
        FaultPlan(
            name="lossy-acks", seed=seed,
            links=(LinkFaultSpec(direction_a2b=False, drop_rate=0.10),),
        ),
        # Duplication + reordering + the odd bad FCS, both directions.
        FaultPlan(
            name="dup-reorder", seed=seed,
            links=(
                LinkFaultSpec(direction_a2b=True, dup_rate=0.04,
                              reorder_rate=0.06, corrupt_rate=0.02),
                LinkFaultSpec(direction_a2b=False, dup_rate=0.04,
                              reorder_rate=0.06),
            ),
        ),
        # Receiver NIC rx-ring exhaustion: two starvation windows.
        FaultPlan(
            name="rx-ring-stall", seed=seed,
            nics=(NicFaultSpec(
                node=1,
                windows=((us(60), us(140)), (us(400), us(480))),
            ),),
        ),
        # I/OAT chipset failure mid-run on the receiver: the offload path
        # must degrade to memcpy and still complete every transfer.
        FaultPlan(
            name="ioat-fail", seed=seed,
            ioat=(IoatFaultSpec(node=1, action="fail", at=us(80)),),
        ),
        # Transient channel stall: completion merely arrives late.
        FaultPlan(
            name="ioat-stall", seed=seed,
            ioat=(IoatFaultSpec(node=1, action="stall", at=us(60),
                                duration=us(300)),),
        ),
    ]


#: message sizes the quick campaign crosses with the plans: small eager,
#: multi-fragment medium, just-over-rendezvous, and a pull big enough to
#: keep several blocks in flight
QUICK_SIZES = (1 * KiB, 16 * KiB, 48 * KiB, 256 * KiB)


def soak_plans(seed: str = "soak") -> list[FaultPlan]:
    """The soak library: long chained fault schedules (DESIGN.md §12).

    Where the quick campaign fires one fault per cell, these chain whole
    degradation arcs — fail→recover cycles that walk the circuit breaker
    through trip/half-open/reopen, flapping links whose loss comes in
    windows, and bursty fan-in congestion — so the health layer's steady
    state (not just its first reaction) is what gets soaked.
    """
    from repro.units import ms

    return [
        # Receiver I/OAT chipset flaps: stall, hard-fail, recover, fail
        # again, recover again.  Every fail leg must trip the per-channel
        # breakers to memcpy; every recover leg must let a half-open
        # probe re-open them.
        FaultPlan(
            name="ioat-flap", seed=seed,
            ioat=(
                IoatFaultSpec(node=1, action="stall", at=us(60),
                              duration=us(300)),
                IoatFaultSpec(node=1, action="fail", at=us(500)),
                IoatFaultSpec(node=1, action="recover", at=ms(2)),
                IoatFaultSpec(node=1, action="fail", at=ms(3)),
                IoatFaultSpec(node=1, action="recover", at=ms(4)),
            ),
        ),
        # Flapping link: heavy bidirectional loss inside several windows,
        # clean in between.  Retransmission must ride through each flap
        # and the backoff state must decay once the link heals.
        FaultPlan(
            name="link-flap", seed=seed,
            links=(
                LinkFaultSpec(direction_a2b=True, drop_rate=0.40,
                              windows=((us(60), us(600)),
                                       (us(900), ms(1) + us(500)),
                                       (ms(2), ms(2) + us(500)))),
                LinkFaultSpec(direction_a2b=False, drop_rate=0.30,
                              windows=((us(150), us(700)),
                                       (ms(1) + us(400), ms(2)))),
            ),
        ),
        # Incast bursts: the fan-in receiver's NIC ring starves in
        # windows while its I/OAT fails and recovers underneath —
        # receive-side degradation plus fan-in retransmit storms, the
        # combination backpressure exists to keep survivable.
        FaultPlan(
            name="incast-burst", seed=seed,
            nics=(NicFaultSpec(
                node=0,
                windows=((us(100), us(260)), (us(700), us(900)),
                         (ms(1) + us(400), ms(1) + us(600))),
            ),),
            ioat=(
                IoatFaultSpec(node=0, action="fail", at=us(400)),
                IoatFaultSpec(node=0, action="recover", at=ms(1) + us(200)),
            ),
        ),
    ]
