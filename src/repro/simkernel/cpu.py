"""CPU cores with per-category busy-time accounting.

The paper's Fig. 9 decomposes receive-side CPU usage into *user-library*,
*driver* (system-call command processing, including memory pinning) and
*BH receive* (bottom-half packet processing).  To reproduce it, every piece
of simulated CPU work runs on a :class:`Core` and is tagged with a category
string; the core accumulates busy ticks per category.

A core is a FIFO :class:`~repro.simkernel.resources.Resource` of capacity 1:
work segments queue and contention emerges naturally (e.g. a softirq and a
user process pinned to the same core slow each other down, as on the real
machine).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator, Iterable, Optional

from repro.simkernel.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.scheduler import Simulator


@dataclass
class BusyCounters:
    """Accumulated busy time (ticks) per category since the last reset."""

    by_category: dict[str, int] = field(default_factory=dict)
    window_start: int = 0

    def add(self, category: str, ticks: int) -> None:
        self.by_category[category] = self.by_category.get(category, 0) + ticks

    def total(self) -> int:
        return sum(self.by_category.values())


class Core:
    """A single CPU core: FIFO execution with busy accounting."""

    def __init__(self, sim: "Simulator", cpu_id: int, socket: int = 0, die: int = 0):
        self.sim = sim
        self.cpu_id = cpu_id
        #: physical package index (Fig. 10 cross-socket placement)
        self.socket = socket
        #: die index within the socket; cores on one die share an L2 cache
        self.die = die
        self.res = Resource(sim, 1, name=f"core{cpu_id}")
        self.counters = BusyCounters()
        #: set by the host to the L2 cache shared by this core's die
        self.l2cache = None
        #: optional :class:`repro.obs.profiler.PhaseProfiler`; when attached,
        #: busy time is additionally attributed to fine-grained phases
        self.profiler = None

    # -- execution ---------------------------------------------------------

    def execute(self, duration: int, category: str) -> Generator:
        """Acquire the core, stay busy ``duration`` ticks, release.

        ``yield from`` this from a process.  Returns the actual completion
        time.
        """
        yield self.res.request()
        try:
            yield from self.busy(duration, category)
        finally:
            self.res.release()
        return self.sim.now

    def busy(self, duration: int, category: str, phase: Optional[str] = None) -> Generator:
        """Consume ``duration`` busy ticks; the caller must hold the core.

        ``phase`` optionally tags the work for an attached
        :class:`~repro.obs.profiler.PhaseProfiler` (no cost when none is).
        """
        if duration < 0:
            raise ValueError("negative duration")
        if duration:
            # Bare-int sleep: same schedule as `yield sim.timeout(duration)`
            # with zero Event/Timeout allocation — this line runs once per
            # simulated work segment, millions of times per figure.
            yield duration
        d = self.counters.by_category
        d[category] = d.get(category, 0) + duration
        if self.profiler is not None:
            self.profiler.record(self, category, phase, duration)
        return self.sim.now

    # -- accounting ---------------------------------------------------------

    def account(self, category: str, ticks: int, phase: Optional[str] = None) -> None:
        """Charge already-elapsed held-core time (busy-wait accounting).

        For paths that held the core across a wait and know the elapsed
        ticks after the fact (e.g. spinning on DMA completion) — the single
        accounting point shared by the category counters and the profiler.
        """
        d = self.counters.by_category
        d[category] = d.get(category, 0) + ticks
        if self.profiler is not None:
            self.profiler.record(self, category, phase, ticks)

    def reset_counters(self) -> None:
        """Start a fresh measurement window at the current time."""
        self.counters = BusyCounters(window_start=self.sim.now)
        if self.profiler is not None:
            self.profiler.on_reset(self)

    def busy_fraction(self, category: Optional[str] = None) -> float:
        """Busy fraction of this core over the current window."""
        elapsed = self.sim.now - self.counters.window_start
        if elapsed <= 0:
            return 0.0
        if category is None:
            return self.counters.total() / elapsed
        return self.counters.by_category.get(category, 0) / elapsed


class CpuSet:
    """All cores of a host, with topology helpers and aggregate accounting."""

    def __init__(
        self,
        sim: "Simulator",
        n_sockets: int = 2,
        dies_per_socket: int = 2,
        cores_per_die: int = 2,
    ):
        self.sim = sim
        self.cores: list[Core] = []
        cpu_id = 0
        for s in range(n_sockets):
            for d in range(dies_per_socket):
                for _ in range(cores_per_die):
                    self.cores.append(Core(sim, cpu_id, socket=s, die=s * dies_per_socket + d))
                    cpu_id += 1
        self.n_sockets = n_sockets
        self.dies_per_socket = dies_per_socket
        self.cores_per_die = cores_per_die

    def __len__(self) -> int:
        return len(self.cores)

    def __getitem__(self, i: int) -> Core:
        return self.cores[i]

    def on_die(self, die: int) -> list[Core]:
        """Cores sharing L2 cache ``die``."""
        return [c for c in self.cores if c.die == die]

    def reset_counters(self, cores: Optional[Iterable[Core]] = None) -> None:
        for c in cores if cores is not None else self.cores:
            c.reset_counters()

    def busy_by_category(self, cores: Optional[Iterable[Core]] = None) -> dict[str, int]:
        """Aggregate busy ticks per category across ``cores`` (default all)."""
        agg: dict[str, int] = {}
        for c in cores if cores is not None else self.cores:
            for cat, ticks in c.counters.by_category.items():
                agg[cat] = agg.get(cat, 0) + ticks
        return agg

    def usage_percent(
        self, elapsed: int, cores: Optional[Iterable[Core]] = None
    ) -> dict[str, float]:
        """Busy percent *of one core* per category over ``elapsed`` ticks.

        This matches the paper's Fig. 9 presentation, where 100 % means one
        fully-saturated core.
        """
        if elapsed <= 0:
            return {}
        return {
            cat: 100.0 * ticks / elapsed
            for cat, ticks in self.busy_by_category(cores).items()
        }
