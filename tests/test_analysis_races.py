"""The schedule-race detector (repro.analysis.races).

The load-bearing test is the planted-bug regression: a scenario with a
deliberate order-dependent bug (first same-timestamp callback "wins" a
claim) must be *caught* — divergence reported, bisected to a minimal tie
flip, first diverging event localized — and the repaired version of the
same scenario (winner decided from data, not firing order) must sweep
clean.  A detector that cannot fail its target is not a detector.
"""

import json

import pytest

from repro.analysis.races import (
    Observation,
    RaceDetector,
    check_workload,
    workload_scenario,
)
from repro.simkernel import Simulator

pytestmark = pytest.mark.lint


# ---------------------------------------------------------------------------
# planted-bug scenario: same-timestamp claim race
# ---------------------------------------------------------------------------


def _claim_scenario(fixed):
    """Three peers race to claim a slot at t=10.

    Buggy flavor: each peer gets its own t=10 event and the *first to
    fire* wins — i.e. the winner is whatever the tie-break says, which
    under default FIFO is dict insertion order.  Fixed flavor: one event
    computes the winner from the data (``min``), so no ordering — FIFO or
    adversarial — can change it.
    """

    def scenario():
        sim = Simulator()
        schedule = sim.record_schedule()
        winner = []
        claims = {}
        for name in ("b", "a", "c"):  # insertion order is NOT sorted order
            claims[name] = name

        if fixed:
            def decide():
                winner.append(min(claims))
            sim.call_at(10, decide)
        else:
            for n in claims:
                def claim(n=n):
                    if not winner:
                        winner.append(n)
                claim.__qualname__ = f"claim_{n}"
                sim.call_at(10, claim)
        sim.run()
        return Observation(
            counters={"host0": {"winner": winner[0]}},
            digests={},
            end_time=sim.now,
            pushes=sim._seq,
            schedule=schedule,
        )

    return scenario


def test_detector_catches_planted_order_bug():
    det = RaceDetector(_claim_scenario(fixed=False), name="claim-race",
                       seeds=(1, 2, 3, 4, 5))
    report = det.run()
    assert not report.ok
    div = report.divergences[0]
    assert div.counter_diffs["host0"]["winner"][0] == "b"  # FIFO: insertion order
    assert div.counter_diffs["host0"]["winner"][1] != "b"
    rendered = report.format()
    assert "host0.winner" in rendered


def test_detector_bisects_to_minimal_tie_flip():
    det = RaceDetector(_claim_scenario(fixed=False), name="claim-race",
                       seeds=range(1, 10))
    report = det.run()
    assert not report.ok
    div = report.divergences[0]
    # The scenario pushes 3 claim events; the minimal flip must be one of
    # them, and re-running at (flip, flip-1) isolated the first diverging
    # dispatch with context from both schedules.
    assert div.flip_index is not None and div.flip_index <= 3
    assert div.diverge_at is not None
    base_labels = [l for _, l in div.baseline_window]
    var_labels = [l for _, l in div.variant_window]
    assert base_labels != var_labels
    assert any("claim_" in l for l in base_labels)
    assert "first diverging event" in div.format()


def test_fixed_scenario_sweeps_clean():
    det = RaceDetector(_claim_scenario(fixed=True), name="claim-fixed",
                       seeds=(1, 2, 3, 4, 5))
    report = det.run()
    assert report.ok, report.format()
    assert report.runs == 6  # baseline + 5 permutations, no bisection runs


# ---------------------------------------------------------------------------
# the standard corpus is clean
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("workload", ["pingpong", "stream", "incast"])
def test_standard_workload_is_race_free(workload):
    report = check_workload(workload, size=2048, iters=1, seeds=(1, 2))
    assert report.ok, report.format()


def test_workload_scenario_observation_shape():
    obs = workload_scenario("stream", size=2048, iters=1)()
    assert set(obs.outcomes.values()) == {"completed"}
    assert obs.pushes > 0 and obs.end_time > 0
    assert obs.schedule and obs.schedule[0][0] <= obs.schedule[-1][0]
    assert set(obs.counters) == set(obs.digests) == {"node0", "node1"}


def test_unknown_workload_rejected():
    with pytest.raises(ValueError):
        workload_scenario("warpdrive")


# ---------------------------------------------------------------------------
# CLI plumbing
# ---------------------------------------------------------------------------


def test_cli_races_clean_exit(capsys):
    from repro.analysis.cli import main

    assert main(["--races", "--seeds", "1", "--workloads", "stream",
                 "--size", "2048", "--iters", "1"]) == 0
    assert "ok" in capsys.readouterr().err


def test_cli_races_json(capsys):
    from repro.analysis.cli import main

    assert main(["--races", "--seeds", "1", "--workloads", "stream",
                 "--size", "2048", "--iters", "1", "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    (report,) = doc["reports"]
    assert report["ok"] is True and report["divergences"] == []


def test_cli_races_rejects_bad_args(capsys):
    from repro.analysis.cli import main

    assert main(["--races", "--workloads", "warpdrive"]) == 2
    assert main(["--races", "--seeds", "0"]) == 2


def test_cli_lint_json_nonzero_on_findings(tmp_path, capsys):
    from repro.analysis.cli import main

    dirty = tmp_path / "dirty.py"
    dirty.write_text(
        "def bh(pool):\n    skb = pool.alloc_rx()\n    skb.data_len = 1\n"
    )
    assert main(["--format", "json", str(dirty)]) == 1
    doc = json.loads(capsys.readouterr().out)
    (finding,) = doc["findings"]
    assert finding["code"] == "SKB001" and finding["line"] == 2
    assert doc["files"] == 1
