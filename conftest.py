"""Repo-root pytest configuration.

Makes ``src/`` importable without an editable install and loads the
analysis pytest plugin (``@pytest.mark.sanitize`` support).
"""

import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent / "src"))

pytest_plugins = ["repro.analysis.pytest_plugin"]
