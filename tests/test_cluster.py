"""Tests for host assembly, topology helpers and testbed factories."""

import pytest

from repro import build_testbed, clovertown_5000x
from repro.cluster.host import Host
from repro.cluster.testbed import build_single_node
from repro.simkernel import Simulator


class TestHostTopology:
    @pytest.fixture
    def host(self):
        return Host(Simulator(), clovertown_5000x())

    def test_eight_cores_four_dies(self, host):
        assert len(host.cpus) == 8
        assert len(host.caches) == 4
        dies = {c.die for c in host.cpus.cores}
        assert dies == {0, 1, 2, 3}

    def test_cores_share_die_l2(self, host):
        for core in host.cpus.cores:
            assert core.l2cache is host.caches[core.die]
        a, b = host.cpus.on_die(1)
        assert a.l2cache is b.l2cache

    def test_irq_core_is_core0(self, host):
        assert host.irq_core.cpu_id == 0
        assert host.user_core(0).cpu_id == 1

    def test_same_die_pair_shares_cache_and_avoids_irq_die(self, host):
        a, b = host.core_same_die_pair()
        assert a.die == b.die
        assert a.die != host.irq_core.die

    def test_cross_socket_pair_spans_packages(self, host):
        a, b = host.core_cross_socket_pair()
        assert a.socket != b.socket

    def test_host_ids_unique(self):
        sim = Simulator()
        plat = clovertown_5000x()
        h1, h2 = Host(sim, plat), Host(sim, plat)
        assert h1.host_id != h2.host_id

    def test_user_spaces_disjoint(self, host):
        a = host.user_space("p1").alloc(100)
        b = host.user_space("p2").alloc(100)
        assert a.addr != b.addr

    def test_ioat_channels_wired_to_caches(self, host):
        for ch in host.ioat_engine.channels:
            assert ch.caches is host.caches


class TestTestbedFactories:
    def test_two_node_default(self):
        tb = build_testbed()
        assert len(tb.hosts) == 2
        assert tb.link is not None

    def test_single_node_has_no_link(self):
        tb = build_single_node()
        assert len(tb.hosts) == 1
        assert tb.link is None

    def test_mixed_stacks(self):
        tb = build_testbed(stacks=("omx", "mx"))
        from repro.core.driver import OmxStack
        from repro.mx.native import NativeMxStack

        assert isinstance(tb.stacks[0], OmxStack)
        assert isinstance(tb.stacks[1], NativeMxStack)

    def test_unknown_stack_rejected(self):
        with pytest.raises(ValueError):
            build_testbed(stacks="tcp")

    def test_omx_overrides_propagate(self):
        tb = build_testbed(ioat_enabled=True, ioat_min_msg=123456)
        assert tb.platform.omx.ioat_min_msg == 123456
        assert tb.stacks[0].config.ioat_enabled
