"""Pytest integration for the runtime sanitizers.

Loaded from the repo-root ``conftest.py``.  Opt-in per test::

    @pytest.mark.sanitize
    def test_pingpong():
        tb = build_testbed()
        ...

Every :class:`~repro.cluster.testbed.Testbed` constructed while a
``sanitize``-marked test runs is watched automatically; at teardown the
simulator is drained (bounded, so a wedged scenario fails instead of
hanging) and :meth:`Sanitizer.assert_clean` turns any leaked skbuff, DMA
cookie, or pinned page into a test failure with acquire-site backtraces.

Tests that want the sanitizer object itself (e.g. to call ``check(strict=
True)`` or read per-channel pending counts) can accept the ``sanitizer``
fixture explicitly.

``@pytest.mark.racecheck`` parametrizes a test over same-timestamp
tie-break policies (FIFO plus seeded shuffles): every simulator the test
builds picks the active policy up through
``Simulator.default_tiebreak_factory``, so a test that asserts exact
counters under every policy has *demonstrated* its scenario is
schedule-race free.  Session start also runs a 3-permutation race
quick-check of the pingpong workload next to the lint sweep
(``REPRO_SKIP_RACECHECK=1`` skips it).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

#: drain bound at teardown; generously above any test scenario's event count
_QUIESCE_MAX_EVENTS = 10_000_000


def pytest_sessionstart(session):
    """Tier-1 gate: sweep the shipped tree with repro-lint before any test.

    A dirty tree aborts the session immediately — the simulator-aware rules
    (SKB001, DMA001, SIM001, ...) catch resource-leak and determinism bugs
    that individual tests may not exercise.  ``REPRO_SKIP_LINT=1`` skips the
    sweep (e.g. while iterating on a known-dirty tree).
    """
    if os.environ.get("REPRO_SKIP_LINT"):
        return
    import repro
    from repro.analysis.lint import lint_paths

    findings, _n_files = lint_paths([Path(repro.__file__).resolve().parent])
    if findings:
        raise pytest.UsageError(
            "repro-lint found problems in the shipped tree "
            "(set REPRO_SKIP_LINT=1 to bypass):\n"
            + "\n".join(f.format() for f in findings)
        )
    _race_quickcheck()


def _race_quickcheck():
    """Tier-1 gate: a 3-permutation race check of the pingpong workload.

    The cheapest scenario in the standard corpus, no bisection — the point
    is an early, loud abort when a schedule race slips into the tree, not a
    diagnosis (run ``python -m repro.analysis --races`` for that).
    ``REPRO_SKIP_RACECHECK=1`` skips it.
    """
    if os.environ.get("REPRO_SKIP_RACECHECK"):
        return
    from repro.analysis.races import check_workload

    report = check_workload("pingpong", size=2048, iters=1,
                            seeds=(1, 2, 3), bisect=False)
    if not report.ok:
        raise pytest.UsageError(
            "schedule-race quick-check failed: pingpong diverges under "
            "permuted same-timestamp tie-breaks (set REPRO_SKIP_RACECHECK=1 "
            "to bypass):\n" + report.format()
        )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "sanitize: watch every Testbed built by this test with the runtime "
        "resource sanitizers and fail on leaked skbuffs/cookies/pins",
    )
    config.addinivalue_line(
        "markers",
        "lint: static-analysis self-checks (tier-1: rule goldens + clean sweep)",
    )
    config.addinivalue_line(
        "markers",
        "faults: fault-injection campaign tests (repro.faults); "
        "deselect with -m 'not faults'",
    )
    config.addinivalue_line(
        "markers",
        "racecheck: run this test under FIFO plus seeded-shuffle "
        "same-timestamp tie-breaks; its assertions must hold under all",
    )


#: tie-break policies a ``racecheck``-marked test runs under
_RACECHECK_POLICIES = ("fifo", "shuffle:1", "shuffle:2")


def pytest_generate_tests(metafunc):
    if metafunc.definition.get_closest_marker("racecheck") is None:
        return
    metafunc.fixturenames.append("_racecheck_policy")
    metafunc.parametrize("_racecheck_policy", _RACECHECK_POLICIES,
                         ids=lambda p: p.replace(":", ""))


@pytest.fixture
def _racecheck_policy(request):
    """Install the parametrized tie-break policy for the test's duration."""
    from repro.simkernel.tiebreak import SeededShuffleTieBreak, default_tiebreak

    spec = request.param
    if spec == "fifo":
        factory = None
    else:
        seed = spec.split(":", 1)[1]
        factory = lambda: SeededShuffleTieBreak(seed)  # noqa: E731
    with default_tiebreak(factory):
        yield spec


@pytest.fixture
def sanitizer(monkeypatch):
    """A :class:`Sanitizer` auto-attached to every Testbed the test builds."""
    from repro.analysis.sanitizers import Sanitizer
    from repro.cluster.testbed import Testbed

    san = Sanitizer()
    testbeds = []
    orig_init = Testbed.__init__

    def watching_init(self, *args, **kwargs):
        orig_init(self, *args, **kwargs)
        san.watch_testbed(self)
        testbeds.append(self)

    # Patch the class, not build_testbed: test modules bind build_testbed
    # by value at import time (`from repro import build_testbed`).
    monkeypatch.setattr(Testbed, "__init__", watching_init)
    san._testbeds = testbeds
    return san


@pytest.fixture(autouse=True)
def _sanitize_marked_tests(request):
    """Autouse shim: ``@pytest.mark.sanitize`` pulls in the sanitizer."""
    if request.node.get_closest_marker("sanitize") is None:
        yield
        return
    san = request.getfixturevalue("sanitizer")
    yield
    for tb in san._testbeds:
        tb.sim.run(max_events=_QUIESCE_MAX_EVENTS)
    san.assert_clean()
