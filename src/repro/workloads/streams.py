"""Unidirectional stream of synchronous large messages (Fig. 9).

Node 0 sends ``iterations`` back-to-back blocking messages of one size to
node 1; the receiver's CPU usage is decomposed into the paper's three bands
— user-library, driver (syscalls incl. pinning) and BH receive — measured
over the steady-state window and expressed as percent of one core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.mx.wire import EndpointAddr
from repro.units import throughput_mib_s

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.testbed import Testbed


@dataclass
class StreamUsage:
    """Receiver-side usage for one (size, config) stream run."""

    size: int
    iterations: int
    throughput_mib_s: float
    #: percent of one core, by category
    user_pct: float
    driver_pct: float
    bh_pct: float
    #: simulated length of the steady-state measurement window, in ticks
    #: (what the percentages are relative to; profilers reuse it)
    window_ticks: int = 0

    @property
    def total_pct(self) -> float:
        return self.user_pct + self.driver_pct + self.bh_pct


def run_stream_usage(tb: "Testbed", size: int, iterations: int = 12,
                     warmup: int = 2, max_events: Optional[int] = 120_000_000) -> StreamUsage:
    """Stream ``iterations`` messages of ``size`` bytes node0 → node1."""
    ep0 = tb.open_endpoint(0, 0)
    ep1 = tb.open_endpoint(1, 0)
    c0, c1 = tb.user_core(0), tb.user_core(1)
    sbuf = ep0.space.alloc(size)
    rbuf = ep1.space.alloc(size)
    sbuf.fill_pattern(1)
    receiver_host = tb.hosts[1]
    marks = {}
    done = tb.sim.event("stream-done")

    def sender():
        for _ in range(warmup + iterations):
            req = yield from ep0.isend(c0, ep1.addr, 0x11, sbuf, 0, size)
            yield from ep0.wait(c0, req)

    def receiver():
        for i in range(warmup + iterations):
            req = yield from ep1.irecv(c1, 0x11, ~0, rbuf, 0, size)
            yield from ep1.wait(c1, req)
            if i == warmup - 1:
                # Steady state begins: open the measurement window.
                receiver_host.cpus.reset_counters()
                marks["start"] = tb.sim.now
        marks["end"] = tb.sim.now
        done.succeed()

    tb.sim.process(sender(), name="stream-sender")
    tb.sim.process(receiver(), name="stream-receiver")
    tb.sim.run_until(done, max_events=max_events)

    elapsed = marks["end"] - marks["start"]
    usage = receiver_host.cpus.usage_percent(elapsed)
    return StreamUsage(
        size=size,
        iterations=iterations,
        throughput_mib_s=throughput_mib_s(size * iterations, elapsed),
        user_pct=usage.get("user", 0.0),
        driver_pct=usage.get("driver", 0.0),
        bh_pct=usage.get("bh", 0.0),
        window_ticks=elapsed,
    )
