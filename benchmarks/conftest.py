"""Shared helpers for the figure-regeneration benchmarks.

Every benchmark wraps one experiment runner from
:mod:`repro.reporting.experiments`.  The simulation itself measures
*simulated* time; pytest-benchmark records the wall-clock cost of
regenerating the figure (single round — the simulators are deterministic,
so repetition adds no information).  Run with ``-s`` to see the reproduced
figures/tables inline.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a figure generator exactly once under pytest-benchmark."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return run


def show(result) -> None:
    """Print a reproduced figure/table (visible with -s)."""
    print()
    print(result.render())
