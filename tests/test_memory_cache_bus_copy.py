"""Tests for the L2 cache model, bus contention and the memcpy cost model."""

import pytest

from repro.memory import AddressSpace, CpuCopier, L2Cache, MemoryBus
from repro.memory.cache import CacheDirectory
from repro.params import CacheParams, HostParams
from repro.simkernel import Simulator
from repro.simkernel.cpu import CpuSet
from repro.units import GiB, KiB, MiB, PAGE_SIZE, SEC, us


@pytest.fixture
def cache():
    return L2Cache(CacheParams(capacity=16 * PAGE_SIZE))


class TestL2Cache:
    def test_initially_cold(self, cache):
        assert cache.residency(0, PAGE_SIZE) == 0.0

    def test_touch_warms(self, cache):
        cache.touch(0, 4 * PAGE_SIZE)
        assert cache.residency(0, 4 * PAGE_SIZE) == 1.0

    def test_partial_residency(self, cache):
        cache.touch(0, 2 * PAGE_SIZE)
        assert cache.residency(0, 4 * PAGE_SIZE) == pytest.approx(0.5)

    def test_lru_eviction(self, cache):
        cache.touch(0, 16 * PAGE_SIZE)  # fills capacity
        cache.touch(100 * PAGE_SIZE, PAGE_SIZE)  # evicts the oldest page
        assert cache.residency(0, PAGE_SIZE) == 0.0
        assert cache.residency(PAGE_SIZE, PAGE_SIZE) == 1.0

    def test_touch_refreshes_lru(self, cache):
        cache.touch(0, 16 * PAGE_SIZE)
        cache.touch(0, PAGE_SIZE)  # refresh page 0
        cache.touch(100 * PAGE_SIZE, PAGE_SIZE)
        assert cache.residency(0, PAGE_SIZE) == 1.0  # survived
        assert cache.residency(PAGE_SIZE, PAGE_SIZE) == 0.0  # page 1 evicted

    def test_invalidate(self, cache):
        cache.touch(0, 4 * PAGE_SIZE)
        cache.invalidate(PAGE_SIZE, PAGE_SIZE)
        assert cache.residency(0, 4 * PAGE_SIZE) == pytest.approx(0.75)

    def test_empty_range_is_resident(self, cache):
        assert cache.residency(0, 0) == 1.0

    def test_directory_invalidate_all(self):
        d = CacheDirectory(CacheParams(), n_dies=4)
        for c in d.caches:
            c.touch(0, PAGE_SIZE)
        d.invalidate_all(0, PAGE_SIZE)
        assert all(c.residency(0, PAGE_SIZE) == 0.0 for c in d.caches)


class TestMemoryBus:
    def test_idle_bus_no_throttle(self):
        sim = Simulator()
        params = HostParams()
        bus = MemoryBus(sim, params.bus)
        assert bus.effective_copy_bw(params.memcpy.uncached_bw) == pytest.approx(
            params.memcpy.uncached_bw
        )

    def test_ingress_throttles_copies(self):
        sim = Simulator()
        params = HostParams()
        bus = MemoryBus(sim, params.bus)
        # Simulate line-rate ingress over the rate window: ~1.16 GiB/s.
        frame = 9 * KiB
        n = int(1.16 * GiB * (params.bus.rate_window / SEC) / frame)
        for i in range(n):
            sim.now = i * params.bus.rate_window // n
            bus.record_dma_write(frame)
        eff = bus.effective_copy_bw(params.memcpy.uncached_bw)
        assert eff < params.memcpy.uncached_bw
        assert eff >= params.bus.min_copy_bw

    def test_rate_window_expires(self):
        sim = Simulator()
        params = HostParams()
        bus = MemoryBus(sim, params.bus)
        bus.record_dma_write(1 * MiB)
        sim.now = params.bus.rate_window * 2
        assert bus.nic_ingress_rate() == 0.0

    def test_floor_respected(self):
        sim = Simulator()
        params = HostParams()
        bus = MemoryBus(sim, params.bus)
        # Absurd ingress: copies still get the floor.
        bus.record_dma_write(10 * GiB)
        eff = bus.effective_copy_bw(params.memcpy.uncached_bw)
        assert eff == pytest.approx(params.bus.min_copy_bw)


def make_copier():
    sim = Simulator()
    params = HostParams()
    cpus = CpuSet(sim, params.n_sockets, params.dies_per_socket, params.cores_per_die)
    caches = CacheDirectory(params.cache, params.n_sockets * params.dies_per_socket)
    bus = MemoryBus(sim, params.bus)
    copier = CpuCopier(params, bus, caches)
    return sim, params, cpus, caches, copier


def run_copy(sim, core, copier, src, dst, length, chunk=None):
    def work():
        yield core.res.request()
        cost = yield from copier.memcpy(core, src, 0, dst, 0, length, "test", chunk=chunk)
        core.res.release()
        return cost

    return sim.run_until(sim.process(work()))


class TestCpuCopier:
    def test_moves_real_bytes(self):
        sim, _, cpus, _, copier = make_copier()
        space = AddressSpace()
        src, dst = space.alloc(8 * KiB), space.alloc(8 * KiB)
        src.fill_pattern(3)
        run_copy(sim, cpus[0], copier, src, dst, 8 * KiB)
        assert bytes(dst.read()) == bytes(src.read())

    def test_cold_copy_near_uncached_bw(self):
        sim, params, cpus, _, copier = make_copier()
        space = AddressSpace()
        src, dst = space.alloc(1 * MiB), space.alloc(1 * MiB)
        cost = run_copy(sim, cpus[0], copier, src, dst, 1 * MiB)
        bw = 1 * MiB * SEC / cost
        assert bw == pytest.approx(params.memcpy.uncached_bw, rel=0.1)

    def test_warm_copy_much_faster(self):
        sim, params, cpus, caches, copier = make_copier()
        space = AddressSpace()
        src, dst = space.alloc(256 * KiB), space.alloc(256 * KiB)
        cold = run_copy(sim, cpus[0], copier, src, dst, 256 * KiB)
        warm = run_copy(sim, cpus[0], copier, src, dst, 256 * KiB)
        assert warm < cold / 2
        bw = 256 * KiB * SEC / warm
        assert bw == pytest.approx(params.cache.cached_copy_bw, rel=0.15)

    def test_copy_larger_than_cache_stays_slow(self):
        sim, params, cpus, _, copier = make_copier()
        space = AddressSpace()
        n = 16 * MiB  # 4x the L2
        src, dst = space.alloc(n), space.alloc(n)
        first = run_copy(sim, cpus[0], copier, src, dst, n)
        second = run_copy(sim, cpus[0], copier, src, dst, n)
        # Re-copying does not go cached: the working set was evicted.
        assert second >= first * 0.8

    def test_remote_socket_penalty(self):
        sim, params, cpus, caches, copier = make_copier()
        space = AddressSpace()
        src, dst = space.alloc(256 * KiB), space.alloc(256 * KiB)
        # Warm the source in a cache on the *other* socket (die index beyond
        # dies_per_socket) relative to core 0.
        remote_die = params.dies_per_socket  # first die of socket 1
        caches[remote_die].touch(src.addr, len(src))
        cost_remote = run_copy(sim, cpus[0], copier, src, dst, 256 * KiB)
        bw = 256 * KiB * SEC / cost_remote
        expected = params.memcpy.uncached_bw * params.memcpy.remote_socket_factor
        assert bw == pytest.approx(expected, rel=0.1)

    def test_chunking_adds_setup_cost(self):
        sim, params, cpus, _, copier = make_copier()
        space = AddressSpace()
        src, dst = space.alloc(64 * KiB), space.alloc(64 * KiB)
        big_chunks = copier.copy_cost(cpus[0], src, 0, dst, 0, 64 * KiB, chunk=4096)
        small_chunks = copier.copy_cost(cpus[0], src, 0, dst, 0, 64 * KiB, chunk=256)
        assert small_chunks > big_chunks
        n_extra = 64 * KiB // 256 - 64 * KiB // 4096
        assert small_chunks - big_chunks == n_extra * params.memcpy.setup_cost

    def test_pollution_evicts_other_data(self):
        sim, params, cpus, caches, copier = make_copier()
        space = AddressSpace()
        victim = space.alloc(1 * MiB)
        caches[0].touch(victim.addr, len(victim))
        assert caches[0].residency(victim.addr, len(victim)) == 1.0
        src, dst = space.alloc(4 * MiB), space.alloc(4 * MiB)
        run_copy(sim, cpus[0], copier, src, dst, 4 * MiB)
        # An 8 MiB working set blew the 4 MiB L2: victim evicted.
        assert caches[0].residency(victim.addr, len(victim)) < 0.25

    def test_zero_length_copy_free(self):
        sim, _, cpus, _, copier = make_copier()
        space = AddressSpace()
        src, dst = space.alloc(16), space.alloc(16)
        assert copier.copy_cost(cpus[0], src, 0, dst, 0, 0) == 0
