"""Pluggable same-timestamp tie-break policies for the event heap.

The :class:`~repro.simkernel.scheduler.Simulator` orders its heap by
``(time, key)``; the *key* for entries at equal times is what a tie-break
policy controls.  The documented contract — and the default, which is
bit-identical to the historical behaviour — is FIFO: ties fire in
scheduling order (monotonic sequence numbers).

Everything else in this module exists to *attack* that contract.  The
race detector (:mod:`repro.analysis.races`) replays a scenario under N
seeded permutations of same-timestamp ties; a simulation whose results
depend on anything beyond the documented tie-break diverges, and the
detector bisects the divergence to the minimal flipped tie.  Policies:

* :class:`FifoTieBreak` — the explicit spelling of the default; key is
  the sequence number itself;
* :class:`SeededShuffleTieBreak` — every scheduled entry draws a seeded
  pseudo-random priority, so entries at the *same* timestamp fire in a
  per-seed random permutation (entries at different times are untouched:
  time remains the primary key);
* :class:`PrefixShuffleTieBreak` — shuffles only the first ``limit``
  scheduled entries and is FIFO afterwards; binary-searching ``limit``
  is how the detector isolates the minimal tie-flip that reproduces a
  divergence.

Policies are stateful (an RNG stream, a push counter) and must not be
shared across simulators: hand each :class:`Simulator` its own instance,
or install a *factory* with :func:`default_tiebreak` so every simulator
built inside the ``with`` block gets a fresh policy — which is how the
detector reaches simulators constructed deep inside testbed factories.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from typing import Callable, Iterator, Optional, Tuple

__all__ = [
    "TieBreakPolicy",
    "FifoTieBreak",
    "SeededShuffleTieBreak",
    "PrefixShuffleTieBreak",
    "default_tiebreak",
]

#: shuffled keys are ``(priority, seq)`` tuples; post-prefix FIFO entries
#: use this sentinel priority, above any 32-bit draw, so a bisection run's
#: un-shuffled tail never steals a tie from the shuffled prefix
_FIFO_PRIORITY = 1 << 33


class TieBreakPolicy:
    """Base: maps a monotonic sequence number to a heap tie key.

    Keys from one policy instance must be mutually comparable and totally
    ordered (include ``seq`` as the last tuple element when drawing random
    priorities).  The simulator calls :meth:`key` once per scheduled heap
    entry, in scheduling order — a policy's output must be a pure function
    of its seed and that call sequence, never of wall clock or ids.
    """

    #: short name used in race-detector reports
    name: str = "base"

    def key(self, seq: int) -> object:
        raise NotImplementedError


class FifoTieBreak(TieBreakPolicy):
    """The documented default: ties fire in scheduling order."""

    name = "fifo"

    def key(self, seq: int) -> int:
        return seq


class SeededShuffleTieBreak(TieBreakPolicy):
    """Seeded random permutation of every same-timestamp tie.

    One RNG draw per scheduled entry keeps the permutation a pure function
    of (seed, push index).  ``seq`` stays in the key as the tie-of-ties
    breaker so the shuffled order itself is total and reproducible.
    """

    name = "shuffle"

    def __init__(self, seed: str = "shuffle"):
        self.seed = str(seed)
        self._rng = random.Random(f"tiebreak:{self.seed}")

    def key(self, seq: int) -> Tuple[int, int]:
        return (self._rng.getrandbits(32), seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SeededShuffleTieBreak({self.seed!r})"


class PrefixShuffleTieBreak(TieBreakPolicy):
    """Shuffle only the first ``limit`` scheduled entries, FIFO after.

    The RNG stream is drawn for *every* entry (draws beyond the prefix are
    discarded) so two runs with different limits see identical priorities
    for their common prefix — the invariant the bisection relies on: runs
    at ``limit`` and ``limit - 1`` differ in exactly one tie assignment.
    """

    name = "prefix-shuffle"

    def __init__(self, seed: str, limit: int):
        self.seed = str(seed)
        self.limit = limit
        self._rng = random.Random(f"tiebreak:{self.seed}")
        self._pushed = 0

    def key(self, seq: int) -> Tuple[int, int]:
        self._pushed += 1
        priority = self._rng.getrandbits(32)
        if self._pushed <= self.limit:
            return (priority, seq)
        return (_FIFO_PRIORITY, seq)


@contextmanager
def default_tiebreak(
    factory: Optional[Callable[[], Optional[TieBreakPolicy]]],
) -> Iterator[None]:
    """Install ``factory`` as the process-wide default tie-break source.

    Every :class:`~repro.simkernel.scheduler.Simulator` constructed without
    an explicit ``tiebreak`` argument while the block is active calls the
    factory for its policy (a fresh instance per simulator — policies are
    stateful).  ``None`` restores the FIFO fast path.  The previous factory
    is restored on exit, so nested detectors compose.
    """
    from repro.simkernel.scheduler import Simulator

    prev = Simulator.default_tiebreak_factory
    Simulator.default_tiebreak_factory = factory
    try:
        yield
    finally:
        Simulator.default_tiebreak_factory = prev
