"""Health supervision: breaker state machine, backpressure, liveness.

The graceful-degradation contract (DESIGN.md §12): repeated channel faults
trip a per-channel circuit breaker to memcpy-only and a half-open probe
copy re-opens it; an overloaded receiver says BUSY and senders back off on
a deterministic, seeded curve; a peer that goes silent while we hold state
for it is declared dead with a typed error and every resource drains.
"""

from dataclasses import replace
from types import SimpleNamespace

import pytest

from repro import build_testbed
from repro.core.counters import collect_counters, collect_health
from repro.core.errors import PeerDead, PullAborted
from repro.core.reliability import TxSession
from repro.ethernet.link import LossInjector
from repro.health import BackoffPolicy, BreakerState, BusyGate, ChannelBreaker
from repro.ioat.channel import DmaChannel
from repro.memory.buffers import AddressSpace
from repro.mx.wire import EndpointAddr
from repro.params import HealthParams, IoatParams, clovertown_5000x
from repro.simkernel import Simulator
from repro.units import KiB, ms, us

import random

B = EndpointAddr(2, 0)


def _breaker_rig(params: HealthParams = None):
    """A bare simulator + one channel + its breaker (no host, no driver)."""
    sim = Simulator()
    ch = DmaChannel(sim, IoatParams())
    space = AddressSpace("rig")
    hp = params or HealthParams()
    breaker = ChannelBreaker(
        sim, ch, hp,
        probe_src=space.alloc(hp.breaker_probe_bytes, fill=0xA5),
        probe_dst=space.alloc(hp.breaker_probe_bytes),
    )
    ch.health = breaker
    return sim, ch, breaker, space


def _submit_copies(ch: DmaChannel, space: AddressSpace, n: int, length=4 * KiB):
    from repro.ioat.descriptor import CopyDescriptor

    src = space.alloc(length, fill=3)
    dst = space.alloc(length)
    return [ch.submit(CopyDescriptor(src, 0, dst, 0, length)) for _ in range(n)]


class TestBreakerStateMachine:
    def test_failure_burst_trips_to_open(self):
        sim, ch, breaker, space = _breaker_rig()
        _submit_copies(ch, space, 3)
        assert breaker.state is BreakerState.CLOSED
        ch.fail("chipset gone")  # noqa: HLT001 (direct fault is the fixture)
        # Three aborted descriptors inside one window: trip.
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 1
        assert not breaker.allows_offload()

    def test_probe_fails_while_channel_down_and_heap_drains(self):
        sim, ch, breaker, space = _breaker_rig()
        _submit_copies(ch, space, 3)
        ch.fail()  # noqa: HLT001
        # The probe chain is demand-armed: with nobody asking for offload,
        # exactly one probe fires, fails against the dead channel, and the
        # heap drains (sim.run() with no horizon must terminate).
        sim.run()
        assert breaker.state is BreakerState.OPEN
        assert breaker.probes == 1
        assert breaker.probe_failures == 1

    def test_recovered_channel_reopens_via_probe(self):
        sim, ch, breaker, space = _breaker_rig()
        _submit_copies(ch, space, 3)
        ch.fail()  # noqa: HLT001
        sim.run()  # first probe fails against the dead channel
        ch.recover()
        # Renewed offload demand re-arms the probe chain...
        assert not breaker.allows_offload()
        sim.run()
        # ...and this probe completes for real: breaker re-opens.
        assert breaker.state is BreakerState.CLOSED
        assert breaker.reopens == 1
        assert breaker.allows_offload()
        assert ch.recoveries == 1

    def test_transient_stall_trips_then_self_heals(self):
        sim, ch, breaker, _space = _breaker_rig()
        for _ in range(3):
            ch.stall(us(10))
        assert breaker.state is BreakerState.OPEN
        # By probe time the stall window has passed; the probe copy runs.
        sim.run()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.reopens == 1

    def test_sparse_failures_age_out_of_window(self):
        sim, ch, breaker, _space = _breaker_rig()
        hp = breaker.params
        gap = hp.breaker_window + us(10)
        for k in range(5):
            sim.call_at(k * gap, lambda: breaker.on_stall(ch))
        sim.run()
        assert breaker.failures_recorded == 5
        assert breaker.trips == 0
        assert breaker.state is BreakerState.CLOSED

    def test_disabled_breaker_never_trips(self):
        sim, ch, breaker, space = _breaker_rig(
            replace(HealthParams(), breaker_enabled=False))
        _submit_copies(ch, space, 4)
        ch.fail()  # noqa: HLT001
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allows_offload()


class TestBusyGate:
    def test_ring_watermark(self):
        gate = BusyGate(Simulator(), HealthParams())
        wm = HealthParams().ring_low_watermark
        assert gate.ring_pressured(SimpleNamespace(free_slots=wm))
        assert gate.ring_pressured(SimpleNamespace(free_slots=0))
        assert not gate.ring_pressured(SimpleNamespace(free_slots=wm + 1))

    def test_pull_watermark(self):
        hp = HealthParams()
        gate = BusyGate(Simulator(), hp)
        assert gate.pulls_pressured(hp.max_active_pulls)
        assert not gate.pulls_pressured(hp.max_active_pulls - 1)

    def test_disabled_backpressure(self):
        gate = BusyGate(Simulator(), replace(HealthParams(),
                                             backpressure_enabled=False))
        assert not gate.ring_pressured(SimpleNamespace(free_slots=0))
        assert not gate.pulls_pressured(10_000)

    def test_per_peer_rate_limit(self):
        sim = Simulator()
        hp = HealthParams()
        gate = BusyGate(sim, hp)
        assert gate.should_signal(B)
        assert not gate.should_signal(B)  # same instant: suppressed
        sim.run(until=hp.busy_min_interval + 1)
        assert gate.should_signal(B)
        assert gate.busy_signalled == 2
        assert gate.busy_suppressed == 1


class TestBackoffDeterminism:
    def test_policy_curve_is_seeded(self):
        policy = BackoffPolicy()
        a = [policy.delay(lvl, random.Random("s1")) for lvl in range(1, 7)]
        b = [policy.delay(lvl, random.Random("s1")) for lvl in range(1, 7)]
        c = [policy.delay(lvl, random.Random("s2")) for lvl in range(1, 7)]
        assert a == b          # same seed: byte-identical curve
        assert a != c          # different seed: jitter desynchronises
        # The deterministic part still dominates: exponential then capped.
        for lvl, d in zip(range(1, 7), a):
            base = min(policy.base << (lvl - 1), policy.max_delay)
            assert base <= d < base + int(base * policy.jitter) + 1

    def _busy_trajectory(self, seed: str):
        sim = Simulator()
        tx = TxSession(sim, B, resend=lambda p: None, timeout=us(500),
                       backoff_seed=seed)
        out = []
        for _ in range(4):
            tx.note_busy()
            out.append((tx.backoff_level, tx._backoff_until))
        return out

    def test_session_backoff_deterministic_per_seed(self):
        a = self._busy_trajectory("backoff:1:0:peer")
        b = self._busy_trajectory("backoff:1:0:peer")
        c = self._busy_trajectory("backoff:9:3:other")
        assert a == b
        assert a != c
        # Levels escalate monotonically and the deadline never regresses.
        assert [lvl for lvl, _ in a] == [1, 2, 3, 4]
        untils = [u for _, u in a]
        assert untils == sorted(untils)

    def test_ack_resets_backoff(self):
        sim = Simulator()
        tx = TxSession(sim, B, resend=lambda p: None, timeout=us(500))
        from repro.mx.wire import MxPacket, PktType

        pkt = MxPacket(ptype=PktType.SMALL, src=B, dst=B)
        tx.stamp(pkt)
        tx.note_busy()
        assert tx.backoff_level == 1 and tx._backoff_until > 0
        tx.on_ack(0)
        assert tx.backoff_level == 0 and tx._backoff_until == 0
        assert tx.busy_backoffs == 1


class TestBackpressureEndToEnd:
    def test_watermark_busy_makes_sender_back_off(self):
        """With the low watermark raised to the whole ring, every eager
        arrival signals BUSY — senders must register backoff episodes and
        the stream must still complete."""
        plat = clovertown_5000x(ioat_enabled=True).with_health(
            ring_low_watermark=512)
        tb = build_testbed(platform=plat)
        ep0, ep1 = tb.open_endpoint(0, 0), tb.open_endpoint(1, 0)
        c0, c1 = tb.user_core(0), tb.user_core(1)
        size = 16 * KiB
        done = {}

        def receiver():
            for i in range(3):
                buf = ep1.space.alloc(size)
                req = yield from ep1.irecv(c1, i, ~0, buf, 0, size)
                done[f"r{i}"] = req
            for i in range(3):
                yield from ep1.wait(c1, done[f"r{i}"])

        def sender():
            buf = ep0.space.alloc(size)
            for i in range(3):
                req = yield from ep0.isend(c0, ep1.addr, i, buf, 0, size)
                done[f"s{i}"] = req
                yield from ep0.wait(c0, req)

        tb.sim.daemon(receiver(), name="bp-recv")
        tb.sim.daemon(sender(), name="bp-send")
        tb.sim.run(until=ms(60))

        for req in done.values():
            assert req.done and req.error is None
        rx_health = collect_health(tb.stacks[1])
        tx_health = collect_health(tb.stacks[0])
        assert rx_health["busy_signalled"] >= 1
        assert tx_health["busy_rx"] >= 1
        assert collect_counters(tb.stacks[0])["busy_backoffs"] >= 1


class TestPeerDeath:
    def test_severed_link_fails_large_send_with_peer_dead(self):
        """Cut both directions mid-pull: the receiver aborts its pull on
        the watchdog; the sender — whose NOTIFY can never arrive — is
        rescued by liveness with a typed PeerDead, and both hosts drain
        every skbuff, pin and DMA cookie."""
        from repro.analysis.sanitizers import Sanitizer

        tb = build_testbed(ioat_enabled=True)
        # A clean 256 KiB rendezvous completes at ~286 us and the RNDV is
        # acked by ~35 us: us(120) lands mid-pull with no unacked eager
        # traffic, so only liveness can rescue the sender.
        cut_at = us(120)
        dead = lambda f, i: tb.sim.now >= cut_at  # noqa: E731
        tb.link.inject_loss(True, LossInjector(predicate=dead))
        tb.link.inject_loss(False, LossInjector(predicate=dead))
        san = Sanitizer()
        for host in tb.hosts:
            san.watch_host(host)

        ep0, ep1 = tb.open_endpoint(0, 0), tb.open_endpoint(1, 0)
        c0, c1 = tb.user_core(0), tb.user_core(1)
        size = 256 * KiB
        reqs = {}

        def sender():
            buf = ep0.space.alloc(size)
            req = yield from ep0.isend(c0, ep1.addr, 0x5, buf, 0, size)
            reqs["send"] = req
            yield from ep0.wait(c0, req)

        def receiver():
            buf = ep1.space.alloc(size)
            req = yield from ep1.irecv(c1, 0x5, ~0, buf, 0, size)
            reqs["recv"] = req
            yield from ep1.wait(c1, req)

        tb.sim.daemon(sender(), name="pd-send")
        tb.sim.daemon(receiver(), name="pd-recv")
        tb.sim.run(until=ms(45), max_events=30_000_000)

        send_req, recv_req = reqs["send"], reqs["recv"]
        assert recv_req.done
        assert isinstance(recv_req.error, PullAborted)
        assert send_req.done
        assert isinstance(send_req.error, PeerDead)
        assert send_req.error.peer == ep1.addr
        assert send_req.error.pending >= 1

        health = collect_health(tb.stacks[0])
        assert health["keepalives_tx"] >= 1
        assert health["peers_declared_dead"] == 1
        assert health["peers_dead"] == 1
        # Peer death released everything: no leaked skbuffs/pins/cookies.
        assert [v.format() for v in san.check()] == []

    def test_clean_run_has_no_liveness_traffic(self):
        """A healthy short transfer finishes long before the keepalive
        interval: zero keepalives, zero deaths, and the scan daemon
        disarms (the run drains without a horizon)."""
        tb = build_testbed(ioat_enabled=True)
        ep0, ep1 = tb.open_endpoint(0, 0), tb.open_endpoint(1, 0)
        c0, c1 = tb.user_core(0), tb.user_core(1)
        size = 16 * KiB
        reqs = {}

        def sender():
            buf = ep0.space.alloc(size)
            req = yield from ep0.isend(c0, ep1.addr, 0x1, buf, 0, size)
            reqs["send"] = req
            yield from ep0.wait(c0, req)

        def receiver():
            buf = ep1.space.alloc(size)
            req = yield from ep1.irecv(c1, 0x1, ~0, buf, 0, size)
            reqs["recv"] = req
            yield from ep1.wait(c1, req)

        tb.sim.daemon(sender(), name="cl-send")
        tb.sim.daemon(receiver(), name="cl-recv")
        tb.sim.run()  # no horizon: demand-armed daemons must disarm
        assert reqs["send"].error is None and reqs["recv"].error is None
        for stack in tb.stacks:
            h = collect_health(stack)
            assert h["keepalives_tx"] == 0
            assert h["peers_declared_dead"] == 0


class TestDuplicateFailures:
    def test_second_failure_counts_duplicate_and_keeps_first_error(self):
        tb = build_testbed(ioat_enabled=True)
        drv = tb.stacks[0].driver
        ep = tb.open_endpoint(0, 0)
        from repro.core.types import OmxRequest

        req = OmxRequest(kind="recv", match_info=0, mask=~0, region=None,
                         offset=0, length=4 * KiB, peer=B)
        first = PullAborted(B, msg_id=1, received=0, total=4, retransmits=3)
        drv._fail_request(ep, req, first)
        assert req.error is first
        drv._fail_request(ep, req, PeerDead(B, ms(20), pending=1))
        assert req.error is first  # first typed error wins
        assert drv.duplicate_failures == 1
        drv._fail_request(ep, None, first)  # vanished request: harmless
        assert drv.duplicate_failures == 1
