#!/usr/bin/env python
"""Reproduce the Fig. 5 / Fig. 6 timelines of the paper.

Receives one multi-fragment large message twice — once with the regular
memcpy receive path, once with I/OAT asynchronous offload — while tracing
what runs where.  The rendered timelines show the paper's core idea:

* without I/OAT (Fig. 5), each fragment's processing *and copy* occupy the
  CPU before the next fragment can be handled;
* with I/OAT (Fig. 6), the CPU only processes and submits; the copies run
  concurrently on the DMA engine lane, and only the last fragment waits.

Run:  python examples/offload_timeline.py
"""

from repro import build_testbed
from repro.units import KiB


def trace_one_message(ioat: bool, size: int = 80 * KiB) -> str:
    tb = build_testbed(ioat_enabled=ioat)
    receiver = tb.hosts[1]
    receiver.trace.enabled = True
    ep0 = tb.open_endpoint(0, 0)
    ep1 = tb.open_endpoint(1, 0)
    core0, core1 = tb.user_core(0), tb.user_core(1)
    sbuf = ep0.space.alloc(size)
    rbuf = ep1.space.alloc(size)
    sbuf.fill_pattern(3)
    done = tb.sim.event()

    def sender():
        req = yield from ep0.isend(core0, ep1.addr, 0x77, sbuf)
        yield from ep0.wait(core0, req)

    def recv():
        req = yield from ep1.irecv(core1, 0x77, ~0, rbuf)
        yield from ep1.wait(core1, req)
        done.succeed()

    tb.sim.process(sender())
    tb.sim.process(recv())
    tb.sim.run_until(done)
    assert bytes(rbuf.read()) == bytes(sbuf.read())

    # Render only the data-transfer phase (pull replies + DMA copies).
    spans = [s for s in receiver.trace.spans
             if s.label.startswith(("PULL_REPLY", "Copy"))]
    receiver.trace.spans = spans
    return receiver.trace.render_ascii(width=100)


def main() -> None:
    print("=" * 104)
    print("Fig. 5 — regular receive: each fragment is processed AND copied "
          "on the CPU before the next one")
    print("=" * 104)
    print(trace_one_message(ioat=False))
    print()
    print("=" * 104)
    print("Fig. 6 — I/OAT offload: the CPU only processes+submits; copies "
          "overlap on the DMA engine lane")
    print("=" * 104)
    print(trace_one_message(ioat=True))


if __name__ == "__main__":
    main()
