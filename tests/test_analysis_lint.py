"""Golden-file tests for the static lint rules (tier-1 self-check).

One positive (rule fires) and negative (rule stays quiet) snippet per rule,
the suppression pragma, the CLI exit codes, and — the real guarantee — a
sweep asserting the shipped ``src/repro`` tree is clean.
"""

import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint import all_rules, lint_paths, lint_source

pytestmark = pytest.mark.lint

SRC_ROOT = Path(__file__).resolve().parents[1] / "src" / "repro"

# (name, snippet, expected rule codes)
GOLDENS = [
    ("skb001_dropped", """
        def bh(pool):
            skb = pool.alloc_rx()
            skb.data_len = 64
    """, {"SKB001"}),
    ("skb001_freed", """
        def bh(pool):
            skb = pool.alloc_rx()
            skb.data_len = 64
            skb.free()
    """, set()),
    ("skb001_handed_off", """
        def send(pool, nic):
            skb = pool.alloc_tx()
            nic.xmit(skb)
    """, set()),
    ("skb001_stored", """
        def bh(pool, pending):
            skb = pool.alloc_rx()
            pending.append(skb)
    """, set()),
    ("skb001_returned", """
        def alloc(pool):
            skb = pool.alloc_rx()
            return skb
    """, set()),
    ("dma001_dropped", """
        def copy(api, core, src, dst):
            cookie = yield from api.submit_copy(core, src, 0, dst, 0, 4096, "bh")
            yield from core.busy(10, "bh")
    """, {"DMA001"}),
    ("dma001_polled", """
        def copy(api, core, src, dst):
            cookie = yield from api.submit_copy(core, src, 0, dst, 0, 4096, "bh")
            while not cookie.done:
                yield from core.busy(10, "bh")
    """, set()),
    ("dma001_stored", """
        def copy(api, core, src, dst, state):
            cookie = yield from api.submit_copy(core, src, 0, dst, 0, 4096, "bh")
            state.pending.append(cookie)
    """, set()),
    ("sim001_sleep", """
        import time
        def proc(sim):
            time.sleep(0.1)
            yield sim.timeout(5)
    """, {"SIM001"}),
    ("sim001_aliased_import", """
        from time import sleep as snooze
        def proc(sim):
            snooze(1)
            yield sim.timeout(5)
    """, {"SIM001"}),
    ("sim001_random", """
        import random
        def proc(sim):
            yield sim.timeout(random.randint(1, 10))
    """, {"SIM001"}),
    ("sim001_not_a_process", """
        import time
        def helper():
            time.sleep(0.1)
    """, set()),
    ("sim001_seeded_rng_ok", """
        import numpy as np
        def proc(sim, rank):
            rng = np.random.default_rng(1234 + rank)
            yield sim.timeout(int(rng.integers(1, 10)))
    """, set()),
    ("sim001_unseeded_rng", """
        import numpy as np
        def proc(sim):
            rng = np.random.default_rng()
            yield sim.timeout(5)
    """, {"SIM001"}),
    ("unit001_bare_kwarg", """
        def make(clovertown_5000x):
            return clovertown_5000x(ioat_min_frag=4)
    """, {"UNIT001"}),
    ("unit001_bare_assign", """
        def tweak(cfg):
            cfg.retransmit_timeout = 500
    """, {"UNIT001"}),
    ("unit001_units_ok", """
        from repro.units import KiB, us
        def make(clovertown_5000x):
            return clovertown_5000x(ioat_min_frag=4 * KiB, retransmit_timeout=us(500))
    """, set()),
    ("unit001_base_units_ok", """
        def make(clovertown_5000x):
            return clovertown_5000x(ioat_min_frag=4096, small_max=128)
    """, set()),
    ("gen001_bare_call", """
        def cleanup(core):
            yield core.busy(1, "bh")

        def handler(core):
            cleanup(core)
    """, {"GEN001"}),
    ("gen001_bare_method", """
        class Driver:
            def cleanup(self, core):
                yield core.busy(1, "bh")

            def handle(self, core):
                self.cleanup(core)
    """, {"GEN001"}),
    ("gen001_driven", """
        def cleanup(core):
            yield core.busy(1, "bh")

        def handler(core):
            yield from cleanup(core)
    """, set()),
    ("gen001_spawned", """
        def cleanup(core):
            yield core.busy(1, "bh")

        def handler(sim, core):
            sim.process(cleanup(core))
    """, set()),
    ("hlt001_channel_fail", """
        def sabotage(ch):
            ch.fail("chipset gone")
    """, {"HLT001"}),
    ("hlt001_attr_chain_fail", """
        def sabotage(state):
            state.channel.fail()
    """, {"HLT001"}),
    ("hlt001_should_offload_rederived", """
        def decide(mgr, state, n):
            if mgr.should_offload(state, n, n):
                return "dma"
            return "memcpy"
    """, {"HLT001"}),
    ("hlt001_process_fail_ok", """
        class Proc:
            def fail(self, err):
                self.error = err

            def die(self, err):
                self.fail(err)
    """, set()),
    ("hlt001_event_fail_ok", """
        def propagate(ev, err):
            ev.fail(err)
    """, set()),
    ("off001_dmachannel_construction", """
        from repro.ioat.channel import DmaChannel

        def build(sim, params):
            return DmaChannel(sim, params)
    """, {"OFF001"}),
    ("off001_dmachannel_via_module_alias", """
        from repro.ioat import channel as chmod

        def build(sim, params):
            return chmod.DmaChannel(sim, params)
    """, {"OFF001"}),
    ("off001_direct_submit", """
        def push(ch, desc):
            return ch.submit(desc)
    """, {"OFF001"}),
    ("off001_ring_access", """
        def full(channel):
            return channel.ring.free_slots == 0
    """, {"OFF001"}),
    ("off001_eager_ring_ok", """
        def acquire(ep):
            return ep.ring.acquire_slot()
    """, set()),
    ("off001_pool_submit_ok", """
        def fan_out(pool, fn):
            return pool.submit(fn)
    """, set()),
    ("race001_register_in_set_loop", """
        def arm(sim, handlers, names):
            for name in {n for n in names}:
                sim.process(handlers[name])
    """, {"RACE001"}),
    ("race001_loop_bound_callback", """
        def flush(watchers):
            for cb, err in watchers.values():
                cb()
    """, {"RACE001"}),
    ("race001_sorted_ok", """
        def flush(watchers):
            for seq in sorted(watchers):
                watchers[seq]()
    """, set()),
    ("race001_list_ok", """
        def arm(sim, handlers):
            for h in handlers_list(handlers):
                sim.process(h)
    """, set()),
    ("ord001_call_at_in_dict_loop", """
        def kick(sim, deadlines, tick):
            for t in deadlines.values():
                sim.call_at(t, tick)
    """, {"ORD001"}),
    ("ord001_succeed_in_set_loop", """
        class Gate:
            def __init__(self):
                self.waiters = set()

            def open(self):
                for ev in self.waiters:
                    ev.succeed()
    """, {"ORD001"}),
    ("ord001_sorted_ok", """
        def kick(sim, deadlines, tick):
            for t in sorted(deadlines.values()):
                sim.call_at(t, tick)
    """, set()),
    ("det002_one_hop", """
        import time

        def _now():
            return time.time()

        def proc(sim):
            t = _now()
            yield sim.timeout(5)
    """, {"DET002"}),
    ("det002_two_hops", """
        import time

        def _now():
            return time.time()

        def _stamp(pkt):
            pkt.ts = _now()

        def proc(sim, pkt):
            _stamp(pkt)
            yield sim.timeout(5)
    """, {"DET002"}),
    ("det002_not_reached_from_process", """
        import time

        def _now():
            return time.time()

        def helper():
            return _now()
    """, set()),
    ("det002_direct_call_is_sim001s", """
        import time

        def proc(sim):
            t = time.time()
            yield sim.timeout(5)
    """, {"SIM001"}),
    ("sim001_seeded_stdlib_rng_ok", """
        import random

        def proc(sim):
            rng = random.Random(42)
            yield sim.timeout(rng.randrange(1, 10))
    """, set()),
    ("fab001_demote_call", """
        def punish(routes, link):
            routes.demote_link(link)
    """, {"FAB001"}),
    ("fab001_kill_via_attr_chain", """
        def sever(world, link):
            world.net.kill_link(link)
    """, {"FAB001"}),
    ("fab001_degrade_call", """
        def slow_down(net):
            net.degrade_link("s0-s1", bw_factor=0.5)
    """, {"FAB001"}),
    ("fab001_port_state_write", """
        def throttle(port):
            port.service_scale = 4.0
    """, {"FAB001"}),
    ("fab001_port_delay_augassign", """
        def lag(port, extra):
            port.extra_delay += extra
    """, {"FAB001"}),
    ("fab001_read_only_ok", """
        def is_slow(port):
            return port.service_scale != 1.0 or port.extra_delay
    """, set()),
    ("fab001_unrelated_restore_name_ok", """
        def restore(backup):
            backup.restore()
    """, set()),
]


@pytest.mark.parametrize(
    "snippet,expected",
    [(s, e) for _, s, e in GOLDENS],
    ids=[name for name, _, _ in GOLDENS],
)
def test_rule_goldens(snippet, expected):
    findings = lint_source(textwrap.dedent(snippet), "golden.py")
    assert {f.code for f in findings} == expected


def test_every_rule_has_a_firing_golden():
    """A registered rule without a positive golden is untested — fail loudly."""
    covered = set().union(*(e for _, _, e in GOLDENS))
    assert covered == set(all_rules())


def test_hlt001_sanctioned_paths_skipped():
    """The injector layer and the health package own these APIs — the same
    source that fires elsewhere stays quiet under their paths."""
    src = "def arm(ch):\n    ch.fail('planned')\n"
    assert {f.code for f in lint_source(src, "src/repro/core/driver.py")} == {"HLT001"}
    for path in ("src/repro/faults/injectors.py", "src/repro/health/breaker.py",
                 "src/repro/ioat/channel.py"):
        assert lint_source(src, path) == []


def test_off001_sanctioned_paths_skipped():
    """Backend implementations, the I/OAT package, health/fault layers and
    the analysis tooling own the raw channel APIs."""
    src = "def push(ch, desc):\n    return ch.submit(desc)\n"
    hits = {f.code for f in lint_source(src, "src/repro/core/offload.py")}
    assert "OFF001" in hits  # the offload manager itself must use a backend
    for path in ("src/repro/core/backends/flextoe.py",
                 "src/repro/ioat/api.py",
                 "src/repro/health/breaker.py",
                 "src/repro/faults/injectors.py",
                 "src/repro/analysis/sanitizers.py"):
        assert lint_source(src, path) == []


def test_fab001_sanctioned_paths_skipped():
    """The routing tables, the resilience breaker, the network's own timed
    legs and the fault injectors own the route/link mutation surface."""
    src = "def sever(net, link):\n    net.kill_link(link)\n"
    assert {f.code for f in lint_source(src, "src/repro/fabric/sweep.py")} == {"FAB001"}
    for path in ("src/repro/fabric/routing.py",
                 "src/repro/fabric/resilience.py",
                 "src/repro/fabric/network.py",
                 "src/repro/faults/injectors.py"):
        assert lint_source(src, path) == []


def test_noqa_suppression():
    src = textwrap.dedent("""
        def bh(pool):
            a = pool.alloc_rx()  # noqa: SKB001
            b = pool.alloc_rx()  # noqa
            c = pool.alloc_rx()  # noqa: DMA001
    """)
    findings = lint_source(src, "noqa.py")
    # a: coded pragma, b: bare pragma; c's pragma names the wrong rule
    assert [(f.code, f.line) for f in findings] == [("SKB001", 5)]


def test_select_restricts_rules():
    src = textwrap.dedent("""
        import time
        def proc(pool, sim):
            skb = pool.alloc_rx()
            time.sleep(1)
            yield sim.timeout(5)
    """)
    assert {f.code for f in lint_source(src, "x.py")} == {"SKB001", "SIM001"}
    only = lint_source(src, "x.py", select=["SIM001"])
    assert {f.code for f in only} == {"SIM001"}
    with pytest.raises(ValueError):
        lint_source(src, "x.py", select=["NOPE999"])


def test_shipped_tree_is_clean():
    """The acceptance gate: ``python -m repro.analysis src/repro`` exits 0."""
    findings, n_files = lint_paths([SRC_ROOT])
    assert n_files > 50  # the sweep actually saw the tree
    assert findings == [], "\n".join(f.format() for f in findings)


def test_cli_exit_codes(tmp_path, capsys):
    from repro.analysis.cli import main

    dirty = tmp_path / "dirty.py"
    dirty.write_text(textwrap.dedent("""
        def bh(pool):
            skb = pool.alloc_rx()
            skb.data_len = 1
    """))
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")

    assert main([str(clean)]) == 0
    assert main([str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "SKB001" in out and "dirty.py" in out
    assert main(["--select", "NOPE999", str(clean)]) == 2
    assert main(["--list-rules"]) == 0
    listed = capsys.readouterr().out
    for code in all_rules():
        assert code in listed
