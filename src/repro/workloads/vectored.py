"""Highly-vectorial buffer workloads (§IV-A corner case).

"Such very small fragments may actually only be involved in Open-MX if the
application uses highly-vectorial buffers": when an application sends from
a scatter list of tiny segments, copies degrade into sub-kilobyte chunks
where I/OAT submission overhead dominates — the reason for the 1 kB
fragment threshold.

Two measurements live here:

* :func:`measure_vectored_copy` — the analytic copy-cost-versus-segment-
  size model behind the threshold-ablation benchmark.  Each scatter
  segment is priced with the *same* page-chunk counting the execution
  path uses (``count_page_aligned_chunks``): a segment whose destination
  straddles a page boundary costs two descriptors, not one — unaligned
  scatter lists genuinely pay more submission than aligned ones.
* :func:`run_vectored_transfer` — the same scatter pattern driven through
  the event loop as a real workload: one skbuff per segment arrives in
  the BH and is copied through the host's configured
  :class:`~repro.core.backends.CopyBackend` (``point_vectored`` is the
  sweep-point wrapper the ``engine_shootout`` experiment runs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.host import Host
from repro.memory.layout import (
    count_page_aligned_chunks,
    iter_chunks,
    page_aligned_chunks,
)
from repro.units import SEC, throughput_mib_s


@dataclass
class VectoredCopyResult:
    segment: int
    total: int
    memcpy_ns: int
    ioat_submit_ns: int
    ioat_total_ns: int
    #: scatter segments in the transfer
    n_segments: int = 0
    #: I/OAT descriptors after page-chunk splitting (>= n_segments)
    ioat_descriptors: int = 0

    @property
    def memcpy_gib_s(self) -> float:
        return self.total * SEC / self.memcpy_ns / (1 << 30) if self.memcpy_ns else 0.0

    @property
    def ioat_gib_s(self) -> float:
        return self.total * SEC / self.ioat_total_ns / (1 << 30) if self.ioat_total_ns else 0.0


def measure_vectored_copy(host: Host, total: int, segment: int) -> VectoredCopyResult:
    """Cost of copying ``total`` bytes in ``segment``-sized pieces.

    Uses the analytic cost models directly (no event loop needed): memcpy
    setup per page chunk vs I/OAT descriptor submission + engine service —
    the trade-off behind ``ioat_min_frag``.

    Each scatter segment starts page-aligned (a fresh buffer in the
    scatter list) while the destination is contiguous, so a segment whose
    destination lands mid-page splits exactly as ``copy_fragment`` would
    split it.
    """
    params = host.params
    ch = host.ioat_engine[0]
    n_segments = 0
    n_descriptors = 0
    engine = 0
    for pos, n in iter_chunks(0, total, segment):
        n_segments += 1
        chunks = count_page_aligned_chunks(0, pos, n)
        n_descriptors += chunks
        if chunks == 1:
            engine += ch.service_time(n)
        else:
            for _rel_src, _rel_dst, piece in page_aligned_chunks(0, pos, n):
                engine += ch.service_time(piece)
    # memcpy: per-chunk setup (CpuCopier charges setup per page chunk too)
    # + uncached move
    move = int(round(total * SEC / params.memcpy.uncached_bw))
    memcpy_ns = n_descriptors * params.memcpy.setup_cost + move
    # I/OAT: CPU submission per *descriptor* — page-straddling segments
    # submit more than one — and the engine runs the descriptors in order
    submit = n_descriptors * params.ioat.submit_cost
    return VectoredCopyResult(segment, total, memcpy_ns, submit,
                              max(submit, engine), n_segments, n_descriptors)


# ---------------------------------------------------------------------------
# the event-loop workload (engine shootout)
# ---------------------------------------------------------------------------


@dataclass
class VectoredRunResult:
    backend: str
    segment: int
    total: int
    elapsed_ns: int
    throughput_mib_s: float
    frags_offloaded: int
    frags_memcpy: int
    descriptors_completed: int


def run_vectored_transfer(tb, total: int, segment: int) -> VectoredRunResult:
    """Drive the scatter pattern through the event loop.

    One skbuff per ``segment``-sized piece is filled and copied into a
    contiguous user region through the offload manager (periodic cleanup
    every 8 fragments, final drain) — the §IV-A corner case as a real
    workload instead of an analytic formula, exercising whichever
    :class:`~repro.core.backends.CopyBackend` the testbed's config names.
    """
    from repro.core.offload import OffloadManager

    host = tb.hosts[0]
    mgr = OffloadManager(host, host.platform.omx)
    state = mgr.new_message_state()
    core = host.irq_core
    space = host.user_space("vectored")
    dst = space.alloc(total)
    done = tb.sim.event()

    def work():
        yield core.res.request()
        t0 = tb.sim.now
        seen = 0
        for pos, n in iter_chunks(0, total, segment):
            skb = host.skb_pool.alloc_rx()
            offloaded = yield from mgr.copy_fragment(
                core, state, skb, 0, dst, pos, n, total
            )
            if not offloaded:
                skb.free()
            seen += 1
            if seen % 8 == 0:
                yield from mgr.cleanup(core, state)
        yield from mgr.wait_all(core, state)
        core.res.release()
        done.succeed(tb.sim.now - t0)

    tb.sim.daemon(work(), name="vectored")
    elapsed = tb.sim.run_until(done)
    descriptors = host.ioat_engine.descriptors_completed + sum(
        ch.descriptors_completed for ch in host.extra_dma_channels
    )
    return VectoredRunResult(
        backend=host.platform.omx.copy_backend,
        segment=segment,
        total=total,
        elapsed_ns=elapsed,
        throughput_mib_s=throughput_mib_s(total, elapsed),
        frags_offloaded=mgr.frags_offloaded,
        frags_memcpy=mgr.frags_memcpy,
        descriptors_completed=descriptors,
    )


def point_vectored(total: int, segment: int, backend: str) -> dict:
    """Sweep-point wrapper (JSON in/out) for the engine shootout."""
    from repro.cluster.testbed import build_single_node

    omx = dict(copy_backend=backend)
    if backend != "memcpy":
        # Thresholds off: the shootout wants every engine's behaviour on
        # tiny segments, not the policy's refusal to try.
        omx.update(ioat_enabled=True, ioat_min_msg=1, ioat_min_frag=1)  # noqa: UNIT001 (thresholds off = 1 byte)
    tb = build_single_node(**omx)
    r = run_vectored_transfer(tb, total, segment)
    return {
        "backend": r.backend,
        "throughput_mib_s": r.throughput_mib_s,
        "elapsed_ns": r.elapsed_ns,
        "frags_offloaded": r.frags_offloaded,
        "frags_memcpy": r.frags_memcpy,
        "descriptors": r.descriptors_completed,
    }
