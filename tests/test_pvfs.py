"""Tests for the PVFS2-style striped file-transfer workload."""

import pytest

from repro import build_testbed
from repro.ethernet.switch import build_switched_testbed
from repro.workloads import run_pvfs_transfer
from repro.units import KiB, MiB


class TestPvfs:
    def test_roundtrip_verified_single_server(self):
        tb = build_testbed()
        r = run_pvfs_transfer(tb, file_size=2 * MiB, n_servers=1)
        assert r.verified
        assert r.write_mib_s > 200 and r.read_mib_s > 200

    def test_roundtrip_verified_striped(self):
        tb = build_switched_testbed(3)
        r = run_pvfs_transfer(tb, file_size=2 * MiB)
        assert r.verified
        assert r.n_servers == 2

    def test_odd_file_size_last_strip_short(self):
        tb = build_testbed()
        r = run_pvfs_transfer(tb, file_size=1 * MiB + 12345,
                              strip_size=256 * KiB, n_servers=1)
        assert r.verified

    def test_ioat_improves_file_transfer(self):
        """[23]'s PVFS result, through the Open-MX path."""
        plain = run_pvfs_transfer(build_testbed(), file_size=4 * MiB, n_servers=1)
        ioat = run_pvfs_transfer(build_testbed(ioat_enabled=True),
                                 file_size=4 * MiB, n_servers=1)
        assert ioat.write_mib_s > 1.15 * plain.write_mib_s
        assert ioat.read_mib_s > 1.15 * plain.read_mib_s

    def test_striping_helps_reads_with_ioat(self):
        """Two servers feeding one client: the receive path is the
        bottleneck, so the offload gain shows on reads."""
        plain = run_pvfs_transfer(build_switched_testbed(3), file_size=4 * MiB)
        ioat = run_pvfs_transfer(build_switched_testbed(3, ioat_enabled=True),
                                 file_size=4 * MiB)
        assert ioat.read_mib_s > 1.15 * plain.read_mib_s

    def test_requires_a_server(self):
        from repro.cluster.testbed import build_single_node

        with pytest.raises(ValueError):
            run_pvfs_transfer(build_single_node(), file_size=1 * MiB)
