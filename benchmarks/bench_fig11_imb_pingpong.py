"""FIG11 — IMB PingPong across stack configurations.

Asserts the paper's finding that the registration cache matters *less*
than I/OAT copy offload for Open-MX (cheap registration, no NIC address
tables), and that Open-MX + I/OAT reaches MX-class large-message rates.
"""

import pytest

from conftest import show
from repro.reporting.experiments import fig11
from repro.units import MiB


@pytest.mark.benchmark(group="fig11")
def test_fig11_imb_pingpong(once):
    fig = once(fig11, quick=True)
    show(fig)
    mx = fig.get("MX")
    ioat = fig.get("Open-MX I/OAT")
    omx = fig.get("Open-MX")
    ioat_norc = fig.get("Open-MX I/OAT w/o regcache")
    omx_norc = fig.get("Open-MX w/o regcache")

    size = 4 * MiB
    # I/OAT gain dwarfs the registration-cache gain (paper's key point).
    ioat_gain = ioat.y_at(size) - omx.y_at(size)
    regcache_gain = omx.y_at(size) - omx_norc.y_at(size)
    assert ioat_gain > 1.5 * regcache_gain

    # Large-message parity with native MX (paper: "same performance ...
    # close to the 10G Ethernet line rate").
    assert ioat.y_at(16 * MiB) > 0.95 * mx.y_at(16 * MiB)

    # Ordering of the five curves at large sizes matches the figure.
    assert mx.y_at(size) >= ioat.y_at(size) > ioat_norc.y_at(size) \
        > omx.y_at(size) > omx_norc.y_at(size)

    # Disabling the cache hurts both modes but breaks neither.
    assert ioat_norc.y_at(size) > omx.y_at(size)
