"""Events, requests and the statically-pinned eager ring.

The driver communicates with the user library through a per-endpoint event
ring (§III-A: "an event is written in a shared event ring to notify a
receive completion to the user-library").  Small and medium message data
travels alongside in a statically-allocated, statically-pinned user-space
ring (§II-B, Fig. 2): the BH copies incoming fragments into ring slots; the
library copies them out after matching — the two-copy path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum, auto
from typing import Optional

from repro.memory.buffers import AddressSpace, MemoryRegion
from repro.mx.wire import EndpointAddr


class EvType(IntEnum):
    """Driver→library event ring entries."""

    #: an eager fragment landed in ring slot ``ring_slot``
    EAGER_FRAG = auto()
    #: a rendezvous arrived: a large message awaits a matching recv
    RNDV = auto()
    #: a driver-managed large receive finished (data already in place)
    RECV_LARGE_DONE = auto()
    #: a send request fully completed (acked / notified / locally copied)
    SEND_DONE = auto()
    #: a local (intra-node) rendezvous from a same-host sender
    RNDV_LOCAL = auto()
    #: a request failed with a typed error (``req.error`` is set) — posted
    #: when the reliability layer dead-letters or a pull is aborted
    FAILED = auto()


@dataclass
class OmxEvent:
    """One event-ring entry."""

    etype: EvType
    peer: EndpointAddr
    match_info: int = 0
    msg_id: int = 0
    msg_len: int = 0
    #: eager fragment geometry
    frag_index: int = 0
    frag_count: int = 1
    offset: int = 0
    length: int = 0
    #: eager ring slot holding the data (EAGER_FRAG only)
    ring_slot: int = -1
    #: request handle being completed (SEND_DONE / RECV_LARGE_DONE)
    req: Optional["OmxRequest"] = None


@dataclass
class OmxRequest:
    """A user-visible pending operation (send or receive)."""

    kind: str  # "send" | "recv"
    match_info: int
    mask: int
    region: Optional[MemoryRegion]
    offset: int
    length: int
    peer: Optional[EndpointAddr] = None
    completion: object = None  # Event, filled in by the endpoint
    xfer_length: int = 0
    msg_id: int = -1
    #: typed failure (:class:`repro.core.errors.TransferError`); set before
    #: the completion event triggers when the stack gives up on the transfer
    error: Optional[BaseException] = None
    #: driver-side pinned region(s) (large messages), for release at completion
    pinned: object = None
    #: vectored sends: list of (region, offset, length) segments; when set,
    #: ``region`` is None and ``length`` is the total (§IV-A's
    #: "highly-vectorial buffers" case — segment boundaries cap fragment
    #: sizes, which is what makes the 1 kB offload threshold matter)
    segments: Optional[list] = None

    @property
    def done(self) -> bool:
        return self.completion is not None and self.completion.triggered

    @property
    def failed(self) -> bool:
        """True when the stack gave up on this transfer (typed ``error``)."""
        return self.error is not None

    def iter_pieces(self, start: int, length: int, max_piece: int):
        """Walk ``[start, start+length)`` of the message payload, yielding
        ``(msg_offset, region, region_offset, piece_len)`` pieces that never
        cross a segment boundary nor exceed ``max_piece``."""
        if self.segments is None:
            pos = start
            end = start + length
            while pos < end:
                n = min(max_piece, end - pos)
                yield pos, self.region, self.offset + pos, n
                pos += n
            return
        end = start + length
        msg_off = 0
        for region, seg_off, seg_len in self.segments:
            seg_lo, seg_hi = msg_off, msg_off + seg_len
            lo = max(seg_lo, start)
            while lo < min(seg_hi, end):
                n = min(max_piece, min(seg_hi, end) - lo)
                yield lo, region, seg_off + (lo - seg_lo), n
                lo += n
            msg_off = seg_hi
            if msg_off >= end:
                break


class EagerRing:
    """Statically pinned ring of fixed-size slots for eager data.

    Allocated (and conceptually pinned) once at endpoint open, so the BH can
    copy into it without any per-message pinning (§II-C: "Open-MX already
    pins its receive buffers").  Slots are freed by the library after it
    copies data out; an exhausted ring makes the BH drop the fragment (the
    reliability layer retransmits it later).
    """

    def __init__(self, space: AddressSpace, nslots: int = 256, slot_size: int = 4096):
        if nslots < 1 or slot_size < 1:
            raise ValueError("ring needs >= 1 slot of >= 1 byte")
        self.nslots = nslots
        self.slot_size = slot_size
        self.region = space.alloc(nslots * slot_size)
        self._free: list[int] = list(range(nslots - 1, -1, -1))
        self._busy: set[int] = set()
        # statistics
        self.drops_full = 0

    @property
    def free_slots(self) -> int:
        return len(self._free)

    def acquire_slot(self) -> Optional[int]:
        """Take a slot for an incoming fragment; None when exhausted."""
        if not self._free:
            self.drops_full += 1
            return None
        slot = self._free.pop()
        self._busy.add(slot)
        return slot

    def release_slot(self, slot: int) -> None:
        """Library-side: slot data has been copied out."""
        if slot not in self._busy:
            raise ValueError(f"slot {slot} is not busy")
        self._busy.remove(slot)
        self._free.append(slot)

    def slot_region(self, slot: int) -> MemoryRegion:
        """The memory backing one slot."""
        if not 0 <= slot < self.nslots:
            raise IndexError(slot)
        return self.region.subregion(slot * self.slot_size, self.slot_size)
