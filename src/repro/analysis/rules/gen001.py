"""GEN001: sim-process generator called without being driven.

Calling a generator function produces a generator object and runs *none* of
its body — so a bare statement like ``self.cleanup(core, state)`` where
``cleanup`` is a generator silently does nothing.  The fix is ``yield from
...``, ``sim.process(...)``/``sim.daemon(...)``, or driving it explicitly.
This is the single most insidious bug class in a generator-coroutine
simulator: everything still runs, the numbers are just wrong.

Resolution runs on the dataflow engine's project symbol table: bare calls
to module-level generator functions, to generator methods via ``self.``,
to nested generator defs, *and* — when the sweep lints the whole tree as
one project — to generator functions imported from any other swept module
(``from repro.x import proc; proc(core)`` is just as silently wrong as the
local spelling).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional, Set

from repro.analysis.lint import (
    Finding,
    ModuleSource,
    Rule,
    is_generator,
    own_nodes,
    register_rule,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.dataflow import Project


@register_rule
class UndrivenGeneratorRule(Rule):
    code = "GEN001"
    summary = "generator function invoked as a bare statement (never driven)"

    def check(self, module: ModuleSource,
              project: Optional["Project"] = None) -> Iterator[Finding]:
        tree = module.tree
        module_gens = {
            n.name for n in tree.body
            if isinstance(n, ast.FunctionDef) and is_generator(n)
        }
        # module-level bare calls
        for stmt in tree.body:
            yield from self._check_stmt(module, project, stmt, module_gens,
                                        set(), "module scope")
        for node in tree.body:
            if isinstance(node, ast.FunctionDef):
                yield from self._check_fn(module, project, node, module_gens, set())
            elif isinstance(node, ast.ClassDef):
                method_gens = {
                    m.name for m in node.body
                    if isinstance(m, ast.FunctionDef) and is_generator(m)
                }
                for m in node.body:
                    if isinstance(m, ast.FunctionDef):
                        yield from self._check_fn(module, project, m,
                                                  module_gens, method_gens)

    def _check_fn(self, module: ModuleSource, project: Optional["Project"],
                  fn: ast.FunctionDef, module_gens: Set[str],
                  method_gens: Set[str]) -> Iterator[Finding]:
        local_gens = {
            n.name for n in own_nodes(fn)
            if isinstance(n, ast.FunctionDef) and is_generator(n)
        }
        callable_gens = module_gens | local_gens
        for node in own_nodes(fn):
            yield from self._check_stmt(module, project, node, callable_gens,
                                        method_gens, f"'{fn.name}'")
            if isinstance(node, ast.FunctionDef):
                # nested non-generator helpers can still mis-call their siblings
                yield from self._check_fn(module, project, node, callable_gens,
                                          method_gens)

    def _imported_generator(self, module: ModuleSource,
                            project: Optional["Project"],
                            func: ast.AST) -> Optional[str]:
        """Dotted name when ``func`` resolves to a generator in the project."""
        if project is None:
            return None
        dotted = module.dotted_name(func)
        if dotted is None:
            return None
        target = project.functions.get(dotted)
        if target is not None and target.is_generator:
            # skip self-module hits: the local passes already cover them
            if target.module.source.path != module.path:
                return dotted
        return None

    def _check_stmt(self, module: ModuleSource, project: Optional["Project"],
                    node: ast.AST, callable_gens: Set[str],
                    method_gens: Set[str], where: str) -> Iterator[Finding]:
        if not (isinstance(node, ast.Expr) and isinstance(node.value, ast.Call)):
            return
        func = node.value.func
        name = None
        if isinstance(func, ast.Name) and func.id in callable_gens:
            name = func.id
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and func.attr in method_gens
        ):
            name = f"self.{func.attr}"
        else:
            name = self._imported_generator(module, project, func)
        if name is not None:
            yield module.finding(
                self.code, node,
                f"generator '{name}' called as a bare statement in {where} — "
                f"its body never runs (use 'yield from' or sim.process/daemon)",
            )
