"""MPICH-style collective algorithms over point-to-point.

All functions are generator-coroutines executed inside each rank's process
(SPMD): every rank of the communicator must call the same collectives in the
same order.  A per-rank collective sequence number is mixed into the tag so
consecutive collectives cannot cross-match.

Algorithms (matching MPICH defaults of the era):

=============== ==========================================
Barrier         dissemination
Bcast           binomial tree
Reduce          binomial tree (reversed)
Allreduce       recursive doubling (power-of-two ranks), else reduce+bcast
Allgather       ring
Allgatherv      ring
Alltoall        shifted pairwise exchange
Reduce_scatter  pairwise exchange with accumulation
=============== ==========================================

Reductions really compute (float32 sum over the buffer bytes) and charge the
CPU for the arithmetic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.units import GiB, SEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.memory.buffers import MemoryRegion
    from repro.mpi.comm import Rank

#: vector-add rate for the reduction arithmetic cost model (bytes/s)
REDUCE_BW = 3.0 * GiB

#: tag namespace for collective traffic
_COLL_TAG_BASE = 0x40000000


def _coll_tag(rank: "Rank") -> int:
    seq = getattr(rank, "_coll_seq", 0)
    rank._coll_seq = seq + 1
    return _COLL_TAG_BASE | (seq & 0xFFFFF)


def _scratch(rank: "Rank", key: str, nbytes: int) -> "MemoryRegion":
    """Reusable per-rank scratch region (grown on demand)."""
    cache = getattr(rank, "_scratch", None)
    if cache is None:
        cache = rank._scratch = {}
    region = cache.get(key)
    if region is None or len(region) < nbytes:
        region = rank.space.alloc(max(nbytes, 1))
        cache[key] = region
    return region


def _accumulate(rank: "Rank", acc, acc_off: int, contrib, contrib_off: int,
                length: int) -> Generator:
    """acc += contrib (float32 when aligned, else uint8 modular sum)."""
    cost = int(round(length * SEC / REDUCE_BW))
    yield from rank.core.execute(max(cost, 1), "user")
    a = acc.read(acc_off, length)
    b = contrib.read(contrib_off, length)
    if length % 4 == 0 and length:
        fa = a.view(np.float32)
        fb = b.view(np.float32)
        # Benchmark buffers carry arbitrary bit patterns; NaN/inf results
        # are acceptable (IMB does not check values either).
        with np.errstate(invalid="ignore", over="ignore"):
            fa += fb
    else:
        a += b  # uint8 wraps, still deterministic and verifiable
    return None


# ---------------------------------------------------------------------------
# Barrier
# ---------------------------------------------------------------------------

def barrier(rank: "Rank") -> Generator:
    """Dissemination barrier: ceil(log2(p)) rounds of 1-byte exchanges."""
    p = rank.size
    tag = _coll_tag(rank)
    if p == 1:
        return None
    token = _scratch(rank, "bar_tx", 1)
    sink = _scratch(rank, "bar_rx", 1)
    k = 1
    while k < p:
        dst = (rank.rank + k) % p
        src = (rank.rank - k) % p
        yield from rank.sendrecv(dst, token, src, sink, length=1,
                                 stag=tag + 0, rtag=tag + 0)
        k *= 2
    return None


# ---------------------------------------------------------------------------
# Bcast / Reduce
# ---------------------------------------------------------------------------

def bcast(rank: "Rank", region, root: int = 0, length=None) -> Generator:
    """Binomial-tree broadcast from ``root``."""
    p = rank.size
    n = len(region) if length is None else length
    tag = _coll_tag(rank)
    if p == 1 or n == 0:
        return None
    vrank = (rank.rank - root) % p
    # Receive phase: find my parent.
    mask = 1
    while mask < p:
        if vrank & mask:
            parent = (vrank - mask + root) % p
            yield from rank.recv(parent, region, 0, n, tag)
            break
        mask *= 2
    # Send phase: forward to children below my lowest set bit.
    mask //= 2
    while mask >= 1:
        child_v = vrank + mask
        if child_v < p:
            child = (child_v + root) % p
            yield from rank.send(child, region, 0, n, tag)
        mask //= 2
    return None


def reduce(rank: "Rank", sendbuf, recvbuf, root: int = 0, length=None) -> Generator:
    """Binomial-tree reduction to ``root`` (sum)."""
    p = rank.size
    n = (len(sendbuf) if length is None else length)
    tag = _coll_tag(rank)
    acc = recvbuf if rank.rank == root else _scratch(rank, "red_acc", n)
    if n:
        # Seed the accumulator with the local contribution.
        yield from rank.core.execute(max(int(n * SEC / REDUCE_BW), 1), "user")
        acc.read(0, n)[:] = sendbuf.read(0, n)
    if p == 1:
        return None
    vrank = (rank.rank - root) % p
    tmp = _scratch(rank, "red_tmp", n)
    mask = 1
    while mask < p:
        if vrank & mask:
            parent = (vrank - mask + root) % p
            yield from rank.send(parent, acc, 0, n, tag + (mask.bit_length()))
            break
        child_v = vrank + mask
        if child_v < p:
            child = (child_v + root) % p
            yield from rank.recv(child, tmp, 0, n, tag + (mask.bit_length()))
            yield from _accumulate(rank, acc, 0, tmp, 0, n)
        mask *= 2
    return None


# ---------------------------------------------------------------------------
# Allreduce
# ---------------------------------------------------------------------------

#: selectable allreduce algorithms (``algo=`` kwarg)
ALLREDUCE_ALGOS = ("auto", "ring", "rd")


def allreduce(rank: "Rank", sendbuf, recvbuf, length=None,
              algo: str = "auto") -> Generator:
    """Sum-allreduce with a selectable algorithm.

    * ``"auto"`` (default, unchanged): recursive doubling when the rank
      count is a power of two, else reduce + bcast;
    * ``"ring"``: reduce-scatter ring followed by an allgather ring —
      bandwidth-optimal for large buffers, 2(p-1) steps;
    * ``"rd"``: recursive doubling at every rank count, folding the ranks
      beyond the largest power of two into their partners first.
    """
    if algo not in ALLREDUCE_ALGOS:
        raise ValueError(f"unknown allreduce algo {algo!r}; "
                         f"expected one of {ALLREDUCE_ALGOS}")
    p = rank.size
    n = (len(sendbuf) if length is None else length)
    tag = _coll_tag(rank)
    if n:
        yield from rank.core.execute(max(int(n * SEC / REDUCE_BW), 1), "user")
        recvbuf.read(0, n)[:] = sendbuf.read(0, n)
    if p == 1:
        return None
    if algo == "ring":
        yield from _allreduce_ring(rank, recvbuf, n, tag)
        return None
    if algo == "rd":
        yield from _allreduce_rd(rank, recvbuf, n, tag)
        return None
    if p & (p - 1):  # not a power of two
        yield from reduce(rank, recvbuf, recvbuf, 0, n)
        yield from bcast(rank, recvbuf, 0, n)
        return None
    tmp = _scratch(rank, "ar_tmp", n)
    mask = 1
    step = 0
    while mask < p:
        partner = rank.rank ^ mask
        yield from rank.sendrecv(partner, recvbuf, partner, tmp, length=n,
                                 stag=tag + step, rtag=tag + step)
        yield from _accumulate(rank, recvbuf, 0, tmp, 0, n)
        mask *= 2
        step += 1
    return None


def _allreduce_ring(rank: "Rank", buf, n: int, tag: int) -> Generator:
    """Reduce-scatter ring + allgather ring over ``buf`` (already seeded).

    Blocks are cut on 4-byte boundaries so the float32 reduction view stays
    aligned; the last rank's block absorbs the remainder.  Zero-sized
    blocks (buffers smaller than 4p bytes) skip their wire steps, like
    :func:`allgatherv` does.
    """
    p = rank.size
    if n == 0:
        return None
    base = (n // p) & ~3
    sizes = [base] * (p - 1) + [n - base * (p - 1)]
    displs = [base * i for i in range(p)]
    right = (rank.rank + 1) % p
    left = (rank.rank - 1) % p
    tmp = _scratch(rank, "arr_tmp", sizes[p - 1])
    # Phase 1: reduce-scatter ring; after step s, block (r - s - 1) % p on
    # rank r holds the partial sum of s + 2 contributions.
    for step in range(p - 1):
        sb = (rank.rank - step) % p
        rb = (rank.rank - step - 1) % p
        sn, rn = sizes[sb], sizes[rb]
        rreq = sreq = None
        if rn:
            rreq = yield from rank.irecv(left, tmp, 0, rn, tag + step)
        if sn:
            sreq = yield from rank.isend(right, buf, displs[sb], sn, tag + step)
        if sreq is not None:
            yield from rank.wait(sreq)
        if rreq is not None:
            yield from rank.wait(rreq)
        if rn:
            yield from _accumulate(rank, buf, displs[rb], tmp, 0, rn)
    # Phase 2: allgather ring, forwarding the newest finished block.
    for step in range(p - 1):
        sb = (rank.rank + 1 - step) % p
        rb = (rank.rank - step) % p
        sn, rn = sizes[sb], sizes[rb]
        rreq = sreq = None
        if rn:
            rreq = yield from rank.irecv(left, buf, displs[rb], rn,
                                         tag + p + step)
        if sn:
            sreq = yield from rank.isend(right, buf, displs[sb], sn,
                                         tag + p + step)
        if sreq is not None:
            yield from rank.wait(sreq)
        if rreq is not None:
            yield from rank.wait(rreq)
    return None


def _allreduce_rd(rank: "Rank", buf, n: int, tag: int) -> Generator:
    """Recursive doubling over ``buf`` (already seeded) at any rank count.

    Ranks beyond the largest power of two fold their contribution into
    rank - pow2 first, sit out the doubling, and receive the result back —
    the MPICH non-power-of-two prologue/epilogue.
    """
    p = rank.size
    if n == 0:
        return None
    pow2 = 1 << (p.bit_length() - 1)
    rem = p - pow2
    me = rank.rank
    if me >= pow2:
        yield from rank.send(me - pow2, buf, 0, n, tag)
        yield from rank.recv(me - pow2, buf, 0, n, tag + 1)
        return None
    tmp = _scratch(rank, "ard_tmp", n)
    if me < rem:
        yield from rank.recv(me + pow2, tmp, 0, n, tag)
        yield from _accumulate(rank, buf, 0, tmp, 0, n)
    mask = 1
    step = 2
    while mask < pow2:
        partner = me ^ mask
        yield from rank.sendrecv(partner, buf, partner, tmp, length=n,
                                 stag=tag + step, rtag=tag + step)
        yield from _accumulate(rank, buf, 0, tmp, 0, n)
        mask *= 2
        step += 1
    if me < rem:
        yield from rank.send(me + pow2, buf, 0, n, tag + 1)
    return None


# ---------------------------------------------------------------------------
# Allgather(v)
# ---------------------------------------------------------------------------

def allgather(rank: "Rank", sendbuf, recvbuf, block_length: int) -> Generator:
    """Ring allgather: p-1 steps, forwarding the newest block each step."""
    p = rank.size
    n = block_length
    tag = _coll_tag(rank)
    if n:
        yield from rank.core.execute(max(int(n * SEC / REDUCE_BW), 1), "user")
        recvbuf.read(rank.rank * n, n)[:] = sendbuf.read(0, n)
    if p == 1 or n == 0:
        return None
    right = (rank.rank + 1) % p
    left = (rank.rank - 1) % p
    for step in range(p - 1):
        send_block = (rank.rank - step) % p
        recv_block = (rank.rank - step - 1) % p
        rreq = yield from rank.irecv(left, recvbuf, recv_block * n, n, tag + step)
        sreq = yield from rank.isend(right, recvbuf, send_block * n, n, tag + step)
        yield from rank.wait(sreq)
        yield from rank.wait(rreq)
    return None


def allgatherv(rank: "Rank", sendbuf, recvbuf, block_lengths: list[int]) -> Generator:
    """Ring allgather with per-rank block sizes."""
    p = rank.size
    tag = _coll_tag(rank)
    displs = [0] * p
    for i in range(1, p):
        displs[i] = displs[i - 1] + block_lengths[i - 1]
    my_n = block_lengths[rank.rank]
    if my_n:
        yield from rank.core.execute(max(int(my_n * SEC / REDUCE_BW), 1), "user")
        recvbuf.read(displs[rank.rank], my_n)[:] = sendbuf.read(0, my_n)
    if p == 1:
        return None
    right = (rank.rank + 1) % p
    left = (rank.rank - 1) % p
    for step in range(p - 1):
        send_block = (rank.rank - step) % p
        recv_block = (rank.rank - step - 1) % p
        sn, rn = block_lengths[send_block], block_lengths[recv_block]
        rreq = sreq = None
        if rn:
            rreq = yield from rank.irecv(left, recvbuf, displs[recv_block], rn, tag + step)
        if sn:
            sreq = yield from rank.isend(right, recvbuf, displs[send_block], sn, tag + step)
        if sreq is not None:
            yield from rank.wait(sreq)
        if rreq is not None:
            yield from rank.wait(rreq)
    return None


# ---------------------------------------------------------------------------
# Alltoall / Reduce_scatter
# ---------------------------------------------------------------------------

def alltoall(rank: "Rank", sendbuf, recvbuf, block_length: int) -> Generator:
    """Shifted pairwise exchange: p-1 simultaneous send/recv steps."""
    p = rank.size
    n = block_length
    tag = _coll_tag(rank)
    if n:
        yield from rank.core.execute(max(int(n * SEC / REDUCE_BW), 1), "user")
        recvbuf.read(rank.rank * n, n)[:] = sendbuf.read(rank.rank * n, n)
    if p == 1 or n == 0:
        return None
    for step in range(1, p):
        dst = (rank.rank + step) % p
        src = (rank.rank - step) % p
        rreq = yield from rank.irecv(src, recvbuf, src * n, n, tag + step)
        sreq = yield from rank.isend(dst, sendbuf, dst * n, n, tag + step)
        yield from rank.wait(sreq)
        yield from rank.wait(rreq)
    return None


def reduce_scatter(rank: "Rank", sendbuf, recvbuf, block_length: int) -> Generator:
    """Pairwise exchange with accumulation: rank i ends up with
    sum over ranks of block i."""
    p = rank.size
    n = block_length
    tag = _coll_tag(rank)
    if n:
        yield from rank.core.execute(max(int(n * SEC / REDUCE_BW), 1), "user")
        recvbuf.read(0, n)[:] = sendbuf.read(rank.rank * n, n)
    if p == 1 or n == 0:
        return None
    tmp = _scratch(rank, "rs_tmp", n)
    for step in range(1, p):
        dst = (rank.rank + step) % p
        src = (rank.rank - step) % p
        rreq = yield from rank.irecv(src, tmp, 0, n, tag + step)
        sreq = yield from rank.isend(dst, sendbuf, dst * n, n, tag + step)
        yield from rank.wait(sreq)
        yield from rank.wait(rreq)
        yield from _accumulate(rank, recvbuf, 0, tmp, 0, n)
    return None
