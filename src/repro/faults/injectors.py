"""Bridges from declarative fault specs to the layers' runtime hooks.

Arming a plan against a testbed instantiates one injector per spec and
wires it into the corresponding hook:

* :class:`RandomFrameFaults` implements the link layer's
  :class:`~repro.ethernet.link.FrameFaultHook` with one seeded draw per
  serialized frame;
* :class:`WindowGate` answers ``blocks(now)`` for NIC rx-ring windows;
* :class:`SwitchEgressFault` answers ``drop_egress(port, frame, now)``;
* I/OAT faults are scheduled as bare simulator callbacks that call
  :meth:`~repro.ioat.channel.DmaChannel.fail` /
  :meth:`~repro.ioat.channel.DmaChannel.stall` /
  :meth:`~repro.ioat.channel.DmaChannel.recover` at their trigger time.

Every injector counts what it actually did, and :class:`ArmedPlan`
aggregates those counts into the campaign report's "injected" section —
so a cell whose plan never fired (windows past the run, rates too low) is
visible instead of silently reading as "survived everything".
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from repro.ethernet.link import DELIVER, FrameVerdict
from repro.faults.plan import FaultPlan, LinkFaultSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.testbed import Testbed
    from repro.ethernet.frame import EthernetFrame


class RandomFrameFaults:
    """Seeded per-frame fault decisions for one link direction.

    Exactly one RNG draw per in-window frame keeps the schedule a pure
    function of (seed, frame index): adding a second spec or re-running
    the cell cannot shift which frames are hit.
    """

    def __init__(self, spec: LinkFaultSpec, seed: str):
        self.spec = spec
        self.rng = random.Random(seed)
        self.drops = 0
        self.dups = 0
        self.corrupts = 0
        self.reorders = 0

    def on_frame(self, frame: "EthernetFrame", index: int, now: int) -> FrameVerdict:
        spec = self.spec
        if index < spec.first_index:
            return DELIVER
        if spec.last_index is not None and index > spec.last_index:
            return DELIVER
        if spec.windows and not any(
            start <= now < stop for start, stop in spec.windows
        ):
            # Flapping link, currently healthy.  No draw: the schedule
            # inside each bad window must not depend on how many healthy
            # frames crossed the link before it — draws are a function of
            # the in-window frame sequence, windows just gate them.
            return DELIVER
        r = self.rng.random()
        edge = spec.drop_rate
        if r < edge:
            self.drops += 1
            return FrameVerdict(deliver=False)
        edge += spec.dup_rate
        if r < edge:
            self.dups += 1
            return FrameVerdict(duplicates=1)
        edge += spec.corrupt_rate
        if r < edge:
            self.corrupts += 1
            return FrameVerdict(corrupt=True)
        edge += spec.reorder_rate
        if r < edge:
            self.reorders += 1
            return FrameVerdict(delay=spec.reorder_delay)
        return DELIVER

    def counters(self) -> dict[str, int]:
        return {
            "frame_drops": self.drops,
            "frame_dups": self.dups,
            "frame_corrupts": self.corrupts,
            "frame_reorders": self.reorders,
        }


class WindowGate:
    """True inside any of a set of half-open (start, stop) tick windows."""

    def __init__(self, windows):
        self.windows = tuple(tuple(w) for w in windows)
        self.hits = 0

    def blocks(self, now: int) -> bool:
        for start, stop in self.windows:
            if start <= now < stop:
                self.hits += 1
                return True
        return False


class SwitchEgressFault:
    """Per-port egress overflow windows for one switch."""

    def __init__(self, gates: dict[int, WindowGate]):
        self._gates = gates

    def drop_egress(self, port: int, frame: "EthernetFrame", now: int) -> bool:
        gate = self._gates.get(port)
        return gate is not None and gate.blocks(now)

    @property
    def hits(self) -> int:
        return sum(g.hits for g in self._gates.values())


class ArmedPlan:
    """A plan wired into one live testbed; aggregates injected-fault counts."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.frame_hooks: list[RandomFrameFaults] = []
        self.nic_gates: list[WindowGate] = []
        self.switch_fault: Optional[SwitchEgressFault] = None
        self.ioat_armed = 0
        self.fabric_armed = 0

    def counters(self) -> dict[str, int]:
        c = {
            "frame_drops": 0,
            "frame_dups": 0,
            "frame_corrupts": 0,
            "frame_reorders": 0,
        }
        for hook in self.frame_hooks:
            for key, val in hook.counters().items():
                c[key] += val
        c["nic_window_drops"] = sum(g.hits for g in self.nic_gates)
        c["switch_window_drops"] = (
            self.switch_fault.hits if self.switch_fault is not None else 0
        )
        c["ioat_faults_armed"] = self.ioat_armed
        c["fabric_faults_armed"] = self.fabric_armed
        return c


def arm_plan(tb: "Testbed", plan: FaultPlan) -> ArmedPlan:
    """Wire ``plan`` into ``tb``; returns the armed view for reporting.

    Works on every testbed shape: back-to-back (``tb.link``), switched
    (``tb.switch`` with per-port links) and fabric worlds (``tb.net``, a
    :class:`~repro.fabric.network.FabricNetwork` whose named links the
    ``fabric`` specs target).  Specs that reference hardware the testbed
    lacks (a switch port on a switchless testbed, a fabric link name the
    topology doesn't have) raise — a plan silently not applying would
    invalidate the whole cell.
    """
    armed = ArmedPlan(plan)
    switch = getattr(tb, "switch", None)

    for i, spec in enumerate(plan.links):
        if getattr(tb, "link", None) is not None:
            links = [(tb.link, "")]
        elif switch is None:
            raise ValueError("link fault on a testbed with no link or switch")
        elif spec.port is not None:
            links = [(switch.links[spec.port], f":p{spec.port}")]
        else:
            # Portless spec on a switched fabric: every cable misbehaves,
            # each with its own RNG stream so per-link schedules stay a
            # pure function of (seed, frame index).
            links = [
                (link, f":p{p}")
                for p, link in enumerate(switch.links) if link is not None
            ]
        for link, tag in links:
            hook = RandomFrameFaults(
                spec, f"{plan.seed}:{plan.name}:link{i}{tag}"
            )
            link.inject_fault(spec.direction_a2b, hook)
            armed.frame_hooks.append(hook)

    for spec in plan.nics:
        gate = WindowGate(spec.windows)
        tb.hosts[spec.node].nic.rx_fault = gate
        armed.nic_gates.append(gate)

    if plan.switches:
        if switch is None:
            raise ValueError("switch fault plan on a switchless testbed")
        switch.fault = SwitchEgressFault(
            {spec.port: WindowGate(spec.windows) for spec in plan.switches}
        )
        armed.switch_fault = switch.fault

    for spec in plan.ioat:
        host = tb.hosts[spec.node]
        engine = host.ioat_engine
        if spec.channel is None:
            # All DMA lanes of the node — the engine's own channels plus
            # any lanes a copy backend (repro.core.backends) brought up.
            channels = list(engine.channels)
            channels += getattr(host, "extra_dma_channels", [])
        else:
            channels = [engine[spec.channel]]
        for ch in channels:
            if spec.action == "fail":
                tb.sim.call_at(spec.at, ch.fail)
            elif spec.action == "recover":
                tb.sim.call_at(spec.at, ch.recover)
            else:
                duration = spec.duration
                tb.sim.call_at(
                    spec.at, lambda c=ch, d=duration: c.stall(d)
                )
            armed.ioat_armed += 1

    if plan.fabric:
        net = getattr(tb, "net", None)
        if net is None:
            raise ValueError("fabric fault plan on a non-fabric testbed")
        for spec in plan.fabric:
            net.spec.link_named(spec.link)  # raises on an unknown name
            if spec.action == "kill":
                net.kill_link(spec.link, at=spec.at)
            else:
                net.revive_link(spec.link, at=spec.at)
            armed.fabric_armed += 1
    return armed
