"""Tests for the simulated-time phase profiler and the Fig. 9 report."""

import pytest

from repro import build_testbed
from repro.cluster.testbed import build_single_node
from repro.obs.profiler import (
    PAPER_TARGETS,
    TOLERANCE_POINTS,
    PhaseProfiler,
    fig9_report,
    point_cpu_profile,
    render_fig9,
)
from repro.units import KiB, MiB
from repro.workloads import run_stream_usage

pytestmark = pytest.mark.obs


class TestPhaseProfiler:
    def test_attach_and_attribute_phases(self):
        tb = build_single_node()
        host = tb.hosts[0]
        prof = PhaseProfiler(tb.sim).attach(host.cpus)
        core = host.user_core(0)
        space = host.user_space("prof")
        src, dst = space.alloc(64 * KiB), space.alloc(64 * KiB)
        done = tb.sim.event()

        def work():
            yield core.res.request()
            yield from host.copier.memcpy(core, src, 0, dst, 0, 64 * KiB, "user")
            yield from core.busy(500, "user")  # untagged charge
            core.res.release()
            done.succeed()

        tb.sim.process(work())
        tb.sim.run_until(done)
        phases = prof.phases()
        assert phases["memcpy"] > 0
        assert phases["user:other"] == 500

    def test_untagged_charges_bucket_by_category(self):
        tb = build_single_node()
        host = tb.hosts[0]
        prof = PhaseProfiler(tb.sim).attach(host.cpus)
        core = host.user_core(0)
        done = tb.sim.event()

        def work():
            yield core.res.request()
            yield from core.busy(100, "bh")
            yield from core.busy(50, "driver")
            core.res.release()
            done.succeed()

        tb.sim.process(work())
        tb.sim.run_until(done)
        assert prof.phases() == {"bh:other": 100, "driver:other": 50}

    def test_reset_follows_core_counters(self):
        tb = build_single_node()
        host = tb.hosts[0]
        prof = PhaseProfiler(tb.sim).attach(host.cpus)
        core = host.user_core(0)
        done = tb.sim.event()

        def work():
            yield core.res.request()
            yield from core.busy(100, "user")
            host.cpus.reset_counters()
            yield from core.busy(40, "user")
            core.res.release()
            done.succeed()

        tb.sim.process(work())
        tb.sim.run_until(done)
        assert prof.phases() == {"user:other": 40}

    def test_detach_stops_recording(self):
        tb = build_single_node()
        host = tb.hosts[0]
        prof = PhaseProfiler(tb.sim).attach(host.cpus)
        prof.detach(host.cpus)
        core = host.user_core(0)
        done = tb.sim.event()

        def work():
            yield core.res.request()
            yield from core.busy(100, "user")
            core.res.release()
            done.succeed()

        tb.sim.process(work())
        tb.sim.run_until(done)
        assert prof.phases() == {}

    def test_percent_is_relative_to_elapsed(self):
        tb = build_single_node()
        prof = PhaseProfiler(tb.sim)
        core = tb.hosts[0].user_core(0)
        prof.record(core, "bh", "frag_copy", 250)
        assert prof.percent(1000) == {"frag_copy": 25.0}
        assert prof.percent(0) == {}


class TestStreamProfile:
    def test_stream_usage_reports_window(self):
        tb = build_testbed(ioat_enabled=False, regcache_enabled=False)
        u = run_stream_usage(tb, 128 * KiB, iterations=3)
        assert u.window_ticks > 0
        assert u.total_pct > 0

    def test_point_cpu_profile_decomposes_bands(self):
        r = point_cpu_profile(1 * MiB, 3, True, False, {})
        assert r["total_pct"] > 0
        phases = r["phases_pct"]
        # offload path: fragment copies happen on the DMA engine, the CPU
        # submits descriptors and processes headers
        assert phases.get("dma_submit", 0) > 0
        assert phases.get("bh_header", 0) > 0
        # phases never exceed what the three bands account for (same ticks)
        assert sum(phases.values()) == pytest.approx(r["total_pct"], abs=0.5)

    def test_memcpy_profile_dominated_by_frag_copy(self):
        r = point_cpu_profile(1 * MiB, 3, False, False, {})
        phases = r["phases_pct"]
        assert phases["frag_copy"] == max(phases.values())
        assert "dma_submit" not in phases


class TestFig9Report:
    def test_quick_report_within_paper_tolerance(self):
        report = fig9_report(quick=True)
        assert report["calibration_ok"], render_fig9(report)
        for c in report["calibration"]:
            assert abs(c["measured_pct"] - c["paper_pct"]) <= TOLERANCE_POINTS
        # the paper's qualitative claim at every size: I/OAT offload uses
        # less CPU than the memcpy path
        by_key = {(r["size"], r["mode"]): r for r in report["rows"]}
        for (size, mode), row in by_key.items():
            if mode == "ioat":
                assert row["total_pct"] < by_key[(size, "memcpy")]["total_pct"]

    def test_targets_cover_both_regimes(self):
        sizes = {size for size, _ in PAPER_TARGETS}
        assert sizes == {32 * KiB, 16 * MiB}

    def test_render_mentions_calibration(self):
        report = fig9_report(quick=True)
        text = render_fig9(report)
        assert "calibration_ok" in text
        assert "16 MiB" in text
