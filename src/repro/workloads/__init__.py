"""Workload generators used by the evaluation.

* :mod:`~repro.workloads.streams` — the unidirectional stream of synchronous
  large messages behind Fig. 9's CPU-usage measurement.
* :mod:`~repro.workloads.shm_pingpong` — intra-node ping-pong with explicit
  core placement (Fig. 10).
* :mod:`~repro.workloads.nas_is` — the communication kernel of NAS IS
  (bucket-sort ranking: Allreduce of bucket histograms + Alltoallv of keys),
  the benchmark the paper calls out for its large-message sensitivity.
* :mod:`~repro.workloads.vectored` — highly-vectorial (scattered) buffers,
  the §IV-A corner case that produces sub-kilobyte fragments.
"""

from repro.workloads.streams import StreamUsage, run_stream_usage
from repro.workloads.shm_pingpong import run_shm_pingpong
from repro.workloads.nas_is import run_nas_is
from repro.workloads.pvfs import PvfsResult, run_pvfs_transfer
from repro.workloads.vectored import (
    VectoredCopyResult,
    VectoredRunResult,
    measure_vectored_copy,
    point_vectored,
    run_vectored_transfer,
)

__all__ = [
    "PvfsResult",
    "StreamUsage",
    "VectoredCopyResult",
    "VectoredRunResult",
    "measure_vectored_copy",
    "point_vectored",
    "run_nas_is",
    "run_pvfs_transfer",
    "run_shm_pingpong",
    "run_stream_usage",
    "run_vectored_transfer",
]
