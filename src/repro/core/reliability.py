"""Seqnum / ack / retransmit sessions for eager and control packets.

Ethernet gives no delivery guarantee, so Open-MX runs its own lightweight
reliability for everything that is not covered by the pull protocol's own
block re-requests: tiny/small/medium fragments, rendezvous announcements and
completion notifies.

Design (modelled on the real liback machinery):

* every reliable packet carries a per-session (src endpoint → dst endpoint)
  sequence number;
* the receiver remembers recently-seen seqnums (dedup) and acknowledges
  cumulatively — piggybacked on any outbound packet to the same peer, with a
  delayed explicit ACK as fallback;
* the sender keeps unacked packets (tiny/small keep their skbuff copy,
  mediums re-reference user pages) and retransmits after
  ``retransmit_timeout``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Generator, Optional

from repro.mx.wire import EndpointAddr, MxPacket

if TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.scheduler import Simulator

#: give up after this many retransmissions of one packet
MAX_RETRIES = 8

#: delayed-ack latency when no return traffic piggybacks the ack
DELAYED_ACK = 20_000  # 20 µs


@dataclass
class _Pending:
    packet: MxPacket
    first_sent: int
    retries: int = 0


class TxSession:
    """Sender half: assigns seqnums, holds packets until acked."""

    def __init__(self, sim: "Simulator", peer: EndpointAddr,
                 resend: Callable[[MxPacket], None], timeout: int):
        self.sim = sim
        self.peer = peer
        self.resend = resend
        self.timeout = timeout
        self.next_seq = 0
        self.pending: dict[int, _Pending] = {}
        self._timer_running = False
        self.retransmissions = 0
        self.dead: list[MxPacket] = []
        #: callbacks fired when a given seqnum is acked
        self._ack_watchers: dict[int, list[Callable[[], None]]] = {}

    def stamp(self, pkt: MxPacket) -> int:
        """Assign the next seqnum and track the packet until acked."""
        pkt.seqnum = self.next_seq
        self.next_seq += 1
        self.pending[pkt.seqnum] = _Pending(pkt, self.sim.now)
        self._arm_timer()
        return pkt.seqnum

    def on_ack(self, ack_seqnum: int) -> None:
        """Cumulative ack: everything <= ack_seqnum is delivered."""
        for seq in [s for s in self.pending if s <= ack_seqnum]:
            del self.pending[seq]
            for cb in self._ack_watchers.pop(seq, ()):
                cb()

    def watch_ack(self, seqnum: int, cb: Callable[[], None]) -> None:
        """Run ``cb`` once ``seqnum`` is acked (fires immediately if gone)."""
        if seqnum not in self.pending:
            cb()
        else:
            self._ack_watchers.setdefault(seqnum, []).append(cb)

    def _arm_timer(self) -> None:
        if self._timer_running:
            return
        self._timer_running = True
        self.sim.daemon(self._timer(), name=f"retx-{self.peer}")

    def _timer(self) -> Generator:
        while self.pending:
            yield self.sim.timeout(self.timeout)
            now = self.sim.now
            for seq in sorted(self.pending):
                entry = self.pending[seq]
                if now - entry.first_sent < self.timeout:
                    continue
                if entry.retries >= MAX_RETRIES:
                    self.dead.append(entry.packet)
                    del self.pending[seq]
                    continue
                entry.retries += 1
                entry.first_sent = now
                self.retransmissions += 1
                self.resend(entry.packet)
        self._timer_running = False


class RxSession:
    """Receiver half: duplicate filtering and cumulative-ack generation.

    Delivery is accepted in any order; ``cumulative`` tracks the highest
    seqnum below which everything has been seen (the value piggybacked on
    outbound traffic).
    """

    def __init__(self, sim: "Simulator", owner: EndpointAddr, peer: EndpointAddr,
                 send_ack: Callable[[EndpointAddr, EndpointAddr, int], None]):
        self.sim = sim
        #: the local endpoint this session belongs to (ACK source address)
        self.owner = owner
        self.peer = peer
        self.send_ack = send_ack
        self._seen: set[int] = set()
        self.cumulative = -1
        self._ack_scheduled = False
        self._acked_up_to = -1
        self.duplicates = 0

    def accept(self, pkt: MxPacket) -> bool:
        """True if this packet is new (deliver it); False for duplicates."""
        seq = pkt.seqnum
        if seq < 0:
            return True  # unsequenced packet (pull traffic)
        if seq <= self.cumulative or seq in self._seen:
            self.duplicates += 1
            self._schedule_ack()  # re-ack so the sender stops resending
            return False
        self._seen.add(seq)
        while (self.cumulative + 1) in self._seen:
            self.cumulative += 1
            self._seen.remove(self.cumulative)
        self._schedule_ack()
        return True

    def piggyback(self) -> int:
        """Cumulative ack value to embed in an outbound packet."""
        self._acked_up_to = self.cumulative
        return self.cumulative

    def _schedule_ack(self) -> None:
        if self._ack_scheduled:
            return
        self._ack_scheduled = True

        def delayed() -> Generator:
            yield self.sim.timeout(DELAYED_ACK)
            self._ack_scheduled = False
            if self.cumulative > self._acked_up_to:
                self._acked_up_to = self.cumulative
                self.send_ack(self.owner, self.peer, self.cumulative)

        self.sim.daemon(delayed(), name=f"delack-{self.peer}")
