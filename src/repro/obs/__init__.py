"""Unified observability: metrics registry, trace export, CPU profiler.

The paper's evidence is observability data — fragment timelines (Figs. 5/6)
and receive-side CPU usage (Fig. 9).  This package gives the simulated stack
the first-class equivalents:

* :mod:`repro.obs.registry` — a typed metrics registry every hardware model
  and protocol layer registers into; ``core/counters.py`` snapshots are
  generated from it, so counters can never silently drift out of the dump;
* :mod:`repro.obs.trace` — exports :class:`~repro.simkernel.tracing.TraceRecorder`
  spans as Chrome/Perfetto ``trace_events`` JSON (open in ``ui.perfetto.dev``);
* :mod:`repro.obs.profiler` — attributes per-core busy time to *phases*
  (fragment copy, DMA submit, poll, syscall, pinning...) in simulated time
  and reproduces the Fig. 9 CPU-usage report.

CLI: ``python -m repro.obs {report,export,diff}`` (also ``repro-obs``).
"""

from repro.obs.profiler import PhaseProfiler, fig9_report
from repro.obs.registry import Histogram, Metric, MetricsRegistry
from repro.obs.trace import export_trace_events, validate_trace_events, write_trace

__all__ = [
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "PhaseProfiler",
    "export_trace_events",
    "fig9_report",
    "validate_trace_events",
    "write_trace",
]
