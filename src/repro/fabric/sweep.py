"""Fabric sweep cells: collectives over generated topologies, as data.

One *cell* runs one collective (allreduce / alltoall / bcast /
reduce_scatter / allgather / barrier) over one generated topology with one
receive-copy backend and returns a JSON-stable dict — no wall-clock, no
object references — so the sweep executor can cache it and two runs of the
same cell compare byte-identical (the ``fabric_sweep`` acceptance bar).

Three entry points:

* :func:`run_fabric_collective` — build spec, launch a
  :class:`~repro.fabric.mpi.FabricWorld`, run the collective SPMD, report;
* :func:`point_fabric` / :func:`point_fabric_cell` — top-level picklable
  wrappers registered as the ``"fabric"`` / ``"fabric_cell"`` lazy point
  kinds in :mod:`repro.reporting.sweeps`;
* :func:`fabric_scenario` — the ``--races`` corpus entry: the same cell
  packaged as a zero-arg callable returning an
  :class:`~repro.analysis.races.Observation`, with a seeded trunk flap
  armed so the detector covers the resilience path;
* :func:`chaos_campaign` — the gray-failure matrix (degrade / flap /
  lossy / crash-stop / partition) crossed with every multi-path topology;
* :func:`point_imb_fabric` — the IMB suite run over a fabric world (the
  ``"imb_fabric"`` lazy kind).

The fault cell (:func:`run_fabric_cell`) arms a
:class:`~repro.faults.plan.FaultPlan` whose ``fabric`` specs kill named
links mid-collective, then classifies the outcome: ``"rerouted"`` when the
collective completed over recomputed ECMP tables, ``"failed:<Type>"`` when
the partition surfaced as a typed :class:`~repro.core.errors.TransferError`.
Both classifications are byte-identical per seed.
"""

from __future__ import annotations

import math
from typing import Callable, Generator, Optional

from repro.core.errors import TransferError
from repro.fabric.cost import DEFAULT_CELL
from repro.fabric.mpi import FabricRank, FabricWorld, launch_fabric_world
from repro.fabric.spec import (
    TopologySpec,
    dragonfly,
    fat_tree,
    pair_topology,
    star_topology,
)
from repro.units import KiB, throughput_mib_s, us

#: topology kinds a sweep point may name
TOPOLOGIES = ("pair", "star", "fat_tree2", "fat_tree3", "dragonfly")

#: collectives a sweep point may name (all run unmodified generators)
COLLECTIVES = ("barrier", "bcast", "allreduce", "reduce_scatter",
               "allgather", "alltoall")

#: event-budget fuse per cell: generous for a 1024-host allreduce, small
#: enough that a livelocked cell dies loudly instead of spinning forever
CELL_MAX_EVENTS = 50_000_000


def make_topology(topology: str, hosts: int, oversubscription: float = 1.0,
                  hosts_per_edge: int = 8,
                  ecmp_seed: str = "fabric") -> TopologySpec:
    """Build the named topology for (at least) ``hosts`` hosts.

    Generators have structural constraints (divisibility, k-arity); the
    spec returned may round the host count up to the nearest shape the
    generator supports — callers read the actual count off the spec.
    """
    if topology == "pair":
        return pair_topology()
    if topology == "star":
        return star_topology(max(hosts, 2))
    if topology == "fat_tree2":
        hpe = math.gcd(hosts, hosts_per_edge) if hosts % hosts_per_edge else \
            hosts_per_edge
        return fat_tree(hosts=hosts, tiers=2, hosts_per_edge=max(hpe, 1),
                        oversubscription=oversubscription,
                        ecmp_seed=ecmp_seed)
    if topology == "fat_tree3":
        k = 2
        while k * k * k // 4 < hosts:
            k += 2
        return fat_tree(tiers=3, k=k, oversubscription=oversubscription,
                        ecmp_seed=ecmp_seed)
    if topology == "dragonfly":
        groups = max(2, -(-hosts // 4))
        return dragonfly(groups=groups, routers_per_group=2,
                         hosts_per_router=2, ecmp_seed=ecmp_seed)
    raise ValueError(f"unknown topology {topology!r}; "
                     f"expected one of {TOPOLOGIES}")


def collective_body(collective: str, size: int,
                    algo: str = "auto") -> Callable[[FabricRank], Generator]:
    """The SPMD body for one collective; ``size`` is the per-rank payload
    (per-peer block for alltoall / allgather / reduce_scatter)."""
    if collective not in COLLECTIVES:
        raise ValueError(f"unknown collective {collective!r}; "
                         f"expected one of {COLLECTIVES}")

    def body(rank: FabricRank) -> Generator:
        p = rank.size
        if collective == "barrier":
            yield from rank.barrier()
        elif collective == "bcast":
            buf = rank.space.alloc(size)
            yield from rank.bcast(buf, root=0)
        elif collective == "allreduce":
            sendbuf = rank.space.alloc(size)
            recvbuf = rank.space.alloc(size)
            yield from rank.allreduce(sendbuf, recvbuf, algo=algo)
        elif collective == "reduce_scatter":
            sendbuf = rank.space.alloc(size * p)
            recvbuf = rank.space.alloc(size)
            yield from rank.reduce_scatter(sendbuf, recvbuf, size)
        elif collective == "allgather":
            sendbuf = rank.space.alloc(size)
            recvbuf = rank.space.alloc(size * p)
            yield from rank.allgather(sendbuf, recvbuf, size)
        else:  # alltoall
            sendbuf = rank.space.alloc(size * p)
            recvbuf = rank.space.alloc(size * p)
            yield from rank.alltoall(sendbuf, recvbuf, size)

    return body


def _net_stats(world: FabricWorld) -> dict:
    net = world.net
    return {
        "msgs_sent": net.msgs_sent,
        "msgs_delivered": net.msgs_delivered,
        "msgs_failed": net.msgs_failed,
        "chunks_forwarded": net.chunks_forwarded,
        "chunks_dropped": net.chunks_dropped,
        "chunks_rerouted": net.chunks_rerouted,
        "chunks_retried": net.chunks_retried,
    }


def run_fabric_collective(topology: str = "fat_tree2", hosts: int = 64,
                          oversubscription: float = 1.0,
                          collective: str = "allreduce",
                          size: int = 64 * KiB, backend: str = "memcpy",
                          algo: str = "auto", cell: int = DEFAULT_CELL,
                          hosts_per_edge: int = 8,
                          ecmp_seed: str = "fabric",
                          egress_limit_cells: Optional[int] = None) -> dict:
    """Run one fault-free fabric cell and report it as JSON-stable data."""
    spec = make_topology(topology, hosts, oversubscription, hosts_per_edge,
                         ecmp_seed)
    world = launch_fabric_world(spec, backend=backend, cell=cell,
                                egress_limit_cells=egress_limit_cells)
    body = collective_body(collective, size, algo)
    world.run_spmd(body, max_events=CELL_MAX_EVENTS)
    world.finish()
    t = world.sim.now
    return {
        "topology": spec.name,
        "kind": topology,
        "hosts": world.size,
        "oversubscription": oversubscription,
        "collective": collective,
        "size": size,
        "backend": backend,
        "algo": algo,
        "time_ns": t,
        "mib_s": round(throughput_mib_s(size, t), 3) if t else 0.0,
        "events": world.sim.events_processed,
        "net": _net_stats(world),
        "cpu_ticks": {k: world.cpu[k] for k in sorted(world.cpu)},
    }


def point_fabric(**params) -> dict:
    """Top-level sweep point (the ``"fabric"`` lazy kind): one fault-free
    fabric collective cell, picklable for subprocess executors."""
    return run_fabric_collective(**params)


# ---------------------------------------------------------------------------
# fault cell: kill a spine link mid-collective
# ---------------------------------------------------------------------------


def spine_kill_plan(spec: TopologySpec, at: int, seed: str = "0"):
    """A :class:`~repro.faults.plan.FaultPlan` killing the first (sorted)
    spine trunk of ``spec`` at absolute time ``at``."""
    from repro.faults.plan import FabricFaultSpec, FaultPlan

    spines = {s.name for s in spec.switches if s.tier == "spine"}
    trunks = sorted(l.name for l in spec.trunk_links()
                    if l.a in spines or l.b in spines)
    if not trunks:
        raise ValueError(f"{spec.name}: no spine trunk to kill")
    return FaultPlan(
        name=f"spine-kill@{at}",
        seed=seed,
        fabric=(FabricFaultSpec(link=trunks[0], action="kill", at=at),),
    )


def run_fabric_cell(topology: str = "fat_tree2", hosts: int = 16,
                    oversubscription: float = 1.0,
                    collective: str = "allreduce", size: int = 64 * KiB,
                    backend: str = "ioat", algo: str = "auto",
                    cell: int = DEFAULT_CELL, hosts_per_edge: int = 4,
                    kill_at: int = us(50), plan: Optional[dict] = None,
                    recovery: str = "abort",
                    ecmp_seed: str = "fabric") -> dict:
    """One fabric *fault* cell: run the collective under an armed plan.

    ``plan`` is a :meth:`~repro.faults.plan.FaultPlan.to_dict` dict (the
    sweep executor needs JSON params); when None, a spine-kill plan firing
    at ``kill_at`` is generated from the topology.  ``recovery`` selects the
    crash-stop policy: ``"abort"`` (default — a rank death surfaces as the
    typed :class:`~repro.core.errors.RankDead`) or ``"shrink"`` (ring
    allreduce only — survivors rebuild the ring via
    :func:`~repro.fabric.resilience.resilient_allreduce`).

    The outcome classifies, byte-identically per seed, as one of:

    * ``"failed:<Type>"`` — a typed transfer error surfaced (abort policy);
    * ``"shrunk-completed"`` — a rank died and the survivors completed
      over the shrunk ring (epoch advanced);
    * ``"degraded-completed"`` — completed while the health layer had
      demoted at least one gray trunk;
    * ``"rerouted"`` — completed over recomputed ECMP tables;
    * ``"completed"`` — the faults touched no in-flight flow.
    """
    from repro.faults.injectors import arm_plan
    from repro.faults.plan import FaultPlan

    if recovery not in ("abort", "shrink"):
        raise ValueError(f"unknown recovery policy {recovery!r}; "
                         "expected 'abort' or 'shrink'")
    spec = make_topology(topology, hosts, oversubscription, hosts_per_edge,
                         ecmp_seed)
    fplan = (FaultPlan.from_dict(plan) if plan is not None
             else spine_kill_plan(spec, kill_at))
    world = launch_fabric_world(spec, backend=backend, cell=cell)
    armed = arm_plan(world, fplan)
    if recovery == "shrink":
        if collective != "allreduce":
            raise ValueError("shrink recovery is ring-allreduce only")
        from repro.fabric.resilience import resilient_allreduce

        def body(rank: FabricRank) -> Generator:
            sendbuf = rank.space.alloc(size)
            recvbuf = rank.space.alloc(size)
            yield from resilient_allreduce(rank, sendbuf, recvbuf)
    else:
        body = collective_body(collective, size, algo)
    error: Optional[BaseException] = None
    try:
        world.run_spmd(body, max_events=CELL_MAX_EVENTS)
        world.sim.run()
    except TransferError as exc:
        error = exc
        world.sim.run()  # drain the declaration wave / stale traffic
    net = world.net
    res = net.resilience
    if error is not None:
        outcome = f"failed:{type(error).__name__}"
    elif world.dead and world.epoch:
        outcome = "shrunk-completed"
    elif res is not None and res.demotions:
        outcome = "degraded-completed"
    elif net.chunks_rerouted:
        outcome = "rerouted"
    else:
        outcome = "completed"
    report = {
        "topology": spec.name,
        "hosts": world.size,
        "collective": collective,
        "size": size,
        "backend": backend,
        "plan": fplan.name,
        "recovery": recovery,
        "fabric_faults_armed": armed.fabric_armed,
        "outcome": outcome,
        "error": type(error).__name__ if error is not None else None,
        "detail": str(error) if error is not None else "",
        "end_time": world.sim.now,
        "net": _net_stats(world),
    }
    if res is not None:
        report["resilience"] = res.snapshot()
    if world.liveness is not None:
        report["liveness"] = world.liveness.snapshot()
    return report


def point_fabric_cell(**params) -> dict:
    """Top-level sweep point (the ``"fabric_cell"`` lazy kind)."""
    return run_fabric_cell(**params)


# ---------------------------------------------------------------------------
# chaos campaign: every gray axis crossed with every multi-path topology
# ---------------------------------------------------------------------------

#: the multi-path topologies the chaos campaign crosses the axes with
CHAOS_TOPOLOGIES = ("fat_tree2", "fat_tree3", "dragonfly")


def chaos_plans(spec: TopologySpec, seed: str) -> list:
    """The per-topology chaos matrix: ``(axis, FaultPlan, recovery)`` rows.

    One row per failure mode the resilience layer claims to survive —
    degrade, flap, lossy, crash-stop (abort and shrink policies) — plus
    the control partition (every uplink of the first edge killed), whose
    job is to prove the *typed* :class:`FabricPartitioned` still surfaces
    when no detour exists.  All link choices are sorted-first, so the
    matrix is a pure function of ``(spec, seed)``.
    """
    from repro.faults.plan import (
        FabricDegradeSpec,
        FabricFaultSpec,
        FabricFlapSpec,
        FabricLossySpec,
        FaultPlan,
        RankFaultSpec,
    )

    trunks = sorted(l.name for l in spec.trunk_links())
    if not trunks:
        raise ValueError(f"{spec.name}: chaos needs a multi-path topology")
    edge = spec.edge_of(spec.hosts[0])
    uplinks = sorted(l.name for l in spec.trunk_links()
                     if edge in (l.a, l.b))
    kill = (RankFaultSpec(rank=1, at=us(30)),)
    return [
        ("degrade", FaultPlan(
            name="chaos-degrade", seed=seed,
            degrade=(FabricDegradeSpec(link=trunks[0], at=us(5),
                                       bw_factor=0.1),)), "abort"),
        ("flap", FaultPlan(
            name="chaos-flap", seed=seed,
            flap=(FabricFlapSpec(link=trunks[0], at=us(20), period=us(120),
                                 duty=0.5, cycles=4),)), "abort"),
        ("lossy", FaultPlan(
            name="chaos-lossy", seed=seed,
            lossy=(FabricLossySpec(link=trunks[0], drop_rate=0.3),)),
         "abort"),
        ("rank-abort", FaultPlan(
            name="chaos-rank-abort", seed=seed, ranks=kill), "abort"),
        ("rank-shrink", FaultPlan(
            name="chaos-rank-shrink", seed=seed, ranks=kill), "shrink"),
        ("partition", FaultPlan(
            name="chaos-partition", seed=seed,
            fabric=tuple(FabricFaultSpec(link=n, action="kill", at=us(30))
                         for n in uplinks)), "abort"),
    ]


def chaos_campaign(topologies=CHAOS_TOPOLOGIES, hosts: int = 8,
                   oversubscription: float = 2.0,
                   collective: str = "allreduce", size: int = 32 * KiB,
                   backend: str = "memcpy", hosts_per_edge: int = 4,
                   seed: str = "chaos") -> dict:
    """Run the chaos matrix over every topology; JSON-stable report.

    The acceptance bar: two runs with the same seed are byte-identical,
    and the outcome set covers every class the resilience layer defines —
    ``rerouted``, ``degraded-completed``, ``shrunk-completed``, and the
    typed ``failed:RankDead`` / ``failed:FabricPartitioned``.
    """
    cells = []
    for topology in topologies:
        spec = make_topology(topology, hosts, oversubscription,
                             hosts_per_edge, ecmp_seed=seed)
        for axis, plan, recovery in chaos_plans(spec, seed):
            cell = run_fabric_cell(
                topology=topology, hosts=hosts,
                oversubscription=oversubscription, collective=collective,
                size=size, backend=backend, hosts_per_edge=hosts_per_edge,
                plan=plan.to_dict(), recovery=recovery, ecmp_seed=seed)
            cell["axis"] = axis
            cells.append(cell)
    return {
        "seed": seed,
        "cells": cells,
        "outcomes": sorted({c["outcome"] for c in cells}),
    }


# ---------------------------------------------------------------------------
# IMB over the fabric: the frame-level benchmark suite at chunk scale
# ---------------------------------------------------------------------------


def run_imb_fabric(topology: str = "fat_tree2", hosts: int = 16,
                   oversubscription: float = 1.0, test: str = "Allreduce",
                   size: int = 16 * KiB, iterations: int = 4,
                   warmup: int = 1, backend: str = "memcpy",
                   cell: int = DEFAULT_CELL, hosts_per_edge: int = 4,
                   ecmp_seed: str = "fabric") -> dict:
    """One IMB test over a fabric world (the ``"imb_fabric"`` lazy kind).

    :class:`~repro.fabric.mpi.FabricWorld` satisfies the communicator
    protocol :func:`repro.imb.harness.run_imb` consumes (``run_spmd`` +
    ``size``), so the IMB bodies — barrier-timed loops included — run
    unmodified at fabric scale.  ``Allgatherv`` is the one exclusion: its
    body needs per-rank variable blocks the fabric rank does not model.
    """
    from repro.imb.harness import run_imb

    if test == "Allgatherv":
        raise ValueError("Allgatherv is not supported over the fabric rank "
                         "(no variable-block allgather)")
    spec = make_topology(topology, hosts, oversubscription, hosts_per_edge,
                         ecmp_seed)
    world = launch_fabric_world(spec, backend=backend, cell=cell)
    res = run_imb(world, world, test, size, iterations=iterations,
                  warmup=warmup, max_events=CELL_MAX_EVENTS)
    world.finish()
    return {
        "topology": spec.name,
        "kind": topology,
        "hosts": world.size,
        "backend": backend,
        "test": res.test,
        "size": res.size,
        "iterations": res.iterations,
        "t_avg_us": round(res.t_avg_us, 3),
        "mib_s": round(res.mib_s, 3),
        "events": world.sim.events_processed,
        "net": _net_stats(world),
    }


def point_imb_fabric(**params) -> dict:
    """Top-level sweep point (the ``"imb_fabric"`` lazy kind)."""
    return run_imb_fabric(**params)


# ---------------------------------------------------------------------------
# --races corpus entry
# ---------------------------------------------------------------------------


def fabric_scenario(hosts: int = 8, size: int = 8 * KiB,
                    backend: str = "ioat", collective: str = "allreduce",
                    oversubscription: float = 2.0,
                    algo: str = "auto", flap: bool = True) -> Callable:
    """A race-detector scenario: one collective on a small 2-tier fat tree.

    With ``flap`` (the default) a seeded flap schedule is armed on the
    first trunk, so the detector sweeps the whole resilience path — health
    sampling, hysteretic demotion, suppressed flaps, rerouted chunks —
    under tie-break shuffles, not just the clean data plane.

    The fabric has no per-host trace recorders; the observation is the
    network's full metric snapshot (every port's counters plus the
    aggregate flow counters), the final simulated time, and the per-cell
    outcome string — everything the sweep reports are built from.
    """
    from repro.analysis.races import Observation

    def scenario() -> Observation:
        spec = make_topology("fat_tree2", hosts, oversubscription,
                             hosts_per_edge=max(2, hosts // 2),
                             ecmp_seed="races")
        world = launch_fabric_world(spec, backend=backend)
        if flap:
            from repro.faults.injectors import arm_plan
            from repro.faults.plan import FabricFlapSpec, FaultPlan

            trunk = sorted(l.name for l in spec.trunk_links())[0]
            arm_plan(world, FaultPlan(
                name="races-flap", seed="races",
                flap=(FabricFlapSpec(link=trunk, at=us(20), period=us(120),
                                     duty=0.5, cycles=3),)))
        schedule = world.sim.record_schedule()
        body = collective_body(collective, size, algo)
        world.run_spmd(body, max_events=CELL_MAX_EVENTS)
        world.finish()
        res = world.net.resilience
        outcomes = {"cell": "completed",
                    "cpu": ",".join(f"{k}={world.cpu[k]}"
                                    for k in sorted(world.cpu))}
        if res is not None:
            snap = res.snapshot()
            outcomes["resilience"] = ",".join(
                f"{k}={snap[k]}" for k in ("reroutes", "demotions",
                                           "restorations", "flaps_suppressed",
                                           "route_version"))
        return Observation(
            counters={"fabric": world.net.metrics.snapshot()},
            digests={},
            end_time=world.sim.now,
            pushes=world.sim._seq,
            schedule=schedule,
            outcomes=outcomes,
        )

    return scenario
