"""CPU memcpy cost model.

A CPU copy's duration depends on where the data is:

* both ends resident in the executing core's L2 → ``cached_copy_bw``
  (~6 GiB/s sustained; Fig. 10 plateau);
* resident only in a *remote* die's cache, or not resident at all →
  uncached bandwidth (~1.55 GiB/s), further scaled by
  ``remote_socket_factor`` for cross-socket sources and throttled by
  memory-bus contention with NIC ingress (see :mod:`repro.memory.bus`);
* every chunk pays a fixed ``setup_cost`` (Fig. 7's memcpy curves).

Copies have side effects: real bytes move, and the touched pages enter the
executing core's L2 (cache pollution — the reason multi-megabyte memcpys
evict everything, §V).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.memory.buffers import MemoryRegion, copy_bytes
from repro.memory.bus import MemoryBus
from repro.memory.cache import CacheDirectory
from repro.memory.layout import count_page_aligned_chunks
from repro.units import PAGE_SIZE, SEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.params import HostParams
    from repro.simkernel.cpu import Core


class CpuCopier:
    """Performs CPU copies with calibrated costs and cache side effects."""

    def __init__(self, params: "HostParams", bus: MemoryBus, caches: CacheDirectory):
        self.params = params
        self.bus = bus
        self.caches = caches
        #: lifetime bytes copied by the CPU (diagnostics / Fig. 9 analysis)
        self.bytes_copied = 0
        self.calls = 0

    def register_metrics(self, reg) -> None:
        """Publish CPU-copy statistics into a metrics registry."""
        reg.counter("copier", "cpu_bytes_copied", lambda: self.bytes_copied)
        reg.counter("copier", "cpu_copy_calls", lambda: self.calls)

    # -- cost arithmetic -----------------------------------------------------

    def _blended_bw(self, core: "Core", src: MemoryRegion, src_off: int,
                    dst: MemoryRegion, dst_off: int, length: int) -> float:
        """Bandwidth for this copy given current cache/bus state."""
        p = self.params
        local = self.caches[core.die]
        # The copy rate is governed by where the *source* lives: loads from
        # memory stall the pipeline, while stores are buffered/allocated
        # regardless.  (Receive-path sources are skbuffs freshly invalidated
        # by NIC DMA, hence always cold — the §II-B bottleneck.)
        warm = local.residency(src.addr + src_off, length)

        uncached = self.bus.effective_copy_bw(p.memcpy.uncached_bw)
        # A cold source that lives warm in another socket's cache is served
        # by a slow FSB cache-to-cache transfer.
        if warm < 1.0 and self._resident_remote_socket(core, src.addr + src_off, length):
            uncached *= p.memcpy.remote_socket_factor

        cached = p.cache.cached_copy_bw
        # Harmonic blend: time per byte is the mix of per-byte times.
        per_byte = warm / cached + (1.0 - warm) / uncached
        return 1.0 / per_byte

    def _resident_remote_socket(self, core: "Core", addr: int, length: int) -> bool:
        dies_per_socket = self.params.dies_per_socket
        my_socket = core.die // dies_per_socket
        for cache in self.caches.caches:
            if cache.die // dies_per_socket != my_socket and cache.residency(addr, length) > 0.5:
                return True
        return False

    def copy_cost(self, core: "Core", src: MemoryRegion, src_off: int,
                  dst: MemoryRegion, dst_off: int, length: int,
                  chunk: Optional[int] = None) -> int:
        """Predicted CPU ticks for this copy (no side effects).

        ``chunk`` overrides the chunking: by default copies split at page
        boundaries of either buffer (the DMA-address constraint applies to
        the skbuff layout the data came in, so memcpy inherits the same
        segmentation in the BH path).
        """
        if length <= 0:
            return 0
        if chunk is not None:
            if chunk <= 0:
                raise ValueError("chunk must be positive")
            n_chunks = -(-length // chunk)  # ceil division
        else:
            n_chunks = count_page_aligned_chunks(src.addr + src_off, dst.addr + dst_off, length)
        bw = self._blended_bw(core, src, src_off, dst, dst_off, length)
        move = int(round(length * SEC / bw))
        return n_chunks * self.params.memcpy.setup_cost + max(move, 1)

    # -- execution ---------------------------------------------------------------

    def memcpy(self, core: "Core", src: MemoryRegion, src_off: int,
               dst: MemoryRegion, dst_off: int, length: int, category: str,
               chunk: Optional[int] = None,
               phase: Optional[str] = None) -> Generator:
        """Copy with CPU time charged to ``category``; caller holds ``core``.

        Moves the real bytes and applies cache pollution.  ``phase`` tags
        the work for an attached profiler.  Returns the cost in ticks.
        """
        cost = self.copy_cost(core, src, src_off, dst, dst_off, length, chunk)
        if cost:
            yield cost  # bare-int sleep (schedule-identical to core.busy)
        self.commit(core, src, src_off, dst, dst_off, length, category, cost,
                    phase)
        return cost

    def commit(self, core: "Core", src: MemoryRegion, src_off: int,
               dst: MemoryRegion, dst_off: int, length: int, category: str,
               cost: int, phase: Optional[str] = None) -> None:
        """Post-sleep half of :meth:`memcpy`: accounting + side effects.

        Split out so fragment-sized hot paths can run plan/yield/commit in
        their own frame instead of delegating into a fresh generator per
        copy; the caller must already have slept ``cost`` ticks (obtained
        from :meth:`copy_cost`) while holding ``core``.
        """
        core.account(category, cost, phase or "memcpy")
        copy_bytes(src, src_off, dst, dst_off, length)
        cache = self.caches[core.die]
        cache.touch(src.addr + src_off, length)
        dsta = dst.addr + dst_off
        cache.touch(dsta, length)
        # Stores take the destination lines exclusive: every other cache's
        # copy is invalidated (MESI).  This is what keeps ping-pong copies
        # between sockets permanently slow (Fig. 10): each side's data is
        # dirty in the other side's cache.  (Per-cache loop inlined from
        # L2Cache.invalidate: this runs once per BH copy.)
        first = dsta // PAGE_SIZE
        last = (dsta + length - 1) // PAGE_SIZE
        for other in self.caches.caches:
            if other is cache:
                continue
            resident = other._resident
            if not resident:
                continue
            pop = resident.pop
            for p in range(first, last + 1):
                pop(p, None)
        self.bytes_copied += length
        self.calls += 1
