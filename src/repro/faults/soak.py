"""Soak mode: long seeded fault campaigns with periodic invariant checks.

Where a campaign cell (:mod:`repro.faults.campaign`) fires one fault and
asks "did every transfer terminate?", a soak run chains whole degradation
arcs — I/OAT fail→recover cycles, flapping links, incast bursts — over a
longer horizon and additionally checks *while running* that the stack is
making progress and not accumulating resources:

* a checkpoint daemon wakes every ``checkpoint_interval`` ticks and
  records (non-terminal transfers, outstanding skbuffs, net pins,
  retransmissions, frames moved);
* if nothing moved — no transfer reached a terminal state and no frame
  crossed any NIC — for ``stall_limit`` consecutive checkpoints, the run
  aborts with :class:`LivelockError`.  The reliability layer's timeout
  ladder (dead-letter ≈4 ms, pull abort ≈16 ms, peer-dead 20 ms) turns
  every stuck request terminal well inside that budget, so a trip really
  is a livelock, not patience running out;
* at the end the usual contract holds: zero hung transfers, runtime
  sanitizers clean, and the report — checkpoints included — is a pure
  function of (spec, seed), so running the same seed twice produces
  byte-identical JSON.

The stock suite (:func:`soak_suite`) pairs each plan from
:func:`repro.faults.plan.soak_plans` with the workload that stresses it:
``ioat-flap`` under a large-message stream (pull + offload path, so the
circuit breakers trip and re-open), ``link-flap`` under pingpong
(retransmission and backoff decay), ``incast-burst`` under switched
fan-in (receive backpressure).

The fabric soak (:func:`run_fabric_soak_suite`, DESIGN.md §17) applies the
same discipline at chunk scale: chained flap + degrade + lossy (+ crash-
stop) arcs over a 3-tier fat tree, shrink-capable allreduces as the
workload, and a checkpoint daemon over the fabric's flow counters whose
no-progress trip is the livelock detector.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace

from repro.faults.injectors import arm_plan
from repro.faults.plan import FaultPlan, soak_plans
from repro.units import KiB, ms, us

#: simulated-time horizon per soak run; generous — runs end early once
#: every transfer is terminal and the demand-armed daemons disarm
SOAK_DEADLINE = ms(60)

#: event budget (runaway guard, same role as the campaign's)
SOAK_MAX_EVENTS = 60_000_000

#: checkpoint cadence (simulated ticks)
CHECKPOINT_INTERVAL = ms(2)

#: consecutive no-progress checkpoints tolerated before declaring livelock
#: (30 ms of wall-silence vs. a 20 ms worst-case timeout ladder)
STALL_LIMIT = 15


class LivelockError(AssertionError):
    """The soak checkpoint daemon saw no progress for too long."""


@dataclass(frozen=True)
class SoakSpec:
    """One soak run: a workload driven through one chained fault plan."""

    name: str
    workload: str
    size: int
    iters: int
    plan: FaultPlan
    deadline: int = SOAK_DEADLINE
    checkpoint_interval: int = CHECKPOINT_INTERVAL
    stall_limit: int = STALL_LIMIT


def soak_suite(seed: str = "soak", iters: int = 6) -> list[SoakSpec]:
    """The stock soak suite: every plan from the soak library, each under
    the workload built to stress it."""
    plans = {p.name: p for p in soak_plans(seed)}
    return [
        # The stream gets extra iterations so offload traffic is still
        # flowing when the plan's recover legs land — a breaker can only
        # re-open if something asks for the channel afterwards.
        SoakSpec(name="ioat-flap", workload="stream", size=256 * KiB,
                 iters=iters + 4, plan=plans["ioat-flap"]),
        SoakSpec(name="link-flap", workload="pingpong", size=16 * KiB,
                 iters=iters, plan=plans["link-flap"]),
        SoakSpec(name="incast-burst", workload="incast", size=128 * KiB,
                 iters=max(2, iters - 2), plan=plans["incast-burst"]),
    ]


def _nonterminal(transfers) -> int:
    return sum(1 for t in transfers.values() if t.classify()[0] == "hung")


def _checkpoint_daemon(tb, spec: SoakSpec, transfers, checkpoints: list):
    """Periodic invariant sampling; raises LivelockError on sustained
    no-progress.  Self-terminates once every transfer is terminal, so it
    never keeps the event heap alive past quiescence."""
    stalled = {"count": 0, "frames": -1, "terminal": -1}

    def frames_moved() -> int:
        return sum(h.nic.rx_frames + h.nic.tx_frames for h in tb.hosts)

    def proc():
        while True:
            yield spec.checkpoint_interval  # bare-int sleep
            open_transfers = _nonterminal(transfers)
            frames = frames_moved()
            checkpoints.append({
                "t": tb.sim.now,
                "nonterminal": open_transfers,
                "skbuffs": sum(h.skb_pool.outstanding for h in tb.hosts),
                "net_pins": sum(
                    h.pinner.pin_calls - h.pinner.unpin_calls
                    for h in tb.hosts
                ),
                "frames": frames,
                "breaker_open": sum(
                    h.health.open_channels for h in tb.hosts
                ),
            })
            if open_transfers == 0:
                return
            terminal = len(transfers) - open_transfers
            if frames == stalled["frames"] and terminal == stalled["terminal"]:
                stalled["count"] += 1
                if stalled["count"] >= spec.stall_limit:
                    raise LivelockError(
                        f"soak {spec.name!r}: no frame moved and no "
                        f"transfer terminated across {stalled['count']} "
                        f"checkpoints ({open_transfers} still open at "
                        f"t={tb.sim.now})"
                    )
            else:
                stalled["count"] = 0
                stalled["frames"] = frames
                stalled["terminal"] = terminal

    tb.sim.daemon(proc(), name=f"soak-checkpoint-{spec.name}")


def run_soak(spec: SoakSpec, trace: bool = False) -> dict:
    """Run one soak spec to quiescence; returns its JSON-able report.

    The report mirrors a campaign cell's (outcomes / failures / injected /
    counters / sanitizer), plus the checkpoint trail and a ``health``
    section with just the supervision counters (breaker trips and
    re-opens, keepalives, peer deaths, busy signals).
    """
    from repro.analysis.sanitizers import Sanitizer
    from repro.core.counters import collect_counters, collect_health
    from repro.faults.campaign import (
        TRACE_MAX_SPANS,
        _build_testbed,
        _workload_incast,
        _workload_pingpong,
        _workload_stream,
    )

    tb = _build_testbed(spec.workload)
    if trace:
        for host in tb.hosts:
            host.trace.enabled = True
            host.trace.set_max_spans(TRACE_MAX_SPANS)
    san = Sanitizer()
    for host in tb.hosts:
        san.watch_host(host)

    armed = arm_plan(tb, spec.plan)
    workload = {
        "stream": _workload_stream,
        "pingpong": _workload_pingpong,
        "incast": _workload_incast,
    }[spec.workload]
    transfers = workload(tb, spec.size, spec.iters)

    checkpoints: list[dict] = []
    _checkpoint_daemon(tb, spec, transfers, checkpoints)

    tb.sim.run(until=spec.deadline, max_events=SOAK_MAX_EVENTS)

    outcomes = {"completed": 0, "failed": 0, "hung": 0}
    failures: dict[str, int] = {}
    hung_keys = []
    for key in sorted(transfers):
        outcome, err = transfers[key].classify()
        outcomes[outcome] += 1
        if err is not None:
            failures[err] = failures.get(err, 0) + 1
        if outcome == "hung":
            hung_keys.append(key)

    counters: dict[str, int] = {}
    health: dict[str, int] = {}
    for stack in tb.stacks:
        for key, val in collect_counters(stack).items():
            counters[key] = counters.get(key, 0) + val
        for key, val in collect_health(stack).items():
            health[key] = health.get(key, 0) + val
    counters.pop("sim_wall_ms", None)

    report = {
        "soak": spec.name,
        "workload": spec.workload,
        "size": spec.size,
        "iters": spec.iters,
        "plan": spec.plan.name,
        "seed": spec.plan.seed,
        "messages": len(transfers),
        "outcomes": outcomes,
        "failures": failures,
        "hung_keys": hung_keys,
        "injected": armed.counters(),
        "checkpoints": checkpoints,
        "counters": counters,
        "health": health,
        "sanitizer": [v.format() for v in san.check()],
        "end_time": tb.sim.now,
    }
    if trace:
        from repro.obs.trace import export_trace_events

        report["trace_events"] = export_trace_events(
            [(host.name, host.trace) for host in tb.hosts]
        )
    return report


def run_soak_suite(seed: str = "soak", iters: int = 6,
                   deadline: int = SOAK_DEADLINE,
                   fabric: bool = True) -> dict:
    """Run the whole stock suite under one seed; aggregates like a
    campaign report.  Byte-identical per seed (sorted-keys JSON).

    With ``fabric`` (the default) the chunk-level fabric soak suite
    (:func:`run_fabric_soak_suite`) rides along as a separate ``"fabric"``
    section — same seed, same determinism contract.
    """
    runs = []
    totals = {"completed": 0, "failed": 0, "hung": 0}
    dirty = []
    for spec in soak_suite(seed, iters=iters):
        if deadline != spec.deadline:
            spec = replace(spec, deadline=deadline)
        report = run_soak(spec)
        runs.append(report)
        for key in totals:
            totals[key] += report["outcomes"][key]
        if report["sanitizer"]:
            dirty.append(spec.name)
    out = {
        "seed": seed,
        "iters": iters,
        "runs": runs,
        "totals": totals,
        "sanitizer_dirty_runs": dirty,
    }
    if fabric:
        out["fabric"] = run_fabric_soak_suite(seed)
    return out


# ---------------------------------------------------------------------------
# fabric soak: gray churn over a 3-tier fat tree (DESIGN.md §17)
# ---------------------------------------------------------------------------

#: checkpoint cadence of the fabric soak (simulated ticks); fabric runs
#: resolve in hundreds of microseconds, not milliseconds
FABRIC_CHECKPOINT_INTERVAL = us(25)

#: consecutive no-progress checkpoints before declaring a fabric livelock
FABRIC_STALL_LIMIT = 20

#: event budget per fabric soak run
FABRIC_SOAK_MAX_EVENTS = 20_000_000


@dataclass(frozen=True)
class FabricSoakSpec:
    """One fabric soak run: repeated shrink-capable allreduces through a
    chained gray-failure plan over a multi-path topology."""

    name: str
    plan: FaultPlan
    topology: str = "fat_tree3"
    hosts: int = 16
    size: int = 32 * KiB
    rounds: int = 4
    oversubscription: float = 2.0
    checkpoint_interval: int = FABRIC_CHECKPOINT_INTERVAL
    stall_limit: int = FABRIC_STALL_LIMIT
    max_events: int = FABRIC_SOAK_MAX_EVENTS


def fabric_soak_suite(seed: str = "soak") -> list[FabricSoakSpec]:
    """The fabric soak library: chained gray arcs over a 3-tier fat tree.

    ``gray-churn`` chains a flapping trunk, a bandwidth-degraded trunk and
    a lossy trunk — the health layer must demote, suppress the flap, and
    retry chunk losses, all at once.  ``gray-crash`` adds a crash-stopped
    rank mid-run, so the shrink-and-retry ring recovers *while* the route
    tables are churning.  Link choices are sorted-first over the spec's
    trunks, so each plan is a pure function of (topology, seed).
    """
    from repro.fabric.sweep import make_topology
    from repro.faults.plan import (
        FabricDegradeSpec,
        FabricFlapSpec,
        FabricLossySpec,
        RankFaultSpec,
    )

    spec = make_topology("fat_tree3", 16, 2.0, 4, ecmp_seed=seed)
    trunks = sorted(l.name for l in spec.trunk_links())
    gray = dict(
        flap=(FabricFlapSpec(link=trunks[0], at=us(20), period=us(200),
                             duty=0.5, cycles=5),),
        degrade=(FabricDegradeSpec(link=trunks[1], at=us(40), bw_factor=0.2,
                                   until=us(700)),),
        lossy=(FabricLossySpec(link=trunks[2], drop_rate=0.1, at=us(10),
                               until=us(800)),),
    )
    return [
        FabricSoakSpec(name="gray-churn",
                       plan=FaultPlan(name="gray-churn", seed=seed, **gray)),
        FabricSoakSpec(name="gray-crash",
                       plan=FaultPlan(name="gray-crash", seed=seed,
                                      ranks=(RankFaultSpec(rank=2,
                                                           at=us(120)),),
                                      **gray)),
    ]


def _fabric_checkpoint_daemon(world, spec: FabricSoakSpec, state: dict,
                              checkpoints: list) -> None:
    """Progress sampling over the fabric's flow counters.

    Progress means a message reached a terminal state (delivered or
    failed) or a chunk moved (forwarded or retried); ``stall_limit``
    checkpoints without any of that while work is still open is a
    livelock — the resilience layer's whole drain argument (declaration
    waves, retry caps, breaker hold-downs) bounds every stall well under
    that budget.  Self-terminates once every surviving body finished and
    the network quiesced."""
    net = world.net
    stalled = {"count": 0, "terminal": -1, "moved": -1}

    def proc():
        while True:
            yield spec.checkpoint_interval
            open_msgs = (net.msgs_sent - net.msgs_delivered
                         - net.msgs_failed)
            terminal = net.msgs_delivered + net.msgs_failed
            moved = net.chunks_forwarded + net.chunks_retried
            res = net.resilience
            checkpoints.append({
                "t": world.sim.now,
                "open_msgs": open_msgs,
                "terminal": terminal,
                "forwarded": net.chunks_forwarded,
                "retried": net.chunks_retried,
                "rerouted": net.chunks_rerouted,
                "reroutes": res.reroutes if res is not None else 0,
                "flaps_suppressed": (res.flaps_suppressed
                                     if res is not None else 0),
                "dead_ranks": len(world.dead),
            })
            if state["open_bodies"] <= len(world.dead) and open_msgs == 0:
                return
            if terminal == stalled["terminal"] and moved == stalled["moved"]:
                stalled["count"] += 1
                if stalled["count"] >= spec.stall_limit:
                    raise LivelockError(
                        f"fabric soak {spec.name!r}: no message terminated "
                        f"and no chunk moved across {stalled['count']} "
                        f"checkpoints ({open_msgs} open msgs, "
                        f"{state['open_bodies']} bodies at "
                        f"t={world.sim.now})")
            else:
                stalled["count"] = 0
                stalled["terminal"] = terminal
                stalled["moved"] = moved

    world.sim.daemon(proc(), name=f"fabric-soak-checkpoint-{spec.name}")


def run_fabric_soak(spec: FabricSoakSpec) -> dict:
    """Run one fabric soak to quiescence; returns its JSON-able report.

    The workload is ``rounds`` back-to-back shrink-capable allreduces
    (:func:`~repro.fabric.resilience.resilient_allreduce`), so a
    crash-stop mid-arc shrinks the ring and the remaining rounds run over
    the survivors.  Byte-identical per seed.
    """
    from repro.fabric.mpi import launch_fabric_world
    from repro.fabric.resilience import resilient_allreduce
    from repro.fabric.sweep import make_topology

    topo = make_topology(spec.topology, spec.hosts, spec.oversubscription,
                         4, ecmp_seed=spec.plan.seed)
    world = launch_fabric_world(topo, backend="memcpy")
    armed = arm_plan(world, spec.plan)
    state = {"open_bodies": world.size}
    checkpoints: list[dict] = []
    _fabric_checkpoint_daemon(world, spec, state, checkpoints)

    def body(rank):
        for _ in range(spec.rounds):
            sendbuf = rank.space.alloc(spec.size)
            recvbuf = rank.space.alloc(spec.size)
            yield from resilient_allreduce(rank, sendbuf, recvbuf)
        state["open_bodies"] -= 1

    sanitizer: list[str] = []
    world.run_spmd(body, max_events=spec.max_events)
    try:
        world.finish()
    except AssertionError as exc:
        sanitizer.append(str(exc))
    net = world.net
    res = net.resilience
    report = {
        "soak": spec.name,
        "topology": topo.name,
        "hosts": world.size,
        "size": spec.size,
        "rounds": spec.rounds,
        "plan": spec.plan.name,
        "seed": spec.plan.seed,
        "survivors": world.survivors(),
        "dead_ranks": sorted(world.dead),
        "epoch": world.epoch,
        "stale_drained": world.stale_drained,
        "injected": armed.counters(),
        "checkpoints": checkpoints,
        "net": {
            "msgs_sent": net.msgs_sent,
            "msgs_delivered": net.msgs_delivered,
            "msgs_failed": net.msgs_failed,
            "chunks_forwarded": net.chunks_forwarded,
            "chunks_dropped": net.chunks_dropped,
            "chunks_rerouted": net.chunks_rerouted,
            "chunks_retried": net.chunks_retried,
        },
        "sanitizer": sanitizer,
        "end_time": world.sim.now,
    }
    if res is not None:
        report["resilience"] = res.snapshot()
    if world.liveness is not None:
        report["liveness"] = world.liveness.snapshot()
    return report


def run_fabric_soak_suite(seed: str = "soak") -> dict:
    """Run the fabric soak library under one seed; byte-identical JSON."""
    runs = []
    dirty = []
    for spec in fabric_soak_suite(seed):
        report = run_fabric_soak(spec)
        runs.append(report)
        if report["sanitizer"]:
            dirty.append(spec.name)
    return {
        "seed": seed,
        "runs": runs,
        "sanitizer_dirty_runs": dirty,
    }


def report_json(report: dict) -> str:
    """Canonical byte-stable serialization (the determinism contract)."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"
