"""Units and physical constants used throughout the simulator.

The simulation kernel measures time in **integer nanoseconds** so that event
ordering is exact and runs are bit-reproducible.  All helpers in this module
convert to/from that base unit.

Sizes are measured in bytes; the usual binary multiples are provided.  The
paper (and this reproduction) reports throughput in MiB/s, so conversion
helpers for that are provided too.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Time: base unit is the nanosecond (int).
# --------------------------------------------------------------------------

NS = 1
US = 1_000
MS = 1_000_000
SEC = 1_000_000_000


def ns(x: float) -> int:
    """Convert a value in nanoseconds to integer simulator ticks."""
    return int(round(x))


def us(x: float) -> int:
    """Convert microseconds to integer simulator ticks."""
    return int(round(x * US))


def ms(x: float) -> int:
    """Convert milliseconds to integer simulator ticks."""
    return int(round(x * MS))


def seconds(x: float) -> int:
    """Convert seconds to integer simulator ticks."""
    return int(round(x * SEC))


def to_seconds(t: int) -> float:
    """Convert simulator ticks back to floating-point seconds."""
    return t / SEC


def to_us(t: int) -> float:
    """Convert simulator ticks back to floating-point microseconds."""
    return t / US


# --------------------------------------------------------------------------
# Sizes.
# --------------------------------------------------------------------------

KiB = 1024
MiB = 1024 * 1024
GiB = 1024 * 1024 * 1024

KB = 1000
MB = 1000 * 1000
GB = 1000 * 1000 * 1000

#: Size of a host memory page (x86).
PAGE_SIZE = 4096


# --------------------------------------------------------------------------
# Bandwidth helpers.  Bandwidths are stored as bytes/second (float) in
# parameter blocks and converted to per-byte nanosecond costs on use.
# --------------------------------------------------------------------------


def bandwidth_gib_s(x: float) -> float:
    """A bandwidth expressed in GiB/s, returned in bytes/second."""
    return x * GiB


def bandwidth_mib_s(x: float) -> float:
    """A bandwidth expressed in MiB/s, returned in bytes/second."""
    return x * MiB


def transfer_time(nbytes: int, bytes_per_second: float) -> int:
    """Time in ticks to move ``nbytes`` at ``bytes_per_second``.

    Always at least 1 tick for a non-empty transfer so that zero-duration
    events cannot starve the scheduler.
    """
    if nbytes <= 0:
        return 0
    t = int(round(nbytes * SEC / bytes_per_second))
    return max(t, 1)


def throughput_mib_s(nbytes: int, elapsed_ticks: int) -> float:
    """Observed throughput in MiB/s for ``nbytes`` moved in ``elapsed_ticks``."""
    if elapsed_ticks <= 0:
        return float("inf") if nbytes > 0 else 0.0
    return nbytes / MiB * SEC / elapsed_ticks


# --------------------------------------------------------------------------
# Network constants.
# --------------------------------------------------------------------------

#: Actual data rate of 10 Gbit/s Ethernet as quoted by the paper:
#: 9953 Mbit/s = 1244 MB/s = 1186 MiB/s.
TEN_GBE_BITS_PER_SECOND = 9_953_000_000

#: The same, in bytes per second.
TEN_GBE_BYTES_PER_SECOND = TEN_GBE_BITS_PER_SECOND / 8

#: Line rate in MiB/s (= 1186.4...), the asymptote of Figs. 3/8/11.
TEN_GBE_LINE_RATE_MIB_S = TEN_GBE_BYTES_PER_SECOND / MiB

#: Ethernet per-frame wire overhead in bytes: preamble+SFD (8), CRC (4),
#: inter-frame gap (12).  The 14-byte MAC header is accounted separately
#: because it is part of the frame buffer.
ETHERNET_WIRE_OVERHEAD = 8 + 4 + 12

#: MAC header length.
ETHERNET_HEADER_LEN = 14

#: Jumbo-frame MTU used by myri10ge-class 10G NICs (payload bytes after the
#: MAC header).
JUMBO_MTU = 9000
