"""Ablation (§IV-A, §IV-C): the offload thresholds.

Three decisions are probed:

1. the ~1 kB fragment threshold — sweep segment size with the vectored-copy
   model and locate the memcpy/I-OAT crossover;
2. the 64 kB message threshold — offloading everything (``ioat_min_msg=0``)
   must not beat the thresholded configuration for medium-sized messages;
3. the medium-message synchronous offload (``ioat_medium_sync``) — the
   paper tried it and "noticed a performance degradation"; so do we.
"""

import pytest

from conftest import show
from repro.cluster.testbed import build_single_node, build_testbed
from repro.mpi import create_world
from repro.imb import run_imb
from repro.reporting.table import Table
from repro.units import KiB, MiB
from repro.workloads import measure_vectored_copy


@pytest.mark.benchmark(group="ablation-thresholds")
def test_fragment_threshold_crossover(once):
    def run():
        tb = build_single_node()
        t = Table("ABLATION: copy engine vs segment size (256 kB total)",
                  ["segment", "memcpy GiB/s", "I/OAT GiB/s", "winner"])
        results = {}
        for segment in (128, 256, 512, 1 * KiB, 2 * KiB, 4 * KiB):
            r = measure_vectored_copy(tb.hosts[0], 256 * KiB, segment)
            results[segment] = r
            t.add_row(f"{segment}B", f"{r.memcpy_gib_s:.2f}", f"{r.ioat_gib_s:.2f}",
                      "I/OAT" if r.ioat_gib_s > r.memcpy_gib_s else "memcpy")
        return t, results

    table, results = once(run)
    show(table)
    # Sub-kilobyte segments favour memcpy; page segments favour the engine:
    # exactly the paper's "fragments at least about one kilobyte" rule.
    assert results[256].memcpy_gib_s > results[256].ioat_gib_s
    assert results[4 * KiB].ioat_gib_s > results[4 * KiB].memcpy_gib_s
    # The crossover falls in the 512 B .. 2 kB band.
    crossover = min(s for s, r in results.items() if r.ioat_gib_s > r.memcpy_gib_s)
    assert 512 <= crossover <= 2 * KiB


def _pingpong(size, **omx):
    tb = build_testbed(**omx)
    comm = create_world(tb)
    return run_imb(tb, comm, "PingPong", size, iterations=4, warmup=2).mib_s


@pytest.mark.benchmark(group="ablation-thresholds")
def test_message_threshold_not_harmful(once):
    def run():
        t = Table("ABLATION: ioat_min_msg threshold (PingPong MiB/s)",
                  ["size", "thresholded (64kB)", "offload-everything"])
        vals = {}
        for size in (48 * KiB, 256 * KiB):
            a = _pingpong(size, ioat_enabled=True)
            b = _pingpong(size, ioat_enabled=True, ioat_min_msg=0)
            vals[size] = (a, b)
            t.add_row(f"{size >> 10}KiB", a, b)
        return t, vals

    table, vals = once(run)
    show(table)
    # Large messages: both configs offload, same result.
    assert vals[256 * KiB][1] == pytest.approx(vals[256 * KiB][0], rel=0.05)
    # At 48 kB (below the threshold) offloading everything buys little.
    # (It can be mildly positive in the model: the consumer-side benefit of
    # a memcpy-warmed cache — the paper's stated reason for the 64 kB
    # guard — applies to the application's later reads, which the
    # simulator does not execute.  See EXPERIMENTS.md.)
    assert vals[48 * KiB][1] < 1.25 * vals[48 * KiB][0]


@pytest.mark.benchmark(group="ablation-thresholds")
def test_medium_sync_offload_degrades(once):
    """§IV-C: synchronous I/OAT for 4 kB medium fragments is a loss."""

    def run():
        base = _pingpong(16 * KiB, ioat_enabled=True)
        sync = _pingpong(16 * KiB, ioat_enabled=True, ioat_medium_sync=True)
        t = Table("ABLATION: medium-fragment synchronous offload (16 kB PingPong)",
                  ["config", "MiB/s"])
        t.add_row("memcpy mediums (default)", base)
        t.add_row("I/OAT sync mediums", sync)
        return t, base, sync

    table, base, sync = once(run)
    show(table)
    assert sync < base, "sync medium offload should degrade performance"
