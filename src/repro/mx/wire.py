"""The MX-over-Ethernet packet vocabulary.

One packet class covers every message type; unused fields stay at their
defaults.  Data-bearing packets reference the *source* memory region without
copying (zero-copy transmit, §II-A); the bytes materialise into the receive
skbuff at NIC DMA time via :meth:`MxPacket.gather_data`.

Message classes (thresholds in :class:`~repro.params.OmxConfig`):

========  =====================  =========================================
class     wire packets           receive handling (Open-MX)
========  =====================  =========================================
tiny/     ``TINY``/``SMALL``     copy to eager ring in BH + copy to app
small                            buffer in the library (two copies)
medium    ``MEDIUM_FRAG`` × n    same, 4 kB fragments
large     ``RNDV`` handshake,    driver-managed pull: copy (or I/OAT
          ``PULL_REQ`` /         offload) straight into the pinned
          ``PULL_REPLY`` × n,    destination region (one copy)
          ``NOTIFY``
========  =====================  =========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum, auto
from typing import NamedTuple, Optional

import numpy as np

from repro.memory.buffers import MemoryRegion


class PktType(IntEnum):
    """Wire packet discriminator."""

    TINY = auto()
    SMALL = auto()
    MEDIUM_FRAG = auto()
    RNDV = auto()
    PULL_REQ = auto()
    PULL_REPLY = auto()
    NOTIFY = auto()
    ACK = auto()
    #: intra-simulation liback for eager reliability
    NACK = auto()
    #: unsequenced proof-of-life probe after sustained peer silence
    KEEPALIVE = auto()
    #: unsequenced receiver-overload signal (backpressure: senders back off)
    BUSY = auto()


#: per-type wire header size in bytes (MX-like compact headers)
HEADER_SIZE: dict[PktType, int] = {
    PktType.TINY: 24,
    PktType.SMALL: 24,
    PktType.MEDIUM_FRAG: 32,
    PktType.RNDV: 40,
    PktType.PULL_REQ: 40,
    PktType.PULL_REPLY: 32,
    PktType.NOTIFY: 24,
    PktType.ACK: 16,
    PktType.NACK: 16,
    PktType.KEEPALIVE: 16,
    PktType.BUSY: 16,
}


class EndpointAddr(NamedTuple):
    """A communication endpoint: (board/host id, endpoint index)."""

    host: int
    endpoint: int

    def __str__(self) -> str:
        return f"{self.host}:{self.endpoint}"


@dataclass(slots=True)
class MxPacket:
    """One MXoE packet."""

    ptype: PktType
    src: EndpointAddr
    dst: EndpointAddr

    # -- matching / message identity --
    match_info: int = 0
    #: per-(src→dst endpoint) session sequence number for eager reliability
    seqnum: int = -1
    #: sender-side message identity (completion routing)
    msg_id: int = 0
    #: total message length in bytes
    msg_len: int = 0

    # -- fragmentation (medium messages) --
    frag_index: int = 0
    frag_count: int = 1
    #: byte offset of this fragment's data within the message
    offset: int = 0

    # -- pull protocol (large messages) --
    #: receiver-side pull-handle id (which large receive this belongs to)
    pull_handle: int = -1
    #: block index within the pull
    block_index: int = 0
    #: requested span for PULL_REQ: [req_offset, req_offset+req_length)
    req_offset: int = 0
    req_length: int = 0

    # -- data (zero-copy reference into the sender's region) --
    data_region: Optional[MemoryRegion] = field(default=None, repr=False)
    data_offset: int = 0
    data_length: int = 0

    # -- acknowledgement --
    ack_seqnum: int = -1

    def __post_init__(self) -> None:
        if self.data_length < 0:
            raise ValueError("negative data length")
        if self.data_region is not None:
            if self.data_offset + self.data_length > len(self.data_region):
                raise ValueError("packet data outside source region")

    @property
    def header_size(self) -> int:
        return HEADER_SIZE[self.ptype]

    @property
    def wire_payload_len(self) -> int:
        """Bytes after the MAC header: MX header + data."""
        return self.header_size + self.data_length

    def gather_data(self) -> np.ndarray:
        """Materialise the data bytes (called at NIC DMA time)."""
        if self.data_region is None or self.data_length == 0:
            return np.empty(0, dtype=np.uint8)
        return self.data_region.read(self.data_offset, self.data_length)

    def describe(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{self.ptype.name} {self.src}->{self.dst} len={self.data_length} "
            f"off={self.offset} seq={self.seqnum} msg={self.msg_id}"
        )
