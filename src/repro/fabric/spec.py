"""Declarative topology specs and the standard generators.

A :class:`TopologySpec` is pure data — hosts, switches, and links with
per-link rate/latency — with no reference to any simulator.  Like
:class:`~repro.faults.plan.FaultPlan` it round-trips through JSON, so a
fabric sweep point's identity is fully describable by its parameters and
the sweep executor can cache it.

Conventions:

* hosts are named ``node0..nodeN-1`` (matching the historical testbed
  factories, whose pair/star shapes are degenerate cases of this spec);
* switches carry a ``tier`` label (``"edge"``/``"agg"``/``"spine"``) used
  by reports and fault plans ("kill a spine link");
* links are named ``"<a>~<b>"`` and are full duplex; every host attaches
  to exactly one switch (single-homed) unless the spec is the switchless
  back-to-back pair.

Oversubscription is expressed structurally: :func:`fat_tree` trims the
number of spine (or core) switches so the ratio of edge downlink to uplink
capacity equals the requested factor — the same way real clusters are
oversubscribed — rather than by scaling trunk rates.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional

from repro import units
from repro.units import ns

#: default link rate: the testbed's 10 GbE (bytes/s)
DEFAULT_BW = units.TEN_GBE_BYTES_PER_SECOND

#: default one-way propagation latency per cable hop
DEFAULT_LATENCY = ns(300)


@dataclass(frozen=True)
class SwitchSpec:
    """One switch: a name, a tier label, and a forwarding latency."""

    name: str
    tier: str = "edge"  # "edge" | "agg" | "spine"
    forwarding_latency: int = ns(500)


@dataclass(frozen=True)
class LinkSpec:
    """One full-duplex cable between two named endpoints.

    Endpoints are host or switch names; ``bw`` is bytes/s per direction.
    """

    a: str
    b: str
    bw: float = DEFAULT_BW
    latency: int = DEFAULT_LATENCY

    @property
    def name(self) -> str:
        return f"{self.a}~{self.b}"


@dataclass(frozen=True)
class TopologySpec:
    """A named fabric: hosts, switches, links, and an ECMP seed."""

    name: str
    hosts: tuple = ()
    switches: tuple = ()
    links: tuple = ()
    #: seed mixed into every ECMP path choice (crc32-based, platform stable)
    ecmp_seed: str = "fabric"

    # -- derived views ---------------------------------------------------

    def switch_names(self) -> list[str]:
        return [s.name for s in self.switches]

    def host_links(self) -> list[LinkSpec]:
        """Links with at least one host endpoint."""
        hosts = set(self.hosts)
        return [l for l in self.links if l.a in hosts or l.b in hosts]

    def trunk_links(self) -> list[LinkSpec]:
        """Switch-to-switch links."""
        hosts = set(self.hosts)
        return [l for l in self.links
                if l.a not in hosts and l.b not in hosts]

    def edge_of(self, host: str) -> Optional[str]:
        """The switch a host attaches to (None for back-to-back links)."""
        for l in self.links:
            if l.a == host and l.b not in set(self.hosts):
                return l.b
            if l.b == host and l.a not in set(self.hosts):
                return l.a
        return None

    def link_named(self, name: str) -> LinkSpec:
        for l in self.links:
            if l.name == name or f"{l.b}~{l.a}" == name:
                return l
        raise KeyError(f"no link named {name!r} in topology {self.name!r}")

    def neighbors(self) -> dict[str, list[str]]:
        """Adjacency over hosts + switches (sorted, deterministic)."""
        adj: dict[str, list[str]] = {n: [] for n in
                                     list(self.hosts) + self.switch_names()}
        for l in self.links:
            adj[l.a].append(l.b)
            adj[l.b].append(l.a)
        for peers in adj.values():
            peers.sort()
        return adj

    # -- validation ------------------------------------------------------

    def validate(self) -> None:
        """Raise ValueError on structural nonsense (names, connectivity)."""
        names = list(self.hosts) + self.switch_names()
        if len(set(names)) != len(names):
            raise ValueError(f"{self.name}: duplicate node names")
        if not self.hosts:
            raise ValueError(f"{self.name}: a topology needs hosts")
        known = set(names)
        seen_links = set()
        for l in self.links:
            if l.a not in known or l.b not in known:
                raise ValueError(f"{self.name}: link {l.name} references "
                                 "an unknown endpoint")
            if l.a == l.b:
                raise ValueError(f"{self.name}: self-link {l.name}")
            key = tuple(sorted((l.a, l.b)))
            if key in seen_links:
                raise ValueError(f"{self.name}: duplicate link {l.name}")
            seen_links.add(key)
            if l.bw <= 0 or l.latency < 0:
                raise ValueError(f"{self.name}: link {l.name} has a "
                                 "non-positive rate or negative latency")
        hosts = set(self.hosts)
        degree: dict[str, int] = {h: 0 for h in self.hosts}
        for l in self.links:
            for end in (l.a, l.b):
                if end in hosts:
                    degree[end] += 1
        for host, d in degree.items():
            if d != 1:
                raise ValueError(f"{self.name}: host {host} has {d} links "
                                 "(hosts must be single-homed)")
        if not self.connected():
            raise ValueError(f"{self.name}: fabric is not connected")

    def connected(self) -> bool:
        """True when every node is reachable from the first host (BFS)."""
        adj = self.neighbors()
        if not adj:
            return False
        start = self.hosts[0]
        seen = {start}
        frontier = [start]
        while frontier:
            nxt = []
            for node in frontier:
                for peer in adj[node]:
                    if peer not in seen:
                        seen.add(peer)
                        nxt.append(peer)
            frontier = nxt
        return len(seen) == len(adj)

    # -- summary numbers (CLI / reports) ---------------------------------

    def oversubscription(self) -> float:
        """Worst edge-switch downlink:uplink capacity ratio (1.0 = full
        bisection; 0 when there are no trunks)."""
        hosts = set(self.hosts)
        down: dict[str, float] = {}
        up: dict[str, float] = {}
        for l in self.links:
            if l.a in hosts or l.b in hosts:
                sw = l.b if l.a in hosts else l.a
                down[sw] = down.get(sw, 0.0) + l.bw
            else:
                up[l.a] = up.get(l.a, 0.0) + l.bw
                up[l.b] = up.get(l.b, 0.0) + l.bw
        worst = 0.0
        for sw, cap in sorted(down.items()):
            if sw in up:
                worst = max(worst, cap / up[sw])
        return worst

    def diameter_hops(self) -> int:
        """Longest shortest host-to-host path, in link hops (BFS)."""
        adj = self.neighbors()
        worst = 0
        # BFS from every *switch* and read off host eccentricity through
        # its edge — hosts are leaves, so host-to-host = 1 + sw-path + 1.
        probes = self.switch_names() or [self.hosts[0]]
        for start in probes:
            dist = {start: 0}
            frontier = [start]
            while frontier:
                nxt = []
                for node in frontier:
                    for peer in adj[node]:
                        if peer not in dist:
                            dist[peer] = dist[node] + 1
                            nxt.append(peer)
                frontier = nxt
            worst = max(worst, max(d for n, d in dist.items()
                                   if n in set(self.hosts)))
        if not self.switch_names():
            return worst
        return worst + 1  # + the source host's own access link

    # -- JSON round-trip -------------------------------------------------

    def to_dict(self) -> dict:
        d = asdict(self)
        d["hosts"] = list(d["hosts"])
        d["switches"] = list(d["switches"])
        d["links"] = list(d["links"])
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "TopologySpec":
        return cls(
            name=d["name"],
            hosts=tuple(d.get("hosts", ())),
            switches=tuple(SwitchSpec(**s) for s in d.get("switches", ())),
            links=tuple(LinkSpec(**l) for l in d.get("links", ())),
            ecmp_seed=d.get("ecmp_seed", "fabric"),
        )


# ---------------------------------------------------------------------------
# generators
# ---------------------------------------------------------------------------


def pair_topology(bw: float = DEFAULT_BW,
                  latency: int = DEFAULT_LATENCY) -> TopologySpec:
    """The paper's setup: two hosts, one cable, no switch."""
    return TopologySpec(
        name="pair",
        hosts=("node0", "node1"),
        links=(LinkSpec("node0", "node1", bw, latency),),
    )


def star_topology(n_hosts: int, bw: float = DEFAULT_BW,
                  latency: int = DEFAULT_LATENCY) -> TopologySpec:
    """N hosts around one switch (the historical incast testbed)."""
    if n_hosts < 2:
        raise ValueError("a star needs at least 2 hosts")
    hosts = tuple(f"node{i}" for i in range(n_hosts))
    return TopologySpec(
        name=f"star{n_hosts}",
        hosts=hosts,
        switches=(SwitchSpec("sw0"),),
        links=tuple(LinkSpec(h, "sw0", bw, latency) for h in hosts),
    )


def fat_tree(hosts: int = 0, tiers: int = 2, hosts_per_edge: int = 8,
             oversubscription: float = 1.0, k: int = 0,
             bw: float = DEFAULT_BW, trunk_bw: Optional[float] = None,
             latency: int = DEFAULT_LATENCY,
             ecmp_seed: str = "fabric") -> TopologySpec:
    """A 2- or 3-tier fat tree.

    2-tier (leaf/spine): ``hosts`` split over edge switches of
    ``hosts_per_edge`` ports each; every edge trunks to every spine, and
    the spine count is ``hosts_per_edge / oversubscription`` (so 1.0 is
    full bisection, 2.0 halves the uplink capacity).

    3-tier (k-ary Clos, ``k`` even): k pods of k/2 edge + k/2 aggregation
    switches, ``(k/2)^2 / oversubscription`` core switches, ``k^3/4``
    hosts; ``hosts``/``hosts_per_edge`` are derived from ``k``.
    """
    trunk = bw if trunk_bw is None else trunk_bw
    if tiers == 2:
        return _fat_tree2(hosts, hosts_per_edge, oversubscription,
                          bw, trunk, latency, ecmp_seed)
    if tiers == 3:
        return _fat_tree3(k, oversubscription, bw, trunk, latency, ecmp_seed)
    raise ValueError(f"fat_tree supports 2 or 3 tiers, not {tiers}")


def _fat_tree2(hosts: int, hosts_per_edge: int, oversub: float,
               bw: float, trunk: float, latency: int,
               ecmp_seed: str) -> TopologySpec:
    if hosts < 2 or hosts_per_edge < 1:
        raise ValueError("fat_tree(tiers=2) needs hosts >= 2 and "
                         "hosts_per_edge >= 1")
    if hosts % hosts_per_edge:
        raise ValueError(f"hosts ({hosts}) must be a multiple of "
                         f"hosts_per_edge ({hosts_per_edge})")
    if oversub < 1.0:
        raise ValueError("oversubscription must be >= 1.0")
    n_edges = hosts // hosts_per_edge
    n_spines = max(1, int(round(hosts_per_edge / oversub)))
    host_names = tuple(f"node{i}" for i in range(hosts))
    edges = [SwitchSpec(f"edge{e}", "edge") for e in range(n_edges)]
    spines = [SwitchSpec(f"spine{s}", "spine") for s in range(n_spines)]
    links = []
    for i, h in enumerate(host_names):
        links.append(LinkSpec(h, f"edge{i // hosts_per_edge}", bw, latency))
    for e in range(n_edges):
        for s in range(n_spines):
            links.append(LinkSpec(f"edge{e}", f"spine{s}", trunk, latency))
    return TopologySpec(
        name=f"fat_tree2[{hosts}h,{n_edges}e,{n_spines}s,os={oversub:g}]",
        hosts=host_names,
        switches=tuple(edges + spines),
        links=tuple(links),
        ecmp_seed=ecmp_seed,
    )


def _fat_tree3(k: int, oversub: float, bw: float, trunk: float,
               latency: int, ecmp_seed: str) -> TopologySpec:
    if k < 2 or k % 2:
        raise ValueError("fat_tree(tiers=3) needs an even k >= 2")
    if oversub < 1.0:
        raise ValueError("oversubscription must be >= 1.0")
    half = k // 2
    n_cores = max(1, int(round(half * half / oversub)))
    hosts = []
    switches = []
    links = []
    for pod in range(k):
        for e in range(half):
            edge = f"p{pod}edge{e}"
            switches.append(SwitchSpec(edge, "edge"))
            for h in range(half):
                host = f"node{pod * half * half + e * half + h}"
                hosts.append(host)
                links.append(LinkSpec(host, edge, bw, latency))
        for a in range(half):
            agg = f"p{pod}agg{a}"
            switches.append(SwitchSpec(agg, "agg"))
            for e in range(half):
                links.append(LinkSpec(f"p{pod}edge{e}", agg, trunk, latency))
    for c in range(n_cores):
        switches.append(SwitchSpec(f"core{c}", "spine"))
        for pod in range(k):
            # core c homes on aggregation switch c // half of each pod
            agg = f"p{pod}agg{(c // half) % half}"
            links.append(LinkSpec(agg, f"core{c}", trunk, latency))
    return TopologySpec(
        name=f"fat_tree3[k={k},{len(hosts)}h,{n_cores}c,os={oversub:g}]",
        hosts=tuple(hosts),
        switches=tuple(switches),
        links=tuple(links),
        ecmp_seed=ecmp_seed,
    )


def dragonfly(groups: int = 4, routers_per_group: int = 2,
              hosts_per_router: int = 2,
              bw: float = DEFAULT_BW, trunk_bw: Optional[float] = None,
              latency: int = DEFAULT_LATENCY,
              ecmp_seed: str = "fabric") -> TopologySpec:
    """A dragonfly: all-to-all routers inside each group, one global link
    between every group pair (assigned round-robin over the group's
    routers)."""
    if groups < 2 or routers_per_group < 1 or hosts_per_router < 1:
        raise ValueError("dragonfly needs >= 2 groups and >= 1 "
                         "router/host per group")
    trunk = bw if trunk_bw is None else trunk_bw
    hosts = []
    switches = []
    links = []
    for g in range(groups):
        for r in range(routers_per_group):
            name = f"g{g}r{r}"
            switches.append(SwitchSpec(name, "edge"))
            for h in range(hosts_per_router):
                host = (f"node{(g * routers_per_group + r) * hosts_per_router + h}")
                hosts.append(host)
                links.append(LinkSpec(host, name, bw, latency))
        for r in range(routers_per_group):
            for r2 in range(r + 1, routers_per_group):
                links.append(LinkSpec(f"g{g}r{r}", f"g{g}r{r2}",
                                      trunk, latency))
    pair_index = 0
    for g in range(groups):
        for g2 in range(g + 1, groups):
            ra = pair_index % routers_per_group
            rb = (pair_index + 1) % routers_per_group
            links.append(LinkSpec(f"g{g}r{ra}", f"g{g2}r{rb}",
                                  trunk, latency))
            pair_index += 1
    return TopologySpec(
        name=f"dragonfly[{groups}g,{routers_per_group}r,{hosts_per_router}h]",
        hosts=tuple(hosts),
        switches=tuple(switches),
        links=tuple(links),
        ecmp_seed=ecmp_seed,
    )
