#!/usr/bin/env python
"""MPI over Open-MX: collectives across two nodes, two processes each.

Runs a selection of IMB tests on 4 ranks (2 nodes x 2 ppn) over three
stacks — native MXoE, Open-MX, and Open-MX with I/OAT — and prints each
Open-MX configuration as a percentage of MXoE, the presentation of the
paper's Fig. 12.

Run:  python examples/mpi_collectives.py
"""

from repro import build_testbed
from repro.imb import run_imb
from repro.mpi import create_world
from repro.units import KiB

TESTS = ["PingPong", "SendRecv", "Exchange", "Allreduce", "Alltoall", "Bcast"]
SIZE = 128 * KiB


def time_us(stack: str, test: str, **omx) -> float:
    tb = build_testbed(stacks=stack, **omx)
    comm = create_world(tb, ppn=2)
    return run_imb(tb, comm, test, SIZE, iterations=4, warmup=1).t_avg_us


def main() -> None:
    print(f"IMB at {SIZE >> 10} kB on 4 ranks (2 nodes x 2 ppn), % of MXoE:")
    print(f"{'test':>10} | {'Open-MX':>8} | {'Open-MX + I/OAT':>15}")
    print("-" * 42)
    for test in TESTS:
        base = time_us("mx", test)
        plain = time_us("omx", test)
        ioat = time_us("omx", test, ioat_enabled=True)
        print(f"{test:>10} | {100 * base / plain:>7.1f}% | {100 * base / ioat:>14.1f}%")
    print("\n(The paper reports ~68 % without offload and a ~24 % average")
    print(" improvement with I/OAT at this size; >100 % means Open-MX beats")
    print(" the native stack, which its shm path makes possible at 2 ppn.)")


if __name__ == "__main__":
    main()
