"""Conformance suite for pluggable copy backends (DESIGN.md §15).

Every backend in the registry must honour the same contract the offload
manager relies on: submit/poll ordering (completions observed in FIFO
order per message), fail→heal fallback (aborted copies healed by memcpy),
recovery after ``recover()``, sanitizer-clean drain (every skbuff and DMA
cookie returned), and breaker supervision on every lane — engine channels
and backend-private lanes alike.

The suite is parametrized over ``backend_names()``: registering a new
backend automatically subjects it to the whole contract.
"""

import pytest

from repro.analysis.sanitizers import Sanitizer
from repro.cluster.host import Host
from repro.core.backends import (
    CopyBackend,
    LaneBackend,
    backend_names,
    create_backend,
)
from repro.core.offload import OffloadManager
from repro.health import BreakerState
from repro.params import clovertown_5000x
from repro.simkernel import Simulator
from repro.units import KiB

ALL_BACKENDS = backend_names()
OFFLOADING = [b for b in ALL_BACKENDS if b != "memcpy"]

MSG_LEN = 1 << 20  # always above ioat_min_msg


def make_env(backend, **omx):
    omx.setdefault("ioat_enabled", True)
    omx.setdefault("copy_backend", backend)
    omx.setdefault("ioat_min_msg", 1)
    omx.setdefault("ioat_min_frag", 1)
    omx.setdefault("max_pending_skbuffs", 64)
    plat = clovertown_5000x(**omx)
    sim = Simulator()
    host = Host(sim, plat)
    mgr = OffloadManager(host, plat.omx)
    return sim, host, mgr


def backend_channels(mgr, state):
    """Every DMA channel the backend may submit this message's copies to."""
    b = mgr.backend
    if isinstance(b, LaneBackend):
        return list(b.lanes)
    return [state.channel]


def run_bh(sim, host, gen_fn):
    """Run ``gen_fn(core)`` holding the IRQ core, until it returns."""
    core = host.irq_core
    out = {}

    def work():
        yield core.res.request()
        out["value"] = yield from gen_fn(core)
        core.res.release()

    sim.run_until(sim.process(work()))
    return out.get("value")


def submit_fragments(sim, host, mgr, state, sizes, dst=None):
    """Offload one fragment per entry of ``sizes``; returns (skbs, dst)."""
    if dst is None:
        dst = host.user_space("conf").alloc(sum(sizes) + 8 * KiB)
    skbs = []

    def gen(core):
        off = 0
        for n in sizes:
            skb = host.skb_pool.alloc_rx()
            skb.data_len = n
            ok = yield from mgr.copy_fragment(
                core, state, skb, 0, dst, off, n, MSG_LEN
            )
            if ok:
                skbs.append(skb)
            else:
                skb.free()
            off += n
        return None

    run_bh(sim, host, gen)
    return skbs, dst


class TestRegistry:
    def test_all_expected_backends_registered(self):
        assert set(ALL_BACKENDS) >= {"memcpy", "ioat", "flextoe", "spin",
                                     "sgdma"}

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_create_resolves_every_name(self, name):
        _, _, mgr = make_env(name)
        assert mgr.backend.name == name
        assert isinstance(mgr.backend, CopyBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown copy backend"):
            make_env("warp-drive")

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_metrics_registered(self, name):
        _, host, mgr = make_env(name)
        mgr.register_metrics(host.metrics)
        assert "offload_breaker_exhausted" in host.metrics
        if isinstance(mgr.backend, LaneBackend):
            assert f"backend_{name}_bytes" in host.metrics


class TestSubmitPollOrdering:
    @pytest.mark.parametrize("name", OFFLOADING)
    def test_fragments_offloaded_and_drained(self, name):
        sim, host, mgr = make_env(name)
        state = mgr.new_message_state()
        skbs, _ = submit_fragments(sim, host, mgr, state, [4 * KiB] * 4)
        assert len(skbs) == 4
        assert len(state.pending) == 4
        freed = run_bh(sim, host, lambda core: mgr.wait_all(core, state))
        assert freed == 4
        assert not state.pending
        assert mgr.fallback_copies == 0

    @pytest.mark.parametrize("name", OFFLOADING)
    def test_cleanup_frees_in_fifo_order(self, name):
        sim, host, mgr = make_env(name)
        state = mgr.new_message_state()
        submit_fragments(sim, host, mgr, state, [4 * KiB] * 6)
        order = [e.dst_off for e in state.pending]
        assert order == sorted(order)
        # Let the engine(s) finish everything, then one cleanup pass must
        # release a *prefix* of the pending deque, oldest first.
        sim.run()
        run_bh(sim, host, lambda core: mgr.cleanup(core, state))
        remaining = [e.dst_off for e in state.pending]
        assert remaining == order[len(order) - len(remaining):]

    @pytest.mark.parametrize("name", OFFLOADING)
    def test_offloaded_bytes_accounted(self, name):
        sim, host, mgr = make_env(name)
        state = mgr.new_message_state()
        submit_fragments(sim, host, mgr, state, [4 * KiB, 8 * KiB])
        assert state.offloaded_bytes == 12 * KiB
        run_bh(sim, host, lambda core: mgr.wait_all(core, state))
        assert state.offloaded_bytes == 12 * KiB  # no heals happened

    def test_memcpy_backend_never_offloads(self):
        sim, host, mgr = make_env("memcpy")
        state = mgr.new_message_state()
        skbs, _ = submit_fragments(sim, host, mgr, state, [4 * KiB] * 3)
        assert skbs == []
        assert not state.pending
        assert mgr.frags_memcpy == 3
        assert state.copied_bytes == 12 * KiB


class TestFailHealRecover:
    @pytest.mark.parametrize("name", OFFLOADING)
    def test_fail_then_heal_fallback(self, name):
        sim, host, mgr = make_env(name)
        state = mgr.new_message_state()
        submit_fragments(sim, host, mgr, state, [4 * KiB] * 4)
        for lane in backend_channels(mgr, state):
            lane.fail("conformance fault")  # noqa: HLT001 (the fixture)
        freed = run_bh(sim, host, lambda core: mgr.wait_all(core, state))
        assert freed == 4
        assert not state.pending
        # Copies that completed before the fault stand; every aborted one
        # was healed by a fallback memcpy — no byte lost either way.
        assert mgr.fallback_copies >= 1
        assert state.copied_bytes == mgr.fallback_copies * 4 * KiB
        assert state.offloaded_bytes == 16 * KiB - state.copied_bytes

    @pytest.mark.parametrize("name", OFFLOADING)
    def test_recover_restores_offload(self, name):
        sim, host, mgr = make_env(name)
        state = mgr.new_message_state()
        submit_fragments(sim, host, mgr, state, [4 * KiB])
        lanes = backend_channels(mgr, state)
        for lane in lanes:
            lane.fail()  # noqa: HLT001
        run_bh(sim, host, lambda core: mgr.wait_all(core, state))
        for lane in lanes:
            lane.recover()
        state2 = mgr.new_message_state()
        skbs, _ = submit_fragments(sim, host, mgr, state2, [4 * KiB] * 2)
        assert len(state2.pending) == 2
        freed = run_bh(sim, host, lambda core: mgr.wait_all(core, state2))
        assert freed == 2
        assert mgr.fallback_copies == 1  # only the pre-recovery copy healed


class TestSanitizerDrain:
    @pytest.mark.parametrize("name", OFFLOADING)
    def test_drain_is_sanitizer_clean(self, name):
        sim, host, mgr = make_env(name)
        san = Sanitizer()
        san.watch_host(host)
        state = mgr.new_message_state()
        submit_fragments(sim, host, mgr, state, [4 * KiB] * 5)
        run_bh(sim, host, lambda core: mgr.wait_all(core, state))
        sim.run()
        san.assert_clean()

    @pytest.mark.parametrize("name", OFFLOADING)
    def test_backend_lanes_are_watched(self, name):
        _, host, mgr = make_env(name)
        san = Sanitizer()
        san.watch_host(host)
        if isinstance(mgr.backend, LaneBackend):
            for lane in mgr.backend.lanes:
                assert lane.observer is san
        else:
            assert host.ioat_engine[0].observer is san


class TestBreakerSupervision:
    @pytest.mark.parametrize("name", OFFLOADING)
    def test_every_backend_lane_has_a_breaker(self, name):
        _, host, mgr = make_env(name)
        state = mgr.new_message_state()
        for lane in backend_channels(mgr, state):
            assert host.health.breaker_for(lane) is not None

    @pytest.mark.parametrize("name", OFFLOADING)
    def test_lane_breakers_trip_and_reopen(self, name):
        sim, host, mgr = make_env(name)
        state = mgr.new_message_state()
        lanes = backend_channels(mgr, state)
        # Enough aborted descriptors per lane to cross breaker_threshold.
        n_frags = 3 * max(len(lanes), 4)
        submit_fragments(sim, host, mgr, state, [4 * KiB] * n_frags)
        for lane in lanes:
            lane.fail()  # noqa: HLT001
        breakers = [host.health.breaker_for(lane) for lane in lanes]
        tripped = [b for b in breakers if b.state is BreakerState.OPEN]
        assert tripped, "aborting every pending copy must trip breakers"
        run_bh(sim, host, lambda core: mgr.wait_all(core, state))
        for lane in lanes:
            lane.recover()
        # Renewed demand re-arms the probe chain; the probes then complete
        # against the recovered lanes and the breakers re-close.
        for lane in lanes:
            host.health.allows_offload(lane)
        sim.run()
        assert all(b.state is BreakerState.CLOSED for b in breakers)
        assert sum(b.reopens for b in breakers) >= len(tripped)


@pytest.mark.racecheck
class TestParallelLaneRaces:
    """The FlexTOE backend stripes one fragment across lanes whose
    completions land at the same tick — the dispatch order must not change
    what the offload manager observes."""

    def test_flextoe_drain_invariant_under_tiebreak(self):
        sim, host, mgr = make_env("flextoe")
        state = mgr.new_message_state()
        # Page-straddling fragments split into multiple chunks, so each
        # fragment genuinely fans out over several lanes in parallel.
        submit_fragments(sim, host, mgr, state, [4 * KiB + 512] * 6)
        freed = run_bh(sim, host, lambda core: mgr.wait_all(core, state))
        assert freed == 6
        assert not state.pending
        assert mgr.fallback_copies == 0
        lanes = mgr.backend.lanes
        # Every fragment straddles at least one page edge on the source
        # side, so each splits into 2+ striped chunks; the exact count is
        # deterministic in the destination offsets, and — the racecheck
        # invariant — identical under every tie-break policy.
        assert lanes.descriptors_completed >= 12
        assert lanes.descriptors_failed == 0
        assert lanes.bytes_copied == 6 * (4 * KiB + 512)
