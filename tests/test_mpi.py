"""Tests for the MPI layer: p2p semantics and all collectives, over both
stacks, 1 and 2 processes per node."""

import numpy as np
import pytest

from repro import build_testbed
from repro.mpi import create_world
from repro.mpi.p2p import ANY_SOURCE, ANY_TAG, encode_match, encode_recv
from repro.units import KiB

MAXEV = 10_000_000


def world(stack="omx", ppn=1, **omx):
    tb = build_testbed(stacks=stack, **omx)
    return tb, create_world(tb, ppn=ppn)


class TestMatchEncoding:
    def test_exact_match(self):
        m = encode_match(1, 3, 42)
        rm, mask = encode_recv(1, 3, 42)
        assert (m & mask) == (rm & mask)

    def test_any_source_matches_all_sources(self):
        rm, mask = encode_recv(1, ANY_SOURCE, 42)
        for src in (0, 5, 100):
            assert (encode_match(1, src, 42) & mask) == (rm & mask)

    def test_any_tag_matches_all_tags(self):
        rm, mask = encode_recv(1, 3, ANY_TAG)
        for tag in (0, 7, 123456):
            assert (encode_match(1, 3, tag) & mask) == (rm & mask)

    def test_wrong_tag_rejected(self):
        rm, mask = encode_recv(1, 3, 42)
        assert (encode_match(1, 3, 43) & mask) != (rm & mask)

    def test_wrong_source_rejected(self):
        rm, mask = encode_recv(1, 3, 42)
        assert (encode_match(1, 4, 42) & mask) != (rm & mask)


@pytest.mark.parametrize("stack", ["omx", "mx"])
class TestP2P:
    def test_blocking_send_recv(self, stack):
        tb, comm = world(stack)
        n = 4 * KiB
        results = {}

        def body(rank):
            buf = rank.space.alloc(n)
            if rank.rank == 0:
                buf.fill_pattern(1)
                yield from rank.send(1, buf, tag=5)
            else:
                yield from rank.recv(0, buf, tag=5)
                results["data"] = bytes(buf.read())

        comm.run_spmd(body, max_events=MAXEV)
        expect = tb.hosts[0].user_space("check").alloc(n)
        expect.fill_pattern(1)
        assert results["data"] == bytes(expect.read())

    def test_any_source_recv(self, stack):
        tb, comm = world(stack)
        got = {}

        def body(rank):
            buf = rank.space.alloc(64)
            if rank.rank == 0:
                buf.fill_pattern(9)
                yield from rank.send(1, buf, tag=3)
            else:
                yield from rank.recv(ANY_SOURCE, buf, tag=3)
                got["ok"] = True

        comm.run_spmd(body, max_events=MAXEV)
        assert got.get("ok")

    def test_tag_ordering(self, stack):
        """Two messages with different tags must land in the right recvs."""
        tb, comm = world(stack)
        out = {}

        def body(rank):
            a = rank.space.alloc(256)
            b = rank.space.alloc(256)
            if rank.rank == 0:
                a.fill_pattern(1)
                b.fill_pattern(2)
                yield from rank.send(1, a, tag=10)
                yield from rank.send(1, b, tag=20)
            else:
                # Post in reverse tag order.
                r20 = yield from rank.irecv(0, b, tag=20)
                r10 = yield from rank.irecv(0, a, tag=10)
                yield from rank.wait(r20)
                yield from rank.wait(r10)
                out["a"] = bytes(a.read())
                out["b"] = bytes(b.read())

        comm.run_spmd(body, max_events=MAXEV)
        pa = comm.ranks[0].space.alloc(256)
        pa.fill_pattern(1)
        pb = comm.ranks[0].space.alloc(256)
        pb.fill_pattern(2)
        assert out["a"] == bytes(pa.read())
        assert out["b"] == bytes(pb.read())

    def test_sendrecv_crossing(self, stack):
        tb, comm = world(stack)
        out = {}

        def body(rank):
            s = rank.space.alloc(1 * KiB)
            r = rank.space.alloc(1 * KiB)
            s.fill_pattern(rank.rank)
            other = 1 - rank.rank
            yield from rank.sendrecv(other, s, other, r, length=1 * KiB)
            out[rank.rank] = bytes(r.read())

        comm.run_spmd(body, max_events=MAXEV)
        p0 = comm.ranks[0].space.alloc(1 * KiB)
        p0.fill_pattern(0)
        p1 = comm.ranks[0].space.alloc(1 * KiB)
        p1.fill_pattern(1)
        assert out[0] == bytes(p1.read())
        assert out[1] == bytes(p0.read())


@pytest.mark.parametrize("ppn", [1, 2])
@pytest.mark.parametrize("stack", ["omx", "mx"])
class TestCollectives:
    def _floats(self, rank_count, n_floats, r):
        return np.full(n_floats, float(r + 1), dtype=np.float32)

    def test_barrier_completes(self, stack, ppn):
        tb, comm = world(stack, ppn)

        def body(rank):
            for _ in range(3):
                yield from rank.barrier()

        comm.run_spmd(body, max_events=MAXEV)

    def test_bcast(self, stack, ppn):
        tb, comm = world(stack, ppn)
        n = 16 * KiB
        out = {}

        def body(rank):
            buf = rank.space.alloc(n)
            if rank.rank == 0:
                buf.fill_pattern(7)
            yield from rank.bcast(buf, root=0)
            out[rank.rank] = bytes(buf.read())

        comm.run_spmd(body, max_events=MAXEV)
        assert len(set(out.values())) == 1

    def test_allreduce_sums(self, stack, ppn):
        tb, comm = world(stack, ppn)
        n_floats = 1024
        n = n_floats * 4
        out = {}

        def body(rank):
            sb = rank.space.alloc(n)
            rb = rank.space.alloc(n)
            sb.read().view(np.float32)[:] = float(rank.rank + 1)
            yield from rank.allreduce(sb, rb)
            out[rank.rank] = rb.read().view(np.float32).copy()

        comm.run_spmd(body, max_events=MAXEV)
        p = comm.size
        expected = sum(range(1, p + 1))
        for r, vals in out.items():
            assert np.allclose(vals, expected), f"rank {r}"

    def test_reduce_to_root(self, stack, ppn):
        tb, comm = world(stack, ppn)
        n_floats = 512
        n = n_floats * 4
        out = {}

        def body(rank):
            sb = rank.space.alloc(n)
            rb = rank.space.alloc(n)
            sb.read().view(np.float32)[:] = float(rank.rank + 1)
            yield from rank.reduce(sb, rb, root=0)
            if rank.rank == 0:
                out["root"] = rb.read().view(np.float32).copy()

        comm.run_spmd(body, max_events=MAXEV)
        expected = sum(range(1, comm.size + 1))
        assert np.allclose(out["root"], expected)

    def test_allgather(self, stack, ppn):
        tb, comm = world(stack, ppn)
        block = 2 * KiB
        out = {}

        def body(rank):
            sb = rank.space.alloc(block)
            rb = rank.space.alloc(block * rank.size)
            sb.fill_pattern(rank.rank + 1)
            yield from rank.allgather(sb, rb, block)
            out[rank.rank] = bytes(rb.read())

        comm.run_spmd(body, max_events=MAXEV)
        assert len(set(out.values())) == 1
        # Verify each block is the right rank's pattern.
        ref = comm.ranks[0].space.alloc(block)
        for r in range(comm.size):
            ref.fill_pattern(r + 1)
            blk = out[0][r * block : (r + 1) * block]
            assert blk == bytes(ref.read())

    def test_allgatherv_unequal(self, stack, ppn):
        tb, comm = world(stack, ppn)
        out = {}

        def body(rank):
            lens = [1 * KiB * (i + 1) for i in range(rank.size)]
            sb = rank.space.alloc(lens[rank.rank])
            rb = rank.space.alloc(sum(lens))
            sb.fill_pattern(rank.rank + 1)
            yield from rank.allgatherv(sb, rb, lens)
            out[rank.rank] = bytes(rb.read())

        comm.run_spmd(body, max_events=MAXEV)
        assert len(set(out.values())) == 1

    def test_alltoall(self, stack, ppn):
        tb, comm = world(stack, ppn)
        block = 1 * KiB
        out = {}

        def body(rank):
            p = rank.size
            sb = rank.space.alloc(block * p)
            rb = rank.space.alloc(block * p)
            for j in range(p):
                sb.read(j * block, block)[:] = (rank.rank * 16 + j) % 251
            yield from rank.alltoall(sb, rb, block)
            out[rank.rank] = rb.read().copy()

        comm.run_spmd(body, max_events=MAXEV)
        p = comm.size
        for i in range(p):
            for j in range(p):
                # rank i's block j must be what rank j sent to i
                blk = out[i][j * block : (j + 1) * block]
                assert (blk == (j * 16 + i) % 251).all()

    def test_reduce_scatter(self, stack, ppn):
        tb, comm = world(stack, ppn)
        n_floats = 256
        block = n_floats * 4
        out = {}

        def body(rank):
            p = rank.size
            sb = rank.space.alloc(block * p)
            rb = rank.space.alloc(block)
            sb.read().view(np.float32)[:] = float(rank.rank + 1)
            yield from rank.reduce_scatter(sb, rb, block)
            out[rank.rank] = rb.read().view(np.float32).copy()

        comm.run_spmd(body, max_events=MAXEV)
        expected = sum(range(1, comm.size + 1))
        for r, vals in out.items():
            assert np.allclose(vals, expected), f"rank {r}"


def test_local_ranks_use_shm_path():
    """With 2 ppn block placement, same-node traffic uses the shm engine."""
    tb = build_testbed()
    comm = create_world(tb, ppn=2, placement="block")

    def body(rank):
        buf = rank.space.alloc(64 * KiB)
        if rank.rank == 0:
            buf.fill_pattern(1)
            yield from rank.send(1, buf)  # rank 1 is on the same node
        elif rank.rank == 1:
            yield from rank.recv(0, buf)

    comm.run_spmd(body, max_events=MAXEV)
    shm = tb.stacks[0].driver.shm
    assert shm.local_large == 1
    assert tb.hosts[0].nic.tx_frames == 0  # nothing touched the wire
