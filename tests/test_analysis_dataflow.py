"""The cross-module dataflow engine (repro.analysis.dataflow).

Covers the three layers the new rules stand on: the project symbol table
and conservative call-graph resolution, backward taint propagation with
witness paths, and the per-function order-stability analysis
(``unordered_iters``).
"""

import textwrap

import pytest

from repro.analysis.dataflow import Project, module_name_for, unordered_iters
from repro.analysis.lint import ModuleSource

pytestmark = pytest.mark.lint


def _module(path, src):
    return ModuleSource(path, textwrap.dedent(src))


def _project(*pairs):
    return Project([_module(p, s) for p, s in pairs])


# ---------------------------------------------------------------------------
# symbol table and call resolution
# ---------------------------------------------------------------------------


def test_module_name_for_repro_paths():
    assert module_name_for("src/repro/core/driver.py") == "repro.core.driver"
    assert module_name_for("/abs/src/repro/obs/trace.py") == "repro.obs.trace"
    assert module_name_for("golden.py") == "golden"


def test_symbol_table_indexes_methods_and_nested_defs():
    p = _project(("m.py", """
        def top():
            def inner():
                pass
            inner()

        class C:
            def method(self):
                pass
    """))
    assert set(p.functions) == {"m.top", "m.top.inner", "m.C.method"}


def test_bare_name_resolves_to_module_level_function():
    p = _project(("m.py", """
        def helper():
            pass

        def caller():
            helper()
    """))
    (site,) = p.functions["m.caller"].calls
    assert site.resolved == "m.helper"


def test_nested_def_shadows_module_level():
    p = _project(("m.py", """
        def helper():
            pass

        def caller():
            def helper():
                pass
            helper()
    """))
    (site,) = p.functions["m.caller"].calls
    assert site.resolved == "m.caller.helper"


def test_self_method_resolves_within_class():
    p = _project(("m.py", """
        class C:
            def a(self):
                self.b()

            def b(self):
                pass
    """))
    (site,) = p.functions["m.C.a"].calls
    assert site.resolved == "m.C.b"


def test_cross_module_resolution_via_import():
    p = _project(
        ("src/repro/util.py", """
            def helper():
                pass
        """),
        ("src/repro/main.py", """
            from repro.util import helper

            def run():
                helper()
        """),
    )
    (site,) = p.functions["repro.main.run"].calls
    assert site.resolved == "repro.util.helper"


def test_unresolved_calls_are_leaves_not_edges():
    p = _project(("m.py", """
        def run(obj):
            obj.mystery()
    """))
    (site,) = p.functions["m.run"].calls
    assert site.resolved is None


def test_callers_of_reverse_graph():
    p = _project(("m.py", """
        def leaf():
            pass

        def a():
            leaf()

        def b():
            leaf()
    """))
    callers = p.callers_of()["m.leaf"]
    assert sorted(c for c, _ in callers) == ["m.a", "m.b"]


# ---------------------------------------------------------------------------
# taint propagation
# ---------------------------------------------------------------------------


def _wallclock_taint(project):
    def predicate(site):
        return ("wall clock" if site.dotted == "time.time" else None)
    return project.taint(predicate)


def test_taint_direct_and_transitive():
    p = _project(("m.py", """
        import time

        def leaf():
            return time.time()

        def mid():
            return leaf()

        def top():
            return mid()

        def clean():
            return 1
    """))
    t = _wallclock_taint(p)
    for fn in ("m.leaf", "m.mid", "m.top"):
        assert t.reaches(fn), fn
    assert not t.reaches("m.clean")


def test_taint_path_is_a_witness_chain():
    p = _project(("m.py", """
        import time

        def leaf():
            return time.time()

        def mid():
            return leaf()

        def top():
            return mid()
    """))
    t = _wallclock_taint(p)
    assert t.path("m.top") == ["m.top", "m.mid", "m.leaf"]
    assert t.reason("m.top") == "wall clock"


def test_taint_crosses_modules():
    p = _project(
        ("src/repro/clock.py", """
            import time

            def now_ms():
                return int(time.time() * 1e3)
        """),
        ("src/repro/proc.py", """
            from repro.clock import now_ms

            def stamp():
                return now_ms()
        """),
    )
    t = _wallclock_taint(p)
    assert t.reaches("repro.proc.stamp")
    assert t.path("repro.proc.stamp") == ["repro.proc.stamp",
                                          "repro.clock.now_ms"]


def test_taint_does_not_jump_unresolved_edges():
    """Duck-typed calls never conduct taint — findings are not guesses."""
    p = _project(("m.py", """
        import time

        def leaf():
            return time.time()

        def top(obj):
            obj.leaf()
    """))
    t = _wallclock_taint(p)
    assert not t.reaches("m.top")


# ---------------------------------------------------------------------------
# order-stability analysis
# ---------------------------------------------------------------------------


def _loops(src):
    m = _module("m.py", src)
    out = []
    for fn in m.functions():
        out += [l.what for l in unordered_iters(m, fn, None)]
    return out


def test_set_literal_and_dict_views_are_unordered():
    assert _loops("""
        def f(d):
            for x in {1, 2}:
                pass
            for v in d.values():
                pass
    """) != []


def test_sorted_fixes_order():
    assert _loops("""
        def f(d):
            for k in sorted(d):
                pass
            for v in sorted(d.values()):
                pass
    """) == []


def test_list_preserves_disorder():
    assert len(_loops("""
        def f(d):
            for v in list(d.values()):
                pass
    """)) == 1


def test_local_assigned_from_set_ctor_tracked():
    assert len(_loops("""
        def f():
            pending = set()
            pending.add(1)
            for x in pending:
                pass
    """)) == 1


def test_self_attr_type_inferred_across_class():
    m = _module("m.py", """
        class C:
            def __init__(self):
                self.table = {}
                self.order = []

            def walk(self):
                for k in self.table:
                    pass
                for x in self.order:
                    pass
    """)
    fns = {fn.name: fn for fn in m.functions()}
    cls = m.tree.body[0]
    loops = unordered_iters(m, fns["walk"], cls)
    assert len(loops) == 1
    assert "table" in loops[0].what


def test_comprehensions_count_as_iteration():
    assert len(_loops("""
        def f(d):
            return [v for v in d.values()]
    """)) == 1
