"""Tests for the intra-node shared-memory path (§III-C, Fig. 10)."""

import pytest

from repro.cluster.testbed import build_single_node
from repro.units import GiB, KiB, MiB, SEC
from repro.workloads import run_shm_pingpong


def local_transfer(tb, size, prefill=7, ep_ids=(0, 1), cores=None):
    host = tb.hosts[0]
    ep_a = tb.open_endpoint(0, ep_ids[0])
    ep_b = tb.open_endpoint(0, ep_ids[1])
    if cores is None:
        core_a, core_b = host.core_same_die_pair()
    else:
        core_a, core_b = cores
    sbuf = ep_a.space.alloc(max(size, 1))
    rbuf = ep_b.space.alloc(max(size, 1), fill=0)
    sbuf.fill_pattern(prefill)
    done = tb.sim.event()

    def sender():
        req = yield from ep_a.isend(core_a, ep_b.addr, 0x8, sbuf, 0, size)
        yield from ep_a.wait(core_a, req)

    def receiver():
        req = yield from ep_b.irecv(core_b, 0x8, ~0, rbuf, 0, size)
        yield from ep_b.wait(core_b, req)
        done.succeed()

    tb.sim.process(sender())
    tb.sim.process(receiver())
    tb.sim.run_until(done, max_events=30_000_000)
    return sbuf, rbuf


class TestLocalDelivery:
    @pytest.mark.parametrize("size", [0, 1, 100, 4 * KiB, 31 * KiB])
    def test_eager_local_delivers(self, size):
        tb = build_single_node()
        sbuf, rbuf = local_transfer(tb, size)
        assert bytes(rbuf.read(0, size)) == bytes(sbuf.read(0, size))
        assert tb.stacks[0].driver.shm.local_eager == 1

    @pytest.mark.parametrize("size", [32 * KiB, 100_000, 1 * MiB])
    def test_one_copy_local_delivers(self, size):
        tb = build_single_node()
        sbuf, rbuf = local_transfer(tb, size)
        assert bytes(rbuf.read()) == bytes(sbuf.read())
        assert tb.stacks[0].driver.shm.local_large == 1

    def test_ioat_used_at_threshold(self):
        tb = build_single_node(ioat_enabled=True)
        sbuf, rbuf = local_transfer(tb, 64 * KiB)
        assert bytes(rbuf.read()) == bytes(sbuf.read())
        assert tb.stacks[0].driver.shm.ioat_copies == 1

    def test_ioat_not_used_below_threshold(self):
        tb = build_single_node(ioat_enabled=True, shm_ioat_min=1 * MiB)
        local_transfer(tb, 64 * KiB)
        assert tb.stacks[0].driver.shm.ioat_copies == 0

    def test_nothing_touches_the_wire(self):
        tb = build_single_node()
        local_transfer(tb, 1 * MiB)
        assert tb.hosts[0].nic.tx_frames == 0
        assert tb.hosts[0].nic.rx_frames == 0

    def test_unexpected_local_rendezvous(self):
        """Large local send before any recv is posted."""
        tb = build_single_node()
        host = tb.hosts[0]
        ep_a, ep_b = tb.open_endpoint(0, 0), tb.open_endpoint(0, 1)
        core_a, core_b = host.core_same_die_pair()
        size = 256 * KiB
        sbuf = ep_a.space.alloc(size)
        rbuf = ep_b.space.alloc(size, fill=0)
        sbuf.fill_pattern(3)
        done = tb.sim.event()

        def sender():
            req = yield from ep_a.isend(core_a, ep_b.addr, 0x9, sbuf)
            yield from ep_a.wait(core_a, req)

        def receiver():
            yield tb.sim.timeout(1_000_000)  # recv posted 1 ms late
            req = yield from ep_b.irecv(core_b, 0x9, ~0, rbuf)
            yield from ep_b.wait(core_b, req)
            done.succeed()

        tb.sim.process(sender())
        tb.sim.process(receiver())
        tb.sim.run_until(done, max_events=30_000_000)
        assert bytes(rbuf.read()) == bytes(sbuf.read())


class TestFig10Regimes:
    def test_shared_cache_beats_cross_socket(self):
        size = 512 * KiB
        same = run_shm_pingpong(build_single_node(), size, "same_die",
                                iterations=4, warmup=2)
        cross = run_shm_pingpong(build_single_node(), size, "cross_socket",
                                 iterations=4, warmup=2)
        assert same > 3 * cross

    def test_cross_socket_near_1_2_gib(self):
        mib_s = run_shm_pingpong(build_single_node(), 1 * MiB, "cross_socket",
                                 iterations=4, warmup=2)
        assert 1000 < mib_s < 1500

    def test_cache_capacity_knee(self):
        small = run_shm_pingpong(build_single_node(), 1 * MiB, "same_die",
                                 iterations=4, warmup=2)
        huge = run_shm_pingpong(build_single_node(), 16 * MiB, "same_die",
                                iterations=4, warmup=2)
        assert huge < small / 2

    def test_ioat_rate_independent_of_placement(self):
        a = run_shm_pingpong(build_single_node(ioat_enabled=True), 1 * MiB,
                             "same_die", iterations=4, warmup=2)
        b = run_shm_pingpong(build_single_node(ioat_enabled=True), 1 * MiB,
                             "cross_socket", iterations=4, warmup=2)
        assert a == pytest.approx(b, rel=0.1)

    def test_ioat_doubles_large_local_messages(self):
        """Paper: 'performance of its one-copy-based local communication
        mechanism is almost doubled' for large messages."""
        plain = run_shm_pingpong(build_single_node(), 16 * MiB, "same_die",
                                 iterations=3, warmup=1)
        ioat = run_shm_pingpong(build_single_node(ioat_enabled=True), 16 * MiB,
                                "same_die", iterations=3, warmup=1)
        assert ioat > 1.2 * plain

    def test_sleep_model_matches_busy_poll_throughput(self):
        busy = run_shm_pingpong(build_single_node(ioat_enabled=True), 4 * MiB,
                                "same_die", iterations=3, warmup=1)
        sleep = run_shm_pingpong(
            build_single_node(ioat_enabled=True, ioat_sleep_model=True),
            4 * MiB, "same_die", iterations=3, warmup=1,
        )
        assert sleep == pytest.approx(busy, rel=0.15)
