"""Threshold auto-tuning (extension; paper §VI future work).

"Benchmarking the I/OAT hardware and memcpy in the cached and uncached
cases on startup may thus help configuring our thresholds."  This module
does exactly that: it runs the same micro-measurements a driver could run
at module-load time (entirely from the calibrated cost models, like probing
real silicon would) and derives the two offload thresholds:

* ``ioat_min_frag`` — the smallest fragment worth a descriptor: the copy
  must outlast the ~350 ns submission cost by a safety margin, in the
  *cached* case too (a fragment that memcpy could stream from L2 faster
  than the submission overhead should never be offloaded);
* ``ioat_min_msg`` — offload only messages spanning at least one full pull
  block: shorter messages finish before any overlap can develop, and their
  data is small enough that the cache-warming side effect of memcpy is
  worth keeping (§IV-A's empirical 64 kB).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.units import SEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.host import Host
    from repro.params import OmxConfig


@dataclass(frozen=True)
class CopyCalibration:
    """Startup micro-benchmark results (what a driver probe would measure)."""

    memcpy_uncached_bw: float
    memcpy_cached_bw: float
    ioat_submit_ns: int
    ioat_page_chunk_bw: float
    #: smallest copy whose uncached memcpy outlasts one submission
    breakeven_uncached: int
    #: same for a cache-resident copy
    breakeven_cached: int


def benchmark_copy_engines(host: "Host") -> CopyCalibration:
    """Probe the copy engines (startup micro-benchmark)."""
    hp = host.params
    submit = hp.ioat.submit_cost
    uncached = hp.memcpy.uncached_bw
    cached = hp.cache.cached_copy_bw
    # Sustained engine bandwidth with page-sized descriptors, amortising the
    # per-descriptor cost — the Fig. 7 "4 kB chunks" asymptote.
    page = 4096
    page_time = host.ioat_engine[0].service_time(page)
    page_bw = page * SEC / page_time
    return CopyCalibration(
        memcpy_uncached_bw=uncached,
        memcpy_cached_bw=cached,
        ioat_submit_ns=submit,
        ioat_page_chunk_bw=page_bw,
        breakeven_uncached=int(submit * uncached / SEC),
        breakeven_cached=int(submit * cached / SEC),
    )


def _round_up_pow2(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p


def autotune_thresholds(host: "Host", config: "OmxConfig") -> "OmxConfig":
    """Derive offload thresholds from the startup calibration.

    On the paper's hardware this lands exactly on its empirical choices
    (1 kB fragments, 64 kB messages); on different hardware (a faster CPU
    copy, a slower engine) the thresholds move accordingly.
    """
    cal = benchmark_copy_engines(host)
    # Fragment threshold: never offload what the CPU could copy from cache
    # in less than the submission takes (the worst case for offload).
    min_frag = _round_up_pow2(max(cal.breakeven_cached, cal.breakeven_uncached, 1))
    # Message threshold: at least one full pull block, so asynchronous
    # overlap can actually develop before the last-fragment wait.
    min_msg = max(config.large_frag * config.pull_block_frags, min_frag)
    # If the engine cannot beat the uncached CPU copy at page granularity,
    # offloading large streams is pointless: disable by raising thresholds.
    if cal.ioat_page_chunk_bw <= cal.memcpy_uncached_bw:
        return replace(config, ioat_min_frag=1 << 30, ioat_min_msg=1 << 62)
    return replace(config, ioat_min_frag=min_frag, ioat_min_msg=min_msg)
