"""Bridges from declarative fault specs to the layers' runtime hooks.

Arming a plan against a testbed instantiates one injector per spec and
wires it into the corresponding hook:

* :class:`RandomFrameFaults` implements the link layer's
  :class:`~repro.ethernet.link.FrameFaultHook` with one seeded draw per
  serialized frame;
* :class:`WindowGate` answers ``blocks(now)`` for NIC rx-ring windows;
* :class:`SwitchEgressFault` answers ``drop_egress(port, frame, now)``;
* I/OAT faults are scheduled as bare simulator callbacks that call
  :meth:`~repro.ioat.channel.DmaChannel.fail` /
  :meth:`~repro.ioat.channel.DmaChannel.stall` /
  :meth:`~repro.ioat.channel.DmaChannel.recover` at their trigger time.

Every injector counts what it actually did, and :class:`ArmedPlan`
aggregates those counts into the campaign report's "injected" section —
so a cell whose plan never fired (windows past the run, rates too low) is
visible instead of silently reading as "survived everything".
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from repro.ethernet.link import DELIVER, FrameVerdict
from repro.faults.plan import (
    FabricDegradeSpec,
    FabricFlapSpec,
    FabricLossySpec,
    FaultPlan,
    LinkFaultSpec,
    flap_windows,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.testbed import Testbed
    from repro.ethernet.frame import EthernetFrame


class NoTrunksError(ValueError):
    """A fabric fault axis targeted a topology with no trunk links.

    The gray-failure and kill/revive axes express *reroute* semantics —
    demote or cut a trunk and let ECMP find another path — which are
    meaningless on the pair/star degenerate topologies, where every link
    is a single-homed access link.  Arming used to accept these plans
    silently; now the offending link names are part of the error.
    """

    def __init__(self, links, topology: str = ""):
        self.links = tuple(links)
        self.topology = topology
        where = f" in topology {topology!r}" if topology else ""
        super().__init__(
            f"fabric fault axis targets link(s) {list(self.links)}{where}, "
            "but the topology has no trunks (pair/star degenerate spec) — "
            "reroute semantics need a switch-to-switch link to act on"
        )


class RandomFrameFaults:
    """Seeded per-frame fault decisions for one link direction.

    Exactly one RNG draw per in-window frame keeps the schedule a pure
    function of (seed, frame index): adding a second spec or re-running
    the cell cannot shift which frames are hit.
    """

    def __init__(self, spec: LinkFaultSpec, seed: str):
        self.spec = spec
        self.rng = random.Random(seed)
        self.drops = 0
        self.dups = 0
        self.corrupts = 0
        self.reorders = 0

    def on_frame(self, frame: "EthernetFrame", index: int, now: int) -> FrameVerdict:
        spec = self.spec
        if index < spec.first_index:
            return DELIVER
        if spec.last_index is not None and index > spec.last_index:
            return DELIVER
        if spec.windows and not any(
            start <= now < stop for start, stop in spec.windows
        ):
            # Flapping link, currently healthy.  No draw: the schedule
            # inside each bad window must not depend on how many healthy
            # frames crossed the link before it — draws are a function of
            # the in-window frame sequence, windows just gate them.
            return DELIVER
        r = self.rng.random()
        edge = spec.drop_rate
        if r < edge:
            self.drops += 1
            return FrameVerdict(deliver=False)
        edge += spec.dup_rate
        if r < edge:
            self.dups += 1
            return FrameVerdict(duplicates=1)
        edge += spec.corrupt_rate
        if r < edge:
            self.corrupts += 1
            return FrameVerdict(corrupt=True)
        edge += spec.reorder_rate
        if r < edge:
            self.reorders += 1
            return FrameVerdict(delay=spec.reorder_delay)
        return DELIVER

    def counters(self) -> dict[str, int]:
        return {
            "frame_drops": self.drops,
            "frame_dups": self.dups,
            "frame_corrupts": self.corrupts,
            "frame_reorders": self.reorders,
        }


class WindowGate:
    """True inside any of a set of half-open (start, stop) tick windows."""

    def __init__(self, windows):
        self.windows = tuple(tuple(w) for w in windows)
        self.hits = 0

    def blocks(self, now: int) -> bool:
        for start, stop in self.windows:
            if start <= now < stop:
                self.hits += 1
                return True
        return False


class SwitchEgressFault:
    """Per-port egress overflow windows for one switch."""

    def __init__(self, gates: dict[int, WindowGate]):
        self._gates = gates

    def drop_egress(self, port: int, frame: "EthernetFrame", now: int) -> bool:
        gate = self._gates.get(port)
        return gate is not None and gate.blocks(now)

    @property
    def hits(self) -> int:
        return sum(g.hits for g in self._gates.values())


class ChunkLossFault:
    """Seeded per-chunk drop decisions for one fabric port (lossy link).

    One RNG draw per in-window chunk; arbitration batches are sorted, so
    the per-port draw order — and therefore which chunks die — is a pure
    function of (seed, offered traffic), byte-identical under ``--races``.
    """

    def __init__(self, spec: FabricLossySpec, seed: str):
        self.spec = spec
        self.rng = random.Random(seed)
        self.drops = 0

    def __call__(self, chunk, now: int) -> bool:
        spec = self.spec
        if now < spec.at or (spec.until is not None and now >= spec.until):
            return False
        if self.rng.random() < spec.drop_rate:
            self.drops += 1
            return True
        return False


class GrayFrameFaults:
    """Gray-failure frame hook for one full-hardware trunk direction.

    Implements the link layer's ``FrameFaultHook`` for the degrade / flap
    / lossy axes: a flap's down-windows drop every frame (the PHY is
    down), a lossy window makes one seeded draw per frame, and a degrade
    window delays each frame by the extra serialization time of the
    renegotiated rate plus the configured added latency.
    """

    def __init__(self, seed: str, link_bw: float,
                 degrade: tuple = (), lossy: tuple = (),
                 down_windows: tuple = ()):
        self.rng = random.Random(seed)
        self.link_bw = link_bw
        self.degrade = degrade
        self.lossy = lossy
        self.down_windows = down_windows
        self.flap_drops = 0
        self.lossy_drops = 0
        self.delayed = 0

    def on_frame(self, frame: "EthernetFrame", index: int,
                 now: int) -> FrameVerdict:
        for start, stop in self.down_windows:
            if start <= now < stop:
                self.flap_drops += 1
                return FrameVerdict(deliver=False)
        for spec in self.lossy:
            if now < spec.at or (spec.until is not None
                                 and now >= spec.until):
                continue
            if self.rng.random() < spec.drop_rate:
                self.lossy_drops += 1
                return FrameVerdict(deliver=False)
        for spec in self.degrade:
            if now < spec.at or (spec.until is not None
                                 and now >= spec.until):
                continue
            slow = frame.serialization_time(self.link_bw * spec.bw_factor)
            fast = frame.serialization_time(self.link_bw)
            self.delayed += 1
            return FrameVerdict(delay=spec.extra_latency + (slow - fast))
        return DELIVER

    def counters(self) -> dict[str, int]:
        return {
            "gray_flap_drops": self.flap_drops,
            "gray_lossy_drops": self.lossy_drops,
            "gray_delayed": self.delayed,
        }


class ArmedPlan:
    """A plan wired into one live testbed; aggregates injected-fault counts."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.frame_hooks: list[RandomFrameFaults] = []
        self.nic_gates: list[WindowGate] = []
        self.switch_fault: Optional[SwitchEgressFault] = None
        self.ioat_armed = 0
        self.fabric_armed = 0
        self.chunk_hooks: list[ChunkLossFault] = []
        self.gray_hooks: list[GrayFrameFaults] = []
        self.ranks_armed = 0

    def counters(self) -> dict[str, int]:
        c = {
            "frame_drops": 0,
            "frame_dups": 0,
            "frame_corrupts": 0,
            "frame_reorders": 0,
        }
        for hook in self.frame_hooks:
            for key, val in hook.counters().items():
                c[key] += val
        c["nic_window_drops"] = sum(g.hits for g in self.nic_gates)
        c["switch_window_drops"] = (
            self.switch_fault.hits if self.switch_fault is not None else 0
        )
        c["ioat_faults_armed"] = self.ioat_armed
        c["fabric_faults_armed"] = self.fabric_armed
        if self.chunk_hooks:
            c["fabric_chunk_drops"] = sum(h.drops for h in self.chunk_hooks)
        if self.gray_hooks:
            g = {"gray_flap_drops": 0, "gray_lossy_drops": 0,
                 "gray_delayed": 0}
            for hook in self.gray_hooks:
                for key, val in hook.counters().items():
                    g[key] += val
            c.update(g)
        if self.ranks_armed:
            c["rank_faults_armed"] = self.ranks_armed
        return c


def arm_plan(tb: "Testbed", plan: FaultPlan) -> ArmedPlan:
    """Wire ``plan`` into ``tb``; returns the armed view for reporting.

    Works on every testbed shape: back-to-back (``tb.link``), switched
    (``tb.switch`` with per-port links) and fabric worlds (``tb.net``, a
    :class:`~repro.fabric.network.FabricNetwork` whose named links the
    ``fabric`` specs target).  Specs that reference hardware the testbed
    lacks (a switch port on a switchless testbed, a fabric link name the
    topology doesn't have) raise — a plan silently not applying would
    invalidate the whole cell.
    """
    armed = ArmedPlan(plan)
    switch = getattr(tb, "switch", None)

    for i, spec in enumerate(plan.links):
        if getattr(tb, "link", None) is not None:
            links = [(tb.link, "")]
        elif switch is None:
            raise ValueError("link fault on a testbed with no link or switch")
        elif spec.port is not None:
            links = [(switch.links[spec.port], f":p{spec.port}")]
        else:
            # Portless spec on a switched fabric: every cable misbehaves,
            # each with its own RNG stream so per-link schedules stay a
            # pure function of (seed, frame index).
            links = [
                (link, f":p{p}")
                for p, link in enumerate(switch.links) if link is not None
            ]
        for link, tag in links:
            hook = RandomFrameFaults(
                spec, f"{plan.seed}:{plan.name}:link{i}{tag}"
            )
            link.inject_fault(spec.direction_a2b, hook)
            armed.frame_hooks.append(hook)

    for spec in plan.nics:
        gate = WindowGate(spec.windows)
        tb.hosts[spec.node].nic.rx_fault = gate
        armed.nic_gates.append(gate)

    if plan.switches:
        if switch is None:
            raise ValueError("switch fault plan on a switchless testbed")
        switch.fault = SwitchEgressFault(
            {spec.port: WindowGate(spec.windows) for spec in plan.switches}
        )
        armed.switch_fault = switch.fault

    for spec in plan.ioat:
        host = tb.hosts[spec.node]
        engine = host.ioat_engine
        if spec.channel is None:
            # All DMA lanes of the node — the engine's own channels plus
            # any lanes a copy backend (repro.core.backends) brought up.
            channels = list(engine.channels)
            channels += getattr(host, "extra_dma_channels", [])
        else:
            channels = [engine[spec.channel]]
        for ch in channels:
            if spec.action == "fail":
                tb.sim.call_at(spec.at, ch.fail)
            elif spec.action == "recover":
                tb.sim.call_at(spec.at, ch.recover)
            else:
                duration = spec.duration
                tb.sim.call_at(
                    spec.at, lambda c=ch, d=duration: c.stall(d)
                )
            armed.ioat_armed += 1

    if plan.fabric_axes():
        net = getattr(tb, "net", None)
        trunks = getattr(tb, "trunks", None)
        if net is not None:
            _arm_fabric_axes(net, plan, armed)
        elif trunks is not None:
            _arm_hardware_gray(tb, trunks, plan, armed)
        else:
            raise ValueError("fabric fault plan on a non-fabric testbed")

    if plan.ranks:
        kill_rank = getattr(tb, "kill_rank", None)
        if kill_rank is None:
            raise ValueError(
                "rank fault plan requires a fabric world (FabricWorld); "
                "hardware testbeds have no crash-stoppable ranks")
        for spec in plan.ranks:
            if spec.rank >= tb.size:
                raise ValueError(
                    f"rank fault targets rank {spec.rank} in a "
                    f"{tb.size}-rank world")
            kill_rank(spec.rank, at=spec.at)
            armed.ranks_armed += 1
    return armed


def _require_trunks(plan: FaultPlan, trunk_names: set, topology: str) -> None:
    targeted = sorted({s.link for s in plan.fabric_axes()})
    if targeted and not trunk_names:
        raise NoTrunksError(targeted, topology)


def _arm_fabric_axes(net, plan: FaultPlan, armed: ArmedPlan) -> None:
    """Kill/revive plus the gray axes on a chunk-level FabricNetwork."""
    _require_trunks(plan, {l.name for l in net.spec.trunk_links()},
                    net.spec.name)
    for spec in plan.fabric:
        net.spec.link_named(spec.link)  # raises on an unknown name
        if spec.action == "kill":
            net.kill_link(spec.link, at=spec.at)
        else:
            net.revive_link(spec.link, at=spec.at)
        armed.fabric_armed += 1
    for spec in plan.degrade:
        net.degrade_link(spec.link, spec.bw_factor, spec.extra_latency,
                         at=spec.at, until=spec.until)
        armed.fabric_armed += 1
    for spec in plan.flap:
        net.spec.link_named(spec.link)
        for start, end in flap_windows(spec, plan.seed):
            net.kill_link(spec.link, at=start)
            net.revive_link(spec.link, at=end)
        armed.fabric_armed += 1
    for spec in plan.lossy:
        for port in net.ports_of_link(spec.link):
            hook = ChunkLossFault(
                spec, f"{plan.seed}:{plan.name}:lossy:{port.name}")
            port.fault = hook
            armed.chunk_hooks.append(hook)
        armed.fabric_armed += 1
    gray = plan.degrade + plan.flap + plan.lossy
    if gray:
        _watch_gray_links(net, plan, gray)


def _watch_gray_links(net, plan: FaultPlan, gray) -> None:
    """Attach (if absent) and point the resilience layer at the gray links.

    The watch horizon covers every armed window plus one hold-down, so
    the hysteresis sees the whole episode and the sampling daemons still
    self-terminate once the network quiesces.
    """
    from repro.fabric.resilience import FabricResilience

    res = net.resilience
    if res is None:
        res = FabricResilience(net, seed=plan.seed)
    horizon = 0
    for spec in gray:
        if isinstance(spec, FabricFlapSpec):
            end = spec.at + spec.cycles * spec.period
        else:
            end = spec.until if spec.until is not None else spec.at
        horizon = max(horizon, end)
    res.watch(sorted({s.link for s in gray}),
              horizon + res.params.hold_down)


def _arm_hardware_gray(tb, trunks: dict, plan: FaultPlan,
                       armed: ArmedPlan) -> None:
    """Gray axes on full-hardware EthernetSwitch trunks (frame hooks)."""
    if plan.fabric:
        raise ValueError(
            "fabric kill/revive requires a chunk-level fabric world; "
            "full-hardware testbeds only support the gray axes")
    _require_trunks(plan, set(trunks), getattr(tb, "topology", None)
                    and tb.topology.name or "")
    by_link: dict[str, dict] = {}
    for spec in plan.degrade + plan.flap + plan.lossy:
        if spec.link not in trunks:
            raise KeyError(f"no trunk link {spec.link!r} in this testbed")
        axes = by_link.setdefault(
            spec.link, {"degrade": [], "lossy": [], "down": []})
        if isinstance(spec, FabricDegradeSpec):
            axes["degrade"].append(spec)
        elif isinstance(spec, FabricLossySpec):
            axes["lossy"].append(spec)
        else:
            axes["down"].extend(flap_windows(spec, plan.seed))
        armed.fabric_armed += 1
    for name in sorted(by_link):
        link = trunks[name]
        axes = by_link[name]
        for a2b in (True, False):
            hook = GrayFrameFaults(
                f"{plan.seed}:{plan.name}:gray:{name}:{'ab' if a2b else 'ba'}",
                link.bw,
                degrade=tuple(axes["degrade"]),
                lossy=tuple(axes["lossy"]),
                down_windows=tuple(sorted(axes["down"])),
            )
            link.inject_fault(a2b, hook)
            armed.gray_hooks.append(hook)
