"""Driver statistics collection (the ``omx_counters`` tool analogue).

The real Open-MX ships a counters tool that dumps per-driver event counts
for diagnosing deployments.  This module aggregates the same kind of
counters from a simulated stack: wire traffic, eager/pull activity, offload
decisions, reliability behaviour, registration-cache efficiency and buffer
accounting — everything the tests and benchmarks reason about, in one
table.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.reporting.table import Table

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.driver import OmxStack


def collect_counters(stack: "OmxStack") -> dict[str, int]:
    """Snapshot all counters of one host's Open-MX instance."""
    driver = stack.driver
    host = driver.host
    c: dict[str, int] = {}

    # event loop (simulator-side, but reported with the stack so the
    # self-benchmark can derive events/second per scenario)
    c["sim_events_processed"] = host.sim.events_processed
    c["sim_wall_ms"] = int(host.sim.wall_seconds * 1000)

    # NIC / wire
    c["nic_tx_frames"] = host.nic.tx_frames
    c["nic_rx_frames"] = host.nic.rx_frames
    c["nic_rx_dropped"] = host.nic.rx_dropped
    c["nic_rx_crc_errors"] = host.nic.rx_crc_errors
    c["softirq_packets"] = host.softirq.packets_handled
    c["softirq_batches"] = host.softirq.batches

    # protocol
    c["eager_rx"] = driver.eager_rx
    c["pull_replies_rx"] = driver.pull_replies_rx
    c["eager_ring_drops"] = driver.ring_drops
    c["active_pulls"] = len(driver._pulls)
    c["active_large_sends"] = len(driver._large_sends)

    # reliability
    c["retransmissions"] = sum(
        s.retransmissions for s in driver._tx_sessions.values()
    )
    c["duplicates_filtered"] = sum(
        s.duplicates for s in driver._rx_sessions.values()
    )
    c["reacks"] = sum(s.reacks for s in driver._rx_sessions.values())
    c["dead_letters"] = driver.dead_letters
    c["pull_retransmits"] = sum(h.retransmits for h in driver._pulls.values())
    c["pull_aborts"] = driver.pull_aborts
    c["requests_failed"] = driver.requests_failed

    # offload (§III)
    c["offload_frags_dma"] = driver.offload.frags_offloaded
    c["offload_frags_memcpy"] = driver.offload.frags_memcpy
    c["offload_cleanups"] = driver.offload.cleanups
    c["offload_skbuffs_reaped"] = driver.offload.skbuffs_reaped
    c["offload_starvation_fallbacks"] = driver.offload.starvation_fallbacks
    c["offload_fallback_copies"] = driver.offload.fallback_copies

    # engines
    c["ioat_bytes_copied"] = host.ioat_engine.bytes_copied
    c["ioat_descriptors"] = host.ioat_engine.descriptors_completed
    c["ioat_descriptors_failed"] = host.ioat_engine.descriptors_failed
    c["cpu_bytes_copied"] = host.copier.bytes_copied

    # registration
    c["regcache_hits"] = host.regcache.hits
    c["regcache_misses"] = host.regcache.misses
    c["pin_calls"] = host.pinner.pin_calls
    c["pages_pinned"] = host.pinner.pages_pinned

    # shared memory
    c["shm_eager"] = driver.shm.local_eager
    c["shm_large"] = driver.shm.local_large
    c["shm_ioat_copies"] = driver.shm.ioat_copies

    # buffers
    c["skbuffs_outstanding"] = host.skb_pool.outstanding
    c["skbuffs_peak"] = host.skb_pool.peak_outstanding

    # kernel-matching extension
    if driver.kmatch is not None:
        c["kmatch_matches"] = driver.kmatch.kernel_matches
        c["kmatch_fallbacks"] = driver.kmatch.fallbacks
        c["kmatch_frags_offloaded"] = driver.kmatch.frags_offloaded
    return c


def render_counters(stack: "OmxStack", title: str = "") -> str:
    """Human-readable counter dump."""
    counters = collect_counters(stack)
    t = Table(title or f"omx_counters: {stack.host.name}", ["counter", "value"])
    for name in sorted(counters):
        t.add_row(name, counters[name])
    return t.render()
