"""Fault-injection campaign layer: determinism, degrade paths, reporting.

All tests carry ``@pytest.mark.faults`` (deselect with ``-m 'not faults'``).
The reduced matrix here is the tier-1 campaign: small enough for seconds of
wall clock, wide enough to cross the link/NIC/switch/I-OAT fault layers
with both eager and rendezvous transfers."""

import json

import pytest

from repro.faults.campaign import (
    CampaignSpec,
    quick_campaign_spec,
    run_campaign,
    run_cell,
    write_report,
)
from repro.faults.plan import (
    FaultPlan,
    IoatFaultSpec,
    LinkFaultSpec,
    SwitchFaultSpec,
    standard_plans,
)
from repro.reporting.sweeps import SweepExecutor
from repro.units import KiB, ms, us

pytestmark = pytest.mark.faults


def _tier1_spec(seed="tier1"):
    plans = {p.name: p for p in standard_plans(seed)}
    return CampaignSpec(
        workloads=("stream", "pingpong"),
        # 16 KiB exercises multi-fragment eager, 256 KiB the pull protocol
        # — and gives the 5% loss plans enough frames to actually fire.
        sizes=(16 * KiB, 256 * KiB),
        plans=(plans["clean"], plans["lossy-data"], plans["lossy-acks"],
               plans["ioat-fail"]),
        iters=2,
        seed=seed,
    )


class TestCampaignDeterminism:
    def test_reports_bit_identical_run_to_run(self):
        """The same seeded matrix, executed twice without the cache,
        produces byte-identical reports — the property that makes a
        campaign failure reproducible from its report alone."""
        spec = _tier1_spec()
        r1 = run_campaign(spec, executor=SweepExecutor(cache=False))
        r2 = run_campaign(spec, executor=SweepExecutor(cache=False))
        assert json.dumps(r1, sort_keys=True) == json.dumps(r2, sort_keys=True)

    def test_tier1_matrix_no_hangs_no_leaks(self):
        report = run_campaign(_tier1_spec(), executor=SweepExecutor(cache=False))
        assert report["totals"]["hung"] == 0
        assert report["sanitizer_dirty_cells"] == []
        # Every message reached a terminal state, and the lossy plans
        # actually injected something (a plan that never fires proves
        # nothing about the retransmit path).
        total = report["totals"]["completed"] + report["totals"]["failed"]
        assert total == sum(c["messages"] for c in report["cells"])
        assert report["injected"]["frame_drops"] > 0
        assert report["retransmissions"] > 0

    def test_switch_plans_skipped_off_incast(self):
        egress = FaultPlan(
            name="egress", seed="s",
            switches=(SwitchFaultSpec(port=0, windows=((us(10), us(20)),)),),
        )
        spec = CampaignSpec(workloads=("stream", "incast"),
                            sizes=(1 * KiB,), plans=(egress,), seed="s")
        cells, skipped = spec.cells()
        assert [(w, p.name) for (w, _s, p) in cells] == [("incast", "egress")]
        assert skipped == ["stream/1024/egress"]

    def test_quick_spec_covers_every_fault_layer(self):
        spec = quick_campaign_spec()
        layers = set()
        for plan in spec.plans:
            if plan.links:
                layers.add("link")
            if plan.ioat:
                layers.add("ioat")
            if plan.switches:
                layers.add("switch")
        assert {"link", "ioat", "switch"} <= layers


class TestIoatDegrade:
    def test_channel_failure_mid_pull_falls_back_to_memcpy(self):
        """Stall the receiver's channels so copies queue up, then hard-fail
        them mid-pull: every queued copy must be replayed through plain
        memcpy and the transfers still complete."""
        plan = FaultPlan(
            name="stall-then-fail", seed="degrade",
            ioat=(
                IoatFaultSpec(node=1, action="stall", at=us(1),
                              duration=ms(30)),
                IoatFaultSpec(node=1, action="fail", at=ms(2)),
            ),
        )
        cell = run_cell("stream", 256 * KiB, plan, iters=2)
        assert cell["outcomes"] == {"completed": 2, "failed": 0, "hung": 0}
        assert cell["counters"]["offload_fallback_copies"] > 0
        assert cell["counters"]["ioat_descriptors_failed"] > 0
        assert cell["sanitizer"] == []

    def test_clean_ioat_cell_uses_no_fallback(self):
        clean = standard_plans("degrade")[0]
        cell = run_cell("stream", 256 * KiB, clean, iters=2)
        assert cell["outcomes"]["completed"] == 2
        assert cell["counters"]["offload_fallback_copies"] == 0


class TestSwitchAndNicFaults:
    def test_incast_egress_burst_drops_then_recovers(self):
        """An egress-queue overflow window toward the incast sink drops
        real frames; retransmission must deliver every message anyway."""
        plan = FaultPlan(
            name="egress-burst", seed="sw",
            switches=(SwitchFaultSpec(port=0,
                                      windows=((us(20), us(400)),)),),
        )
        cell = run_cell("incast", 16 * KiB, plan, iters=2)
        assert cell["injected"]["switch_window_drops"] > 0
        assert cell["counters"]["switch_dropped"] > 0
        assert cell["outcomes"]["hung"] == 0
        assert cell["outcomes"]["completed"] == cell["messages"]
        assert cell["sanitizer"] == []

    def test_rx_ring_stall_recovers(self):
        plans = {p.name: p for p in standard_plans("nic")}
        cell = run_cell("pingpong", 16 * KiB, plans["rx-ring-stall"], iters=2)
        assert cell["injected"]["nic_window_drops"] > 0
        assert cell["outcomes"]["hung"] == 0
        assert cell["outcomes"]["completed"] == cell["messages"]
        assert cell["sanitizer"] == []


class TestReporting:
    def test_write_report_roundtrip_and_stable_bytes(self, tmp_path):
        spec = CampaignSpec(workloads=("stream",), sizes=(1 * KiB,),
                            plans=(standard_plans("r")[0],), iters=1,
                            seed="r")
        report = run_campaign(spec, executor=SweepExecutor(cache=False))
        p1 = write_report(report, tmp_path / "a.json")
        p2 = write_report(report, tmp_path / "b.json")
        assert json.loads(p1.read_text()) == report
        assert p1.read_bytes() == p2.read_bytes()

    def test_plan_dict_roundtrip(self):
        for plan in standard_plans("rt"):
            assert FaultPlan.from_dict(plan.to_dict()) == plan
        egress = FaultPlan(
            name="e", seed="rt",
            links=(LinkFaultSpec(drop_rate=0.5, port=2),),
            switches=(SwitchFaultSpec(port=1, windows=((1, 2), (3, 4))),),
        )
        assert FaultPlan.from_dict(egress.to_dict()) == egress
