"""Topology summary CLI: ``python -m repro.fabric``.

Prints one row per generated topology — host/switch/link counts, the
worst-case oversubscription ratio, and the switch-graph diameter — so a
fabric sweep's grid can be sanity-checked before spending simulator time
on it.

Usage::

    python -m repro.fabric                       # the standard gallery
    python -m repro.fabric --kind fat_tree3 --hosts 128
    python -m repro.fabric --kind fat_tree2 --hosts 64 --oversub 4
"""

from __future__ import annotations

from argparse import ArgumentParser
from typing import Optional, Sequence

from repro.fabric.sweep import TOPOLOGIES, make_topology
from repro.reporting.table import Table

#: the default gallery: (kind, hosts, oversubscription) rows covering
#: every generator at a representative scale
GALLERY = (
    ("pair", 2, 1.0),
    ("star", 8, 1.0),
    ("fat_tree2", 32, 1.0),
    ("fat_tree2", 64, 4.0),
    ("fat_tree3", 128, 1.0),
    ("dragonfly", 32, 1.0),
)


def summary_table(rows) -> Table:
    table = Table(
        "fabric topologies",
        ["kind", "hosts", "switches", "links", "trunks",
         "oversub", "diameter"],
    )
    for kind, hosts, oversub in rows:
        spec = make_topology(kind, hosts, oversubscription=oversub)
        spec.validate()
        table.add_row(
            kind,
            len(spec.hosts),
            len(spec.switches),
            len(spec.links),
            len(spec.trunk_links()),
            f"{spec.oversubscription():.2f}",
            spec.diameter_hops(),
        )
    return table


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = ArgumentParser(
        prog="python -m repro.fabric",
        description="summarize generated fabric topologies",
    )
    parser.add_argument(
        "--kind", choices=TOPOLOGIES,
        help="summarize one topology kind (default: the full gallery)",
    )
    parser.add_argument(
        "--hosts", type=int, default=32,
        help="host count for --kind (default 32)",
    )
    parser.add_argument(
        "--oversub", type=float, default=1.0,
        help="requested oversubscription for --kind (default 1.0)",
    )
    args = parser.parse_args(argv)

    rows = (((args.kind, args.hosts, args.oversub),)
            if args.kind else GALLERY)
    print(summary_table(rows).render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
