"""Pluggable copy-engine backends behind the offload manager (DESIGN.md §15).

Importing this package registers the built-in backends; select one with
``OmxConfig.copy_backend`` and the ``engine_shootout`` experiment runs them
all through the same fig-8/9 sweeps.
"""

from repro.core.backends.base import (
    BACKENDS,
    CopyBackend,
    LaneBackend,
    LaneGroup,
    LaneTicket,
    backend_names,
    create_backend,
    register_backend,
)
from repro.core.backends.flextoe import FlexToeBackend
from repro.core.backends.ioat import IoatBackend
from repro.core.backends.memcpy import MemcpyBackend
from repro.core.backends.sgdma import SgdmaBackend
from repro.core.backends.spin import SpinBackend

__all__ = [
    "BACKENDS",
    "CopyBackend",
    "LaneBackend",
    "LaneGroup",
    "LaneTicket",
    "backend_names",
    "create_backend",
    "register_backend",
    "FlexToeBackend",
    "IoatBackend",
    "MemcpyBackend",
    "SgdmaBackend",
    "SpinBackend",
]
