"""Page math and page-aligned chunking.

The I/OAT hardware manipulates DMA (physical) addresses, so a copy whose
source or destination crosses a page boundary must be split into page-aligned
chunks — each chunk becomes one DMA descriptor (§IV-A, Fig. 7).  The same
splitting applies to pinning and to skbuff page fragments.
"""

from __future__ import annotations

from typing import Iterator

from repro.units import PAGE_SIZE


def page_of(addr: int) -> int:
    """Page frame number containing byte address ``addr``."""
    return addr // PAGE_SIZE


def page_offset(addr: int) -> int:
    """Offset of ``addr`` within its page."""
    return addr % PAGE_SIZE


def pages_spanned(addr: int, length: int) -> int:
    """Number of distinct pages touched by ``[addr, addr+length)``."""
    if length <= 0:
        return 0
    first = page_of(addr)
    last = page_of(addr + length - 1)
    return last - first + 1


def page_range(addr: int, length: int) -> range:
    """Iterable of page frame numbers spanned by the byte range."""
    if length <= 0:
        return range(0)
    return range(page_of(addr), page_of(addr + length - 1) + 1)


def iter_chunks(offset: int, length: int, chunk: int) -> Iterator[tuple[int, int]]:
    """Split ``[offset, offset+length)`` into fixed-size chunks.

    Yields ``(chunk_offset, chunk_len)`` pairs.  The final chunk may be
    short.  This is the splitting used by the Fig. 7 micro-benchmark, which
    streams a copy in fixed 256 B / 1 kB / 4 kB pieces.
    """
    if chunk <= 0:
        raise ValueError("chunk must be positive")
    pos = offset
    end = offset + length
    while pos < end:
        n = min(chunk, end - pos)
        yield pos, n
        pos += n


def page_aligned_chunks(
    src_addr: int, dst_addr: int, length: int
) -> Iterator[tuple[int, int, int]]:
    """Split a copy into chunks that cross no page boundary on either side.

    Yields ``(src_off, dst_off, chunk_len)`` where the offsets are relative
    to the start of the copy.  Each yielded chunk corresponds to one DMA
    descriptor: its source bytes live in a single source page and its
    destination bytes in a single destination page.

    In the common case of mutually page-aligned buffers this yields whole
    4 kB pages ("most Open-MX copies should consist of one or two chunks per
    page", §IV-A); misaligned buffers yield up to two chunks per page.
    """
    pos = 0
    while pos < length:
        src_room = PAGE_SIZE - page_offset(src_addr + pos)
        dst_room = PAGE_SIZE - page_offset(dst_addr + pos)
        n = min(src_room, dst_room, length - pos)
        yield pos, pos, n
        pos += n


def count_page_aligned_chunks(src_addr: int, dst_addr: int, length: int) -> int:
    """Number of DMA descriptors a copy would need (see above).

    Closed form — each chunk boundary is a position where the source or the
    destination crosses a page edge.  The source cuts fall at positions
    ``pos ≡ -src_off (mod PAGE_SIZE)`` and the destination cuts at
    ``pos ≡ -dst_off``; the two sets coincide when the offsets are congruent
    and are disjoint otherwise, so the chunk count is ``cuts + 1`` without
    walking the range.  This is the per-fragment hot path of the offload
    planner (one call per pull chunk), hence no generator.
    """
    if length <= 0:
        return 0
    src_off = src_addr % PAGE_SIZE
    dst_off = dst_addr % PAGE_SIZE
    src_cuts = (src_off + length - 1) // PAGE_SIZE
    if src_off == dst_off:
        return src_cuts + 1
    dst_cuts = (dst_off + length - 1) // PAGE_SIZE
    return src_cuts + dst_cuts + 1
