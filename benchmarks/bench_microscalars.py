"""§IV-A scalars — submission cost and offload break-even sizes."""

import pytest

from conftest import show
from repro.reporting.experiments import micro


@pytest.mark.benchmark(group="micro")
def test_micro_scalars(once):
    table = once(micro)
    show(table)
    rows = {r[0]: r for r in table.rows}
    # paper: ~350 ns submission
    assert rows["I/OAT submission cost (ns)"][2] == "350"
    # paper: ~600 B uncached break-even (we accept a band)
    assert 400 <= int(rows["break-even size, uncached (B)"][2]) <= 900
    # paper: ~2 kB cached break-even
    assert 1200 <= int(rows["break-even size, cached (B)"][2]) <= 4096
    # engine/CPU asymptotes at 4 kB chunks
    assert 2.1 <= float(rows["I/OAT rate @4kB chunks (GiB/s)"][2]) <= 2.7
    assert 1.3 <= float(rows["memcpy @4kB chunks (GiB/s)"][2]) <= 1.7
