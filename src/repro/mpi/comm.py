"""Communicators and rank contexts.

A :class:`Rank` bundles what an MPI process owns: an MX endpoint (of either
stack), the core it is pinned to, and its address space.  ``create_world``
places ranks on testbed nodes block-wise (ranks 0..ppn-1 on node 0, etc.),
the usual MPICH host-file layout the paper's "2 processes per node" runs
use.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator, Optional

from repro.mpi.p2p import P2P
from repro.mx.wire import EndpointAddr

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.testbed import Testbed
    from repro.memory.buffers import AddressSpace
    from repro.simkernel.cpu import Core


class Rank:
    """One MPI process."""

    def __init__(self, comm: "Communicator", rank: int, endpoint, core: "Core",
                 space: "AddressSpace", node: int):
        self.comm = comm
        self.rank = rank
        self.endpoint = endpoint
        self.core = core
        self.space = space
        self.node = node
        self._p2p = P2P(self)

    # -- point-to-point (delegated) ------------------------------------------

    def isend(self, dest: int, region, offset=0, length=None, tag: int = 0):
        return self._p2p.isend(dest, region, offset, length, tag)

    def irecv(self, source: int, region, offset=0, length=None, tag: int = 0):
        return self._p2p.irecv(source, region, offset, length, tag)

    def send(self, dest: int, region, offset=0, length=None, tag: int = 0):
        return self._p2p.send(dest, region, offset, length, tag)

    def recv(self, source: int, region, offset=0, length=None, tag: int = 0):
        return self._p2p.recv(source, region, offset, length, tag)

    def wait(self, req):
        return self._p2p.wait(req)

    def sendrecv(self, dest: int, sregion, source: int, rregion,
                 length=None, stag: int = 0, rtag: int = 0):
        return self._p2p.sendrecv(dest, sregion, source, rregion, length, stag, rtag)

    # -- collectives (generator methods; see repro.mpi.collectives) -----------

    def barrier(self):
        from repro.mpi import collectives

        return collectives.barrier(self)

    def bcast(self, region, root: int = 0, length=None):
        from repro.mpi import collectives

        return collectives.bcast(self, region, root, length)

    def reduce(self, sendbuf, recvbuf, root: int = 0, length=None):
        from repro.mpi import collectives

        return collectives.reduce(self, sendbuf, recvbuf, root, length)

    def allreduce(self, sendbuf, recvbuf, length=None, algo: str = "auto"):
        from repro.mpi import collectives

        return collectives.allreduce(self, sendbuf, recvbuf, length, algo=algo)

    def reduce_scatter(self, sendbuf, recvbuf, block_length):
        from repro.mpi import collectives

        return collectives.reduce_scatter(self, sendbuf, recvbuf, block_length)

    def allgather(self, sendbuf, recvbuf, block_length):
        from repro.mpi import collectives

        return collectives.allgather(self, sendbuf, recvbuf, block_length)

    def allgatherv(self, sendbuf, recvbuf, block_lengths):
        from repro.mpi import collectives

        return collectives.allgatherv(self, sendbuf, recvbuf, block_lengths)

    def alltoall(self, sendbuf, recvbuf, block_length):
        from repro.mpi import collectives

        return collectives.alltoall(self, sendbuf, recvbuf, block_length)

    @property
    def size(self) -> int:
        return self.comm.size

    @property
    def sim(self):
        return self.comm.sim


class Communicator:
    """A fixed group of ranks (MPI_COMM_WORLD)."""

    def __init__(self, sim, ranks: Optional[list[Rank]] = None):
        self.sim = sim
        self.ranks: list[Rank] = ranks if ranks is not None else []

    @property
    def size(self) -> int:
        return len(self.ranks)

    def addr_of(self, rank: int) -> EndpointAddr:
        return self.ranks[rank].endpoint.addr

    def run_spmd(self, body: Callable[[Rank], Generator], max_events: Optional[int] = None):
        """Run ``body(rank)`` on every rank; block until all complete.

        Returns the list of per-rank return values.
        """
        from repro.simkernel.event import AllOf

        procs = [self.sim.process(body(r), name=f"rank{r.rank}") for r in self.ranks]
        all_done = AllOf(self.sim, procs)
        return self.sim.run_until(all_done, max_events=max_events)


def create_world(tb: "Testbed", ppn: int = 1, nodes: Optional[int] = None,
                 cores_per_rank_offset: int = 0,
                 placement: str = "cyclic") -> Communicator:
    """Open one endpoint per rank and pin it to a core.

    ``placement`` follows the usual MPICH machine-file layouts:

    * ``"cyclic"`` (default, round-robin host file): rank *i* lands on node
      ``i % nodes`` — consecutive ranks on *different* nodes, so IMB
      PingPong between ranks 0 and 1 crosses the wire even at 2 ppn,
      matching the paper's runs;
    * ``"block"``: ranks 0..ppn-1 on node 0, etc.

    Local ranks are pinned to distinct user cores (skipping the IRQ core).
    """
    n_nodes = nodes if nodes is not None else len(tb.hosts)
    total = n_nodes * ppn
    comm = Communicator(tb.sim)
    slots_used = [0] * n_nodes
    for rank in range(total):
        if placement == "cyclic":
            node = rank % n_nodes
        elif placement == "block":
            node = rank // ppn
        else:
            raise ValueError(f"unknown placement {placement!r}")
        slot = slots_used[node]
        slots_used[node] += 1
        ep = tb.open_endpoint(node, slot)
        core = tb.hosts[node].user_core(slot + cores_per_rank_offset)
        space = getattr(ep, "space", None)
        if space is None:  # native MX endpoints have no library space
            space = tb.hosts[node].user_space(f"rank{rank}")
            ep.space = space
        comm.ranks.append(Rank(comm, rank, ep, core, space, node))
    return comm
