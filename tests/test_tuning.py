"""Tests for the §VI auto-tuning extension."""

import dataclasses

import pytest

from repro.cluster.host import Host
from repro.core.tuning import autotune_thresholds, benchmark_copy_engines
from repro.params import HostParams, IoatParams, MemcpyParams, Platform, clovertown_5000x
from repro.simkernel import Simulator
from repro.units import GiB, KiB


def make_host(platform=None):
    return Host(Simulator(), platform if platform is not None else clovertown_5000x())


class TestCalibration:
    def test_matches_paper_scalars(self):
        cal = benchmark_copy_engines(make_host())
        assert cal.ioat_submit_ns == 350
        assert 400 < cal.breakeven_uncached < 900  # paper ~600 B
        assert 1200 < cal.breakeven_cached < 4096  # paper ~2 kB
        assert cal.ioat_page_chunk_bw > 2.2 * GiB


class TestAutotune:
    def test_default_platform_reproduces_paper_thresholds(self):
        host = make_host()
        cfg = autotune_thresholds(host, host.platform.omx)
        assert cfg.ioat_min_frag == 4 * KiB or cfg.ioat_min_frag == 2 * KiB \
            or cfg.ioat_min_frag == 1 * KiB
        # message threshold = one pull block = 64 kB
        assert cfg.ioat_min_msg == 64 * KiB

    def test_faster_cpu_raises_fragment_threshold(self):
        fast_cpu = dataclasses.replace(
            HostParams(), memcpy=MemcpyParams(uncached_bw=6.0 * GiB)
        )
        host = make_host(Platform(host=fast_cpu))
        base = autotune_thresholds(make_host(), host.platform.omx)
        tuned = autotune_thresholds(host, host.platform.omx)
        assert tuned.ioat_min_frag >= base.ioat_min_frag

    def test_slow_engine_disables_offload(self):
        slow_engine = dataclasses.replace(
            HostParams(), ioat=IoatParams(engine_bw=0.5 * GiB)
        )
        host = make_host(Platform(host=slow_engine))
        tuned = autotune_thresholds(host, host.platform.omx)
        # thresholds pushed out of reach: offload effectively off
        assert tuned.ioat_min_msg > 1 << 40

    def test_tuned_config_validates(self):
        host = make_host()
        autotune_thresholds(host, host.platform.omx).validate()
