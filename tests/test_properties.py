"""Property-based tests (hypothesis) on protocol invariants."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import build_testbed
from repro.core.pull import PullHandle
from repro.core.reliability import RxSession
from repro.core.types import EagerRing
from repro.core.offload import MessageOffloadState
from repro.memory.buffers import AddressSpace
from repro.mx.wire import EndpointAddr, MxPacket, PktType
from repro.simkernel import Simulator
from repro.units import KiB

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _transfer(size: int, src_off: int, dst_off: int, drops=frozenset()):
    """One transfer through the full stack; returns (sent, received)."""
    from repro.ethernet.link import LossInjector

    tb = build_testbed(ioat_enabled=True)
    if drops:
        tb.link.inject_loss(True, LossInjector(drop_indices=set(drops)))
    ep0, ep1 = tb.open_endpoint(0, 0), tb.open_endpoint(1, 0)
    c0, c1 = tb.user_core(0), tb.user_core(1)
    sbuf = ep0.space.alloc(src_off + max(size, 1))
    rbuf = ep1.space.alloc(dst_off + max(size, 1), fill=0)
    sbuf.fill_pattern(size & 0xFF)
    done = tb.sim.event()

    def sender():
        req = yield from ep0.isend(c0, ep1.addr, 0x5, sbuf, src_off, size)
        yield from ep0.wait(c0, req)

    def receiver():
        req = yield from ep1.irecv(c1, 0x5, ~0, rbuf, dst_off, size)
        yield from ep1.wait(c1, req)
        done.succeed()

    tb.sim.process(sender())
    tb.sim.process(receiver())
    tb.sim.run_until(done, max_events=40_000_000)
    return bytes(sbuf.read(src_off, size)), bytes(rbuf.read(dst_off, size))


class TestEndToEndIntegrity:
    @SLOW
    @given(
        size=st.integers(min_value=1, max_value=300_000),
        src_off=st.integers(min_value=0, max_value=4097),
        dst_off=st.integers(min_value=0, max_value=4097),
    )
    def test_any_size_and_offset_delivered(self, size, src_off, dst_off):
        """Arbitrary sizes spanning all message classes, arbitrary buffer
        alignment: the receiver always observes exactly the sent bytes."""
        sent, got = _transfer(size, src_off, dst_off)
        assert got == sent

    @SLOW
    @given(
        size=st.integers(min_value=70_000, max_value=400_000),
        drops=st.sets(st.integers(min_value=0, max_value=30), max_size=4),
    )
    def test_large_transfer_survives_any_loss_pattern(self, size, drops):
        """Dropping any small subset of the first frames (RNDV, pull
        replies...) never corrupts or loses a large message."""
        sent, got = _transfer(size, 0, 0, drops=frozenset(drops))
        assert got == sent


class TestEagerRingInvariant:
    @given(ops=st.lists(st.integers(min_value=0, max_value=1), max_size=200))
    def test_free_plus_busy_constant(self, ops):
        ring = EagerRing(AddressSpace(), nslots=8, slot_size=64)
        held = []
        for op in ops:
            if op == 0:
                slot = ring.acquire_slot()
                if slot is not None:
                    held.append(slot)
            elif held:
                ring.release_slot(held.pop())
            assert ring.free_slots + len(held) == 8
        # All slots distinct while held.
        assert len(set(held)) == len(held)

    def test_double_release_rejected(self):
        ring = EagerRing(AddressSpace(), nslots=2, slot_size=64)
        s = ring.acquire_slot()
        ring.release_slot(s)
        with pytest.raises(ValueError):
            ring.release_slot(s)


class TestPullGeometry:
    @settings(deadline=None)
    @given(
        total=st.integers(min_value=1, max_value=5_000_000),
        block=st.integers(min_value=1024, max_value=200_000),
    )
    def test_blocks_partition_message(self, total, block):
        handle = PullHandle(
            handle_id=0, req=None, peer=EndpointAddr(1, 0), msg_id=0,
            total=total, block_bytes=block,
            offload=None, pinned=None,
        )
        assert sum(b.length for b in handle.blocks) == total
        offsets = [b.offset for b in handle.blocks]
        assert offsets == sorted(offsets)
        for b in handle.blocks:
            assert 0 < b.length <= block
        # block_of maps every byte-offset to the right block
        for b in handle.blocks:
            assert handle.block_of(b.offset) is b
            assert handle.block_of(b.offset + b.length - 1) is b

    @settings(deadline=None)
    @given(
        frag=st.integers(min_value=256, max_value=9000),
        total=st.integers(min_value=1, max_value=500_000),
    )
    def test_duplicate_fragments_counted_once(self, frag, total):
        handle = PullHandle(
            handle_id=0, req=None, peer=EndpointAddr(1, 0), msg_id=0,
            total=total, block_bytes=64 * KiB, offload=None, pinned=None,
        )
        pos = 0
        while pos < total:
            n = min(frag, total - pos)
            assert handle.note_fragment(pos, n, now=1)
            assert not handle.note_fragment(pos, n, now=2)  # duplicate
            pos += n
        assert handle.complete
        assert handle.received == total


class TestRxSessionProperty:
    @given(
        order=st.permutations(list(range(12))),
        dup=st.lists(st.integers(min_value=0, max_value=11), max_size=6),
    )
    def test_any_arrival_order_delivers_each_once(self, order, dup):
        sim = Simulator()
        rx = RxSession(sim, EndpointAddr(1, 0), EndpointAddr(2, 0),
                       lambda o, p, c: None)
        delivered = []
        for seq in list(order) + list(dup):
            pkt = MxPacket(ptype=PktType.SMALL, src=EndpointAddr(2, 0),
                           dst=EndpointAddr(1, 0))
            pkt.seqnum = seq
            if rx.accept(pkt):
                delivered.append(seq)
        assert sorted(delivered) == list(range(12))
        assert rx.cumulative == 11
