"""Unit tests for the copy-offload manager (§III policies and bookkeeping)."""

import pytest

from repro.cluster.host import Host
from repro.ethernet.skbuff import SkbuffPool
from repro.memory.buffers import AddressSpace
from repro.params import clovertown_5000x
from repro.simkernel import Simulator
from repro.core.offload import OffloadManager
from repro.units import KiB, PAGE_SIZE


def make_env(**omx):
    omx.setdefault("ioat_enabled", True)
    plat = clovertown_5000x(**omx)
    sim = Simulator()
    host = Host(sim, plat)
    mgr = OffloadManager(host, plat.omx)
    return sim, host, mgr, plat.omx


def fill_skb(host, nbytes):
    skb = host.skb_pool.alloc_rx()
    skb.data_len = nbytes
    return skb


class TestPolicy:
    def test_offload_for_large_message_large_frag(self):
        _, _, mgr, cfg = make_env()
        state = mgr.new_message_state()
        assert mgr.should_offload(state, 128 * KiB, 8 * KiB)

    def test_no_offload_below_message_threshold(self):
        _, _, mgr, cfg = make_env()
        state = mgr.new_message_state()
        assert not mgr.should_offload(state, cfg.ioat_min_msg - 1, 8 * KiB)

    def test_no_offload_below_fragment_threshold(self):
        _, _, mgr, cfg = make_env()
        state = mgr.new_message_state()
        assert not mgr.should_offload(state, 1 << 20, cfg.ioat_min_frag - 1)

    def test_no_offload_when_disabled(self):
        _, _, mgr, _ = make_env(ioat_enabled=False)
        state = mgr.new_message_state()
        assert not mgr.should_offload(state, 1 << 20, 8 * KiB)

    def test_starvation_cap_forces_memcpy(self):
        _, _, mgr, cfg = make_env(max_pending_skbuffs=2)
        state = mgr.new_message_state()
        state.pending = [object(), object()]  # fake two pending entries
        assert not mgr.should_offload(state, 1 << 20, 8 * KiB)
        assert mgr.starvation_fallbacks == 1

    def test_channels_assigned_round_robin_per_message(self):
        _, _, mgr, _ = make_env()
        idx = [mgr.new_message_state().channel.index for _ in range(5)]
        assert idx == [0, 1, 2, 3, 0]


class TestBreakerReroute:
    """Channel assignment under tripped breakers (the reroute-herding bug).

    The broken scan restarted from ``channels[0]`` whenever the round-robin
    pick was refused, so every rerouted message landed on the first healthy
    channel.  The fix keeps drawing from the round-robin cursor, spreading
    rerouted messages over all healthy channels.
    """

    @staticmethod
    def _trip(host, index):
        from repro.health import BreakerState

        host.health.breakers[index].state = BreakerState.OPEN

    def test_reroute_spreads_over_healthy_channels(self):
        _, host, mgr, _ = make_env()
        self._trip(host, 0)
        self._trip(host, 1)
        idx = [mgr.new_message_state().channel.index for _ in range(4)]
        # Herding would give [2, 2, 2, 2]; the continued scan alternates.
        assert idx == [2, 3, 2, 3]
        assert mgr.breaker_reroutes == 2  # draws landing on 0/1 rerouted

    def test_single_healthy_channel_still_found(self):
        _, host, mgr, _ = make_env()
        for i in (0, 1, 3):
            self._trip(host, i)
        idx = [mgr.new_message_state().channel.index for _ in range(3)]
        assert idx == [2, 2, 2]

    def test_all_breakers_open_degrades_to_memcpy(self):
        _, host, mgr, _ = make_env()
        for i in range(4):
            self._trip(host, i)
        state = mgr.new_message_state()
        assert state.memcpy_only
        assert mgr.breaker_exhausted == 1
        assert not mgr.should_offload(state, 1 << 20, 8 * KiB)
        assert mgr.breaker_shortcircuits == 1

    def test_memcpy_only_message_keeps_probe_demand_flowing(self):
        _, host, mgr, _ = make_env()
        for i in range(4):
            self._trip(host, i)
        state = mgr.new_message_state()
        armed_before = sum(
            b._probe_armed for b in host.health.breakers  # noqa: SLF001
        )
        mgr.should_offload(state, 1 << 20, 8 * KiB)
        armed_after = sum(
            b._probe_armed for b in host.health.breakers  # noqa: SLF001
        )
        # The refusal must re-arm at least the assigned channel's probe.
        assert armed_after >= armed_before
        assert host.health.breakers[state.channel.index]._probe_armed  # noqa: SLF001


class TestExecution:
    def _copy(self, sim, host, mgr, state, skb, dst, off, n, msg_len):
        core = host.irq_core
        out = {}

        def work():
            yield core.res.request()
            out["offloaded"] = yield from mgr.copy_fragment(
                core, state, skb, 0, dst, off, n, msg_len
            )
            core.res.release()

        sim.run_until(sim.process(work()))
        return out["offloaded"]

    def test_offloaded_fragment_keeps_skbuff(self):
        sim, host, mgr, _ = make_env()
        state = mgr.new_message_state()
        space = AddressSpace()
        dst = space.alloc(128 * KiB)
        skb = fill_skb(host, 8 * KiB)
        offloaded = self._copy(sim, host, mgr, state, skb, dst, 0, 8 * KiB, 128 * KiB)
        assert offloaded
        assert state.pending_count == 1
        assert not skb.freed

    def test_memcpy_fragment_path(self):
        sim, host, mgr, _ = make_env(ioat_enabled=False)
        state = mgr.new_message_state()
        space = AddressSpace()
        dst = space.alloc(128 * KiB)
        skb = fill_skb(host, 8 * KiB)
        skb.head.fill_pattern(7)
        offloaded = self._copy(sim, host, mgr, state, skb, dst, 0, 8 * KiB, 128 * KiB)
        assert not offloaded
        assert bytes(dst.read(0, 8 * KiB)) == bytes(skb.head.read(0, 8 * KiB))
        assert mgr.frags_memcpy == 1

    def test_cleanup_releases_completed_skbuffs(self):
        sim, host, mgr, _ = make_env()
        state = mgr.new_message_state()
        space = AddressSpace()
        dst = space.alloc(256 * KiB)
        skbs = []
        core = host.irq_core

        def work():
            yield core.res.request()
            for i in range(4):
                skb = fill_skb(host, 8 * KiB)
                skbs.append(skb)
                yield from mgr.copy_fragment(
                    core, state, skb, 0, dst, i * 8 * KiB, 8 * KiB, 256 * KiB
                )
            core.res.release()
            # let the engine drain fully
            yield sim.timeout(10_000_000)
            yield core.res.request()
            freed = yield from mgr.cleanup(core, state)
            core.res.release()
            return freed

        freed = sim.run_until(sim.process(work()))
        assert freed == 4
        assert all(s.freed for s in skbs)
        assert state.pending_count == 0

    def test_wait_all_blocks_until_engine_done(self):
        sim, host, mgr, _ = make_env()
        state = mgr.new_message_state()
        space = AddressSpace()
        dst = space.alloc(256 * KiB)
        core = host.irq_core
        src_pattern = []

        def work():
            yield core.res.request()
            for i in range(8):
                skb = fill_skb(host, 8 * KiB)
                skb.head.fill_pattern(i)
                src_pattern.append(bytes(skb.head.read(0, 8 * KiB)))
                yield from mgr.copy_fragment(
                    core, state, skb, 0, dst, i * 8 * KiB, 8 * KiB, 256 * KiB
                )
            freed = yield from mgr.wait_all(core, state)
            core.res.release()
            return freed

        freed = sim.run_until(sim.process(work()))
        assert freed == 8
        for i, pat in enumerate(src_pattern):
            assert bytes(dst.read(i * 8 * KiB, 8 * KiB)) == pat

    def test_ignore_mode_copies_nothing(self):
        sim, host, mgr, _ = make_env(ignore_bh_copy=True)
        state = mgr.new_message_state()
        space = AddressSpace()
        dst = space.alloc(64 * KiB, fill=0)
        skb = fill_skb(host, 8 * KiB)
        skb.head.fill_pattern(3)
        offloaded = self._copy(sim, host, mgr, state, skb, dst, 0, 8 * KiB, 128 * KiB)
        assert not offloaded
        assert bytes(dst.read(0, 8 * KiB)) == b"\x00" * (8 * KiB)

    def test_pending_bounded_during_big_message(self):
        """End-to-end: §III-B promises the pending pool stays bounded."""
        from repro import build_testbed
        from repro.units import MiB

        tb = build_testbed(ioat_enabled=True, max_pending_skbuffs=24)
        ep0, ep1 = tb.open_endpoint(0, 0), tb.open_endpoint(1, 0)
        c0, c1 = tb.user_core(0), tb.user_core(1)
        size = 4 * MiB
        sbuf, rbuf = ep0.space.alloc(size), ep1.space.alloc(size)
        sbuf.fill_pattern(1)
        done = tb.sim.event()
        peaks = []

        def sender():
            req = yield from ep0.isend(c0, ep1.addr, 9, sbuf, 0, size)
            yield from ep0.wait(c0, req)

        def receiver():
            req = yield from ep1.irecv(c1, 9, ~0, rbuf, 0, size)
            yield from ep1.wait(c1, req)
            done.succeed()

        def monitor():
            while not done.triggered:
                for h in tb.stacks[1].driver._pulls.values():
                    peaks.append(h.offload.pending_count)
                yield tb.sim.timeout(20_000)

        tb.sim.process(sender())
        tb.sim.process(receiver())
        tb.sim.process(monitor())
        tb.sim.run_until(done, max_events=60_000_000)
        assert bytes(rbuf.read()) == bytes(sbuf.read())
        assert peaks and max(peaks) <= 24
