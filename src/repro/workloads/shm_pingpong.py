"""Intra-node ping-pong with explicit core placement (Fig. 10).

Two processes on one host exchange a message back and forth through the
Open-MX shared-memory path.  Placement selects the cache relationship:

* ``"same_die"`` — both cores share an L2 ("same dual-core subchip");
* ``"cross_socket"`` — cores on different packages.

Returns the ping-pong throughput as the paper plots it (message size over
half the round-trip time).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.units import throughput_mib_s

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.testbed import Testbed


def run_shm_pingpong(tb: "Testbed", size: int, placement: str = "same_die",
                     iterations: int = 8, warmup: int = 2,
                     max_events: Optional[int] = 120_000_000) -> float:
    """Ping-pong ``size`` bytes between two local processes; MiB/s."""
    host = tb.hosts[0]
    if placement == "same_die":
        core_a, core_b = host.core_same_die_pair()
    elif placement == "cross_socket":
        core_a, core_b = host.core_cross_socket_pair()
    else:
        raise ValueError(f"unknown placement {placement!r}")

    ep_a = tb.open_endpoint(0, 0)
    ep_b = tb.open_endpoint(0, 1)
    # Classic echo ping-pong: each side bounces the buffer it received, so
    # every copy's source is data freshly written by the *other* side's
    # core — the access pattern behind Fig. 10's flat cross-socket curve.
    buf_a = ep_a.space.alloc(max(size, 1))
    buf_b = ep_b.space.alloc(max(size, 1))
    buf_a.fill_pattern(1)
    marks = {}
    done = tb.sim.event("shm-done")

    def proc_a():
        for i in range(warmup + iterations):
            if i == warmup:
                marks["start"] = tb.sim.now
            sreq = yield from ep_a.isend(core_a, ep_b.addr, 0x21, buf_a, 0, size)
            yield from ep_a.wait(core_a, sreq)
            rreq = yield from ep_a.irecv(core_a, 0x22, ~0, buf_a, 0, size)
            yield from ep_a.wait(core_a, rreq)
        marks["end"] = tb.sim.now
        done.succeed()

    def proc_b():
        for _ in range(warmup + iterations):
            rreq = yield from ep_b.irecv(core_b, 0x21, ~0, buf_b, 0, size)
            yield from ep_b.wait(core_b, rreq)
            sreq = yield from ep_b.isend(core_b, ep_a.addr, 0x22, buf_b, 0, size)
            yield from ep_b.wait(core_b, sreq)

    tb.sim.process(proc_a(), name="shm-a")
    tb.sim.process(proc_b(), name="shm-b")
    tb.sim.run_until(done, max_events=max_events)
    elapsed = marks["end"] - marks["start"]
    # One iteration moves the message twice; the plotted throughput is
    # size / (round-trip / 2).
    return throughput_mib_s(2 * size * iterations, elapsed)
