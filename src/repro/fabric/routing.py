"""Deterministic routing over the switch graph.

Routes are computed on the *switch* graph only: hosts are single-homed
leaves, so a route from host A to host B is A's access link, a switch path
from A's edge switch to B's edge switch, and B's access link.  Next-hop
tables are therefore keyed per **(switch, destination edge switch)** pair —
one row shared by every host behind that edge — which is what keeps
1024-host fabrics cheap (a 2-tier fat tree with 32 edges has 32 BFS
destinations, not 1024).

Determinism:

* BFS frontiers and equal-cost next-hop sets are sorted by switch name —
  never by dict/set iteration order;
* ECMP picks among equal-cost next-hops with a :func:`zlib.crc32` hash of
  ``seed | flow-key | switch-name`` — stable across processes and runs
  (Python's ``hash()`` is salted per process and is banned here);
* tables are versioned: killing or reviving a link bumps the version and
  drops the cache, so reroutes recompute from the *current* live-link set
  and two runs with the same fault schedule pick identical detours.
"""

from __future__ import annotations

import zlib
from typing import Optional

from repro.fabric.spec import TopologySpec


#: shared empty avoid-set for the no-demotion BFS (avoids a per-call alloc)
_NO_AVOID: frozenset = frozenset()


def ecmp_pick(seed: str, flow: str, where: str, n: int) -> int:
    """Deterministic index in ``[0, n)`` for one path choice."""
    if n <= 1:
        return 0
    return zlib.crc32(f"{seed}|{flow}|{where}".encode()) % n


class RouteTables:
    """Next-hop tables over the live switch graph of one topology.

    ``kill_link``/``revive_link`` maintain a set of dead switch-to-switch
    links (access links are handled by the network layer: a dead access
    link has no detour).  Tables are computed lazily per destination edge
    switch and cached until the live-link set changes.
    """

    def __init__(self, spec: TopologySpec):
        self.spec = spec
        self.seed = spec.ecmp_seed
        hosts = set(spec.hosts)
        #: sorted switch -> sorted list of (neighbor, link-cost==1) peers
        self._adj: dict[str, list[str]] = {s: [] for s in spec.switch_names()}
        #: canonical (min, max) name pair -> live?
        self._live: dict[tuple[str, str], bool] = {}
        #: trunks the health layer demoted out of the ECMP candidate set;
        #: advisory — see :meth:`table_for` for the no-partition guarantee
        self._demoted: set[tuple[str, str]] = set()
        for l in spec.links:
            if l.a in hosts or l.b in hosts:
                continue
            self._adj[l.a].append(l.b)
            self._adj[l.b].append(l.a)
            self._live[self._key(l.a, l.b)] = True
        for peers in self._adj.values():
            peers.sort()
        #: host -> its edge switch (precomputed once; hosts never move)
        self.edge_of: dict[str, str] = {}
        for l in spec.links:
            if l.a in hosts:
                self.edge_of[l.a] = l.b
            elif l.b in hosts:
                self.edge_of[l.b] = l.a
        self.version = 0
        #: dst edge switch -> {switch: [equal-cost next hops, sorted]}
        self._tables: dict[str, dict[str, list[str]]] = {}

    @staticmethod
    def _key(a: str, b: str) -> tuple[str, str]:
        return (a, b) if a < b else (b, a)

    # -- liveness ----------------------------------------------------------

    def is_live(self, a: str, b: str) -> bool:
        return self._live.get(self._key(a, b), False)

    def kill_link(self, a: str, b: str) -> bool:
        """Mark a trunk dead; returns True if it was live."""
        key = self._key(a, b)
        if key not in self._live:
            raise KeyError(f"no trunk link {a}~{b} in {self.spec.name}")
        was = self._live[key]
        if was:
            self._live[key] = False
            self.version += 1
            self._tables.clear()
        return was

    def revive_link(self, a: str, b: str) -> None:
        key = self._key(a, b)
        if key not in self._live:
            raise KeyError(f"no trunk link {a}~{b} in {self.spec.name}")
        if not self._live[key]:
            self._live[key] = True
            self.version += 1
            self._tables.clear()

    # -- health demotion ---------------------------------------------------

    def is_demoted(self, a: str, b: str) -> bool:
        return self._key(a, b) in self._demoted

    def demote_link(self, a: str, b: str) -> bool:
        """Drop a trunk from the ECMP candidate set; returns True if it
        was not already demoted.  The link stays *live* — a demotion is a
        routing preference, not a kill — and :meth:`table_for` quietly
        ignores demotions for any destination they would disconnect."""
        key = self._key(a, b)
        if key not in self._live:
            raise KeyError(f"no trunk link {a}~{b} in {self.spec.name}")
        if key in self._demoted:
            return False
        self._demoted.add(key)
        self.version += 1
        self._tables.clear()
        return True

    def restore_link(self, a: str, b: str) -> bool:
        """Re-admit a demoted trunk; returns True if it was demoted."""
        key = self._key(a, b)
        if key not in self._live:
            raise KeyError(f"no trunk link {a}~{b} in {self.spec.name}")
        if key not in self._demoted:
            return False
        self._demoted.discard(key)
        self.version += 1
        self._tables.clear()
        return True

    # -- tables ------------------------------------------------------------

    def _bfs_table(self, dst_edge: str, avoid: set) -> dict[str, list[str]]:
        """Reverse BFS from ``dst_edge`` over live links not in ``avoid``."""
        dist: dict[str, int] = {dst_edge: 0}
        frontier = [dst_edge]
        while frontier:
            nxt = []
            for sw in frontier:  # frontier built sorted; stays deterministic
                for peer in self._adj[sw]:
                    key = self._key(sw, peer)
                    if not self._live[key] or key in avoid:
                        continue
                    if peer not in dist:
                        dist[peer] = dist[sw] + 1
                        nxt.append(peer)
            nxt.sort()
            frontier = nxt
        table = {}
        for sw, d in dist.items():
            if sw == dst_edge:
                table[sw] = []
                continue
            hops = [peer for peer in self._adj[sw]
                    if self._live[self._key(sw, peer)]
                    and self._key(sw, peer) not in avoid
                    and dist.get(peer, -1) == d - 1]
            table[sw] = hops  # _adj is sorted, so hops is sorted
        return table

    def table_for(self, dst_edge: str) -> dict[str, list[str]]:
        """``{switch: sorted equal-cost next hops toward dst_edge}``.

        Switches with no live path to ``dst_edge`` are absent from the
        table.  Computed by reverse BFS from the destination edge over
        live links only (unit link cost).

        Demoted trunks are excluded from the BFS *unless* that exclusion
        would disconnect a switch the live graph still reaches: demotion
        must never partition, and next-hop rows from two different BFS
        metrics must never mix (mixing can loop), so the fallback is
        all-or-nothing per destination.
        """
        table = self._tables.get(dst_edge)
        if table is not None:
            return table
        table = self._bfs_table(dst_edge, _NO_AVOID)
        if self._demoted:
            preferred = self._bfs_table(dst_edge, self._demoted)
            if len(preferred) == len(table):
                table = preferred
        self._tables[dst_edge] = table
        return table

    # -- path selection ----------------------------------------------------

    def path(self, src_edge: str, dst_edge: str,
             flow: str) -> Optional[tuple[str, ...]]:
        """The switch sequence from ``src_edge`` to ``dst_edge`` inclusive.

        One ECMP draw per hop with an alternative; ``None`` when no live
        path exists.  The same ``flow`` string always walks the same path
        for a given live-link set.
        """
        if src_edge == dst_edge:
            return (src_edge,)
        table = self.table_for(dst_edge)
        if src_edge not in table:
            return None
        walk = [src_edge]
        here = src_edge
        while here != dst_edge:
            hops = table[here]
            here = hops[ecmp_pick(self.seed, flow, here, len(hops))]
            walk.append(here)
        return tuple(walk)

    def reachable(self, src_edge: str, dst_edge: str) -> bool:
        return src_edge == dst_edge or src_edge in self.table_for(dst_edge)
