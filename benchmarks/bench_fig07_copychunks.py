"""FIG7 — pipelined memcpy vs I/OAT copy under different chunk sizes.

Asserts the micro-benchmark conclusions of §IV-A: chunking barely affects
memcpy, devastates I/OAT below ~1 kB, and page-sized chunks let the engine
beat the CPU by ~60 %.
"""

import pytest

from conftest import show
from repro.reporting.experiments import fig7
from repro.units import KiB, MiB


@pytest.mark.benchmark(group="fig7")
def test_fig7_copy_chunk_curves(once):
    fig = once(fig7, quick=False)
    show(fig)
    big = 1 * MiB

    m4k = fig.get("Memcpy - 4kB chunks").y_at(big)
    m256 = fig.get("Memcpy - 256B chunks").y_at(big)
    i4k = fig.get("I/OAT Copy - 4kB chunks").y_at(big)
    i1k = fig.get("I/OAT Copy - 1kB chunks").y_at(big)
    i256 = fig.get("I/OAT Copy - 256B chunks").y_at(big)

    # memcpy is nearly chunk-insensitive ("does not imply much degradation")
    assert m256 > 0.8 * m4k
    # paper's asymptotes: ~2.4 GiB/s vs ~1.5 GiB/s at page chunks
    assert 2200 < i4k < 2700
    assert 1400 < m4k < 1700
    assert i4k > 1.45 * m4k
    # 1 kB chunks are the break-even neighbourhood
    assert 0.7 * m4k < i1k < m4k
    # 256 B chunks collapse the engine far below memcpy
    assert i256 < 0.35 * m256
